//! The DPS flow graphs of the Life application (paper Fig. 7, 8, 10).

use dps_cluster::{round_robin_mapping, ClusterSpec};
use dps_core::prelude::*;
use dps_core::{dps_token, AppHandle, GraphHandle, SimEngine};
use dps_des::SimSpan;
use dps_serial::Buffer;

use crate::band::LifeBand;
use crate::world::World;

dps_token! {
    /// Master order to advance the world one generation.
    pub struct IterOrder { pub iter: u32 }
}
dps_token! {
    /// Per-worker order to send its border rows (Fig. 7/8 step 2).
    pub struct SendOrder { pub t: u32 }
}
dps_token! {
    /// Per-worker order to compute one chunk of the band interior
    /// (improved graph only). Chunking bounds single-operation run time so
    /// interactive service calls stay responsive.
    pub struct CenterOrder { pub t: u32, pub chunk: u32, pub chunks: u32 }
}
dps_token! {
    /// A border row travelling to a neighbouring band (step 3). An empty
    /// `row` is a placeholder used when a worker has no neighbours.
    pub struct BorderData {
        pub from: u32,
        pub to: u32,
        /// True if this row becomes the receiver's *top* inbox.
        pub is_top: bool,
        pub row: Buffer<u8>,
    }
}
dps_token! {
    /// Acknowledgement that a border row was stored (step 4).
    pub struct BorderAck { pub from: u32, pub to: u32 }
}
dps_token! {
    /// Border-row request sent to a neighbour (improved graph, Fig. 8
    /// steps 2/3: the requester's split opens the wave, so the requester's
    /// merge collects exactly its own borders).
    pub struct BorderRequest { pub from: u32, pub to: u32 }
}
dps_token! {
    /// A border row returning to its requester. An empty `row` is the
    /// placeholder response of a worker with no neighbours.
    pub struct BorderResponse {
        pub to: u32,
        /// True if this row becomes the requester's *top* inbox.
        pub is_top: bool,
        pub row: Buffer<u8>,
    }
}
dps_token! {
    /// A worker finished one phase (border exchange or interior compute).
    pub struct PhaseDone { pub t: u32 }
}
dps_token! {
    /// Global synchronization: all phases of the iteration step done
    /// (Fig. 7 step 5).
    pub struct SyncDone { pub iter: u32 }
}
dps_token! {
    /// Per-worker order to compute (simple: whole band; improved: border
    /// rows only) and commit the generation (steps 6/7).
    pub struct ComputeOrder { pub t: u32, pub whole_band: bool }
}
dps_token! {
    /// A worker committed its band (step 8).
    pub struct RowsDone { pub t: u32, pub live: u64 }
}
dps_token! {
    /// Iteration result: generation counter and total population.
    pub struct IterDone { pub iter: u32, pub population: u64 }
}

dps_token! {
    /// World-subset read request (the Fig. 10 service; Table 2 workload).
    pub struct ReadReq { pub col0: u32, pub row0: u32, pub width: u32, pub height: u32 }
}
dps_token! {
    /// Per-worker part of a read request.
    pub struct ReadPart { pub col0: u32, pub row0: u32, pub width: u32, pub height: u32 }
}
dps_token! {
    /// Rows extracted from one band.
    pub struct PartData { pub row0: u32, pub rows: u32, pub width: u32, pub data: Buffer<u8> }
}
dps_token! {
    /// Assembled world subset returned to the caller.
    pub struct Subset { pub row0: u32, pub rows: u32, pub width: u32, pub data: Buffer<u8> }
}

/// Even band partition: `(start_row, height)` per worker; the remainder
/// spreads over the first bands.
pub fn partition(rows: usize, workers: usize) -> Vec<(usize, usize)> {
    assert!(workers >= 1 && rows >= workers, "at least one row per band");
    let base = rows / workers;
    let extra = rows % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for t in 0..workers {
        let h = base + usize::from(t < extra);
        out.push((start, h));
        start += h;
    }
    out
}

/// Cost in flop-equivalents of updating `cells` Life cells.
pub(crate) fn cell_cost(cells: usize) -> f64 {
    cells as f64 * dps_linalg_cell_ops()
}

// Local copy of the constant to avoid a dependency cycle with dps-linalg.
fn dps_linalg_cell_ops() -> f64 {
    12.0
}

/// Interior chunks per band per improved-graph iteration: one operation
/// per chunk, bounding how long a worker thread is unavailable to
/// interactive service calls (Table 2's visualization reads). Small bands
/// use fewer chunks — per-operation overhead would otherwise dominate.
pub fn interior_chunks(band_rows: usize) -> u32 {
    (band_rows / 64).clamp(1, 8) as u32
}

/// Number of local operations worker `t` performs in one improved-graph
/// iteration: its interior chunks, its own border computation, and the
/// border responses it owes its neighbours. The band commits when the last
/// of them finishes — counting the responses is what guarantees a worker
/// never hands out next-generation rows to a late-requesting neighbour.
fn improved_phases(t: u32, p: u32, chunks: u32) -> u8 {
    let responses = if p == 1 {
        1 // the self-request placeholder
    } else {
        u32::from(t > 0) + u32::from(t + 1 < p)
    };
    (chunks + 1 + responses) as u8
}

// --- operations -----------------------------------------------------------------

/// Fig. 7 (1): split the iteration to the workers. In the improved graph
/// every worker also receives an interior-compute order, and the exchange
/// is request-driven.
struct SplitIteration {
    p: u32,
    improved: bool,
    chunks: u32,
}
impl SplitOperation for SplitIteration {
    type Thread = ();
    type In = IterOrder;
    type Out = SendOrder;
    fn execute(&mut self, ctx: &mut OpCtx<'_, (), SendOrder>, _o: IterOrder) {
        for t in 0..self.p {
            ctx.post(SendOrder { t });
            if self.improved {
                for chunk in 0..self.chunks {
                    ctx.post_other(CenterOrder {
                        t,
                        chunk,
                        chunks: self.chunks,
                    });
                }
            }
        }
    }
}

/// Improved graph (Fig. 8 step 2): each worker requests its border rows
/// from its neighbours; the responses come back to *this* worker's merge.
struct RequestBorders {
    p: u32,
}
impl SplitOperation for RequestBorders {
    type Thread = LifeBand;
    type In = SendOrder;
    type Out = BorderRequest;
    fn execute(&mut self, ctx: &mut OpCtx<'_, LifeBand, BorderRequest>, o: SendOrder) {
        let t = o.t;
        let mut posted = false;
        if t > 0 {
            ctx.post(BorderRequest { from: t, to: t - 1 });
            posted = true;
        }
        if t + 1 < self.p {
            ctx.post(BorderRequest { from: t, to: t + 1 });
            posted = true;
        }
        if !posted {
            // Single-band world: self-request keeps the wave non-empty.
            ctx.post(BorderRequest { from: t, to: t });
        }
    }
}

/// Improved graph (Fig. 8 step 3): a neighbour answers with its adjacent
/// border row. Serving a response is one of the responder's iteration
/// phases — its band must not commit before every neighbour got this
/// generation's border.
struct RespondBorder {
    p: u32,
    chunks: u32,
}
impl LeafOperation for RespondBorder {
    type Thread = LifeBand;
    type In = BorderRequest;
    type Out = BorderResponse;
    fn execute(&mut self, ctx: &mut OpCtx<'_, LifeBand, BorderResponse>, r: BorderRequest) {
        let p = self.p;
        if r.to == r.from {
            ctx.thread()
                .finish_phase_of(improved_phases(r.to, p, self.chunks));
            ctx.post(BorderResponse {
                to: r.from,
                is_top: true,
                row: Buffer::new(),
            });
            return;
        }
        let band = ctx.thread();
        // The requester sits below us (is_top) or above us.
        let requester_below = r.from > r.to;
        let row = if requester_below {
            band.bottom_row()
        } else {
            band.top_row()
        };
        band.finish_phase_of(improved_phases(r.to, p, self.chunks));
        ctx.charge_flops(row.len() as f64);
        ctx.post(BorderResponse {
            to: r.from,
            is_top: requester_below,
            row: row.into(),
        });
    }
}

/// Improved graph (Fig. 8 steps 4/5): collect this worker's borders, then
/// immediately compute its border rows; commit if the interior phase
/// already finished.
struct CollectAndComputeBorders {
    t: u32,
    p: u32,
    chunks: u32,
}
impl CollectAndComputeBorders {
    fn new(p: u32, chunks: u32) -> impl Fn() -> Self {
        move || Self { t: 0, p, chunks }
    }
}
impl MergeOperation for CollectAndComputeBorders {
    type Thread = LifeBand;
    type In = BorderResponse;
    type Out = PhaseDone;
    fn consume(&mut self, ctx: &mut OpCtx<'_, LifeBand, PhaseDone>, b: BorderResponse) {
        self.t = b.to;
        if !b.row.is_empty() {
            let row = b.row.into_vec();
            if b.is_top {
                ctx.thread().inbox_top = Some(row);
            } else {
                ctx.thread().inbox_bottom = Some(row);
            }
        }
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, LifeBand, PhaseDone>) {
        let band = ctx.thread();
        let cells = band.compute_borders();
        band.finish_phase_of(improved_phases(self.t, self.p, self.chunks));
        ctx.charge_flops(cell_cost(cells));
        ctx.post(PhaseDone { t: self.t });
    }
}

/// Fig. 7 (2): each worker splits border transfers to its neighbours.
struct SendBorders {
    p: u32,
}
impl SplitOperation for SendBorders {
    type Thread = LifeBand;
    type In = SendOrder;
    type Out = BorderData;
    fn execute(&mut self, ctx: &mut OpCtx<'_, LifeBand, BorderData>, o: SendOrder) {
        let t = o.t;
        let mut posted = false;
        if t > 0 {
            let row = ctx.thread().top_row();
            ctx.charge_flops(row.len() as f64);
            ctx.post(BorderData {
                from: t,
                to: t - 1,
                is_top: false, // the receiver below-edge: our top row is their bottom inbox
                row: row.into(),
            });
            posted = true;
        }
        if t + 1 < self.p {
            let row = ctx.thread().bottom_row();
            ctx.charge_flops(row.len() as f64);
            ctx.post(BorderData {
                from: t,
                to: t + 1,
                is_top: true,
                row: row.into(),
            });
            posted = true;
        }
        if !posted {
            // Single-band world: keep the wave non-empty with a placeholder.
            ctx.post(BorderData {
                from: t,
                to: t,
                is_top: true,
                row: Buffer::new(),
            });
        }
    }
}

/// Fig. 7 (3): the neighbour stores the arriving border row.
struct StoreBorder;
impl LeafOperation for StoreBorder {
    type Thread = LifeBand;
    type In = BorderData;
    type Out = BorderAck;
    fn execute(&mut self, ctx: &mut OpCtx<'_, LifeBand, BorderAck>, b: BorderData) {
        if !b.row.is_empty() {
            let row = b.row.into_vec();
            if b.is_top {
                ctx.thread().inbox_top = Some(row);
            } else {
                ctx.thread().inbox_bottom = Some(row);
            }
        }
        ctx.post(BorderAck {
            from: b.from,
            to: b.to,
        });
    }
}

/// Fig. 7 (4): collect one worker's border acknowledgements.
#[derive(Default)]
struct CollectAcks {
    t: u32,
}
impl MergeOperation for CollectAcks {
    type Thread = ();
    type In = BorderAck;
    type Out = PhaseDone;
    fn consume(&mut self, _ctx: &mut OpCtx<'_, (), PhaseDone>, a: BorderAck) {
        self.t = a.from;
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, (), PhaseDone>) {
        ctx.post(PhaseDone { t: self.t });
    }
}

/// Improved graph (Fig. 8 step 6): compute one chunk of the band interior
/// while the borders travel; whichever phase finishes last commits.
struct ComputeInterior {
    p: u32,
}

impl LeafOperation for ComputeInterior {
    type Thread = LifeBand;
    type In = CenterOrder;
    type Out = PhaseDone;
    fn execute(&mut self, ctx: &mut OpCtx<'_, LifeBand, PhaseDone>, o: CenterOrder) {
        let band = ctx.thread();
        let cells = band.compute_interior_chunk(o.chunk as usize, o.chunks as usize);
        band.finish_phase_of(improved_phases(o.t, self.p, o.chunks));
        ctx.charge_flops(cell_cost(cells));
        ctx.post(PhaseDone { t: o.t });
    }
}

/// Fig. 7 (5): global synchronization of the exchange (and, in the improved
/// graph, interior-compute) phase.
#[derive(Default)]
struct GlobalSync {
    iter: u32,
}
impl MergeOperation for GlobalSync {
    type Thread = ();
    type In = PhaseDone;
    type Out = SyncDone;
    fn consume(&mut self, _ctx: &mut OpCtx<'_, (), SyncDone>, _p: PhaseDone) {}
    fn finalize(&mut self, ctx: &mut OpCtx<'_, (), SyncDone>) {
        ctx.post(SyncDone { iter: self.iter });
    }
}

/// Fig. 7 (6): split the compute orders.
struct SplitCompute {
    p: u32,
    whole_band: bool,
}
impl SplitOperation for SplitCompute {
    type Thread = ();
    type In = SyncDone;
    type Out = ComputeOrder;
    fn execute(&mut self, ctx: &mut OpCtx<'_, (), ComputeOrder>, _s: SyncDone) {
        for t in 0..self.p {
            ctx.post(ComputeOrder {
                t,
                whole_band: self.whole_band,
            });
        }
    }
}

/// Fig. 7 (7): compute the next generation (whole band in the simple graph,
/// border rows only in the improved graph) and commit.
struct ComputeBand;
impl LeafOperation for ComputeBand {
    type Thread = LifeBand;
    type In = ComputeOrder;
    type Out = RowsDone;
    fn execute(&mut self, ctx: &mut OpCtx<'_, LifeBand, RowsDone>, o: ComputeOrder) {
        let band = ctx.thread();
        let cells = if o.whole_band {
            band.compute_rows(0, band.rows)
        } else {
            band.compute_borders()
        };
        band.commit();
        let live: u64 = band.cells.iter().map(|&c| u64::from(c)).sum();
        ctx.charge_flops(cell_cost(cells));
        ctx.post(RowsDone { t: o.t, live });
    }
}

/// Fig. 8 (7): synchronize the end of the improved iteration — the only
/// global synchronization of the improved graph.
#[derive(Default)]
struct EndImproved {
    count: u32,
}
impl MergeOperation for EndImproved {
    type Thread = ();
    type In = PhaseDone;
    type Out = IterDone;
    fn consume(&mut self, _ctx: &mut OpCtx<'_, (), IterDone>, _p: PhaseDone) {
        self.count += 1;
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, (), IterDone>) {
        ctx.post(IterDone {
            iter: 0,
            population: u64::from(self.count),
        });
    }
}

/// Fig. 7 (8): synchronize the end of the iteration.
#[derive(Default)]
struct EndIteration {
    live: u64,
}
impl MergeOperation for EndIteration {
    type Thread = ();
    type In = RowsDone;
    type Out = IterDone;
    fn consume(&mut self, _ctx: &mut OpCtx<'_, (), IterDone>, r: RowsDone) {
        self.live += r.live;
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, (), IterDone>) {
        ctx.post(IterDone {
            iter: 0,
            population: self.live,
        });
    }
}

// --- read service (Fig. 10) -------------------------------------------------------

/// (a) split the request to the workers holding the requested rows.
struct SplitRead {
    bands: Vec<(usize, usize)>,
}
impl SplitOperation for SplitRead {
    type Thread = ();
    type In = ReadReq;
    type Out = ReadPart;
    fn execute(&mut self, ctx: &mut OpCtx<'_, (), ReadPart>, r: ReadReq) {
        let req_lo = r.row0 as usize;
        let req_hi = req_lo + r.height as usize;
        for (start, h) in self.bands.iter().copied() {
            let lo = req_lo.max(start);
            let hi = req_hi.min(start + h);
            if lo < hi {
                ctx.post(ReadPart {
                    col0: r.col0,
                    row0: lo as u32,
                    width: r.width,
                    height: (hi - lo) as u32,
                });
            }
        }
    }
}

/// (b) read the requested rows from the local band.
struct ReadRows;
impl LeafOperation for ReadRows {
    type Thread = LifeBand;
    type In = ReadPart;
    type Out = PartData;
    fn execute(&mut self, ctx: &mut OpCtx<'_, LifeBand, PartData>, p: ReadPart) {
        let band = ctx.thread();
        let mut data = Vec::with_capacity((p.height * p.width) as usize);
        for r in 0..p.height as usize {
            let band_row = p.row0 as usize + r - band.start_row;
            let row = band.row(band_row);
            data.extend_from_slice(&row[p.col0 as usize..(p.col0 + p.width) as usize]);
        }
        ctx.charge_flops(data.len() as f64);
        ctx.post(PartData {
            row0: p.row0,
            rows: p.height,
            width: p.width,
            data: data.into(),
        });
    }
}

/// (c) merge the parts into the requested subset.
#[derive(Default)]
struct AssembleSubset {
    parts: Vec<(u32, u32, Vec<u8>)>,
    width: u32,
}
impl MergeOperation for AssembleSubset {
    type Thread = ();
    type In = PartData;
    type Out = Subset;
    fn consume(&mut self, _ctx: &mut OpCtx<'_, (), Subset>, p: PartData) {
        self.width = p.width;
        self.parts.push((p.row0, p.rows, p.data.into_vec()));
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, (), Subset>) {
        self.parts.sort_by_key(|&(r0, ..)| r0);
        let row0 = self.parts.first().map(|&(r0, ..)| r0).unwrap_or(0);
        let rows: u32 = self.parts.iter().map(|&(_, h, _)| h).sum();
        let data: Vec<u8> = self.parts.drain(..).flat_map(|(_, _, d)| d).collect();
        ctx.post(Subset {
            row0,
            rows,
            width: self.width,
            data: data.into(),
        });
    }
}

// --- graph builders ------------------------------------------------------------------

/// Which of the paper's two iteration graphs to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Fig. 7: exchange, synchronize, compute.
    Simple,
    /// Fig. 8: interior compute overlaps the border exchange.
    Improved,
}

/// Build one iteration step graph over the given collections.
///
/// * **Simple** (Fig. 7): send borders → store → acks → global sync →
///   compute whole bands → end-of-iteration sync.
/// * **Improved** (Fig. 8): each worker *requests* its borders (so its own
///   merge collects them and computes the border rows immediately) while
///   the interior computes in parallel; whichever of the two phases ends
///   second commits the band locally. Only one global synchronization
///   remains, at the end of the iteration.
pub fn build_step_graph(
    eng: &mut SimEngine,
    variant: Variant,
    master: &ThreadCollection<()>,
    workers: &ThreadCollection<LifeBand>,
    world_rows: usize,
) -> Result<GraphHandle> {
    let p = workers.thread_count() as u32;
    let improved = variant == Variant::Improved;
    let chunks = interior_chunks(world_rows / workers.thread_count().max(1));
    let mut b = GraphBuilder::new(match variant {
        Variant::Simple => "life-simple",
        Variant::Improved => "life-improved",
    });
    let s1 = b.split(
        master,
        || ToThread(0),
        move || SplitIteration {
            p,
            improved,
            chunks,
        },
    );
    if improved {
        b.declare_output::<CenterOrder, _, _>(s1);
        let w1 = b.split(
            workers,
            || ByKey::new(|o: &SendOrder| o.t as usize),
            move || RequestBorders { p },
        );
        let w2 = b.leaf(
            workers,
            || ByKey::new(|r: &BorderRequest| r.to as usize),
            move || RespondBorder { p, chunks },
        );
        let mb = b.merge(
            workers,
            || ByKey::new(|r: &BorderResponse| r.to as usize),
            CollectAndComputeBorders::new(p, chunks),
        );
        let wc = b.leaf(
            workers,
            || ByKey::new(|o: &CenterOrder| o.t as usize),
            move || ComputeInterior { p },
        );
        let mend = b.merge(master, || ToThread(0), EndImproved::default);
        b.add(s1 >> w1 >> w2 >> mb >> mend);
        b.connect_alt(s1, wc);
        b.add(wc >> mend);
    } else {
        let w1 = b.split(
            workers,
            || ByKey::new(|o: &SendOrder| o.t as usize),
            move || SendBorders { p },
        );
        let w2 = b.leaf(
            workers,
            || ByKey::new(|d: &BorderData| d.to as usize),
            || StoreBorder,
        );
        let m1 = b.merge(master, || ToThread(0), CollectAcks::default);
        let msync = b.merge(master, || ToThread(0), GlobalSync::default);
        let s2 = b.split(
            master,
            || ToThread(0),
            move || SplitCompute {
                p,
                whole_band: true,
            },
        );
        let w3 = b.leaf(
            workers,
            || ByKey::new(|o: &ComputeOrder| o.t as usize),
            || ComputeBand,
        );
        let m3 = b.merge(master, || ToThread(0), EndIteration::default);
        b.add(s1 >> w1 >> w2 >> m1 >> msync >> s2 >> w3 >> m3);
    }
    eng.build_graph(b)
}

/// Build the world-subset read graph (Fig. 10) over the same collections.
pub fn build_read_service(
    eng: &mut SimEngine,
    master: &ThreadCollection<()>,
    workers: &ThreadCollection<LifeBand>,
    rows: usize,
    service_name: Option<&str>,
) -> Result<GraphHandle> {
    let bands = partition(rows, workers.thread_count());
    let bands_for_route = bands.clone();
    let mut b = GraphBuilder::new("life-read");
    let s = b.split(
        master,
        || ToThread(0),
        move || SplitRead {
            bands: bands.clone(),
        },
    );
    let read = b.leaf(
        workers,
        move || {
            let bands = bands_for_route.clone();
            ByKey::new(move |p: &ReadPart| {
                bands
                    .iter()
                    .position(|&(start, h)| {
                        (p.row0 as usize) < start + h && start <= p.row0 as usize
                    })
                    .expect("request rows are within the world")
            })
        },
        || ReadRows,
    );
    let m = b.merge(master, || ToThread(0), AssembleSubset::default);
    b.add(s >> read >> m);
    // Short random reads must stay responsive while iterations run
    // (Table 2); on the testbed the OS preempts, here the deliveries jump
    // the queue.
    b.set_interactive();
    let g = eng.build_graph(b)?;
    if let Some(name) = service_name {
        eng.expose_service(g, name);
    }
    Ok(g)
}

// --- driver -----------------------------------------------------------------------------

/// Parameters of one Life run.
#[derive(Debug, Clone)]
pub struct LifeConfig {
    /// World height.
    pub rows: usize,
    /// World width.
    pub cols: usize,
    /// Generations to advance.
    pub iterations: usize,
    /// Which iteration graph to use.
    pub variant: Variant,
    /// Worker nodes.
    pub nodes: usize,
    /// Worker threads per node.
    pub threads_per_node: usize,
    /// Initial live-cell density.
    pub density: f64,
    /// World seed.
    pub seed: u64,
    /// How iteration work reaches the workers: `Static` keeps the paper's
    /// banded layout (one fixed band per worker, borders exchanged);
    /// `Scheduled(kind)` drives row-band chunks through the dynamic
    /// loop-scheduling stack (`ScheduledSplit` + worker-side chunk
    /// claiming, see [`crate::sched`]) — the world lives on the master and
    /// any worker can compute any chunk, so the schedule adapts to node
    /// speeds and survives node failures.
    pub dist: dps_sched::Distribution,
}

/// Outcome of one Life run.
pub struct LifeRunReport {
    /// Total virtual time for all iterations (excluding set-up).
    pub elapsed: SimSpan,
    /// Virtual time of each iteration.
    pub per_iter: Vec<SimSpan>,
    /// Final world gathered from the workers.
    pub world: World,
}

/// Set up a Life application on an engine: collections, graphs, band
/// distribution. Returns `(app, master, workers, step graph)`.
pub fn setup_life(
    eng: &mut SimEngine,
    cfg: &LifeConfig,
    world: &World,
) -> Result<(
    AppHandle,
    ThreadCollection<()>,
    ThreadCollection<LifeBand>,
    GraphHandle,
)> {
    let app = eng.app("life");
    eng.preload_app(app);
    let master: ThreadCollection<()> = eng.thread_collection(app, "master", "node0")?;
    let mapping = round_robin_mapping(eng.cluster().spec(), cfg.nodes, cfg.threads_per_node);
    let workers: ThreadCollection<LifeBand> = eng.thread_collection(app, "bands", &mapping)?;
    let graph = build_step_graph(eng, cfg.variant, &master, &workers, cfg.rows)?;
    // Distribute the world bands.
    let parts = partition(cfg.rows, workers.thread_count());
    for (t, &(start, h)) in parts.iter().enumerate() {
        let mut cells = Vec::with_capacity(h * cfg.cols);
        for r in start..start + h {
            cells.extend_from_slice(world.row(r));
        }
        eng.thread_data_mut(&workers, t)
            .load(start, h, cfg.cols, cells);
    }
    Ok((app, master, workers, graph))
}

/// Gather the distributed bands back into a [`World`].
pub fn gather_world(
    eng: &mut SimEngine,
    workers: &ThreadCollection<LifeBand>,
    rows: usize,
    cols: usize,
) -> World {
    let parts = partition(rows, workers.thread_count());
    let mut w = World::dead(rows, cols);
    for (t, &(start, h)) in parts.iter().enumerate() {
        let band = eng.thread_data_mut(workers, t);
        for r in 0..h {
            for c in 0..cols {
                w.set(start + r, c, band.row(r)[c]);
            }
        }
    }
    w
}

/// Run a full Life experiment on the simulated cluster: set up, iterate,
/// gather, report per-iteration virtual times.
pub fn run_life_sim(
    spec: ClusterSpec,
    cfg: &LifeConfig,
    ecfg: EngineConfig,
) -> Result<LifeRunReport> {
    if let dps_sched::Distribution::Scheduled(kind) = cfg.dist {
        let mut eng = SimEngine::with_config(spec, ecfg);
        return crate::sched::run_life_scheduled(&mut eng, cfg, kind);
    }
    let world = World::random(cfg.rows, cfg.cols, cfg.density, cfg.seed);
    let mut eng = SimEngine::with_config(spec, ecfg);
    let (_, _, workers, graph) = setup_life(&mut eng, cfg, &world)?;

    let mut per_iter = Vec::with_capacity(cfg.iterations);
    let start = eng.now();
    for i in 0..cfg.iterations {
        let t0 = eng.now();
        eng.inject(graph, IterOrder { iter: i as u32 })?;
        eng.run_until_idle()?;
        per_iter.push(eng.now().since(t0));
        let outs = eng.take_outputs(graph);
        debug_assert_eq!(outs.len(), 1);
    }
    let elapsed = eng.now().since(start);
    let world = gather_world(&mut eng, &workers, cfg.rows, cfg.cols);
    Ok(LifeRunReport {
        elapsed,
        per_iter,
        world,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(cfg: &LifeConfig) -> LifeRunReport {
        let spec = ClusterSpec::paper_testbed(cfg.nodes);
        let rep = run_life_sim(spec, cfg, EngineConfig::default()).unwrap();
        let expect =
            World::random(cfg.rows, cfg.cols, cfg.density, cfg.seed).step_n(cfg.iterations);
        assert_eq!(rep.world, expect, "parallel Life diverged from reference");
        rep
    }

    fn base(variant: Variant, nodes: usize) -> LifeConfig {
        LifeConfig {
            rows: 24,
            cols: 16,
            iterations: 5,
            variant,
            nodes,
            threads_per_node: 1,
            density: 0.35,
            seed: 42,
            dist: dps_sched::Distribution::Static,
        }
    }

    #[test]
    fn simple_graph_is_correct() {
        check(&base(Variant::Simple, 3));
    }

    #[test]
    fn improved_graph_is_correct() {
        check(&base(Variant::Improved, 3));
    }

    #[test]
    fn single_worker_still_works() {
        let mut cfg = base(Variant::Improved, 1);
        cfg.threads_per_node = 1;
        check(&cfg);
    }

    #[test]
    fn two_threads_per_node() {
        let mut cfg = base(Variant::Simple, 2);
        cfg.threads_per_node = 2;
        check(&cfg);
    }

    #[test]
    fn improved_is_faster_when_communication_matters() {
        // Small world on several nodes: border exchange dominates, so the
        // improved graph must win (the Fig. 9 effect).
        let mk = |variant| LifeConfig {
            rows: 64,
            cols: 400,
            iterations: 4,
            variant,
            nodes: 4,
            threads_per_node: 1,
            density: 0.3,
            seed: 1,
            dist: dps_sched::Distribution::Static,
        };
        let spec = ClusterSpec::paper_testbed(4);
        let t_simple = run_life_sim(spec.clone(), &mk(Variant::Simple), EngineConfig::default())
            .unwrap()
            .elapsed;
        let t_improved = run_life_sim(spec, &mk(Variant::Improved), EngineConfig::default())
            .unwrap()
            .elapsed;
        assert!(
            t_improved < t_simple,
            "improved {t_improved} should beat simple {t_simple}"
        );
    }

    #[test]
    fn read_service_returns_correct_subset() {
        let cfg = base(Variant::Simple, 2);
        let world = World::random(cfg.rows, cfg.cols, cfg.density, cfg.seed);
        let mut eng = SimEngine::new(ClusterSpec::paper_testbed(2));
        let (_, master, workers, _) = setup_life(&mut eng, &cfg, &world).unwrap();
        let read = build_read_service(&mut eng, &master, &workers, cfg.rows, None).unwrap();
        eng.inject(
            read,
            ReadReq {
                col0: 2,
                row0: 5,
                width: 6,
                height: 12,
            },
        )
        .unwrap();
        eng.run_until_idle().unwrap();
        let outs = eng.take_outputs(read);
        assert_eq!(outs.len(), 1);
        let sub = dps_core::downcast::<Subset>(outs.into_iter().next().unwrap().1).unwrap();
        assert_eq!(sub.rows, 12);
        assert_eq!(sub.width, 6);
        for r in 0..12usize {
            for c in 0..6usize {
                assert_eq!(
                    sub.data[r * 6 + c],
                    world.get(5 + r, 2 + c),
                    "subset mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn partition_covers_all_rows() {
        for (rows, p) in [(10, 3), (8, 8), (100, 7)] {
            let parts = partition(rows, p);
            assert_eq!(parts.len(), p);
            assert_eq!(parts.iter().map(|&(_, h)| h).sum::<usize>(), rows);
            let mut next = 0;
            for (start, h) in parts {
                assert_eq!(start, next);
                assert!(h >= 1);
                next = start + h;
            }
        }
    }
}
