//! Per-worker band state: the distributed data structure of the Life
//! application ("the world data structure is evenly distributed between the
//! nodes, each node holding a horizontal band of the world", paper §5).

use crate::world::step_cell;

/// The horizontal band of the world owned by one worker thread, plus the
/// iteration scratch state (neighbour border rows, next-generation buffer).
#[derive(Debug, Default)]
pub struct LifeBand {
    /// First world row of this band.
    pub start_row: usize,
    /// Band cells, row-major (`rows × cols`).
    pub cells: Vec<u8>,
    /// Band height.
    pub rows: usize,
    /// World width.
    pub cols: usize,
    /// Border row received from the band above (world row `start_row − 1`).
    pub inbox_top: Option<Vec<u8>>,
    /// Border row received from the band below.
    pub inbox_bottom: Option<Vec<u8>>,
    /// Next-generation buffer under construction.
    pub next: Vec<u8>,
    /// Improved-graph phase countdown: interior compute and border compute
    /// each finish one phase; the second one commits the generation.
    pending_phases: u8,
}

impl LifeBand {
    /// Initialize from band cells.
    pub fn load(&mut self, start_row: usize, rows: usize, cols: usize, cells: Vec<u8>) {
        assert_eq!(cells.len(), rows * cols);
        self.start_row = start_row;
        self.rows = rows;
        self.cols = cols;
        self.cells = cells;
        self.next = vec![0; rows * cols];
        self.inbox_top = None;
        self.inbox_bottom = None;
        self.pending_phases = 0;
    }

    /// Borrow band row `r` (band-relative).
    pub fn row(&self, r: usize) -> &[u8] {
        &self.cells[r * self.cols..(r + 1) * self.cols]
    }

    /// First row (sent to the upper neighbour).
    pub fn top_row(&self) -> Vec<u8> {
        self.row(0).to_vec()
    }

    /// Last row (sent to the lower neighbour).
    pub fn bottom_row(&self) -> Vec<u8> {
        self.row(self.rows - 1).to_vec()
    }

    fn row_above(&self, r: usize) -> Option<&[u8]> {
        if r > 0 {
            Some(self.row(r - 1))
        } else {
            self.inbox_top.as_deref()
        }
    }

    fn row_below(&self, r: usize) -> Option<&[u8]> {
        if r + 1 < self.rows {
            Some(self.row(r + 1))
        } else {
            self.inbox_bottom.as_deref()
        }
    }

    /// Compute next state of band rows `r0..r1` into the scratch buffer;
    /// returns the number of cells updated (for cost accounting).
    pub fn compute_rows(&mut self, r0: usize, r1: usize) -> usize {
        let cols = self.cols;
        let mut out = std::mem::take(&mut self.next);
        for r in r0..r1 {
            for c in 0..cols {
                out[r * cols + c] = step_cell(self.row(r), self.row_above(r), self.row_below(r), c);
            }
        }
        self.next = out;
        (r1 - r0) * cols
    }

    /// Interior rows (those needing no remote borders): `1..rows-1`. For a
    /// one-row band the interior is empty.
    pub fn compute_interior(&mut self) -> usize {
        self.compute_interior_chunk(0, 1)
    }

    /// Compute chunk `chunk` of `chunks` of the interior rows. Splitting
    /// the interior into several operations bounds how long one operation
    /// occupies the thread, which keeps interactive service calls
    /// responsive (the testbed's OS preemption analogue).
    pub fn compute_interior_chunk(&mut self, chunk: usize, chunks: usize) -> usize {
        assert!(chunk < chunks, "chunk index out of range");
        if self.rows <= 2 {
            return 0;
        }
        let interior = self.rows - 2;
        let per = interior.div_ceil(chunks);
        let r0 = 1 + chunk * per;
        let r1 = (r0 + per).min(self.rows - 1);
        if r0 >= r1 {
            return 0;
        }
        self.compute_rows(r0, r1)
    }

    /// Border rows (first and last; needs the neighbour inboxes).
    pub fn compute_borders(&mut self) -> usize {
        let mut cells = self.compute_rows(0, 1.min(self.rows));
        if self.rows > 1 {
            cells += self.compute_rows(self.rows - 1, self.rows);
        }
        cells
    }

    /// Commit the next generation (swap buffers, clear inboxes).
    pub fn commit(&mut self) {
        std::mem::swap(&mut self.cells, &mut self.next);
        self.inbox_top = None;
        self.inbox_bottom = None;
        self.pending_phases = 0;
    }

    /// Mark one of this iteration's `total` compute phases (interior
    /// chunks + the border phase) finished; commits the generation when all
    /// are done and returns `true` in that case. All phases run on the
    /// owning thread, so the counter needs no synchronization — operation
    /// executions on one DPS thread are serialized by construction.
    pub fn finish_phase_of(&mut self, total: u8) -> bool {
        if self.pending_phases == 0 {
            self.pending_phases = total;
        }
        self.pending_phases -= 1;
        if self.pending_phases == 0 {
            self.commit();
            true
        } else {
            false
        }
    }

    /// [`finish_phase_of`](Self::finish_phase_of) with the classic two
    /// phases (one interior chunk + borders).
    pub fn finish_phase(&mut self) -> bool {
        self.finish_phase_of(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    fn band_of(world: &World, start: usize, rows: usize) -> LifeBand {
        let mut b = LifeBand::default();
        let mut cells = Vec::new();
        for r in start..start + rows {
            cells.extend_from_slice(world.row(r));
        }
        b.load(start, rows, world.cols(), cells);
        b
    }

    #[test]
    fn banded_step_matches_reference() {
        let w = World::random(12, 9, 0.4, 77);
        let expect = w.step();
        // Three bands of 4 rows with manually exchanged borders.
        let mut bands: Vec<LifeBand> = (0..3).map(|t| band_of(&w, t * 4, 4)).collect();
        for t in 0..3 {
            if t > 0 {
                bands[t].inbox_top = Some(bands[t - 1].bottom_row());
            }
            if t < 2 {
                bands[t].inbox_bottom = Some(bands[t + 1].top_row());
            }
        }
        for b in &mut bands {
            b.compute_interior();
            b.compute_borders();
            b.commit();
        }
        for (t, b) in bands.iter().enumerate() {
            for r in 0..4 {
                assert_eq!(b.row(r), expect.row(t * 4 + r), "band {t} row {r}");
            }
        }
    }

    #[test]
    fn whole_band_compute_equals_split_compute() {
        let w = World::random(8, 8, 0.5, 3);
        let mut a = band_of(&w, 0, 8);
        let mut b = band_of(&w, 0, 8);
        a.compute_rows(0, 8);
        a.commit();
        b.compute_interior();
        b.compute_borders();
        b.commit();
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn single_row_band() {
        let w = World::random(1, 6, 0.5, 9);
        let mut b = band_of(&w, 0, 1);
        assert_eq!(b.compute_interior(), 0);
        let cells = b.compute_borders();
        assert_eq!(cells, 6);
        b.commit();
        assert_eq!(b.cells, w.step().as_slice());
    }
}
