//! Dynamically scheduled Life: row-band chunks through the DLS stack.
//!
//! The banded graphs of [`crate::graphs`] pin one fixed band of the world to
//! each worker — the paper's layout, but a straitjacket on heterogeneous
//! clusters (the slowest node's band sets the pace) and a single point of
//! data loss under node failure. This module trades band locality for
//! schedulability, the classic master–worker arrangement of the DLS
//! verification study (arXiv:1804.11115):
//!
//! * the **world lives on the master** (a one-thread `WorldState`
//!   collection); workers hold no state;
//! * each iteration is announced as an [`IterRange`] over the world's rows;
//!   a [`ScheduledSplit`] posts boundary-free chunk tickets and every worker
//!   **claims** its chunk locally from the shared iteration counter
//!   (distributed chunk calculation — no master-side chunk loop);
//! * the claiming worker requests its rows (plus halo rows) from the master,
//!   computes the next generation for the chunk, and reports the chunk's
//!   completion time — so AWF re-weights chunks to measured node speeds
//!   across iterations;
//! * a merge on the master applies the computed rows into the back buffer
//!   and swaps generations when the wave completes.
//!
//! Because chunks are self-contained (the data travels with the request/
//! response pair) any worker can compute any chunk: on
//! [`SimEngine::fail_node`](dps_core::SimEngine::fail_node) the stranded
//! tickets and row slabs are re-queued to live workers and the wave still
//! commits the correct generation — the graceful-degradation path the
//! banded layout cannot offer.

use std::sync::Arc;

use dps_cluster::default_mapping;
use dps_core::prelude::*;
use dps_core::sched::{
    build_calibration, chunk_calc_cost, ChunkRoute, ChunkTicket, IterRange, ScheduledSplit,
    WorkerHinted,
};
use dps_core::{dps_token, Engine};
use dps_sched::{ChunkHub, FeedbackBoard, PolicyKind};
use dps_serial::Buffer;

use crate::graphs::{cell_cost, IterDone, LifeConfig, LifeRunReport};
use crate::world::{step_cell, World};

dps_token! {
    /// A claimed row chunk: worker `worker` asks the master for world rows
    /// `start..start + len` (plus halos). `len == 0` is the drained-lease
    /// placeholder that keeps the wave accounting exact.
    pub struct RowRequest { pub step: u32, pub start: u32, pub len: u32, pub worker: u32 }
}

dps_token! {
    /// The requested rows travelling to worker `worker`: `len × cols` cells
    /// plus the neighbouring halo rows (empty at the world's edges).
    pub struct RowSlab {
        pub step: u32,
        pub start: u32,
        pub len: u32,
        pub worker: u32,
        pub cols: u32,
        pub cells: Buffer<u8>,
        pub halo_top: Buffer<u8>,
        pub halo_bottom: Buffer<u8>,
    }
}

dps_token! {
    /// Next-generation rows computed for one chunk, with its live count.
    pub struct RowsComputed {
        pub step: u32,
        pub start: u32,
        pub len: u32,
        pub live: u64,
        pub cells: Buffer<u8>,
    }
}

dps_token! {
    /// Load the world into the master store (MtEngine path, where thread
    /// state cannot be preloaded from outside).
    pub struct LoadWorld { pub rows: u32, pub cols: u32, pub cells: Buffer<u8> }
}

dps_token! {
    /// Acknowledgement of a [`LoadWorld`].
    pub struct WorldLoaded { pub rows: u32 }
}

dps_token! {
    /// Ask the master store for the current world (MtEngine gather path).
    pub struct DumpOrder { pub tag: u32 }
}

dps_token! {
    /// The gathered world.
    pub struct WorldDump { pub rows: u32, pub cols: u32, pub population: u64, pub cells: Buffer<u8> }
}

impl WorkerHinted for RowSlab {
    fn worker_hint(&self) -> u32 {
        self.worker
    }
}

/// Master thread state: the current world and the next-generation back
/// buffer the merge assembles.
#[derive(Debug)]
pub struct WorldState {
    /// Current generation.
    pub world: World,
    /// Back buffer under construction (fully overwritten every wave).
    pub next: World,
}

impl Default for WorldState {
    fn default() -> Self {
        Self {
            world: World::dead(0, 0),
            next: World::dead(0, 0),
        }
    }
}

impl WorldState {
    /// Install a world (and size the back buffer to match).
    pub fn load(&mut self, world: World) {
        self.next = World::dead(world.rows(), world.cols());
        self.world = world;
    }
}

/// Claim the chunk a ticket stands for (distributed chunk calculation) and
/// turn it into a row request.
struct ClaimRows {
    hub: Arc<ChunkHub>,
}

impl LeafOperation for ClaimRows {
    type Thread = ();
    type In = ChunkTicket;
    type Out = RowRequest;
    fn execute(&mut self, ctx: &mut OpCtx<'_, (), RowRequest>, t: ChunkTicket) {
        let Some(c) = self.hub.claim(t.lease) else {
            ctx.post(RowRequest {
                step: t.step,
                start: 0,
                len: 0,
                worker: ctx.thread_index() as u32,
            });
            return;
        };
        ctx.charge(chunk_calc_cost());
        ctx.post(RowRequest {
            step: t.step,
            start: (t.base + c.start) as u32,
            len: c.len as u32,
            worker: ctx.thread_index() as u32,
        });
    }
}

/// Master side of a chunk: serve the requested rows plus halos.
struct ServeRows;

impl LeafOperation for ServeRows {
    type Thread = WorldState;
    type In = RowRequest;
    type Out = RowSlab;
    fn execute(&mut self, ctx: &mut OpCtx<'_, WorldState, RowSlab>, r: RowRequest) {
        let (step, worker) = (r.step, r.worker);
        if r.len == 0 {
            ctx.post(RowSlab {
                step,
                start: 0,
                len: 0,
                worker,
                cols: 0,
                cells: Buffer::new(),
                halo_top: Buffer::new(),
                halo_bottom: Buffer::new(),
            });
            return;
        }
        let st = ctx.thread();
        let cols = st.world.cols();
        let (start, len) = (r.start as usize, r.len as usize);
        let mut cells = Vec::with_capacity(len * cols);
        for row in start..start + len {
            cells.extend_from_slice(st.world.row(row));
        }
        let halo_top: Vec<u8> = if start > 0 {
            st.world.row(start - 1).to_vec()
        } else {
            Vec::new()
        };
        let halo_bottom: Vec<u8> = if start + len < st.world.rows() {
            st.world.row(start + len).to_vec()
        } else {
            Vec::new()
        };
        ctx.charge_flops((cells.len() + halo_top.len() + halo_bottom.len()) as f64);
        ctx.post(RowSlab {
            step,
            start: r.start,
            len: r.len,
            worker,
            cols: cols as u32,
            cells: cells.into(),
            halo_top: halo_top.into(),
            halo_bottom: halo_bottom.into(),
        });
    }
}

/// Compute the next generation of one row chunk. Stateless: everything the
/// update needs travels in the slab, so any worker can execute it — the
/// property node-failure re-queuing relies on.
struct ComputeRows;

impl LeafOperation for ComputeRows {
    type Thread = ();
    type In = RowSlab;
    type Out = RowsComputed;
    fn execute(&mut self, ctx: &mut OpCtx<'_, (), RowsComputed>, s: RowSlab) {
        if s.len == 0 {
            ctx.post(RowsComputed {
                step: s.step,
                start: s.start,
                len: 0,
                live: 0,
                cells: Buffer::new(),
            });
            return;
        }
        let (len, cols) = (s.len as usize, s.cols as usize);
        let cells = s.cells.as_slice();
        let row = |r: usize| &cells[r * cols..(r + 1) * cols];
        let mut out = Vec::with_capacity(len * cols);
        let mut live = 0u64;
        for r in 0..len {
            let above = if r > 0 {
                Some(row(r - 1))
            } else if s.halo_top.is_empty() {
                None
            } else {
                Some(s.halo_top.as_slice())
            };
            let below = if r + 1 < len {
                Some(row(r + 1))
            } else if s.halo_bottom.is_empty() {
                None
            } else {
                Some(s.halo_bottom.as_slice())
            };
            for c in 0..cols {
                let v = step_cell(row(r), above, below, c);
                live += u64::from(v);
                out.push(v);
            }
        }
        ctx.charge_flops(cell_cost(len * cols));
        ctx.mark_chunk(s.len as u64);
        ctx.post(RowsComputed {
            step: s.step,
            start: s.start,
            len: s.len,
            live,
            cells: out.into(),
        });
    }
}

/// Apply computed chunks into the back buffer; commit the generation (and
/// report the population) when the wave completes.
#[derive(Default)]
struct ApplyRows {
    step: u32,
    live: u64,
}

impl MergeOperation for ApplyRows {
    type Thread = WorldState;
    type In = RowsComputed;
    type Out = IterDone;
    fn consume(&mut self, ctx: &mut OpCtx<'_, WorldState, IterDone>, r: RowsComputed) {
        self.step = r.step;
        self.live += r.live;
        if r.len == 0 {
            return;
        }
        let st = ctx.thread();
        let cols = st.next.cols();
        let cells = r.cells.as_slice();
        for row in 0..r.len as usize {
            st.next
                .row_mut(r.start as usize + row)
                .copy_from_slice(&cells[row * cols..(row + 1) * cols]);
        }
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, WorldState, IterDone>) {
        let st = ctx.thread();
        std::mem::swap(&mut st.world, &mut st.next);
        ctx.post(IterDone {
            iter: self.step,
            population: self.live,
        });
    }
}

/// Load a world shipped as a token into the master store (MtEngine path).
struct InstallWorld;

impl LeafOperation for InstallWorld {
    type Thread = WorldState;
    type In = LoadWorld;
    type Out = WorldLoaded;
    fn execute(&mut self, ctx: &mut OpCtx<'_, WorldState, WorldLoaded>, w: LoadWorld) {
        let rows = w.rows;
        let world = World::from_flat(w.rows as usize, w.cols as usize, w.cells.into_vec());
        ctx.thread().load(world);
        ctx.post(WorldLoaded { rows });
    }
}

/// Dump the master store's current world (MtEngine gather path).
struct ExtractWorld;

impl LeafOperation for ExtractWorld {
    type Thread = WorldState;
    type In = DumpOrder;
    type Out = WorldDump;
    fn execute(&mut self, ctx: &mut OpCtx<'_, WorldState, WorldDump>, _d: DumpOrder) {
        let st = ctx.thread();
        let rows = st.world.rows();
        let cols = st.world.cols();
        let cells = st.world.as_slice().to_vec();
        let population = cells.iter().map(|&c| u64::from(c)).sum();
        ctx.post(WorldDump {
            rows: rows as u32,
            cols: cols as u32,
            population,
            cells: cells.into(),
        });
    }
}

/// Build the scheduled iteration graph over already-created collections.
/// Engine-agnostic: pass the builder to `SimEngine::build_graph` or
/// `MtEngine::build_graph`.
pub fn scheduled_step_builder(
    ctl: &ThreadCollection<()>,
    store: &ThreadCollection<WorldState>,
    workers: &ThreadCollection<()>,
    kind: PolicyKind,
    hub: Arc<ChunkHub>,
    board: Arc<FeedbackBoard>,
) -> GraphBuilder {
    let w = workers.thread_count();
    let mut b = GraphBuilder::new("life-scheduled");
    let split_hub = Arc::clone(&hub);
    let split = b.split(
        ctl,
        || ToThread(0),
        move || ScheduledSplit::with_feedback(kind, w, split_hub.clone(), board.clone()),
    );
    let claim = b.leaf(workers, ChunkRoute::new, move || ClaimRows {
        hub: hub.clone(),
    });
    let serve = b.leaf(store, || ToThread(0), || ServeRows);
    let compute = b.leaf(workers, ChunkRoute::new, || ComputeRows);
    let apply = b.merge(store, || ToThread(0), ApplyRows::default);
    b.add(split >> claim >> serve >> compute >> apply);
    b
}

/// Build the world-loader graph (`LoadWorld → WorldLoaded`).
pub fn world_loader_builder(store: &ThreadCollection<WorldState>) -> GraphBuilder {
    let mut b = GraphBuilder::new("life-load");
    let _ = b.leaf(store, || ToThread(0), || InstallWorld);
    b
}

/// Build the world-dump graph (`DumpOrder → WorldDump`).
pub fn world_dump_builder(store: &ThreadCollection<WorldState>) -> GraphBuilder {
    let mut b = GraphBuilder::new("life-dump");
    let _ = b.leaf(store, || ToThread(0), || ExtractWorld);
    b
}

/// A scheduled Life application set up on any [`Engine`]: its collections,
/// graphs and feedback board — everything a driver (or a failure-injection
/// test) needs.
pub struct ScheduledLife<E: Engine> {
    /// The owning application.
    pub app: E::App,
    /// The one-thread master collection holding the [`WorldState`].
    pub store: ThreadCollection<WorldState>,
    /// The scheduled iteration graph (`IterRange → IterDone`).
    pub step: E::Graph,
    /// The world-loader graph (`LoadWorld → WorldLoaded`).
    pub loader: E::Graph,
    /// The world-dump graph (`DumpOrder → WorldDump`).
    pub dumper: E::Graph,
    /// The feedback board AWF-family policies adapt from.
    pub board: Arc<FeedbackBoard>,
}

impl<E: Engine> ScheduledLife<E> {
    /// Advance the world one generation; returns the committed iteration
    /// report.
    pub fn step_once(&self, eng: &mut E, rows: usize, iter: u32) -> Result<IterDone> {
        eng.submit(
            self.step,
            Box::new(IterRange {
                start: 0,
                len: rows as u64,
                step: iter,
            }),
        )?;
        eng.run_to_idle(self.step, 1)?;
        let out = eng.take_outputs(self.step).pop().expect("one IterDone");
        Ok(*dps_core::downcast::<IterDone>(out).expect("IterDone output"))
    }

    /// Gather the master store's current world.
    pub fn dump(&self, eng: &mut E) -> Result<World> {
        eng.submit(self.dumper, Box::new(DumpOrder { tag: 0 }))?;
        eng.run_to_idle(self.dumper, 1)?;
        let out = eng.take_outputs(self.dumper).pop().expect("one WorldDump");
        let d = dps_core::downcast::<WorldDump>(out).expect("WorldDump output");
        Ok(World::from_flat(
            d.rows as usize,
            d.cols as usize,
            d.cells.into_vec(),
        ))
    }
}

/// Set up a scheduled Life application on **any engine**: collections,
/// feedback board + chunk hub (estimator matching `kind` — AWF-B/AWF-C get
/// their batch-/chunk-time weighting), the iteration/loader/dump graphs, a
/// rate-calibration warm-up, and the initial world shipped into the master
/// store. All declarations happen before the first run, so the same code
/// drives the simulator and the OS-thread engine.
pub fn setup_scheduled_life<E: Engine>(
    eng: &mut E,
    cfg: &LifeConfig,
    kind: PolicyKind,
    world: &World,
) -> Result<ScheduledLife<E>> {
    let app = eng.app("life-sched");
    eng.preload_app(app);
    let board = Arc::new(FeedbackBoard::for_policy(kind));
    let hub = eng.chunk_hub();
    let ctl: ThreadCollection<()> = eng.thread_collection(app, "ctl", "node0")?;
    let store: ThreadCollection<WorldState> = eng.thread_collection(app, "world", "node0")?;
    let mapping = default_mapping(cfg.nodes, cfg.threads_per_node);
    let workers: ThreadCollection<()> = eng.thread_collection(app, "rows", &mapping)?;
    // Declare everything before the first run (the `declare_before_run`
    // engine contract): calibration loop, step graph, loader, dumper.
    let calibration = build_calibration(eng, app, &mapping, &hub, &board)?;
    let step = eng.build_graph(scheduled_step_builder(
        &ctl,
        &store,
        &workers,
        kind,
        hub,
        board.clone(),
    ))?;
    let loader = eng.build_graph(world_loader_builder(&store))?;
    let dumper = eng.build_graph(world_dump_builder(&store))?;
    // Warm up the board so even the first wave is sized from measured
    // rates, then ship the world into the master store.
    calibration.run(eng, 2)?;
    eng.submit(
        loader,
        Box::new(LoadWorld {
            rows: world.rows() as u32,
            cols: world.cols() as u32,
            cells: world.as_slice().to_vec().into(),
        }),
    )?;
    eng.run_to_idle(loader, 1)?;
    let _ = eng.take_outputs(loader);
    Ok(ScheduledLife {
        app,
        store,
        step,
        loader,
        dumper,
        board,
    })
}

/// Run a scheduled Life experiment on **any engine** (the
/// `Distribution::Scheduled` arm of [`crate::run_life_sim`], and the same
/// entry point the OS-thread cross-engine tests drive): master-held world,
/// worker-claimed row chunks, per-iteration makespans in the engine's own
/// notion of time.
pub fn run_life_scheduled<E: Engine>(
    eng: &mut E,
    cfg: &LifeConfig,
    kind: PolicyKind,
) -> Result<LifeRunReport> {
    let world = World::random(cfg.rows, cfg.cols, cfg.density, cfg.seed);
    let life = setup_scheduled_life(eng, cfg, kind, &world)?;
    let mut per_iter = Vec::with_capacity(cfg.iterations);
    let start = eng.now_secs();
    for i in 0..cfg.iterations {
        let t0 = eng.now_secs();
        let done = life.step_once(eng, cfg.rows, i as u32)?;
        per_iter.push(SimSpan::from_secs_f64(eng.now_secs() - t0));
        debug_assert_eq!(done.iter, i as u32);
    }
    let elapsed = SimSpan::from_secs_f64(eng.now_secs() - start);
    let world = life.dump(eng)?;
    Ok(LifeRunReport {
        elapsed,
        per_iter,
        world,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::Variant;
    use dps_cluster::ClusterSpec;
    use dps_sched::Distribution;

    fn cfg(kind: PolicyKind, nodes: usize, iterations: usize) -> LifeConfig {
        LifeConfig {
            rows: 36,
            cols: 24,
            iterations,
            variant: Variant::Simple,
            nodes,
            threads_per_node: 1,
            density: 0.35,
            seed: 77,
            dist: Distribution::Scheduled(kind),
        }
    }

    #[test]
    fn scheduled_life_matches_reference_for_every_policy() {
        for kind in PolicyKind::ALL {
            let c = cfg(kind, 3, 4);
            let rep =
                crate::run_life_sim(ClusterSpec::paper_testbed(3), &c, EngineConfig::default())
                    .unwrap();
            let expect = World::random(c.rows, c.cols, c.density, c.seed).step_n(c.iterations);
            assert_eq!(rep.world, expect, "{kind:?} diverged from reference");
        }
    }

    #[test]
    fn scheduled_life_is_deterministic() {
        let c = cfg(PolicyKind::Awf, 2, 3);
        let run = || {
            crate::run_life_sim(ClusterSpec::skewed(2, 2, 2.0), &c, EngineConfig::default())
                .unwrap()
                .per_iter
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_worker_scheduled_life_works() {
        let c = cfg(PolicyKind::Gss, 1, 2);
        let rep = crate::run_life_sim(ClusterSpec::paper_testbed(1), &c, EngineConfig::default())
            .unwrap();
        let expect = World::random(c.rows, c.cols, c.density, c.seed).step_n(c.iterations);
        assert_eq!(rep.world, expect);
    }
}
