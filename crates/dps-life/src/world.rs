//! Sequential Game-of-Life world: the reference implementation the parallel
//! schedule is verified against.

use dps_des::SplitMix64;

/// A dense Game-of-Life world with dead cells beyond its edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct World {
    rows: usize,
    cols: usize,
    cells: Vec<u8>,
}

impl World {
    /// Empty (all-dead) world.
    pub fn dead(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            cells: vec![0; rows * cols],
        }
    }

    /// Deterministic random world with live-cell density ≈ `density`.
    pub fn random(rows: usize, cols: usize, density: f64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut w = Self::dead(rows, cols);
        for c in &mut w.cells {
            *c = u8::from(rng.next_f64() < density);
        }
        w
    }

    /// World from explicit rows of 0/1 bytes.
    pub fn from_rows(rows: Vec<Vec<u8>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Self {
            rows: r,
            cols: c,
            cells: rows.into_iter().flatten().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cell at `(r, c)` (0 or 1).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.cells[r * self.cols + c]
    }

    /// Set cell `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.cells[r * self.cols + c] = v;
    }

    /// Borrow one row.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.cells[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow one row mutably (bulk chunk commits).
    pub fn row_mut(&mut self, r: usize) -> &mut [u8] {
        &mut self.cells[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat cell buffer.
    pub fn as_slice(&self) -> &[u8] {
        &self.cells
    }

    /// World from a flat row-major cell buffer.
    pub fn from_flat(rows: usize, cols: usize, cells: Vec<u8>) -> Self {
        assert_eq!(cells.len(), rows * cols, "flat buffer shape mismatch");
        Self { rows, cols, cells }
    }

    /// Number of live cells.
    pub fn population(&self) -> usize {
        self.cells.iter().map(|&c| c as usize).sum()
    }

    /// Advance one generation (standard B3/S23 rules, dead boundary).
    pub fn step(&self) -> World {
        let mut next = World::dead(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let above = if r > 0 { Some(self.row(r - 1)) } else { None };
                let below = if r + 1 < self.rows {
                    Some(self.row(r + 1))
                } else {
                    None
                };
                next.set(r, c, step_cell(self.row(r), above, below, c));
            }
        }
        next
    }

    /// Advance `n` generations.
    pub fn step_n(&self, n: usize) -> World {
        let mut w = self.clone();
        for _ in 0..n {
            w = w.step();
        }
        w
    }
}

/// Next state of the cell at column `c` given its row and the neighbouring
/// rows (`None` beyond the world edge). Shared by the sequential reference
/// and the banded parallel kernel so both apply identical rules.
#[inline]
pub(crate) fn step_cell(row: &[u8], above: Option<&[u8]>, below: Option<&[u8]>, c: usize) -> u8 {
    let cols = row.len();
    let mut live = 0u8;
    let lo = c.saturating_sub(1);
    let hi = (c + 1).min(cols - 1);
    for cc in lo..=hi {
        if let Some(a) = above {
            live += a[cc];
        }
        if let Some(b) = below {
            live += b[cc];
        }
        if cc != c {
            live += row[cc];
        }
    }
    match (row[c], live) {
        (1, 2) | (1, 3) | (0, 3) => 1,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blinker_oscillates() {
        let w = World::from_rows(vec![
            vec![0, 0, 0, 0, 0],
            vec![0, 0, 1, 0, 0],
            vec![0, 0, 1, 0, 0],
            vec![0, 0, 1, 0, 0],
            vec![0, 0, 0, 0, 0],
        ]);
        let w1 = w.step();
        assert_eq!(w1.row(2), &[0, 1, 1, 1, 0]);
        let w2 = w1.step();
        assert_eq!(w2, w, "period-2 oscillator");
    }

    #[test]
    fn block_is_still_life() {
        let w = World::from_rows(vec![
            vec![0, 0, 0, 0],
            vec![0, 1, 1, 0],
            vec![0, 1, 1, 0],
            vec![0, 0, 0, 0],
        ]);
        assert_eq!(w.step(), w);
    }

    #[test]
    fn glider_moves() {
        let mut rows = vec![vec![0u8; 8]; 8];
        // Standard glider.
        rows[0][1] = 1;
        rows[1][2] = 1;
        rows[2][0] = 1;
        rows[2][1] = 1;
        rows[2][2] = 1;
        let w = World::from_rows(rows);
        let w4 = w.step_n(4);
        // After 4 generations a glider translates by (1, 1).
        assert_eq!(w4.population(), 5);
        assert_eq!(w4.get(1, 2), 1);
        assert_eq!(w4.get(2, 3), 1);
        assert_eq!(w4.get(3, 1), 1);
        assert_eq!(w4.get(3, 2), 1);
        assert_eq!(w4.get(3, 3), 1);
    }

    #[test]
    fn lonely_cells_die_and_edges_are_dead() {
        let w = World::from_rows(vec![vec![1, 0], vec![0, 0]]);
        assert_eq!(w.step().population(), 0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = World::random(10, 10, 0.3, 5);
        let b = World::random(10, 10, 0.3, 5);
        assert_eq!(a, b);
        assert!(a.population() > 0);
    }
}
