//! # dps-life — Conway's Game of Life under DPS
//!
//! The paper parallelizes the Game of Life as a stand-in for "many iterative
//! finite difference computational problems" (§5): the world is split into
//! horizontal bands, one per worker thread; each iteration exchanges border
//! rows with the neighbouring bands and computes the next generation.
//!
//! Two flow graphs are compared (Fig. 7 vs Fig. 8):
//!
//! * **simple** — exchange all borders, synchronize globally, then compute
//!   the whole band;
//! * **improved** — compute the band *interior* (which needs no remote
//!   data) while the borders are in flight, then compute only the border
//!   rows once they arrived. The overlap shrinks the critical path, most
//!   visibly for small worlds where communication dominates (Fig. 9).
//!
//! The world-subset read service of Fig. 10 (`life.read`) exposes the
//! distributed world to other applications; Table 2 measures its call
//! overhead while the simulation keeps iterating.

//! Beyond the paper, the [`sched`] module drives the same workload through
//! the dynamic loop-scheduling stack (`Distribution::Scheduled` in
//! [`LifeConfig`]): the world lives on the master, row-band chunks are
//! claimed by the workers (distributed chunk calculation), AWF adapts chunk
//! sizes to measured node speeds, and waves survive node failures.

mod band;
pub mod graphs;
pub mod sched;
mod world;

pub use band::LifeBand;
pub use graphs::{
    build_read_service, build_step_graph, run_life_sim, LifeConfig, LifeRunReport, Variant,
};
pub use sched::{run_life_scheduled, setup_scheduled_life, ScheduledLife, WorldState};
pub use world::World;
