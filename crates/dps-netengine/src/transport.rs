//! Byte transports between kernels: length-prefixed frames over a
//! connection-oriented duplex.
//!
//! The engine speaks [`crate::proto::Frame`]s; this module moves the framed
//! bytes. A [`Transport`] hands out listening endpoints ([`Acceptor`]) and
//! outgoing connections ([`Duplex`]); each duplex is a pair of independent
//! halves so one task can read while another writes.
//!
//! Two implementations ship:
//!
//! * [`TcpTransport`] — real sockets on `127.0.0.1` (`TCP_NODELAY`; every
//!   frame is flushed). This is what multi-process runs use.
//! * [`LoopbackTransport`] — in-memory channels with identical framing
//!   semantics, for single-process tests and the three-backend
//!   differential suite.
//!
//! ## Frame format
//!
//! Each frame on a byte-stream transport is `len: u32` (little-endian,
//! payload length) followed by `len` payload bytes. The loopback transport
//! moves whole frames through channels, so the prefix never materializes —
//! but the observable unit (one `send` arrives as one `recv`) is the same.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// Frames larger than this are rejected as corrupt rather than allocated.
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Sending half of a connection: one call transmits one frame.
pub trait FrameTx: Send {
    /// Transmit `frame` (the payload only; framing is the transport's job).
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;
}

/// Receiving half of a connection: one call yields one frame.
pub trait FrameRx: Send {
    /// Block for the next frame. `Err` means the peer closed or the stream
    /// is corrupt; no further frames will arrive.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
}

/// A bidirectional connection, split into independently-owned halves.
pub struct Duplex {
    /// Sending half.
    pub tx: Box<dyn FrameTx>,
    /// Receiving half.
    pub rx: Box<dyn FrameRx>,
}

/// A listening endpoint produced by [`Transport::bind`].
pub trait Acceptor: Send {
    /// Block for the next inbound connection.
    fn accept(&mut self) -> io::Result<Duplex>;
}

/// A connection-oriented byte transport.
pub trait Transport: Send + Sync {
    /// Open a listening endpoint; returns its address (opaque string that
    /// [`connect`](Self::connect) on a matching transport understands).
    fn bind(&self) -> io::Result<(String, Box<dyn Acceptor>)>;

    /// Connect to a bound endpoint.
    fn connect(&self, addr: &str) -> io::Result<Duplex>;
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// Real sockets on the local host (`127.0.0.1`, ephemeral ports).
#[derive(Debug, Default, Clone, Copy)]
pub struct TcpTransport;

struct TcpAcceptor(TcpListener);

struct TcpTx(TcpStream);
struct TcpRx(TcpStream);

fn tcp_duplex(stream: TcpStream) -> io::Result<Duplex> {
    stream.set_nodelay(true)?;
    let reader = stream.try_clone()?;
    Ok(Duplex {
        tx: Box::new(TcpTx(stream)),
        rx: Box::new(TcpRx(reader)),
    })
}

impl Transport for TcpTransport {
    fn bind(&self) -> io::Result<(String, Box<dyn Acceptor>)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        Ok((addr, Box::new(TcpAcceptor(listener))))
    }

    fn connect(&self, addr: &str) -> io::Result<Duplex> {
        tcp_duplex(TcpStream::connect(addr)?)
    }
}

impl Acceptor for TcpAcceptor {
    fn accept(&mut self) -> io::Result<Duplex> {
        let (stream, _) = self.0.accept()?;
        tcp_duplex(stream)
    }
}

impl FrameTx for TcpTx {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let len = u32::try_from(frame.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        self.0.write_all(&len.to_le_bytes())?;
        self.0.write_all(frame)?;
        self.0.flush()
    }
}

impl FrameRx for TcpRx {
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut prefix = [0u8; 4];
        self.0.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix);
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
            ));
        }
        let mut frame = vec![0u8; len as usize];
        self.0.read_exact(&mut frame)?;
        Ok(frame)
    }
}

// ---------------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------------

/// In-memory transport: connections are channel pairs within one process.
/// Addresses (`loop:N`) are scoped to the transport instance that bound
/// them.
#[derive(Default)]
pub struct LoopbackTransport {
    bound: Arc<Mutex<HashMap<String, Sender<Duplex>>>>,
    next: AtomicU64,
}

impl LoopbackTransport {
    /// Fresh transport with no bound endpoints.
    pub fn new() -> Self {
        Self::default()
    }
}

struct LoopAcceptor(Receiver<Duplex>);

struct ChanTx(Sender<Vec<u8>>);
struct ChanRx(Receiver<Vec<u8>>);

impl Transport for LoopbackTransport {
    fn bind(&self) -> io::Result<(String, Box<dyn Acceptor>)> {
        let addr = format!("loop:{}", self.next.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = unbounded();
        self.bound.lock().insert(addr.clone(), tx);
        Ok((addr, Box::new(LoopAcceptor(rx))))
    }

    fn connect(&self, addr: &str) -> io::Result<Duplex> {
        let slot = self.bound.lock().get(addr).cloned().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no endpoint at {addr}"))
        })?;
        let (c2s_tx, c2s_rx) = unbounded();
        let (s2c_tx, s2c_rx) = unbounded();
        let server_side = Duplex {
            tx: Box::new(ChanTx(s2c_tx)),
            rx: Box::new(ChanRx(c2s_rx)),
        };
        slot.send(server_side)
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "acceptor dropped"))?;
        Ok(Duplex {
            tx: Box::new(ChanTx(c2s_tx)),
            rx: Box::new(ChanRx(s2c_rx)),
        })
    }
}

impl Acceptor for LoopAcceptor {
    fn accept(&mut self) -> io::Result<Duplex> {
        self.0
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "transport dropped"))
    }
}

impl FrameTx for ChanTx {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.0
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
    }
}

impl FrameRx for ChanRx {
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.0
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Frames of every size — empty, small, larger than one MTU — arrive
    /// whole and in order, on both transports.
    fn frames_round_trip(transport: &dyn Transport) {
        let (addr, mut acceptor) = transport.bind().unwrap();
        let mut client = transport.connect(&addr).unwrap();
        let mut server = acceptor.accept().unwrap();

        let payloads: Vec<Vec<u8>> =
            vec![vec![], vec![7], (0..=255).collect(), vec![0xAB; 100_000]];
        for p in &payloads {
            client.tx.send(p).unwrap();
        }
        for p in &payloads {
            assert_eq!(&server.rx.recv().unwrap(), p);
        }
        // And the other direction on the same duplex.
        server.tx.send(b"pong").unwrap();
        assert_eq!(client.rx.recv().unwrap(), b"pong");
    }

    #[test]
    fn tcp_frames_round_trip() {
        frames_round_trip(&TcpTransport);
    }

    #[test]
    fn loopback_frames_round_trip() {
        frames_round_trip(&LoopbackTransport::new());
    }

    #[test]
    fn loopback_connect_to_unknown_address_fails() {
        let t = LoopbackTransport::new();
        assert!(t.connect("loop:99").is_err());
    }

    #[test]
    fn recv_reports_peer_close() {
        let t = LoopbackTransport::new();
        let (addr, mut acceptor) = t.bind().unwrap();
        let client = t.connect(&addr).unwrap();
        let mut server = acceptor.accept().unwrap();
        drop(client);
        assert!(server.rx.recv().is_err());
    }

    #[test]
    fn tcp_length_prefix_is_validated() {
        // A hand-written oversized length prefix must be rejected, not
        // allocated.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut rx = TcpRx(stream);
        assert!(rx.recv().is_err());
        writer.join().unwrap();
    }
}
