//! Worker-side execution: the declaration store shared by SPMD roles, the
//! per-thread executor host that replays [`Frame::Exec`] tasks, and the
//! forwarding chunk-hub delegate.
//!
//! A worker kernel holds the *operations* of the threads its node hosts —
//! the master keeps everything else (wave accounting, flow control,
//! routing). The [`ExecHost`] mirrors the threading model of the master's
//! engine: one executor task per (application, collection, thread) triple,
//! each owning its thread data, its split/leaf op instances and its live
//! merge/stream wave ops, so remote execution preserves exactly the state
//! a local thread would have.

use std::any::Any;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use dps_core::internal::{DynOp, ExecInfo};
use dps_core::{DpsError, Flowgraph, OpKind, TokenRegistry, WaveKey};
use dps_sched::remote::{HubRequest, HubResponse, RemoteHub};
use dps_sched::{ChunkCalc, ChunkLease};
use parking_lot::Mutex;

use crate::proto::{self, Frame, TaskKind};
use crate::runtime::{AsyncRuntime, TaskHandle};
use crate::transport::FrameTx;

/// How long an executor waits for a declaration to appear before giving up
/// (the master only sends work after the sync barrier, so a miss here means
/// the SPMD driver diverged despite the signature check).
const DECL_WAIT: Duration = Duration::from_secs(10);

/// How long a forwarded hub operation waits for its reply.
const HUB_WAIT: Duration = Duration::from_secs(60);

pub(crate) struct TcDecl {
    pub nodes: Vec<u32>,
    pub factory: Arc<dyn Fn() -> Box<dyn Any + Send> + Send + Sync>,
}

#[derive(Default)]
pub(crate) struct AppDecl {
    pub registry: TokenRegistry,
    pub tcs: Vec<TcDecl>,
    pub graphs: Vec<Arc<Flowgraph>>,
}

#[derive(Default)]
pub(crate) struct Decls {
    pub apps: Vec<AppDecl>,
}

/// Declarations, shared between the declaring role and the executors. The
/// condvar wakes executors waiting for a graph that is still being
/// declared (loopback harnesses start before the master finishes
/// declaring).
#[derive(Default)]
pub(crate) struct DeclStore {
    inner: StdMutex<Decls>,
    ready: Condvar,
}

impl DeclStore {
    pub fn with<R>(&self, f: impl FnOnce(&Decls) -> R) -> R {
        f(&self.inner.lock().expect("decl store poisoned"))
    }

    /// Mutate under the lock and wake executor waiters.
    pub fn update<R>(&self, f: impl FnOnce(&mut Decls) -> R) -> R {
        let r = f(&mut self.inner.lock().expect("decl store poisoned"));
        self.ready.notify_all();
        r
    }

    /// Block until `predicate` holds (graph installed, collection mapped),
    /// then project a value out of the store.
    fn wait_for<R>(&self, mut predicate: impl FnMut(&Decls) -> Option<R>) -> Result<R, DpsError> {
        let deadline = Instant::now() + DECL_WAIT;
        let mut guard = self.inner.lock().expect("decl store poisoned");
        loop {
            if let Some(r) = predicate(&guard) {
                return Ok(r);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(DpsError::OperationContract {
                    node: "netengine".into(),
                    reason: "remote task for an undeclared graph (SPMD declarations diverged)"
                        .into(),
                });
            }
            let (g, _) = self
                .ready
                .wait_timeout(guard, left)
                .expect("decl store poisoned");
            guard = g;
        }
    }
}

/// One remote task, as dispatched to an executor lane.
pub(crate) struct Job {
    pub seq: u64,
    pub graph: u32,
    pub node: dps_core::GNodeId,
    pub kind: TaskKind,
    pub token: Vec<u8>,
    pub env: dps_core::Envelope,
}

/// The per-thread executor pool of one worker kernel (or loopback harness).
pub(crate) struct ExecHost {
    decls: Arc<DeclStore>,
    writer: Arc<Mutex<Box<dyn FrameTx>>>,
    node_flops: f64,
    /// Cluster node this host executes for — the `node` coordinate of every
    /// trace event its lanes record.
    rank: u16,
    /// Trace sink, attached before the first run (like every declaration on
    /// this engine). Lanes snapshot it when they spawn.
    trace: Mutex<Option<Arc<dps_obs::TraceCollector>>>,
    lanes: Mutex<HashMap<(u32, u32, u32), Sender<Job>>>,
    rt: Arc<dyn AsyncRuntime>,
    tasks: Mutex<Vec<Box<dyn TaskHandle>>>,
}

impl ExecHost {
    pub fn new(
        decls: Arc<DeclStore>,
        writer: Arc<Mutex<Box<dyn FrameTx>>>,
        node_flops: f64,
        rank: u16,
        rt: Arc<dyn AsyncRuntime>,
    ) -> Self {
        Self {
            decls,
            writer,
            node_flops,
            rank,
            trace: Mutex::new(None),
            lanes: Mutex::new(HashMap::new()),
            rt,
            tasks: Mutex::new(Vec::new()),
        }
    }

    /// Attach the trace collector executor lanes record into. Must precede
    /// the first dispatched job of a traced run (lanes capture the sink as
    /// they spawn).
    pub fn set_trace(&self, collector: Arc<dps_obs::TraceCollector>) {
        *self.trace.lock() = Some(collector);
    }

    /// The attached collector, if any.
    pub fn trace_collector(&self) -> Option<Arc<dps_obs::TraceCollector>> {
        self.trace.lock().clone()
    }

    /// Route a task to its thread's executor lane, spawning the lane on
    /// first use. Tasks for one (app, tc, thread) execute serially in
    /// arrival order — the same ordering the thread would have locally.
    pub fn dispatch(&self, app: u32, tc: u32, thread: u32, job: Job) {
        let mut lanes = self.lanes.lock();
        let tx = lanes.entry((app, tc, thread)).or_insert_with(|| {
            let (tx, rx) = unbounded();
            let decls = self.decls.clone();
            let writer = self.writer.clone();
            let node_flops = self.node_flops;
            let trace = self
                .trace
                .lock()
                .as_ref()
                .map(|c| (c.clone(), c.writer(self.rank, thread as u16)));
            let task = self.rt.spawn(
                &format!("dps-net-a{app}t{tc}i{thread}"),
                Box::new(move || {
                    executor_loop(decls, writer, node_flops, app, tc, thread, trace, rx)
                }),
            );
            self.tasks.lock().push(task);
            tx
        });
        let _ = tx.send(job);
    }

    /// Close every lane and join the executors (pending tasks finish
    /// first).
    pub fn stop(&self) {
        self.lanes.lock().clear();
        for t in self.tasks.lock().drain(..) {
            t.join();
        }
    }
}

/// One executor lane: owns the thread data and op instances of one DPS
/// thread, replays jobs, replies with `Done` frames.
#[allow(clippy::too_many_arguments)]
fn executor_loop(
    decls: Arc<DeclStore>,
    writer: Arc<Mutex<Box<dyn FrameTx>>>,
    node_flops: f64,
    app: u32,
    tc: u32,
    thread: u32,
    mut trace: Option<(Arc<dps_obs::TraceCollector>, dps_obs::TraceWriter)>,
    rx: Receiver<Job>,
) {
    let mut data: Option<Box<dyn Any + Send>> = None;
    let mut ops: HashMap<(u32, u32), Box<dyn DynOp>> = HashMap::new();
    let mut waves: HashMap<WaveKey, Box<dyn DynOp>> = HashMap::new();
    while let Ok(job) = rx.recv() {
        let seq = job.seq;
        // Trace coordinates snapshotted before the job consumes its parts:
        // the op label from the declared graph, the wave from the envelope.
        let span = trace.as_mut().map(|(c, _)| {
            let op = decls
                .with(|d| {
                    d.apps
                        .get(app as usize)
                        .and_then(|a| a.graphs.get(job.graph as usize))
                        .map(|g| c.label(&g.node(job.node).name))
                })
                .unwrap_or_default();
            let wave = job.env.frames.last().map_or(0, |f| f.wave as u32);
            (op, wave, c.now_nanos())
        });
        let outcome = run_job(
            &decls, node_flops, app, tc, thread, &mut data, &mut ops, &mut waves, job,
        );
        if let (Some((c, w)), Some((op, wave, t0))) = (trace.as_mut(), span) {
            let t1 = c.now_nanos();
            w.record(t0, dps_obs::EventKind::OpStart { op, wave });
            w.record(t1, dps_obs::EventKind::OpEnd { op, wave });
            if let Ok((_, reports)) = &outcome {
                for &(iters, secs) in reports {
                    let nanos = (secs * 1e9) as u64;
                    w.record(t1, dps_obs::EventKind::ChunkExec { iters, nanos });
                }
            }
        }
        let reply = match outcome {
            Ok((posts, reports)) => Frame::Done {
                seq,
                posts,
                reports,
                error: None,
            },
            Err(e) => Frame::Done {
                seq,
                posts: Vec::new(),
                reports: Vec::new(),
                error: Some(e.to_string()),
            },
        };
        if send_frame(&writer, &reply).is_err() {
            // The master is gone; nothing left to execute for.
            break;
        }
    }
    if let Some((c, _)) = &trace {
        c.drain();
    }
}

pub(crate) fn send_frame(writer: &Mutex<Box<dyn FrameTx>>, frame: &Frame) -> io::Result<()> {
    writer.lock().send(&dps_serial::to_bytes(frame))
}

type JobOutput = (Vec<Vec<u8>>, Vec<(u64, f64)>);

#[allow(clippy::too_many_arguments)]
fn run_job(
    decls: &DeclStore,
    node_flops: f64,
    app: u32,
    tc: u32,
    thread: u32,
    data: &mut Option<Box<dyn Any + Send>>,
    ops: &mut HashMap<(u32, u32), Box<dyn DynOp>>,
    waves: &mut HashMap<WaveKey, Box<dyn DynOp>>,
    job: Job,
) -> Result<JobOutput, DpsError> {
    // Wait for the SPMD declarations to catch up, then snapshot what the
    // execution needs: the graph, the collection size, the thread-data
    // factory and the decoded token.
    let (def, thread_count, factory, token) = decls.wait_for(|d| {
        let a = d.apps.get(app as usize)?;
        let def = a.graphs.get(job.graph as usize)?;
        let tcd = a.tcs.get(tc as usize)?;
        let token = if job.token.is_empty() {
            None
        } else {
            Some(proto::decode_token(&a.registry, &job.token))
        };
        Some((def.clone(), tcd.nodes.len(), tcd.factory.clone(), token))
    })?;
    let token = token.transpose()?;

    let gnode = def.node(job.node);
    let name = gnode.name.clone();
    if matches!(gnode.kind, OpKind::Call) {
        return Err(DpsError::OperationContract {
            node: name,
            reason: "call nodes execute on the master, never remotely".into(),
        });
    }
    let make_op = || {
        gnode.make_op().ok_or_else(|| DpsError::OperationContract {
            node: gnode.name.clone(),
            reason: "remote task targets a node without an operation".into(),
        })
    };
    let info = ExecInfo {
        thread_index: thread as usize,
        thread_count,
        node_flops,
        start_nanos: 0,
    };
    let data = data.get_or_insert_with(|| factory());
    let mut out = dps_core::internal::OpOutput::default();
    let t0 = Instant::now();
    match job.kind {
        TaskKind::Exec => {
            let op = match ops.entry((job.graph, job.node.0)) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => e.insert(make_op()?),
            };
            let token = token.ok_or_else(|| missing_token(&name))?;
            op.on_token(&mut out, data.as_mut(), info, &name, token)?;
        }
        TaskKind::Consume | TaskKind::ConsumeCompletes => {
            let key = job.env.wave_key().ok_or_else(|| bad_envelope(&name))?;
            let op = match waves.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => e.insert(make_op()?),
            };
            let token = token.ok_or_else(|| missing_token(&name))?;
            op.on_token(&mut out, data.as_mut(), info, &name, token)?;
            if job.kind == TaskKind::ConsumeCompletes {
                op.on_finalize(&mut out, data.as_mut(), info, &name)?;
                waves.remove(&key);
            }
        }
        TaskKind::Finalize => {
            let key = job.env.wave_key().ok_or_else(|| bad_envelope(&name))?;
            let mut op = match waves.remove(&key) {
                Some(op) => op,
                None => make_op()?,
            };
            op.on_finalize(&mut out, data.as_mut(), info, &name)?;
        }
    }
    let reports = out
        .completed_iters
        .map(|iters| vec![(iters, t0.elapsed().as_secs_f64())])
        .unwrap_or_default();
    let posts = out
        .posts
        .iter()
        .map(|p| proto::encode_token(p.token.as_ref()))
        .collect();
    Ok((posts, reports))
}

fn missing_token(node: &str) -> DpsError {
    DpsError::OperationContract {
        node: node.into(),
        reason: "remote task arrived without its token".into(),
    }
}

fn bad_envelope(node: &str) -> DpsError {
    DpsError::OperationContract {
        node: node.into(),
        reason: "remote consume/finalize without a wave frame".into(),
    }
}

// ---------------------------------------------------------------------------
// The forwarding chunk hub
// ---------------------------------------------------------------------------

/// Worker-side [`RemoteHub`] delegate: frames each hub operation as a
/// [`Frame::Hub`], ships it to the master, and blocks the claiming op until
/// the matching [`Frame::HubReply`] is routed back via
/// [`complete`](Self::complete). One synchronous round-trip per chunk —
/// the cost model of distributed chunk calculation.
pub(crate) struct HubLink {
    writer: Arc<Mutex<Box<dyn FrameTx>>>,
    pending: Mutex<HashMap<u64, Sender<HubResponse>>>,
    next: AtomicU64,
}

impl HubLink {
    pub fn new(writer: Arc<Mutex<Box<dyn FrameTx>>>) -> Self {
        Self {
            writer,
            pending: Mutex::new(HashMap::new()),
            next: AtomicU64::new(0),
        }
    }

    /// Route an inbound reply to the waiting operation.
    pub fn complete(&self, req: u64, body: HubResponse) {
        if let Some(tx) = self.pending.lock().remove(&req) {
            let _ = tx.send(body);
        }
    }

    fn round_trip(&self, body: HubRequest) -> HubResponse {
        let req = self.next.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        self.pending.lock().insert(req, tx);
        send_frame(&self.writer, &Frame::Hub { req, body })
            .expect("master connection lost during a hub operation");
        match rx.recv_timeout(HUB_WAIT) {
            Ok(resp) => resp,
            Err(_) => {
                self.pending.lock().remove(&req);
                panic!("master did not answer a chunk-hub operation within {HUB_WAIT:?}")
            }
        }
    }
}

impl RemoteHub for HubLink {
    fn open(&self, calc: ChunkCalc) -> ChunkLease {
        match self.round_trip(HubRequest::Open { calc }) {
            HubResponse::Opened { lease } => lease,
            other => unreachable!("open answered with {other:?}"),
        }
    }

    fn claim(&self, id: u64) -> Option<dps_sched::Chunk> {
        match self.round_trip(HubRequest::Claim { id }) {
            HubResponse::Claimed { chunk } => chunk,
            other => unreachable!("claim answered with {other:?}"),
        }
    }

    fn close(&self, id: u64) -> bool {
        match self.round_trip(HubRequest::Close { id }) {
            HubResponse::Closed { closed } => closed,
            other => unreachable!("close answered with {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LoopbackTransport, Transport};
    use dps_sched::{ChunkHub, PolicyKind};

    /// A HubLink over a real loopback connection against a served
    /// [`ChunkHub`] claims the exact chunk sequence a local hub would
    /// produce.
    #[test]
    fn hub_link_round_trips_chunk_traffic() {
        let t = LoopbackTransport::new();
        let (addr, mut acceptor) = t.bind().unwrap();
        let worker_side = t.connect(&addr).unwrap();
        let master_side = acceptor.accept().unwrap();

        // Master: serve Hub frames against a real hub until the peer hangs
        // up.
        let server = std::thread::spawn(move || {
            let hub = ChunkHub::new();
            let mut rx = master_side.rx;
            let tx = Arc::new(Mutex::new(master_side.tx));
            while let Ok(bytes) = rx.recv() {
                match dps_serial::from_bytes::<Frame>(&bytes).unwrap() {
                    Frame::Hub { req, body } => {
                        let body = body.serve(&hub);
                        send_frame(&tx, &Frame::HubReply { req, body }).unwrap();
                    }
                    other => panic!("unexpected frame {other:?}"),
                }
            }
        });

        // Worker: forwarding hub over the link, plus a reader routing
        // replies. The reader holds only a weak handle so dropping the hub
        // tears the whole connection down (link → writer → server → reader).
        let link = Arc::new(HubLink::new(Arc::new(Mutex::new(worker_side.tx))));
        let reader_link = Arc::downgrade(&link);
        let mut rx = worker_side.rx;
        let reader = std::thread::spawn(move || {
            while let Ok(bytes) = rx.recv() {
                match dps_serial::from_bytes::<Frame>(&bytes).unwrap() {
                    Frame::HubReply { req, body } => {
                        if let Some(link) = reader_link.upgrade() {
                            link.complete(req, body);
                        }
                    }
                    other => panic!("unexpected frame {other:?}"),
                }
            }
        });

        let forwarding = ChunkHub::remote(link.clone());
        let lease = forwarding.open(ChunkCalc::new(PolicyKind::Tss, 100, 4, &[]));
        let local = ChunkHub::new();
        let local_lease = local.open(ChunkCalc::new(PolicyKind::Tss, 100, 4, &[]));
        let mut covered = 0;
        loop {
            let remote = forwarding.claim(lease.id);
            let reference = local.claim(local_lease.id);
            assert_eq!(
                remote.as_ref().map(|c| (c.seq, c.start, c.len)),
                reference.as_ref().map(|c| (c.seq, c.start, c.len)),
                "distributed chunk sequence must match the local scheduler"
            );
            match remote {
                Some(c) => covered += c.len,
                None => break,
            }
        }
        assert_eq!(covered, 100);
        assert!(!forwarding.close(lease.id), "already drained");

        drop(forwarding);
        drop(link);
        reader.join().unwrap();
        server.join().unwrap();
    }
}
