//! The minimal asynchronous-execution seam the network engine runs on.
//!
//! Everything concurrent in this crate — connection readers, per-thread
//! executors, worker-process harnesses — is spawned through an
//! [`AsyncRuntime`] instead of calling `std::thread` directly. The engine
//! needs exactly two capabilities (spawn a named task, sleep), so the trait
//! is deliberately tiny: the default [`ThreadRuntime`] backs every task
//! with one OS thread, and an engine embedded into a host with its own
//! scheduler substitutes one `impl AsyncRuntime` without touching engine
//! code.

use std::time::Duration;

/// Handle to a spawned task; joining waits for it to finish. Dropping the
/// handle detaches the task.
pub trait TaskHandle: Send {
    /// Block until the task finishes. Panics inside the task are swallowed
    /// (the task's work is observed through its effects, not its return).
    fn join(self: Box<Self>);
}

/// The execution substrate: spawn concurrent tasks, sleep.
pub trait AsyncRuntime: Send + Sync {
    /// Run `f` concurrently under a human-readable `name` (surfaces in
    /// thread listings and panic messages on thread-backed runtimes).
    fn spawn(&self, name: &str, f: Box<dyn FnOnce() + Send>) -> Box<dyn TaskHandle>;

    /// Block the calling task for `d`.
    fn sleep(&self, d: Duration);
}

/// The default runtime: one OS thread per task.
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadRuntime;

struct ThreadTask(std::thread::JoinHandle<()>);

impl TaskHandle for ThreadTask {
    fn join(self: Box<Self>) {
        let _ = self.0.join();
    }
}

impl AsyncRuntime for ThreadRuntime {
    fn spawn(&self, name: &str, f: Box<dyn FnOnce() + Send>) -> Box<dyn TaskHandle> {
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(f)
            .expect("spawn runtime task");
        Box::new(ThreadTask(handle))
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn thread_runtime_runs_tasks_to_completion() {
        let rt = ThreadRuntime;
        let hits = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let hits = hits.clone();
                rt.spawn(
                    &format!("task{i}"),
                    Box::new(move || {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }),
                )
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        rt.sleep(Duration::from_millis(1));
    }
}
