//! Deterministic fault injection over real transports.
//!
//! The stance mirrors `dps_net::fault` (the simulator's wire-fault model):
//! the transport is **reliable over a lossy wire**, so injected faults
//! perturb *timing and wire cost, never payload content*. A drop shows up
//! as bounded retransmit latency, a delay as jitter, a duplicate as an
//! extra copy the receiver suppresses — a faulted run must still produce
//! byte-identical outputs unless a node is explicitly killed.
//!
//! Three wrappers compose over [`FrameTx`]/[`FrameRx`]:
//!
//! * [`FaultyTx`] — draws one [`dps_net::FaultInjector`] decision per
//!   outbound frame (drop-as-retransmit-delay, jitter, duplicates) and
//!   prefixes every copy with a monotone sequence header;
//! * [`DedupRx`] — strips the header and suppresses duplicate sequence
//!   numbers, so a duplicated `Exec` never double-executes;
//! * [`KillTx`] — the scheduled process kill: after a configured number of
//!   outbound frames it injects a [`Frame::Die`], crashing the worker at a
//!   deterministic point in the master's send stream.
//!
//! Both directions of a connection must be armed together (the header is
//! part of the framing); [`arm_duplex`] wraps one side. Seeds derive from
//! one base via [`WireFaults::stream`] so each connection direction owns an
//! independent SplitMix64 stream — disarming one fault class or connection
//! never re-rolls another's schedule (the property the VOPR smoke
//! minimizer relies on).

use std::io;
use std::time::Duration;

use dps_net::{FaultConfig, FaultInjector};

use crate::proto::Frame;
use crate::transport::{Duplex, FrameRx, FrameTx};

/// Seeded wire-fault configuration for a whole engine: the shared fault
/// classes/rates plus the base seed every connection stream derives from.
///
/// SPMD symmetry: master and workers construct the same `WireFaults` from
/// the same driver arguments, so both ends of every connection agree on
/// whether the sequence header is present.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireFaults {
    /// Fault classes and rates — the simulator's model, reused verbatim;
    /// its `SimSpan` delays are applied here as real wall-clock sleeps.
    pub cfg: FaultConfig,
    /// Base seed; see [`stream`](Self::stream).
    pub seed: u64,
}

impl WireFaults {
    /// Every class armed at `rate` (the smoke-sweep default: millisecond
    /// delays, bounded retransmission).
    pub fn all(rate: f64, seed: u64) -> Self {
        Self {
            cfg: FaultConfig::all(rate),
            seed,
        }
    }

    /// The RNG stream for one direction of one connection: `direction` 0 is
    /// master→worker, 1 is worker→master. SplitMix64-style mixing keeps the
    /// streams independent, so every (rank, direction) replays its own
    /// schedule regardless of what the others do.
    pub fn stream(&self, rank: u32, direction: u64) -> u64 {
        let lane = (u64::from(rank) << 1) | (direction & 1);
        self.seed ^ (lane.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// A scheduled worker-process kill: after `after_frames` outbound frames to
/// `rank`, the master injects a [`Frame::Die`] (the worker crashes without
/// any shutdown handshake). Frame counts — not wall-clock times — key the
/// schedule, so a kill lands at a deterministic point in the send stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetKill {
    /// Worker rank to kill (1-based; rank 0 is the master).
    pub rank: u32,
    /// Outbound frames to let through before the `Die` goes out (0 kills
    /// the worker before it sees any post-handshake frame).
    pub after_frames: u64,
}

/// Length of the sequence header [`FaultyTx`] prepends to every frame.
const SEQ_HEADER: usize = 8;

/// Outbound fault injection: per-frame seeded decisions plus the sequence
/// header [`DedupRx`] needs to suppress the duplicates this side sends.
pub struct FaultyTx {
    inner: Box<dyn FrameTx>,
    inj: FaultInjector,
    seq: u64,
}

impl FaultyTx {
    /// Wrap `inner`, drawing decisions from `cfg` under `seed`.
    pub fn new(inner: Box<dyn FrameTx>, cfg: FaultConfig, seed: u64) -> Self {
        Self {
            inner,
            inj: FaultInjector::new(cfg, seed),
            seq: 0,
        }
    }

    /// Frames perturbed so far (delayed, retransmitted or duplicated).
    pub fn faults(&self) -> u64 {
        self.inj.faults()
    }
}

impl FrameTx for FaultyTx {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let d = self.inj.decide();
        let nanos = d.extra_delay.as_nanos();
        if nanos > 0 {
            // Drops surface as retransmit latency, delays as jitter — the
            // reliable-transport model: the frame always arrives, later.
            std::thread::sleep(Duration::from_nanos(nanos));
        }
        self.seq += 1;
        let mut framed = Vec::with_capacity(frame.len() + SEQ_HEADER);
        framed.extend_from_slice(&self.seq.to_le_bytes());
        framed.extend_from_slice(frame);
        self.inner.send(&framed)?;
        for _ in 0..d.duplicates {
            self.inner.send(&framed)?;
        }
        Ok(())
    }
}

/// Inbound half of the fault layer: strips the sequence header and drops
/// frames whose sequence number was already delivered (the duplicates a
/// [`FaultyTx`] peer sent). The underlying transports are ordered, so
/// "already delivered" is one comparison against the last sequence seen.
pub struct DedupRx {
    inner: Box<dyn FrameRx>,
    last: u64,
}

impl DedupRx {
    /// Wrap `inner`.
    pub fn new(inner: Box<dyn FrameRx>) -> Self {
        Self { inner, last: 0 }
    }
}

impl FrameRx for DedupRx {
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        loop {
            let framed = self.inner.recv()?;
            if framed.len() < SEQ_HEADER {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "fault-layer frame missing its sequence header",
                ));
            }
            let seq = u64::from_le_bytes(framed[..SEQ_HEADER].try_into().expect("8 bytes"));
            if seq <= self.last {
                continue; // a duplicate copy; suppress above the transport
            }
            self.last = seq;
            return Ok(framed[SEQ_HEADER..].to_vec());
        }
    }
}

/// Arm one side of a connection: outbound faults under the given stream
/// seed, inbound duplicate suppression. Both peers must arm (with their own
/// direction streams) or neither.
pub fn arm_duplex(d: Duplex, cfg: FaultConfig, tx_seed: u64) -> Duplex {
    Duplex {
        tx: Box::new(FaultyTx::new(d.tx, cfg, tx_seed)),
        rx: Box::new(DedupRx::new(d.rx)),
    }
}

/// The kill switch on the master's writer to one worker: counts outbound
/// frames and injects a [`Frame::Die`] once the schedule says so. Composes
/// *outside* any [`FaultyTx`] so the `Die` itself travels with a valid
/// sequence header.
pub struct KillTx {
    inner: Box<dyn FrameTx>,
    after: u64,
    sent: u64,
    fired: bool,
}

impl KillTx {
    /// Let `after` frames through, then inject the kill.
    pub fn new(inner: Box<dyn FrameTx>, after: u64) -> Self {
        Self {
            inner,
            after,
            sent: 0,
            fired: false,
        }
    }
}

impl FrameTx for KillTx {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        if !self.fired && self.sent >= self.after {
            self.fired = true;
            // Best-effort: the worker may already be gone for other reasons.
            let _ = self.inner.send(&dps_serial::to_bytes(&Frame::Die));
        }
        self.sent += 1;
        self.inner.send(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LoopbackTransport, Transport};

    fn armed_pair(rate: f64, seed: u64) -> (Duplex, Duplex) {
        let t = LoopbackTransport::new();
        let (addr, mut acc) = t.bind().unwrap();
        let client = t.connect(&addr).unwrap();
        let server = acc.accept().unwrap();
        let cfg = FaultConfig::all(rate);
        let wf = WireFaults { cfg, seed };
        (
            arm_duplex(client, cfg, wf.stream(1, 0)),
            arm_duplex(server, cfg, wf.stream(1, 1)),
        )
    }

    /// Heavy duplication and delay never corrupt or reorder the payload
    /// stream: N sends arrive as exactly N identical frames, in order.
    #[test]
    fn faults_never_change_payload_content_or_order() {
        let (mut a, mut b) = armed_pair(0.6, 0xFEED);
        let payloads: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i; 1 + i as usize]).collect();
        for p in &payloads {
            a.tx.send(p).unwrap();
        }
        for p in &payloads {
            assert_eq!(&b.rx.recv().unwrap(), p, "payload intact and in order");
        }
        // The reverse direction works on its own independent stream.
        b.tx.send(b"reply").unwrap();
        assert_eq!(a.rx.recv().unwrap(), b"reply");
    }

    /// At a 60% per-class rate some frames must actually be perturbed and
    /// real duplicate copies must transit the wire — the injector is live,
    /// not a no-op wrapper — yet the deduped view stays exact.
    #[test]
    fn faults_actually_fire_and_duplicates_are_suppressed() {
        let t = LoopbackTransport::new();
        let (addr, mut acc) = t.bind().unwrap();
        let client = t.connect(&addr).unwrap();
        let server = acc.accept().unwrap();
        let mut tx = FaultyTx::new(client.tx, FaultConfig::all(0.6), 7);
        for i in 0..100u8 {
            tx.send(&[i]).unwrap();
        }
        assert!(tx.faults() > 10, "faults fired: {}", tx.faults());
        drop(tx);
        let mut rx = DedupRx::new(server.rx);
        let mut seen = Vec::new();
        while let Ok(f) = rx.recv() {
            seen.push(f[0]);
        }
        assert_eq!(seen, (0..100u8).collect::<Vec<_>>(), "deduped and ordered");
    }

    /// Same seed, same schedule: two armed senders over clean channels make
    /// identical duplicate/delay decisions frame for frame.
    #[test]
    fn same_seed_replays_the_same_wire_schedule() {
        let run = |seed: u64| {
            let t = LoopbackTransport::new();
            let (addr, mut acc) = t.bind().unwrap();
            let client = t.connect(&addr).unwrap();
            let mut server = acc.accept().unwrap();
            let mut tx = FaultyTx::new(client.tx, FaultConfig::all(0.4), seed);
            for i in 0..40u8 {
                tx.send(&[i]).unwrap();
            }
            drop(tx);
            // Count raw copies (duplicates included) off the wire.
            let mut copies = Vec::new();
            while let Ok(f) = server.rx.recv() {
                copies.push(f);
            }
            copies
        };
        assert_eq!(run(11), run(11), "same seed, same wire traffic");
        assert_ne!(run(11), run(12), "different seeds diverge");
    }

    /// The kill switch lets exactly `after` frames through, then injects a
    /// `Die`, then keeps forwarding (the worker is gone; sends just fail
    /// later).
    #[test]
    fn kill_switch_fires_at_the_scheduled_frame() {
        let t = LoopbackTransport::new();
        let (addr, mut acc) = t.bind().unwrap();
        let client = t.connect(&addr).unwrap();
        let mut server = acc.accept().unwrap();
        let mut tx = KillTx::new(client.tx, 2);
        for i in 0..4u8 {
            tx.send(&dps_serial::to_bytes(&Frame::Output {
                app: u32::from(i),
                graph: 0,
                token: vec![],
            }))
            .unwrap();
        }
        let kinds: Vec<Frame> = (0..5)
            .map(|_| dps_serial::from_bytes::<Frame>(&server.rx.recv().unwrap()).unwrap())
            .collect();
        assert!(matches!(kinds[0], Frame::Output { app: 0, .. }));
        assert!(matches!(kinds[1], Frame::Output { app: 1, .. }));
        assert!(matches!(kinds[2], Frame::Die), "Die lands after 2 frames");
        assert!(matches!(kinds[3], Frame::Output { app: 2, .. }));
        assert!(matches!(kinds[4], Frame::Output { app: 3, .. }));
    }

    /// Per-direction streams are independent: reseeding one direction does
    /// not change the other's decisions (the re-roll-free property the
    /// smoke minimizer depends on).
    #[test]
    fn direction_streams_are_independent() {
        let wf_a = WireFaults::all(0.3, 99);
        let wf_b = WireFaults::all(0.3, 99);
        assert_eq!(wf_a.stream(1, 0), wf_b.stream(1, 0));
        assert_ne!(wf_a.stream(1, 0), wf_a.stream(1, 1));
        assert_ne!(wf_a.stream(1, 0), wf_a.stream(2, 0));
    }
}
