//! The network engine: one master kernel plus worker kernels, every process
//! running the same SPMD driver.
//!
//! The master embeds an [`MtEngine`] for the whole control plane (wave
//! accounting, flow control, routing, service calls) and installs a
//! [`RemoteExec`] hook that ships op executions of remotely-hosted cluster
//! nodes to their worker kernels as [`Frame::Exec`] messages. Workers run
//! the same driver code: their declarations are *recorded* (and folded into
//! a [`DeclSig`] the master verifies at the sync barrier), their `submit`s
//! are no-ops, and their `run_to_idle`s block until the master broadcasts
//! the run's outputs and its [`Frame::Release`] — so driver-side asserts
//! after a run observe identical outputs on every kernel.

use std::collections::HashMap;
use std::io;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dps_cluster::{resolve_mapping, ClusterSpec};
use dps_core::{DpsError, GraphBuilder, Result, ThreadCollection, TokenBox};
use dps_mt::{
    FailHandle, MtApp, MtConfig, MtEngine, MtGraph, RemoteExec, RemoteKind, RemoteOutcome,
    RemoteTask,
};
use dps_net::{NameServer, NodeId};
use dps_obs::TraceCollector;
use dps_sched::{ChunkHub, FeedbackSink};
use parking_lot::Mutex;

use crate::exec::{send_frame, AppDecl, DeclStore, ExecHost, HubLink, Job, TcDecl};
use crate::fault::{arm_duplex, KillTx, NetKill, WireFaults};
use crate::proto::{self, DeclSig, Frame, TaskKind};
use crate::runtime::{AsyncRuntime, TaskHandle, ThreadRuntime};
use crate::transport::{Duplex, FrameRx, FrameTx, LoopbackTransport, TcpTransport, Transport};

/// Every deadline the network engine enforces, in one place. Each field
/// names the `DPS_NET_*` environment variable that overrides it (read by
/// [`NetTimeouts::from_env`], which [`NetEngineConfig::default`] applies),
/// and every timeout error message names the timeout that fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetTimeouts {
    /// Connection setup: workers connecting to the master, the master
    /// collecting every worker's declaration sync, and the per-run trace
    /// round. Override: `DPS_NET_CONNECT_TIMEOUT_MS`.
    pub connect: Duration,
    /// How long one remote op execution may take before the hosting worker
    /// counts as down. Override: `DPS_NET_EXEC_TIMEOUT_MS`.
    pub exec: Duration,
    /// How long a worker's `run_to_idle` waits for the master's `Release`.
    /// Must exceed `exec` + `connect` (the master's slowest clean run).
    /// Override: `DPS_NET_RELEASE_TIMEOUT_MS`.
    pub release: Duration,
    /// Heartbeat period: the master pings every live worker this often.
    /// Override: `DPS_NET_HEARTBEAT_MS`.
    pub heartbeat_interval: Duration,
    /// Consecutive silent heartbeat intervals before a worker is declared
    /// dead. The detection budget — `heartbeat_interval ×
    /// heartbeat_misses` — must stay well under `exec`, so a dead worker
    /// is tombstoned long before an in-flight execution would time out.
    /// Override: `DPS_NET_HEARTBEAT_MISSES`.
    pub heartbeat_misses: u32,
}

impl Default for NetTimeouts {
    fn default() -> Self {
        Self {
            connect: Duration::from_secs(20),
            exec: Duration::from_secs(30),
            release: Duration::from_secs(50),
            heartbeat_interval: Duration::from_millis(250),
            heartbeat_misses: 8,
        }
    }
}

impl NetTimeouts {
    /// Defaults with any `DPS_NET_*` environment overrides applied. Worker
    /// processes inherit the master's environment, so overrides stay
    /// SPMD-consistent across the cluster.
    pub fn from_env() -> Self {
        fn ms(name: &str) -> Option<Duration> {
            std::env::var(name)
                .ok()?
                .parse()
                .ok()
                .map(Duration::from_millis)
        }
        let mut t = Self::default();
        if let Some(d) = ms("DPS_NET_CONNECT_TIMEOUT_MS") {
            t.connect = d;
        }
        if let Some(d) = ms("DPS_NET_EXEC_TIMEOUT_MS") {
            t.exec = d;
        }
        if let Some(d) = ms("DPS_NET_RELEASE_TIMEOUT_MS") {
            t.release = d;
        }
        if let Some(d) = ms("DPS_NET_HEARTBEAT_MS") {
            t.heartbeat_interval = d;
        }
        if let Some(n) = std::env::var("DPS_NET_HEARTBEAT_MISSES")
            .ok()
            .and_then(|s| s.parse().ok())
        {
            t.heartbeat_misses = n;
        }
        t
    }

    /// The worker-death detection bound: a worker silent for this long is
    /// declared dead. Well under [`exec`](Self::exec) by default.
    pub fn detection_budget(&self) -> Duration {
        self.heartbeat_interval * self.heartbeat_misses.max(1)
    }
}

/// Configuration of a [`NetEngine`].
#[derive(Debug, Clone)]
pub struct NetEngineConfig {
    /// Configuration of the master's embedded control-plane engine (flow
    /// window, serialization enforcement, run timeout).
    pub mt: MtConfig,
    /// Every deadline the engine enforces (see [`NetTimeouts`]).
    pub timeouts: NetTimeouts,
    /// Arguments the master passes when re-executing the current binary as
    /// worker processes. `None` re-uses this process's own arguments (the
    /// SPMD default); tests set an explicit filter so the child runs only
    /// the calling test.
    pub worker_args: Option<Vec<String>>,
    /// Deterministic wire faults (drops-as-delay, jitter, duplicates) on
    /// every master↔worker connection. SPMD: master and workers must
    /// construct the same value. `None` = clean wire.
    pub wire_faults: Option<WireFaults>,
    /// Scheduled worker kills, applied by the master (workers ignore this
    /// field). Each entry crashes one rank after a fixed number of
    /// outbound frames.
    pub kills: Vec<NetKill>,
}

impl Default for NetEngineConfig {
    fn default() -> Self {
        Self {
            mt: MtConfig::default(),
            timeouts: NetTimeouts::from_env(),
            worker_args: None,
            wire_faults: None,
            kills: Vec::new(),
        }
    }
}

/// Handle to an application declared in the network engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetApp(pub(crate) u32);

/// Handle to a graph installed in the network engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetGraph {
    pub(crate) app: u32,
    pub(crate) graph: u32,
}

/// The multi-process execution engine (see the module docs).
pub struct NetEngine {
    role: Role,
}

enum Role {
    Master(Box<Master>),
    Worker(Box<Worker>),
}

/// Decoded `Output` frames buffered per `(app, graph)` until the worker's
/// `take_outputs` drains them.
type OutputBuf = Arc<Mutex<HashMap<(u32, u32), Vec<TokenBox>>>>;

/// Reply payload of a [`Frame::Done`], routed to the blocked engine thread.
struct DoneReply {
    posts: Vec<Vec<u8>>,
    reports: Vec<(u64, f64)>,
    error: Option<String>,
}

/// Master-side state shared with connection readers, the heartbeat monitor
/// and the remote hook.
struct MasterShared {
    /// Writer of the connection to worker rank `r` at index `r - 1`.
    conns: Vec<Arc<Mutex<Box<dyn FrameTx>>>>,
    /// Kernel directory: `kernel{n}` names the process hosting cluster
    /// node `n` ([`NameServer`] from the network substrate crate).
    ns: Mutex<NameServer>,
    /// The real chunk hub; workers reach it through [`Frame::Hub`] traffic.
    hub: Arc<ChunkHub>,
    /// In-flight remote executions by sequence number, with the worker rank
    /// each was shipped to (so a dead rank's replies can be failed fast).
    pending: Mutex<HashMap<u64, (u32, Sender<DoneReply>)>>,
    seq: AtomicU64,
    /// Every deadline the engine enforces.
    timeouts: NetTimeouts,
    /// Declaration mirror (host placement for the hook, token registries
    /// for decoding posted tokens — shared with in-process harnesses in
    /// loopback mode).
    decls: Arc<DeclStore>,
    /// Tombstone flags: `dead[r - 1]` is set once rank `r` is declared
    /// dead (EOF, protocol corruption, or a missed heartbeat budget).
    dead: Vec<AtomicBool>,
    /// Liveness clock per rank: milliseconds since `epoch` of the last
    /// inbound frame, updated by the connection readers.
    last_rx: Vec<AtomicU64>,
    /// Base instant of the `last_rx` clock.
    epoch: Instant,
    /// Thread-safe tombstoning into the embedded control plane, installed
    /// at the first-run barrier (`ensure_net_ready`).
    fail: OnceLock<FailHandle>,
    /// Set at the start of a clean shutdown: connection teardown is
    /// expected from here on and must not be classified as worker death.
    closing: AtomicBool,
}

impl MasterShared {
    /// Record an inbound frame from `rank` (any frame proves liveness).
    fn touch(&self, rank: u32) {
        if let Some(slot) = self.last_rx.get((rank - 1) as usize) {
            slot.store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
        }
    }

    /// How long rank `rank` has been silent.
    fn idle(&self, rank: u32) -> Duration {
        let last = self.last_rx[(rank - 1) as usize].load(Ordering::Relaxed);
        Duration::from_millis((self.epoch.elapsed().as_millis() as u64).saturating_sub(last))
    }

    /// Has `rank` been declared dead?
    fn rank_dead(&self, rank: u32) -> bool {
        rank >= 1
            && self
                .dead
                .get((rank - 1) as usize)
                .is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Declare worker `rank` dead and run the degradation path: fail its
    /// in-flight executions immediately, expire its open chunk leases so
    /// survivors re-claim the work, and tombstone its cluster node in the
    /// embedded control plane (`worker_lost` into feedback boards, token
    /// re-routing, `NodeDown` for materialized waves, a `Fault{NODE_KILL}`
    /// trace breadcrumb). Idempotent; a no-op during clean shutdown.
    fn declare_dead(&self, rank: u32, why: &str) -> bool {
        if self.closing.load(Ordering::Acquire) || rank == 0 {
            return false;
        }
        let Some(flag) = self.dead.get((rank - 1) as usize) else {
            return false;
        };
        if flag.swap(true, Ordering::AcqRel) {
            return false;
        }
        eprintln!("dps-netengine: worker rank {rank} is down: {why}");
        // Wake engine threads blocked on this rank's replies *now*:
        // dropping the reply senders turns their waits into immediate
        // disconnects, surfaced as NodeDown (not a slow exec timeout).
        self.pending.lock().retain(|_, (r, _)| *r != rank);
        // Ranges the dead rank announced stop handing out chunks; the
        // unclaimed iterations come back in fresh waves on survivors.
        let expired = self.hub.expire_owner(rank);
        if !expired.is_empty() {
            eprintln!(
                "dps-netengine: expired {} open chunk lease(s) of rank {rank}",
                expired.len()
            );
        }
        if let Some(fail) = self.fail.get() {
            let _ = fail.fail_node(rank);
        }
        true
    }
}

struct Master {
    mt: MtEngine,
    spec: ClusterSpec,
    apps: Vec<MtApp>,
    graphs: HashMap<(u32, u32), MtGraph>,
    shared: Arc<MasterShared>,
    sig: DeclSig,
    sync_rx: Receiver<(u32, u64)>,
    /// Loopback harnesses share the master's declarations — no sync
    /// barrier needed.
    presynced: bool,
    ready: bool,
    run_seq: u64,
    out_buf: HashMap<(u32, u32), Vec<TokenBox>>,
    children: Vec<Child>,
    tasks: Vec<Box<dyn TaskHandle>>,
    down: bool,
    /// The attached trace collector, driving the per-run trace round.
    trace: Option<Arc<TraceCollector>>,
    /// Loopback harness hosts, retained so an attached trace sink reaches
    /// their executor lanes directly (no wire round in-process).
    harness_hosts: Vec<Arc<ExecHost>>,
    /// `Trace` replies routed from the connection readers: `(run, bytes)`.
    trace_rx: Receiver<(u64, Vec<u8>)>,
    /// Ranks with a scheduled kill armed ([`NetEngineConfig::kills`]): the
    /// schedule may fire at any point — including between run completion
    /// and shutdown — so these ranks are allowed to die without their exit
    /// status counting as a worker failure.
    kill_armed: Vec<u32>,
}

struct Worker {
    rank: u32,
    spec: ClusterSpec,
    decls: Arc<DeclStore>,
    sig: DeclSig,
    writer: Arc<Mutex<Box<dyn FrameTx>>>,
    host: Arc<ExecHost>,
    hub_link: Arc<HubLink>,
    hub: Option<Arc<ChunkHub>>,
    outputs: OutputBuf,
    release_rx: Receiver<(u64, Option<String>)>,
    shutdown_rx: Receiver<()>,
    synced: bool,
    run_seq: u64,
    release_timeout: Duration,
    started: Instant,
    tasks: Vec<Box<dyn TaskHandle>>,
    down: bool,
}

// ---------------------------------------------------------------------------
// The remote-execution hook
// ---------------------------------------------------------------------------

/// [`RemoteExec`] over the master's connections: cluster node 0 lives in
/// the master process, node `n` in the worker registered as `kernel{n}`.
struct NetRemote(Arc<MasterShared>);

impl RemoteExec for NetRemote {
    fn is_remote(&self, node: u32) -> bool {
        node != 0
    }

    fn execute(&self, task: RemoteTask) -> std::result::Result<RemoteOutcome, DpsError> {
        let s = &self.0;
        // The hook is only consulted for declared threads, so the decl
        // mirror always knows the hosting cluster node.
        let host = s
            .decls
            .with(|d| d.apps[task.app as usize].tcs[task.tc as usize].nodes[task.thread as usize]);
        let kernel = format!("kernel{host}");
        let rank =
            s.ns.lock()
                .lookup(&kernel)
                .ok_or_else(|| DpsError::NodeDown {
                    node: kernel.clone(),
                    target: format!("node {}", task.node),
                })?
                .0;
        if s.rank_dead(rank) {
            // Tombstoned rank: fail fast so the router sheds the work to
            // survivors instead of burning the exec timeout per call.
            return Err(DpsError::NodeDown {
                node: kernel,
                target: "worker process is down (tombstoned)".into(),
            });
        }
        let conn = &s.conns[(rank - 1) as usize];
        let kind = match task.kind {
            RemoteKind::Exec => TaskKind::Exec,
            RemoteKind::Consume { completes: false } => TaskKind::Consume,
            RemoteKind::Consume { completes: true } => TaskKind::ConsumeCompletes,
            RemoteKind::Finalize => TaskKind::Finalize,
        };
        let token = task
            .token
            .as_ref()
            .map(|t| proto::encode_token(t.as_ref()))
            .unwrap_or_default();
        let seq = s.seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        s.pending.lock().insert(seq, (rank, tx));
        let frame = Frame::Exec {
            seq,
            app: task.app,
            tc: task.tc,
            thread: task.thread,
            graph: task.graph,
            node: task.node,
            kind,
            token,
            env: task.env,
        };
        if let Err(e) = send_frame(conn, &frame) {
            s.pending.lock().remove(&seq);
            return Err(DpsError::NodeDown {
                node: kernel,
                target: format!("send failed: {e}"),
            });
        }
        let done = match rx.recv_timeout(s.timeouts.exec) {
            Ok(done) => done,
            Err(RecvTimeoutError::Disconnected) => {
                // The liveness layer declared the rank dead and dropped our
                // reply sender — fail now, not at the exec timeout.
                return Err(DpsError::NodeDown {
                    node: kernel,
                    target: "worker process died mid-execution (heartbeat/EOF)".into(),
                });
            }
            Err(RecvTimeoutError::Timeout) => {
                s.pending.lock().remove(&seq);
                return Err(DpsError::NodeDown {
                    node: kernel,
                    target: format!(
                        "no reply within exec timeout {:?} (DPS_NET_EXEC_TIMEOUT_MS)",
                        s.timeouts.exec
                    ),
                });
            }
        };
        if let Some(msg) = done.error {
            return Err(DpsError::OperationContract {
                node: kernel,
                reason: msg,
            });
        }
        let posts = s.decls.with(|d| {
            let reg = &d.apps[task.app as usize].registry;
            done.posts
                .iter()
                .map(|b| proto::decode_token(reg, b))
                .collect::<std::result::Result<Vec<_>, _>>()
        })?;
        Ok(RemoteOutcome {
            posts,
            reports: done.reports,
        })
    }
}

// ---------------------------------------------------------------------------
// Connection readers
// ---------------------------------------------------------------------------

/// Master-side reader of one worker connection: routes `Done` replies,
/// serves hub traffic, forwards the sync signature — and feeds the
/// liveness layer: every inbound frame refreshes the rank's heartbeat
/// clock, and a connection error (EOF, reset) or protocol corruption
/// declares the rank dead on the spot.
fn master_reader(
    shared: Arc<MasterShared>,
    rank: u32,
    mut rx: Box<dyn FrameRx>,
    sync_tx: Sender<(u32, u64)>,
    trace_tx: Sender<(u64, Vec<u8>)>,
) {
    loop {
        let bytes = match rx.recv() {
            Ok(bytes) => bytes,
            Err(e) => {
                // ErrorKind classification: a clean close (the process
                // exited) reads as EOF, a crash mid-write as reset/aborted;
                // either way the worker is gone.
                let why = match e.kind() {
                    io::ErrorKind::UnexpectedEof => format!("connection closed (EOF): {e}"),
                    kind => format!("connection error ({kind:?}): {e}"),
                };
                shared.declare_dead(rank, &why);
                break;
            }
        };
        shared.touch(rank);
        match dps_serial::from_bytes::<Frame>(&bytes) {
            Ok(Frame::Done {
                seq,
                posts,
                reports,
                error,
            }) => {
                if let Some((_, tx)) = shared.pending.lock().remove(&seq) {
                    let _ = tx.send(DoneReply {
                        posts,
                        reports,
                        error,
                    });
                }
            }
            Ok(Frame::Hub { req, body }) => {
                // Owner-tagged serving: leases this rank opens are stamped
                // with it, so its death expires exactly those leases.
                let body = body.serve_owned(&shared.hub, rank);
                let _ = send_frame(
                    &shared.conns[(rank - 1) as usize],
                    &Frame::HubReply { req, body },
                );
            }
            Ok(Frame::Sync { sig }) => {
                let _ = sync_tx.send((rank, sig));
            }
            Ok(Frame::Trace { run, bytes }) => {
                let _ = trace_tx.send((run, bytes));
            }
            // Pong (and anything else): the `touch` above already reset
            // the heartbeat clock.
            Ok(_) => {}
            Err(_) => {
                shared.declare_dead(rank, "sent an undecodable frame (protocol corruption)");
                break;
            }
        }
    }
}

/// The master's heartbeat monitor: pings every live worker each interval
/// and declares dead any rank silent for a whole miss budget. Runs until
/// shutdown flips `closing`.
fn heartbeat_monitor(shared: Arc<MasterShared>, rt: Arc<dyn AsyncRuntime>) {
    let interval = shared.timeouts.heartbeat_interval;
    let budget = shared.timeouts.detection_budget();
    let mut nonce = 0u64;
    loop {
        rt.sleep(interval);
        if shared.closing.load(Ordering::Acquire) {
            break;
        }
        nonce += 1;
        for rank in 1..=shared.conns.len() as u32 {
            if shared.rank_dead(rank) {
                continue;
            }
            if shared.idle(rank) > budget {
                shared.declare_dead(
                    rank,
                    &format!(
                        "missed the heartbeat budget ({} × {interval:?}; \
                         DPS_NET_HEARTBEAT_MS / DPS_NET_HEARTBEAT_MISSES)",
                        shared.timeouts.heartbeat_misses
                    ),
                );
                continue;
            }
            if send_frame(&shared.conns[(rank - 1) as usize], &Frame::Ping { nonce }).is_err() {
                shared.declare_dead(rank, "ping send failed (connection closed)");
            }
        }
    }
}

/// Worker-side reader of the master connection.
#[allow(clippy::too_many_arguments)]
fn worker_reader(
    mut rx: Box<dyn FrameRx>,
    host: Arc<ExecHost>,
    hub_link: Arc<HubLink>,
    decls: Arc<DeclStore>,
    outputs: OutputBuf,
    writer: Arc<Mutex<Box<dyn FrameTx>>>,
    release_tx: Sender<(u64, Option<String>)>,
    shutdown_tx: Sender<()>,
) {
    while let Ok(bytes) = rx.recv() {
        match dps_serial::from_bytes::<Frame>(&bytes) {
            Ok(Frame::Exec {
                seq,
                app,
                tc,
                thread,
                graph,
                node,
                kind,
                token,
                env,
            }) => host.dispatch(
                app,
                tc,
                thread,
                Job {
                    seq,
                    graph,
                    node,
                    kind,
                    token,
                    env,
                },
            ),
            Ok(Frame::HubReply { req, body }) => hub_link.complete(req, body),
            Ok(Frame::Output { app, graph, token }) => {
                let decoded = decls.with(|d| {
                    d.apps
                        .get(app as usize)
                        .map(|a| proto::decode_token(&a.registry, &token))
                });
                match decoded {
                    Some(Ok(tok)) => outputs.lock().entry((app, graph)).or_default().push(tok),
                    _ => eprintln!("dps-netengine: dropping undecodable output of app {app}"),
                }
            }
            Ok(Frame::Release { run, error }) => {
                let _ = release_tx.send((run, error));
            }
            Ok(Frame::TraceReq { run }) => {
                // Always answer — the master waits for one reply per worker.
                // Taking the log drains it, so each run ships only its own
                // events; no sink means an empty payload.
                let bytes = host
                    .trace_collector()
                    .map(|c| dps_obs::wire::encode_log(&c.take_log()))
                    .unwrap_or_default();
                let _ = send_frame(&writer, &Frame::Trace { run, bytes });
            }
            Ok(Frame::Ping { nonce }) => {
                let _ = send_frame(&writer, &Frame::Pong { nonce });
            }
            Ok(Frame::Die) => {
                // Scheduled crash: die *abruptly* — no Release handshake, no
                // host teardown — so the master's death detection is
                // exercised against a real disappearance.
                std::process::exit(86);
            }
            Ok(Frame::Shutdown) => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    host.stop();
    let _ = shutdown_tx.send(());
}

/// In-process worker harness used by loopback mode: executes `Exec` frames
/// against the master's own declaration store.
fn harness_reader(
    mut rx: Box<dyn FrameRx>,
    host: Arc<ExecHost>,
    writer: Arc<Mutex<Box<dyn FrameTx>>>,
) {
    while let Ok(bytes) = rx.recv() {
        match dps_serial::from_bytes::<Frame>(&bytes) {
            Ok(Frame::Exec {
                seq,
                app,
                tc,
                thread,
                graph,
                node,
                kind,
                token,
                env,
            }) => host.dispatch(
                app,
                tc,
                thread,
                Job {
                    seq,
                    graph,
                    node,
                    kind,
                    token,
                    env,
                },
            ),
            Ok(Frame::Ping { nonce }) => {
                let _ = send_frame(&writer, &Frame::Pong { nonce });
            }
            Ok(Frame::Die) => {
                // In-process stand-in for a crash: stop reading and drop the
                // connection. The harness's executor lanes stay up (we can't
                // kill a process we share), but from the master's side the
                // rank goes silent exactly like a dead worker.
                return;
            }
            Ok(Frame::Shutdown) => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    host.stop();
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

impl NetEngine {
    /// Single-process engine over the in-memory loopback transport: a
    /// master role plus one in-process worker harness per cluster node
    /// `1..nodes`. Same wire protocol, same remote execution paths, no
    /// processes — the configuration differential tests and examples use.
    pub fn loopback(nodes: usize) -> Self {
        Self::loopback_with(nodes, NetEngineConfig::default())
    }

    /// [`loopback`](Self::loopback) with explicit configuration.
    pub fn loopback_with(nodes: usize, cfg: NetEngineConfig) -> Self {
        Self::loopback_on(nodes, cfg, Arc::new(ThreadRuntime))
    }

    /// [`loopback`](Self::loopback) on a caller-provided [`AsyncRuntime`].
    pub fn loopback_on(nodes: usize, cfg: NetEngineConfig, rt: Arc<dyn AsyncRuntime>) -> Self {
        assert!(nodes >= 1, "the cluster needs at least the master node");
        let transport = LoopbackTransport::new();
        let (addr, mut acceptor) = transport.bind().expect("loopback bind");
        let decls = Arc::new(DeclStore::default());
        let mt = MtEngine::with_config(nodes, cfg.mt.clone());
        let node_flops = mt.node_flops();

        let mut ns = NameServer::new();
        ns.register("kernel0", NodeId(0));
        let mut conns = Vec::new();
        let mut rxs = Vec::new();
        let mut tasks: Vec<Box<dyn TaskHandle>> = Vec::new();
        let mut harness_hosts = Vec::new();
        for rank in 1..nodes as u32 {
            let mut worker_side = transport.connect(&addr).expect("loopback connect");
            let mut master_side = acceptor.accept().expect("loopback accept");
            // Symmetric fault arming on both connection ends (SPMD config
            // symmetry guarantees real workers do the same); the kill switch
            // goes outermost on the master's writer so the scheduled `Die`
            // passes through the fault layer like any other frame.
            if let Some(wf) = &cfg.wire_faults {
                master_side = arm_duplex(master_side, wf.cfg, wf.stream(rank, 0));
                worker_side = arm_duplex(worker_side, wf.cfg, wf.stream(rank, 1));
            }
            if let Some(kill) = cfg.kills.iter().find(|k| k.rank == rank) {
                master_side.tx = Box::new(KillTx::new(master_side.tx, kill.after_frames));
            }
            ns.register(format!("kernel{rank}"), NodeId(rank));
            conns.push(Arc::new(Mutex::new(master_side.tx)));
            rxs.push(master_side.rx);
            let hwriter = Arc::new(Mutex::new(worker_side.tx));
            let host = Arc::new(ExecHost::new(
                decls.clone(),
                hwriter.clone(),
                node_flops,
                rank as u16,
                rt.clone(),
            ));
            harness_hosts.push(host.clone());
            let hrx = worker_side.rx;
            tasks.push(rt.spawn(
                &format!("dps-net-harness{rank}"),
                Box::new(move || harness_reader(hrx, host, hwriter)),
            ));
        }

        let worker_count = conns.len();
        let shared = Arc::new(MasterShared {
            conns,
            ns: Mutex::new(ns),
            hub: Arc::new(ChunkHub::new()),
            pending: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(0),
            timeouts: cfg.timeouts,
            decls,
            dead: (0..worker_count).map(|_| AtomicBool::new(false)).collect(),
            last_rx: (0..worker_count).map(|_| AtomicU64::new(0)).collect(),
            epoch: Instant::now(),
            fail: OnceLock::new(),
            closing: AtomicBool::new(false),
        });
        let (sync_tx, sync_rx) = unbounded();
        let (trace_tx, trace_rx) = unbounded();
        for (i, rx) in rxs.into_iter().enumerate() {
            let shared = shared.clone();
            let sync_tx = sync_tx.clone();
            let trace_tx = trace_tx.clone();
            tasks.push(rt.spawn(
                &format!("dps-net-reader{}", i + 1),
                Box::new(move || master_reader(shared, i as u32 + 1, rx, sync_tx, trace_tx)),
            ));
        }
        if worker_count > 0 {
            let hb = shared.clone();
            let hb_rt = rt.clone();
            tasks.push(rt.spawn(
                "dps-net-heartbeat",
                Box::new(move || heartbeat_monitor(hb, hb_rt)),
            ));
        }

        NetEngine {
            role: Role::Master(Box::new(Master {
                mt,
                spec: ClusterSpec::uniform(nodes, 1),
                apps: Vec::new(),
                graphs: HashMap::new(),
                shared,
                sig: DeclSig::new(),
                sync_rx,
                presynced: true,
                ready: false,
                run_seq: 0,
                out_buf: HashMap::new(),
                children: Vec::new(),
                tasks,
                down: false,
                trace: None,
                harness_hosts,
                trace_rx,
                kill_armed: cfg.kills.iter().map(|k| k.rank).collect(),
            })),
        }
    }

    /// Multi-process engine: the master role binds a TCP endpoint and
    /// re-executes the current binary once per worker node; worker
    /// processes (recognized through the `DPS_NET_ROLE` environment) attach
    /// to the master instead. Every process then runs the same SPMD driver
    /// code against the engine this returns.
    pub fn from_env(nodes: usize, cfg: NetEngineConfig) -> io::Result<Self> {
        match std::env::var("DPS_NET_ROLE").as_deref() {
            Ok("worker") => {
                let rank = std::env::var("DPS_NET_RANK")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "DPS_NET_RANK not set")
                    })?;
                let addr = std::env::var("DPS_NET_MASTER").map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidInput, "DPS_NET_MASTER not set")
                })?;
                Self::worker_tcp(nodes, cfg, rank, &addr)
            }
            _ => Self::master_tcp(nodes, cfg),
        }
    }

    fn master_tcp(nodes: usize, cfg: NetEngineConfig) -> io::Result<Self> {
        assert!(nodes >= 1, "the cluster needs at least the master node");
        let rt: Arc<dyn AsyncRuntime> = Arc::new(ThreadRuntime);
        let (addr, mut acceptor) = TcpTransport.bind()?;
        let worker_count = nodes - 1;

        // Spawn the workers: the same binary, same arguments, worker role
        // in the environment.
        let exe = std::env::current_exe()?;
        let args: Vec<String> = cfg
            .worker_args
            .clone()
            .unwrap_or_else(|| std::env::args().skip(1).collect());
        let mut children = Vec::new();
        for rank in 1..=worker_count as u32 {
            match Command::new(&exe)
                .args(&args)
                .env("DPS_NET_ROLE", "worker")
                .env("DPS_NET_RANK", rank.to_string())
                .env("DPS_NET_MASTER", &addr)
                .spawn()
            {
                Ok(child) => children.push(child),
                Err(e) => {
                    kill_children(&mut children);
                    return Err(e);
                }
            }
        }

        // Accept on a task so the timeout stays enforceable, collect the
        // Hello of each worker, and slot connections by rank.
        let (acc_tx, acc_rx) = unbounded();
        let accept_task = rt.spawn(
            "dps-net-accept",
            Box::new(move || {
                for _ in 0..worker_count {
                    let Ok(mut duplex) = acceptor.accept() else {
                        break;
                    };
                    let Ok(bytes) = duplex.rx.recv() else {
                        continue;
                    };
                    let Ok(Frame::Hello { rank }) = dps_serial::from_bytes::<Frame>(&bytes) else {
                        continue;
                    };
                    if acc_tx.send((rank, duplex)).is_err() {
                        break;
                    }
                }
            }),
        );
        let mut slots: Vec<Option<Duplex>> = (0..worker_count).map(|_| None).collect();
        let deadline = Instant::now() + cfg.timeouts.connect;
        for _ in 0..worker_count {
            let left = deadline.saturating_duration_since(Instant::now());
            let (rank, duplex) = match acc_rx.recv_timeout(left) {
                Ok(pair) => pair,
                Err(_) => {
                    kill_children(&mut children);
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "not all {worker_count} workers connected within connect \
                             timeout {:?} (DPS_NET_CONNECT_TIMEOUT_MS)",
                            cfg.timeouts.connect
                        ),
                    ));
                }
            };
            let slot = rank
                .checked_sub(1)
                .map(|r| r as usize)
                .filter(|&r| r < worker_count && slots[r].is_none());
            match slot {
                Some(r) => slots[r] = Some(duplex),
                None => {
                    kill_children(&mut children);
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected worker rank {rank}"),
                    ));
                }
            }
        }

        let decls = Arc::new(DeclStore::default());
        let mt = MtEngine::with_config(nodes, cfg.mt.clone());
        let node_flops = mt.node_flops();
        let mut ns = NameServer::new();
        ns.register("kernel0", NodeId(0));
        let mut conns = Vec::new();
        let mut rxs = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let mut duplex = slot.expect("every slot filled above");
            let rank = i as u32 + 1;
            ns.register(format!("kernel{rank}"), NodeId(rank));
            // The Welcome travels raw: the handshake happens below the fault
            // layer on both ends (the worker arms its side only after
            // decoding it).
            duplex.tx.send(&dps_serial::to_bytes(&Frame::Welcome {
                nodes: nodes as u32,
                node_flops,
            }))?;
            if let Some(wf) = &cfg.wire_faults {
                duplex = arm_duplex(duplex, wf.cfg, wf.stream(rank, 0));
            }
            if let Some(kill) = cfg.kills.iter().find(|k| k.rank == rank) {
                duplex.tx = Box::new(KillTx::new(duplex.tx, kill.after_frames));
            }
            conns.push(Arc::new(Mutex::new(duplex.tx)));
            rxs.push(duplex.rx);
        }

        let shared = Arc::new(MasterShared {
            conns,
            ns: Mutex::new(ns),
            hub: Arc::new(ChunkHub::new()),
            pending: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(0),
            timeouts: cfg.timeouts,
            decls,
            dead: (0..worker_count).map(|_| AtomicBool::new(false)).collect(),
            last_rx: (0..worker_count).map(|_| AtomicU64::new(0)).collect(),
            epoch: Instant::now(),
            fail: OnceLock::new(),
            closing: AtomicBool::new(false),
        });
        let mut tasks = vec![accept_task];
        let (sync_tx, sync_rx) = unbounded();
        let (trace_tx, trace_rx) = unbounded();
        for (i, rx) in rxs.into_iter().enumerate() {
            let shared = shared.clone();
            let sync_tx = sync_tx.clone();
            let trace_tx = trace_tx.clone();
            tasks.push(rt.spawn(
                &format!("dps-net-reader{}", i + 1),
                Box::new(move || master_reader(shared, i as u32 + 1, rx, sync_tx, trace_tx)),
            ));
        }
        if worker_count > 0 {
            let hb = shared.clone();
            let hb_rt = rt.clone();
            tasks.push(rt.spawn(
                "dps-net-heartbeat",
                Box::new(move || heartbeat_monitor(hb, hb_rt)),
            ));
        }

        Ok(NetEngine {
            role: Role::Master(Box::new(Master {
                mt,
                spec: ClusterSpec::uniform(nodes, 1),
                apps: Vec::new(),
                graphs: HashMap::new(),
                shared,
                sig: DeclSig::new(),
                sync_rx,
                presynced: false,
                ready: false,
                run_seq: 0,
                out_buf: HashMap::new(),
                children,
                tasks,
                down: false,
                trace: None,
                harness_hosts: Vec::new(),
                trace_rx,
                kill_armed: cfg.kills.iter().map(|k| k.rank).collect(),
            })),
        })
    }

    fn worker_tcp(nodes: usize, cfg: NetEngineConfig, rank: u32, addr: &str) -> io::Result<Self> {
        let rt: Arc<dyn AsyncRuntime> = Arc::new(ThreadRuntime);
        let deadline = Instant::now() + cfg.timeouts.connect;
        let mut duplex = loop {
            match TcpTransport.connect(addr) {
                Ok(d) => break d,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        };
        duplex
            .tx
            .send(&dps_serial::to_bytes(&Frame::Hello { rank }))?;
        let bytes = duplex.rx.recv()?;
        let (wire_nodes, node_flops) = match dps_serial::from_bytes::<Frame>(&bytes) {
            Ok(Frame::Welcome { nodes, node_flops }) => (nodes, node_flops),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Welcome, got {other:?}"),
                ))
            }
        };
        if wire_nodes as usize != nodes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("master runs {wire_nodes} nodes, this worker was built for {nodes}"),
            ));
        }
        // Handshake done — arm this end of the fault layer (the master armed
        // its end right after sending the Welcome). Workers ignore `kills`:
        // the kill switch lives on the master's writer.
        if let Some(wf) = &cfg.wire_faults {
            duplex = arm_duplex(duplex, wf.cfg, wf.stream(rank, 1));
        }

        let decls = Arc::new(DeclStore::default());
        let writer = Arc::new(Mutex::new(duplex.tx));
        let host = Arc::new(ExecHost::new(
            decls.clone(),
            writer.clone(),
            node_flops,
            rank as u16,
            rt.clone(),
        ));
        let hub_link = Arc::new(HubLink::new(writer.clone()));
        let outputs: OutputBuf = Arc::new(Mutex::new(HashMap::new()));
        let (release_tx, release_rx) = unbounded();
        let (shutdown_tx, shutdown_rx) = unbounded();
        let reader = {
            let host = host.clone();
            let hub_link = hub_link.clone();
            let decls = decls.clone();
            let outputs = outputs.clone();
            let writer = writer.clone();
            let rx = duplex.rx;
            rt.spawn(
                "dps-net-reader",
                Box::new(move || {
                    worker_reader(
                        rx,
                        host,
                        hub_link,
                        decls,
                        outputs,
                        writer,
                        release_tx,
                        shutdown_tx,
                    )
                }),
            )
        };

        Ok(NetEngine {
            role: Role::Worker(Box::new(Worker {
                rank,
                spec: ClusterSpec::uniform(nodes, 1),
                decls,
                sig: DeclSig::new(),
                writer,
                host,
                hub_link,
                hub: None,
                outputs,
                release_rx,
                shutdown_rx,
                synced: false,
                run_seq: 0,
                release_timeout: cfg.timeouts.release,
                started: Instant::now(),
                tasks: vec![reader],
                down: false,
            })),
        })
    }

    /// Is this the master kernel? (Exactly one process per run is; drivers
    /// gate output printing and result persistence on it.)
    pub fn is_master(&self) -> bool {
        matches!(self.role, Role::Master(_))
    }

    /// The attached trace collector: on the master the cluster-merged one
    /// (worker logs land in it at the end of every traced run), on a worker
    /// its local collector. `None` until `set_trace_sink`.
    pub fn trace_collector(&self) -> Option<Arc<TraceCollector>> {
        match &self.role {
            Role::Master(m) => m.trace.clone(),
            Role::Worker(w) => w.host.trace_collector(),
        }
    }

    /// This kernel's rank: 0 on the master, the worker's 1-based rank
    /// otherwise.
    pub fn rank(&self) -> u32 {
        match &self.role {
            Role::Master(_) => 0,
            Role::Worker(w) => w.rank,
        }
    }

    /// Kill worker `rank` (1-based) mid-run. On the master a real worker
    /// process is killed outright (SIGKILL — the reader sees EOF) and a
    /// loopback harness is sent [`Frame::Die`] (it drops its connection and
    /// goes silent — the heartbeat budget catches it). Detection then runs
    /// the engine's *natural* liveness path; nothing is tombstoned here
    /// directly. A no-op on worker roles, so SPMD drivers call it
    /// unconditionally.
    pub fn fail_worker(&mut self, rank: u32) -> Result<()> {
        match &mut self.role {
            Role::Master(m) => m.fail_worker(rank),
            Role::Worker(_) => Ok(()),
        }
    }

    /// Liveness observability: has worker `rank` been declared dead
    /// (tombstoned)? Detection is asynchronous — EOF classification or the
    /// heartbeat budget — so a just-killed rank reads `false` until the
    /// liveness layer catches it. Always `false` on worker roles and for
    /// out-of-range ranks.
    pub fn worker_down(&self, rank: u32) -> bool {
        match &self.role {
            Role::Master(m) => {
                rank >= 1 && rank as usize <= m.shared.conns.len() && m.shared.rank_dead(rank)
            }
            Role::Worker(_) => false,
        }
    }

    /// Tear the engine down: the master stops its control plane, tells
    /// every worker to exit and reaps the worker processes (panicking if
    /// one failed); a worker waits for that signal so the master never
    /// loses a connection mid-run. Also runs on drop.
    pub fn shutdown(&mut self) {
        match &mut self.role {
            Role::Master(m) => m.shutdown(),
            Role::Worker(w) => w.shutdown(),
        }
    }
}

impl Drop for NetEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn kill_children(children: &mut Vec<Child>) {
    for mut child in children.drain(..) {
        let _ = child.kill();
        let _ = child.wait();
    }
}

// ---------------------------------------------------------------------------
// Master role
// ---------------------------------------------------------------------------

impl Master {
    /// First-submit barrier: wait for every worker's declaration signature,
    /// refuse divergent schedules, then install the remote hook so the
    /// embedded engine starts shipping remote executions.
    fn ensure_net_ready(&mut self) -> Result<()> {
        if self.ready {
            return Ok(());
        }
        if !self.presynced {
            let expect = self.sig.finish();
            let want = self.shared.conns.len();
            let deadline = Instant::now() + self.shared.timeouts.connect;
            let mut synced = 0usize;
            // Poll in short slices so a worker that dies *before* syncing
            // (its tombstone raised by the liveness layer) counts as
            // accounted for instead of stalling the barrier to the timeout.
            loop {
                let dead = (1..=want as u32)
                    .filter(|&r| self.shared.rank_dead(r))
                    .count();
                if synced + dead >= want {
                    break;
                }
                let left = deadline
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(50));
                match self.sync_rx.recv_timeout(left) {
                    Ok((rank, sig)) => {
                        if sig != expect {
                            return Err(DpsError::InvalidGraph {
                                reason: format!(
                                    "worker {rank} declared a different schedule \
                                     (signature {sig:#018x}, master {expect:#018x}); \
                                     SPMD kernels must run identical declarations"
                                ),
                            });
                        }
                        synced += 1;
                    }
                    Err(_) => {
                        if Instant::now() >= deadline {
                            return Err(DpsError::NodeDown {
                                node: format!("{} worker(s)", want - synced - dead),
                                target: format!(
                                    "declaration sync (connect timeout {:?}; \
                                     DPS_NET_CONNECT_TIMEOUT_MS)",
                                    self.shared.timeouts.connect
                                ),
                            });
                        }
                    }
                }
            }
        }
        if !self.shared.conns.is_empty() {
            self.mt
                .set_remote_exec(Arc::new(NetRemote(self.shared.clone())));
            // Hand the liveness layer its tombstoning lever into the control
            // plane (valid only once the engine threads exist, which
            // `fail_handle` ensures). A rank that died before this point is
            // failed retroactively so its cluster node never receives work.
            let handle = self.mt.fail_handle();
            for rank in 1..=self.shared.conns.len() as u32 {
                if self.shared.rank_dead(rank) {
                    let _ = handle.fail_node(rank);
                }
            }
            let _ = self.shared.fail.set(handle);
        }
        self.ready = true;
        Ok(())
    }

    fn run_to_idle(&mut self, g: NetGraph, expected: usize) -> Result<()> {
        self.ensure_net_ready()?;
        self.run_seq += 1;
        let mtg = self.graphs[&(g.app, g.graph)];
        match self.mt.wait_for_outputs(mtg, expected) {
            Ok(()) => {
                // Outputs first, then the release, on each connection: FIFO
                // framing guarantees the worker's returning run_to_idle
                // already sees every output.
                let outs = self.mt.drain_outputs(mtg);
                for tok in &outs {
                    let frame = Frame::Output {
                        app: g.app,
                        graph: g.graph,
                        token: proto::encode_token(tok.as_ref()),
                    };
                    for conn in &self.shared.conns {
                        let _ = send_frame(conn, &frame);
                    }
                }
                self.collect_traces();
                let release = Frame::Release {
                    run: self.run_seq,
                    error: None,
                };
                for conn in &self.shared.conns {
                    let _ = send_frame(conn, &release);
                }
                self.out_buf
                    .entry((g.app, g.graph))
                    .or_default()
                    .extend(outs);
                Ok(())
            }
            Err(e) => {
                let release = Frame::Release {
                    run: self.run_seq,
                    error: Some(e.to_string()),
                };
                for conn in &self.shared.conns {
                    let _ = send_frame(conn, &release);
                }
                Err(e)
            }
        }
    }

    /// Pull every worker's trace log of the finishing run into the master
    /// collector — one `TraceReq`/`Trace` round per connection, *before*
    /// the run's `Release` (FIFO framing keeps the order). Loopback
    /// harnesses write into the master collector directly, so the presynced
    /// role skips the wire round. Best-effort: a worker that cannot answer
    /// costs its events, never the run.
    fn collect_traces(&mut self) {
        let Some(collector) = &self.trace else {
            return;
        };
        if self.presynced || self.shared.conns.is_empty() {
            return;
        }
        // Only live workers are asked (and awaited): a rank that dies during
        // the round is dropped from the expected count on the next slice, so
        // its lost log costs nothing but its own events.
        let req = Frame::TraceReq { run: self.run_seq };
        let mut expected = 0usize;
        for (i, conn) in self.shared.conns.iter().enumerate() {
            if !self.shared.rank_dead(i as u32 + 1) && send_frame(conn, &req).is_ok() {
                expected += 1;
            }
        }
        let deadline = Instant::now() + self.shared.timeouts.connect;
        let mut got = 0usize;
        while got < expected {
            let live = (1..=self.shared.conns.len() as u32)
                .filter(|&r| !self.shared.rank_dead(r))
                .count();
            expected = expected.min(live.max(got));
            if got >= expected {
                break;
            }
            let left = deadline
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(50));
            match self.trace_rx.recv_timeout(left) {
                Ok((run, bytes)) => {
                    if run != self.run_seq {
                        continue; // stale reply of an earlier, timed-out round
                    }
                    got += 1;
                    if !bytes.is_empty() {
                        match dps_obs::wire::decode_log(&bytes) {
                            Some(log) => collector.ingest(&log),
                            None => {
                                eprintln!("dps-netengine: dropping an undecodable worker trace log")
                            }
                        }
                    }
                }
                Err(_) => {
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }

    fn fail_worker(&mut self, rank: u32) -> Result<()> {
        if rank == 0 || rank as usize > self.shared.conns.len() {
            return Err(DpsError::InvalidGraph {
                reason: format!("no worker rank {rank} to fail"),
            });
        }
        match self.children.get_mut((rank - 1) as usize) {
            // Real worker process: kill it abruptly; its connection EOFs.
            Some(child) => {
                let _ = child.kill();
            }
            // Loopback harness: tell it to drop the connection and go
            // silent; the heartbeat budget does the rest.
            None => {
                let _ = send_frame(&self.shared.conns[(rank - 1) as usize], &Frame::Die);
            }
        }
        Ok(())
    }

    fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        // From here on, connection teardown is expected: the liveness layer
        // must not classify it as worker death (and the heartbeat monitor
        // exits at its next tick).
        self.shared.closing.store(true, Ordering::Release);
        // Stop the control plane first: joining its threads guarantees no
        // further remote executions are in flight when Shutdown goes out.
        self.mt.shutdown();
        for conn in &self.shared.conns {
            let _ = send_frame(conn, &Frame::Shutdown);
        }
        // Release the loopback harness hosts: each holds the worker-side
        // writer of its connection, and the master readers only exit once
        // that writer drops and their recv sees the channel close.
        self.harness_hosts.clear();
        let mut failures = Vec::new();
        for (i, mut child) in self.children.drain(..).enumerate() {
            let rank = i as u32 + 1;
            if self.shared.rank_dead(rank) || self.kill_armed.contains(&rank) {
                // Tombstoned (killed or wedged) — or carrying an armed kill
                // schedule, which may fire between run completion and this
                // teardown: reap without judgment; its exit status is the
                // fault, not a failure.
                let _ = child.kill();
                let _ = child.wait();
                continue;
            }
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => failures.push(format!("worker exited with {status}")),
                Err(e) => failures.push(format!("waiting for a worker failed: {e}")),
            }
        }
        for task in self.tasks.drain(..) {
            task.join();
        }
        if !failures.is_empty() && !std::thread::panicking() {
            panic!("worker processes failed: {failures:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Worker role
// ---------------------------------------------------------------------------

impl Worker {
    fn sync_once(&mut self) {
        if self.synced {
            return;
        }
        self.synced = true;
        let _ = send_frame(
            &self.writer,
            &Frame::Sync {
                sig: self.sig.finish(),
            },
        );
    }

    fn run_to_idle(&mut self) -> Result<()> {
        self.sync_once();
        self.run_seq += 1;
        match self.release_rx.recv_timeout(self.release_timeout) {
            Ok((run, error)) => {
                if run != self.run_seq {
                    return Err(DpsError::IncompleteWaves {
                        waves: vec![format!(
                            "release for run {run} arrived while waiting for run {}",
                            self.run_seq
                        )],
                    });
                }
                match error {
                    None => Ok(()),
                    Some(msg) => Err(DpsError::IncompleteWaves { waves: vec![msg] }),
                }
            }
            Err(_) => Err(DpsError::IncompleteWaves {
                waves: vec![format!(
                    "master did not release run {} within release timeout {:?} \
                     (DPS_NET_RELEASE_TIMEOUT_MS)",
                    self.run_seq, self.release_timeout
                )],
            }),
        }
    }

    fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        // Hold the process open until the master says the run is over (the
        // reader forwards its exit on either Shutdown or a closed socket).
        let _ = self.shutdown_rx.recv_timeout(self.release_timeout);
        self.host.stop();
        for task in self.tasks.drain(..) {
            task.join();
        }
    }
}

// ---------------------------------------------------------------------------
// The Engine implementation
// ---------------------------------------------------------------------------

/// The unified engine API over both roles. Declarations run everywhere
/// (the master forwards them into its embedded engine, workers record
/// them); submission and running are master-driven with workers following
/// the release protocol.
impl dps_core::Engine for NetEngine {
    type App = NetApp;
    type Graph = NetGraph;

    fn name(&self) -> &'static str {
        "net"
    }

    fn caps(&self) -> dps_core::EngineCaps {
        dps_core::EngineCaps {
            deterministic: false,
            virtual_time: false,
            fail_node: false,
            thread_state_access: false,
            declare_before_run: true,
        }
    }

    fn app(&mut self, name: &str) -> Self::App {
        match &mut self.role {
            Role::Master(m) => {
                let mta = m.mt.app(name);
                m.apps.push(mta);
                let idx = m.apps.len() as u32 - 1;
                m.sig.app(name);
                m.shared.decls.update(|d| d.apps.push(AppDecl::default()));
                NetApp(idx)
            }
            Role::Worker(w) => {
                let idx = w.decls.update(|d| {
                    d.apps.push(AppDecl::default());
                    d.apps.len() as u32 - 1
                });
                w.sig.app(name);
                NetApp(idx)
            }
        }
    }

    fn register_token<T>(&mut self, app: Self::App)
    where
        T: dps_serial::Wire + dps_serial::Identified + Clone + std::fmt::Debug + Send + 'static,
    {
        let wire_id = <T as dps_serial::Identified>::wire_id().0;
        match &mut self.role {
            Role::Master(m) => {
                m.mt.register_token::<T>(m.apps[app.0 as usize]);
                m.sig.token(wire_id);
                m.shared.decls.update(|d| {
                    dps_core::register_token::<T>(&mut d.apps[app.0 as usize].registry)
                });
            }
            Role::Worker(w) => {
                w.sig.token(wire_id);
                w.decls.update(|d| {
                    dps_core::register_token::<T>(&mut d.apps[app.0 as usize].registry)
                });
            }
        }
    }

    fn thread_collection<Td: dps_core::ThreadData>(
        &mut self,
        app: Self::App,
        name: &str,
        mapping: &str,
    ) -> Result<ThreadCollection<Td>> {
        match &mut self.role {
            Role::Master(m) => {
                let tc =
                    m.mt.thread_collection::<Td>(m.apps[app.0 as usize], name, mapping)?;
                let nodes: Vec<u32> = resolve_mapping(&m.spec, mapping)?
                    .into_iter()
                    .map(|n| n.0)
                    .collect();
                m.sig.thread_collection(app.0, &nodes);
                m.shared.decls.update(|d| {
                    d.apps[app.0 as usize].tcs.push(TcDecl {
                        nodes,
                        factory: Arc::new(|| Box::new(Td::default())),
                    })
                });
                Ok(tc)
            }
            Role::Worker(w) => {
                let nodes: Vec<u32> = resolve_mapping(&w.spec, mapping)?
                    .into_iter()
                    .map(|n| n.0)
                    .collect();
                w.sig.thread_collection(app.0, &nodes);
                let count = nodes.len();
                let tc = w.decls.update(|d| {
                    let a = &mut d.apps[app.0 as usize];
                    a.tcs.push(TcDecl {
                        nodes,
                        factory: Arc::new(|| Box::new(Td::default())),
                    });
                    a.tcs.len() as u32 - 1
                });
                Ok(ThreadCollection::from_raw(app.0, tc, count))
            }
        }
    }

    fn build_graph(&mut self, builder: GraphBuilder) -> Result<Self::Graph> {
        let (def, app) = builder.assemble_for_engine()?;
        let def = Arc::new(def);
        match &mut self.role {
            Role::Master(m) => {
                let mtg = m.mt.install_graph(m.apps[app as usize], def.clone());
                let graph = m.shared.decls.update(|d| {
                    let a = &mut d.apps[app as usize];
                    def.register_tokens(&mut a.registry);
                    a.graphs.push(def.clone());
                    a.graphs.len() as u32 - 1
                });
                m.sig.graph(app, &def);
                m.graphs.insert((app, graph), mtg);
                Ok(NetGraph { app, graph })
            }
            Role::Worker(w) => {
                let graph = w.decls.update(|d| {
                    let a = &mut d.apps[app as usize];
                    def.register_tokens(&mut a.registry);
                    a.graphs.push(def.clone());
                    a.graphs.len() as u32 - 1
                });
                w.sig.graph(app, &def);
                Ok(NetGraph { app, graph })
            }
        }
    }

    fn expose_service(&mut self, graph: Self::Graph, name: &str) {
        match &mut self.role {
            Role::Master(m) => {
                m.mt.expose_service(m.graphs[&(graph.app, graph.graph)], name);
                m.sig.service(graph.app, graph.graph, name);
            }
            Role::Worker(w) => {
                w.sig.service(graph.app, graph.graph, name);
            }
        }
    }

    fn set_feedback_sink(&mut self, sink: Arc<dyn FeedbackSink>) {
        match &mut self.role {
            Role::Master(m) => m.mt.set_feedback_sink(sink),
            // Chunk reports land on the master (the hub and the sink live
            // there); the worker's sink object is never fed.
            Role::Worker(_) => {}
        }
    }

    fn set_trace_sink(&mut self, sink: Arc<TraceCollector>) {
        match &mut self.role {
            Role::Master(m) => {
                assert!(!m.ready, "register the trace sink before the first run");
                // The embedded control plane records wave/op/token events;
                // the cluster-wide chunk hub bumps the lease/claim counters;
                // loopback harness lanes write into the collector directly.
                m.mt.set_trace_sink(sink.clone());
                m.shared.hub.attach_metrics(sink.metrics_arc());
                for host in &m.harness_hosts {
                    host.set_trace(sink.clone());
                }
                m.trace = Some(sink);
            }
            Role::Worker(w) => {
                // Worker lanes record locally; the log ships to the master
                // in the per-run `TraceReq`/`Trace` round.
                assert!(!w.synced, "register the trace sink before the first run");
                w.host.set_trace(sink);
            }
        }
    }

    fn submit(&mut self, graph: Self::Graph, token: TokenBox) -> Result<()> {
        match &mut self.role {
            Role::Master(m) => {
                m.ensure_net_ready()?;
                let mtg = m.graphs[&(graph.app, graph.graph)];
                m.mt.submit(mtg, token);
                Ok(())
            }
            Role::Worker(w) => {
                // The master's matching submit injects the token; this SPMD
                // call marks declarations finished.
                w.sync_once();
                Ok(())
            }
        }
    }

    fn run_to_idle(&mut self, graph: Self::Graph, expected_outputs: usize) -> Result<()> {
        match &mut self.role {
            Role::Master(m) => m.run_to_idle(graph, expected_outputs),
            Role::Worker(w) => {
                let _ = graph;
                let _ = expected_outputs;
                w.run_to_idle()
            }
        }
    }

    fn take_outputs(&mut self, graph: Self::Graph) -> Vec<TokenBox> {
        match &mut self.role {
            Role::Master(m) => m
                .out_buf
                .remove(&(graph.app, graph.graph))
                .unwrap_or_default(),
            Role::Worker(w) => w
                .outputs
                .lock()
                .remove(&(graph.app, graph.graph))
                .unwrap_or_default(),
        }
    }

    fn now_secs(&self) -> f64 {
        match &self.role {
            Role::Master(m) => m.mt.elapsed().as_secs_f64(),
            Role::Worker(w) => w.started.elapsed().as_secs_f64(),
        }
    }

    fn chunk_hub(&mut self) -> Arc<ChunkHub> {
        match &mut self.role {
            Role::Master(m) => m.shared.hub.clone(),
            Role::Worker(w) => {
                if w.hub.is_none() {
                    w.hub = Some(Arc::new(ChunkHub::remote(w.hub_link.clone())));
                }
                w.hub.clone().expect("just installed")
            }
        }
    }
}
