//! # dps-netengine — multi-process network backend for DPS flow graphs
//!
//! The third execution engine: the same flow graphs that run on the
//! virtual-time simulator (`dps_core::SimEngine`) and on OS threads
//! (`dps_mt::MtEngine`) run here across **real processes over real
//! sockets** — the paper's deployment model of one DPS kernel per cluster
//! node.
//!
//! Every process runs the *same* SPMD driver code against a [`NetEngine`]:
//!
//! * The **master** (rank 0) embeds an `MtEngine` as its control plane —
//!   wave accounting, split/merge flow control, credit windows, routing and
//!   service calls all stay in one place — and ships only *op executions*
//!   of remotely-hosted threads to the worker kernels
//!   (`dps_mt::RemoteExec`).
//! * **Workers** record the driver's declarations (verified against the
//!   master's by signature at the sync barrier), execute shipped
//!   operations with real per-thread state, claim scheduled-loop chunks
//!   from the master-hosted [`ChunkHub`](dps_sched::ChunkHub) over the
//!   wire, and see every run's outputs re-broadcast so SPMD asserts hold
//!   on all kernels.
//!
//! Kernels locate each other through the `dps_net::NameServer` (`kernel0`
//! is the master, `kernel{n}` hosts cluster node `n`). Frames travel over
//! a pluggable [`Transport`] — real TCP for multi-process runs, an
//! in-memory loopback with identical semantics for single-process tests —
//! and all concurrency goes through the minimal [`AsyncRuntime`] seam
//! (thread-backed by default).
//!
//! The driver below runs unchanged on all three engines; only the
//! constructor differs:
//!
//! ```
//! use dps_core::prelude::*;
//! use dps_core::Engine;
//! use dps_netengine::NetEngine;
//!
//! dps_token! { pub struct Job { pub shards: u32 } }
//! dps_token! { pub struct Shard { pub value: u64 } }
//! dps_token! { pub struct Total { pub sum: u64 } }
//!
//! struct Fan;
//! impl SplitOperation for Fan {
//!     type Thread = (); type In = Job; type Out = Shard;
//!     fn execute(&mut self, ctx: &mut OpCtx<'_, (), Shard>, j: Job) {
//!         for value in 0..u64::from(j.shards) { ctx.post(Shard { value }); }
//!     }
//! }
//! #[derive(Default)]
//! struct Sum { sum: u64 }
//! impl MergeOperation for Sum {
//!     type Thread = (); type In = Shard; type Out = Total;
//!     fn consume(&mut self, _c: &mut OpCtx<'_, (), Total>, s: Shard) { self.sum += s.value; }
//!     fn finalize(&mut self, ctx: &mut OpCtx<'_, (), Total>) {
//!         ctx.post(Total { sum: self.sum });
//!     }
//! }
//!
//! // Master node plus one in-process worker harness; `NetEngine::from_env`
//! // gives the same engine with real worker processes over TCP.
//! let mut eng = NetEngine::loopback(2);
//! let app = eng.app("sum");
//! // One thread on each cluster node: the leaf work runs on the worker.
//! let tc: ThreadCollection<()> = eng.thread_collection(app, "t", "node0 node1").unwrap();
//! let mut b = GraphBuilder::new("sum");
//! let s = b.split(&tc, || ToThread(0), || Fan);
//! // Routing the merge to thread 1 puts it on node1 — the whole wave is
//! // consumed in the worker and only the sum comes back.
//! let m = b.merge(&tc, || ToThread(1), Sum::default);
//! b.add(s >> m);
//! let g = eng.build_graph(b).unwrap();
//! eng.submit(g, Box::new(Job { shards: 10 })).unwrap();
//! eng.run_to_idle(g, 1).unwrap();
//! let out = eng.take_outputs(g).pop().unwrap();
//! assert_eq!(downcast::<Total>(out).unwrap().sum, 45);
//! ```
//!
//! The engine is **fault-tolerant**: `Ping`/`Pong` heartbeats plus
//! EOF/reset classification in the connection readers detect a dead or
//! wedged worker within a bounded budget ([`NetTimeouts`], overridable
//! through `DPS_NET_*` environment variables), tombstone its rank, expire
//! its open chunk leases back to the survivors, and degrade exactly like
//! `MtEngine::fail_node` — completion on the survivors or a clean
//! `NodeDown`, never a hang. The [`fault`] module injects seeded wire
//! faults ([`WireFaults`]) and scheduled kills ([`NetKill`]) for testing.
//!
//! The full protocol (frames, sync barrier, release ordering, hub
//! forwarding) is documented in [`proto`] and in the repository's
//! `docs/ARCHITECTURE.md`.

mod engine;
mod exec;
pub mod fault;
pub mod proto;
pub mod runtime;
pub mod transport;

pub use engine::{NetApp, NetEngine, NetEngineConfig, NetGraph, NetTimeouts};
pub use fault::{NetKill, WireFaults};
pub use runtime::{AsyncRuntime, TaskHandle, ThreadRuntime};
pub use transport::{
    Acceptor, Duplex, FrameRx, FrameTx, LoopbackTransport, TcpTransport, Transport,
};
