//! The master↔worker wire protocol: control frames carrying graph
//! synchronization, remote op execution, chunk-lease traffic and output
//! broadcast.
//!
//! Every frame is one [`Frame`] value encoded with the workspace wire
//! format (`dps-serial`) and shipped through a
//! [`FrameTx`](crate::transport::FrameTx). Tokens travel *tagged*: a
//! payload is prefixed with its [`WireId`](dps_serial::WireId) and the
//! format version, exactly as `dps_core::wire_roundtrip` frames them, so
//! the receiving kernel decodes through its own [`TokenRegistry`].
//!
//! | frame | direction | meaning |
//! |---|---|---|
//! | `Hello` | worker → master | first frame after connect; announces the rank |
//! | `Welcome` | master → worker | accepts the worker; cluster size + calibrated FLOP rate |
//! | `Sync` | worker → master | declarations done; carries the declaration signature |
//! | `Exec` | master → worker | run one op execution point ([`TaskKind`]) |
//! | `Done` | worker → master | the `Exec` reply: posted tokens + chunk reports, or an error |
//! | `Hub` | worker → master | one [`HubRequest`] against the master's chunk hub |
//! | `HubReply` | master → worker | the matching [`HubResponse`] |
//! | `Output` | master → worker | a token left a graph (broadcast, so SPMD asserts see outputs) |
//! | `Release` | master → worker | one `run_to_idle` finished (error message if it failed) |
//! | `Shutdown` | master → worker | the run is over; stop executors and exit |
//! | `TraceReq` | master → worker | ship your trace log of the finishing run |
//! | `Trace` | worker → master | the encoded local trace log (empty when untraced) |
//! | `Ping` | master → worker | liveness probe; a healthy worker answers immediately |
//! | `Pong` | worker → master | the `Ping` echo (same `nonce`); resets the miss budget |
//! | `Die` | master → worker | fault injection: crash the worker process *now* |
//!
//! ```
//! use dps_netengine::proto::Frame;
//!
//! let f = Frame::Release { run: 3, error: None };
//! let bytes = dps_serial::to_bytes(&f);
//! assert_eq!(dps_serial::from_bytes::<Frame>(&bytes).unwrap(), f);
//! ```

use dps_core::{DpsError, Envelope, GNodeId, Token, TokenBox, TokenRegistry};
use dps_sched::remote::{HubRequest, HubResponse};
use dps_serial::{impl_wire_enum, Reader, Wire, WireError, Writer};

/// Which of the three op-execution points an [`Frame::Exec`] replays (the
/// wire form of [`dps_mt::RemoteKind`], with the `completes` flag folded
/// into the discriminant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Split/leaf `execute` on the token.
    Exec,
    /// Merge/stream `consume`.
    Consume,
    /// Merge/stream `consume` of the wave's last token: finalize too.
    ConsumeCompletes,
    /// Finalize a wave whose tokens were all consumed earlier.
    Finalize,
}

impl TaskKind {
    const ALL: [TaskKind; 4] = [
        TaskKind::Exec,
        TaskKind::Consume,
        TaskKind::ConsumeCompletes,
        TaskKind::Finalize,
    ];
}

impl Wire for TaskKind {
    fn wire_size(&self) -> usize {
        1
    }
    fn encode(&self, w: &mut Writer) {
        let idx = Self::ALL.iter().position(|k| k == self).expect("listed");
        w.put_u8(idx as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let idx = r.get_u8()?;
        Self::ALL
            .get(idx as usize)
            .copied()
            .ok_or(WireError::InvalidDiscriminant {
                type_name: "TaskKind",
                value: idx as u32,
            })
    }
}

/// One protocol frame. See the module table for directions and meanings.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker's first frame: its rank (1-based; the master is rank 0).
    Hello {
        /// The connecting worker's rank.
        rank: u32,
    },
    /// Master's acceptance: cluster size and the calibrated compute rate
    /// workers should report through `ExecInfo::node_flops`.
    Welcome {
        /// Total cluster nodes (master included).
        nodes: u32,
        /// Master-calibrated FLOP/s for `charge_flops` cost models.
        node_flops: f64,
    },
    /// Worker finished declaring; `sig` is its declaration signature
    /// ([`DeclSig`]) — the master refuses to run if it differs from its
    /// own (the SPMD driver diverged).
    Sync {
        /// Declaration-stream signature.
        sig: u64,
    },
    /// Run one op execution point on the worker hosting this thread.
    Exec {
        /// Reply-matching sequence number.
        seq: u64,
        /// Application index (declaration order).
        app: u32,
        /// Thread collection within the application.
        tc: u32,
        /// Thread index within the collection.
        thread: u32,
        /// Graph index within the application.
        graph: u32,
        /// The executing graph node.
        node: GNodeId,
        /// Which execution point.
        kind: TaskKind,
        /// Tagged token bytes (empty for [`TaskKind::Finalize`]).
        token: Vec<u8>,
        /// Envelope before any consuming pop (wave identity derives from it).
        env: Envelope,
    },
    /// The reply to `Exec` with the matching `seq`.
    Done {
        /// Matches the `Exec` sequence number.
        seq: u64,
        /// Tagged tokens the op posted, in post order.
        posts: Vec<Vec<u8>>,
        /// `(iters, secs)` per completed scheduled chunk (worker wall clock).
        reports: Vec<(u64, f64)>,
        /// Set if the execution failed; the master fails the run with it.
        error: Option<String>,
    },
    /// One chunk-hub operation against the master-hosted hub.
    Hub {
        /// Reply-matching request id.
        req: u64,
        /// The operation.
        body: HubRequest,
    },
    /// The reply to `Hub` with the matching `req`.
    HubReply {
        /// Matches the `Hub` request id.
        req: u64,
        /// The hub's answer.
        body: HubResponse,
    },
    /// A token left graph (`app`, `graph`) on the master. Broadcast so the
    /// SPMD worker's driver code sees the same outputs the master does.
    Output {
        /// Application index.
        app: u32,
        /// Graph index.
        graph: u32,
        /// Tagged token bytes.
        token: Vec<u8>,
    },
    /// One master `run_to_idle` completed (the worker's matching call
    /// returns). All of the run's `Output` frames precede it on the same
    /// connection.
    Release {
        /// Run ordinal (1-based).
        run: u64,
        /// The master-side error if the run failed.
        error: Option<String>,
    },
    /// The engine is shutting down; stop executors and exit.
    Shutdown,
    /// Master asks the worker for its trace log of the finishing run. Sent
    /// between the run's `Output` frames and its `Release`, so a traced
    /// run's events are merged master-side before the workers unblock.
    TraceReq {
        /// Run ordinal the request belongs to (matches the next `Release`).
        run: u64,
    },
    /// The worker's reply to `TraceReq`: its local trace log in the
    /// `dps_obs::wire` encoding, drained by the send. Empty when the worker
    /// has no trace sink — the master skips decoding then, so untraced
    /// workers cost one empty frame per run and nothing else.
    Trace {
        /// Matches the `TraceReq` run ordinal.
        run: u64,
        /// `dps_obs::wire::encode_log` bytes (empty = no sink attached).
        bytes: Vec<u8>,
    },
    /// Liveness probe from the master's heartbeat monitor. A healthy
    /// worker's reader thread answers with a [`Frame::Pong`] carrying the
    /// same nonce; a worker that stops answering for a full miss budget is
    /// declared dead (see `NetTimeouts`).
    Ping {
        /// Echoed back in the matching `Pong` (monotone per connection).
        nonce: u64,
    },
    /// The `Ping` echo. Any inbound frame proves liveness — the nonce is
    /// for trace readability, not matching.
    Pong {
        /// The probed nonce.
        nonce: u64,
    },
    /// Fault injection only: the worker process must terminate immediately
    /// and *abruptly* — no Release handshake, no clean shutdown — so the
    /// master's death-detection path (EOF + heartbeat miss) is exercised
    /// exactly as a real crash would.
    Die,
}

impl_wire_enum!(Frame {
    0 => Hello { rank },
    1 => Welcome { nodes, node_flops },
    2 => Sync { sig },
    3 => Exec { seq, app, tc, thread, graph, node, kind, token, env },
    4 => Done { seq, posts, reports, error },
    5 => Hub { req, body },
    6 => HubReply { req, body },
    7 => Output { app, graph, token },
    8 => Release { run, error },
    9 => Shutdown { },
    10 => TraceReq { run },
    11 => Trace { run, bytes },
    12 => Ping { nonce },
    13 => Pong { nonce },
    14 => Die { },
});

/// Encode a token in the tagged form every kernel's registry understands:
/// wire id, format version, payload (the same frame `wire_roundtrip` uses).
pub fn encode_token(tok: &dyn Token) -> Vec<u8> {
    let mut w = Writer::with_capacity(tok.payload_size() + 10);
    w.put_u64(tok.wire_id().0);
    w.put_u16(dps_serial::WIRE_FORMAT_VERSION);
    tok.encode_payload(&mut w);
    w.into_bytes()
}

/// Decode a tagged token through `reg`; unknown wire ids and version
/// mismatches surface as [`DpsError::Wire`].
pub fn decode_token(reg: &TokenRegistry, bytes: &[u8]) -> Result<TokenBox, DpsError> {
    reg.decode_tagged(&mut Reader::new(bytes))
        .map_err(|e| DpsError::Wire(e.to_string()))
}

/// FNV-1a accumulator over the declaration event stream.
///
/// Master and workers run the *same* SPMD driver; each records every
/// declaration (apps, token registrations, thread collections, graphs,
/// services) into a `DeclSig` as it happens. The worker ships its final
/// hash in [`Frame::Sync`]; a mismatch means the processes declared
/// different schedules and the run is refused before any token moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeclSig(u64);

impl Default for DeclSig {
    fn default() -> Self {
        Self::new()
    }
}

impl DeclSig {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        DeclSig(0xcbf2_9ce4_8422_2325)
    }

    /// Fold raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Fold a string (length-delimited, so `"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn push_str(&mut self, s: &str) {
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes());
    }

    /// Fold an integer.
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    /// The accumulated signature.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// Record an application declaration.
    pub fn app(&mut self, name: &str) {
        self.push_str("app");
        self.push_str(name);
    }

    /// Record a token-type registration.
    pub fn token(&mut self, wire_id: u64) {
        self.push_str("tok");
        self.push_u64(wire_id);
    }

    /// Record a thread collection (its resolved node placement).
    pub fn thread_collection(&mut self, app: u32, nodes: &[u32]) {
        self.push_str("tc");
        self.push_u64(u64::from(app));
        self.push_u64(nodes.len() as u64);
        for &n in nodes {
            self.push_u64(u64::from(n));
        }
    }

    /// Record an installed graph: name plus the per-node structure that
    /// determines execution (kind, owning collection, token types).
    pub fn graph(&mut self, app: u32, def: &dps_core::Flowgraph) {
        self.push_str("graph");
        self.push_u64(u64::from(app));
        self.push_str(def.name());
        self.push_u64(def.len() as u64);
        for node in def.nodes() {
            self.push_str(&node.name);
            self.push_u64(kind_index(node.kind));
            self.push_u64(u64::from(node.tc));
            self.push_u64(node.in_type.0);
            for (out, _) in &node.out_types {
                self.push_u64(out.0);
            }
        }
    }

    /// Record a service exposure.
    pub fn service(&mut self, app: u32, graph: u32, name: &str) {
        self.push_str("svc");
        self.push_u64(u64::from(app));
        self.push_u64(u64::from(graph));
        self.push_str(name);
    }
}

fn kind_index(kind: dps_core::OpKind) -> u64 {
    match kind {
        dps_core::OpKind::Split => 0,
        dps_core::OpKind::Leaf => 1,
        dps_core::OpKind::Merge => 2,
        dps_core::OpKind::Stream => 3,
        dps_core::OpKind::Call => 4,
        dps_core::OpKind::CallSplit => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::Frame as EnvFrame;

    fn roundtrip(f: &Frame) {
        let bytes = dps_serial::to_bytes(f);
        assert_eq!(bytes.len(), f.wire_size(), "wire_size is exact");
        let back: Frame = dps_serial::from_bytes(&bytes).expect("decodes");
        assert_eq!(&back, f);
    }

    #[test]
    fn every_frame_round_trips() {
        let mut env = Envelope::root();
        env.push(EnvFrame {
            src: GNodeId(2),
            wave: 77,
            index: 3,
            total: Some(8),
        });
        roundtrip(&Frame::Hello { rank: 2 });
        roundtrip(&Frame::Welcome {
            nodes: 3,
            node_flops: 1.5e9,
        });
        roundtrip(&Frame::Sync { sig: u64::MAX });
        roundtrip(&Frame::Exec {
            seq: 9,
            app: 0,
            tc: 1,
            thread: 2,
            graph: 0,
            node: GNodeId(4),
            kind: TaskKind::ConsumeCompletes,
            token: vec![1, 2, 3],
            env,
        });
        roundtrip(&Frame::Done {
            seq: 9,
            posts: vec![vec![], vec![255; 9]],
            reports: vec![(12, 0.5)],
            error: None,
        });
        roundtrip(&Frame::Done {
            seq: 10,
            posts: vec![],
            reports: vec![],
            error: Some("op failed".into()),
        });
        roundtrip(&Frame::Hub {
            req: 1,
            body: HubRequest::Claim { id: 4 },
        });
        roundtrip(&Frame::HubReply {
            req: 1,
            body: HubResponse::Claimed { chunk: None },
        });
        roundtrip(&Frame::Output {
            app: 0,
            graph: 1,
            token: vec![9; 17],
        });
        roundtrip(&Frame::Release {
            run: 2,
            error: Some("timed out".into()),
        });
        roundtrip(&Frame::Shutdown);
        roundtrip(&Frame::TraceReq { run: 5 });
        roundtrip(&Frame::Trace {
            run: 5,
            bytes: vec![7; 33],
        });
        roundtrip(&Frame::Trace {
            run: 6,
            bytes: vec![],
        });
        roundtrip(&Frame::Ping { nonce: 41 });
        roundtrip(&Frame::Pong { nonce: 41 });
        roundtrip(&Frame::Die);
    }

    #[test]
    fn task_kind_rejects_unknown_discriminants() {
        let mut w = Writer::with_capacity(1);
        w.put_u8(9);
        let bytes = w.into_bytes();
        assert!(TaskKind::decode(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn decl_sig_is_order_sensitive_and_deterministic() {
        let stream = |order: &[&str]| {
            let mut s = DeclSig::new();
            for name in order {
                s.app(name);
            }
            s.token(42);
            s.thread_collection(0, &[0, 1, 1]);
            s.finish()
        };
        assert_eq!(stream(&["a", "b"]), stream(&["a", "b"]));
        assert_ne!(stream(&["a", "b"]), stream(&["b", "a"]));
    }

    #[test]
    fn decl_sig_delimits_strings() {
        let mut a = DeclSig::new();
        a.push_str("ab");
        a.push_str("c");
        let mut b = DeclSig::new();
        b.push_str("a");
        b.push_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn tagged_tokens_round_trip_through_a_registry() {
        use dps_core::dps_token;
        dps_token! { pub struct Probe { pub x: u64 } }
        let mut reg = TokenRegistry::new();
        dps_core::register_token::<Probe>(&mut reg);
        let bytes = encode_token(&Probe { x: 1234 });
        let back = decode_token(&reg, &bytes).unwrap();
        assert_eq!(dps_core::downcast::<Probe>(back).unwrap().x, 1234);
    }

    #[test]
    fn unknown_token_types_fail_to_decode() {
        use dps_core::dps_token;
        dps_token! { pub struct Stranger { pub x: u64 } }
        let reg = TokenRegistry::new();
        assert!(decode_token(&reg, &encode_token(&Stranger { x: 1 })).is_err());
    }
}
