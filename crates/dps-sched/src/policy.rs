//! The chunk-size policies of dynamic loop scheduling.

/// A dynamic loop-scheduling policy: decides the size of each successive
/// chunk of a loop of `total` iterations scheduled onto `workers` workers.
///
/// Policies are *pure* chunk calculators — they never see tokens, threads,
/// or clocks. Worker speed enters through the `weights` slice passed to
/// [`begin`](Self::begin) (uniform for the non-adaptive policies; measured
/// rates for AWF, via the
/// [`FeedbackBoard`](crate::FeedbackBoard)). A
/// [`ChunkScheduler`](crate::ChunkScheduler) drives the policy and clamps
/// every returned size into `1..=remaining`, so implementations only need
/// to produce the *intended* size.
pub trait ChunkPolicy: Send + 'static {
    /// Human-readable policy name (table headers, diagnostics).
    fn name(&self) -> &'static str;

    /// Called once before a partitioning run. `weights` has one entry per
    /// worker, normalized to sum to 1; policies that do not adapt ignore it.
    fn begin(&mut self, total: u64, workers: usize, weights: &[f64]);

    /// Intended size of the next chunk, handed to `worker`, with
    /// `remaining` iterations left (`remaining >= 1`). Values are clamped
    /// to `1..=remaining` by the scheduler.
    fn chunk_size(&mut self, remaining: u64, worker: usize) -> u64;
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b.max(1))
}

/// Normalize per-worker weights to sum to 1 (uniform on degenerate input).
/// One shared implementation: the central AWF policy and the distributed
/// `ChunkCalc` must apply byte-identical arithmetic to stay equivalent.
pub(crate) fn normalize_weights(weights: &[f64], workers: usize) -> Vec<f64> {
    let workers = workers.max(1);
    if weights.len() != workers {
        return vec![1.0 / workers as f64; workers];
    }
    let sum: f64 = weights.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        weights.iter().map(|w| w / sum).collect()
    } else {
        vec![1.0 / workers as f64; workers]
    }
}

/// The baseline the paper's splits use implicitly: `⌈N/P⌉` iterations per
/// chunk, i.e. one equal chunk per worker regardless of workload shape or
/// node speed.
#[derive(Debug, Default, Clone, Copy)]
pub struct StaticChunking {
    chunk: u64,
}

impl ChunkPolicy for StaticChunking {
    fn name(&self) -> &'static str {
        "static"
    }
    fn begin(&mut self, total: u64, workers: usize, _weights: &[f64]) {
        self.chunk = div_ceil(total, workers as u64);
    }
    fn chunk_size(&mut self, _remaining: u64, _worker: usize) -> u64 {
        self.chunk
    }
}

/// Pure self-scheduling (SS): one iteration per chunk. Perfect load balance,
/// maximal scheduling overhead — the P-1 extreme of the DLS spectrum.
#[derive(Debug, Default, Clone, Copy)]
pub struct SelfScheduling;

impl ChunkPolicy for SelfScheduling {
    fn name(&self) -> &'static str {
        "ss"
    }
    fn begin(&mut self, _total: u64, _workers: usize, _weights: &[f64]) {}
    fn chunk_size(&mut self, _remaining: u64, _worker: usize) -> u64 {
        1
    }
}

/// Guided self-scheduling (GSS, Polychronopoulos & Kuck): each chunk takes
/// `⌈R/P⌉` of the remaining `R` iterations — exponentially decreasing chunk
/// sizes front-load the big chunks and keep a fine-grained tail for
/// balancing.
#[derive(Debug, Default, Clone, Copy)]
pub struct GuidedSelfScheduling {
    workers: u64,
}

impl ChunkPolicy for GuidedSelfScheduling {
    fn name(&self) -> &'static str {
        "gss"
    }
    fn begin(&mut self, _total: u64, workers: usize, _weights: &[f64]) {
        self.workers = workers as u64;
    }
    fn chunk_size(&mut self, remaining: u64, _worker: usize) -> u64 {
        div_ceil(remaining, self.workers)
    }
}

/// Trapezoid self-scheduling (TSS, Tzen & Ni): chunk sizes decrease
/// *linearly* from `f = ⌈N/2P⌉` to `l = 1` over `C = ⌈2N/(f+l)⌉` chunks
/// (decrement `d = (f-l)/(C-1)`), trading GSS's aggressive first chunks for
/// a cheaper, bounded schedule-length.
///
/// The size of chunk `k` is the closed form `round(max(f − k·d, 1))` — the
/// same expression the distributed [`ChunkCalc`](crate::ChunkCalc)
/// evaluates, so central and worker-side chunk sequences agree bit for bit.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrapezoidSelfScheduling {
    first: f64,
    decrement: f64,
    k: u32,
}

impl ChunkPolicy for TrapezoidSelfScheduling {
    fn name(&self) -> &'static str {
        "tss"
    }
    fn begin(&mut self, total: u64, workers: usize, _weights: &[f64]) {
        let first = div_ceil(total, 2 * workers as u64).max(1);
        let last = 1u64;
        let count = div_ceil(2 * total, first + last).max(1);
        self.first = first as f64;
        self.k = 0;
        self.decrement = if count > 1 {
            (first - last) as f64 / (count - 1) as f64
        } else {
            0.0
        };
    }
    fn chunk_size(&mut self, _remaining: u64, _worker: usize) -> u64 {
        let current = (self.first - self.k as f64 * self.decrement).max(1.0);
        self.k += 1;
        current.round().max(1.0) as u64
    }
}

/// Factoring (FAC, Flynn Hummel et al.): iterations are handed out in
/// *batches* of `P` equal chunks; at each batch start the chunk size is
/// `⌈R/2P⌉`, i.e. every batch schedules half of what remains. Robust to
/// iteration-cost variance without needing per-worker information.
#[derive(Debug, Default, Clone, Copy)]
pub struct Factoring {
    workers: usize,
    left_in_batch: usize,
    chunk: u64,
}

impl ChunkPolicy for Factoring {
    fn name(&self) -> &'static str {
        "fac"
    }
    fn begin(&mut self, _total: u64, workers: usize, _weights: &[f64]) {
        self.workers = workers.max(1);
        self.left_in_batch = 0;
        self.chunk = 0;
    }
    fn chunk_size(&mut self, remaining: u64, _worker: usize) -> u64 {
        if self.left_in_batch == 0 {
            self.chunk = div_ceil(remaining, 2 * self.workers as u64).max(1);
            self.left_in_batch = self.workers;
        }
        self.left_in_batch -= 1;
        self.chunk
    }
}

/// Adaptive weighted factoring (AWF, Banicescu et al.): factoring batches of
/// `⌈R/2⌉` iterations, but divided among workers **proportionally to their
/// measured execution rates** — the weights fed back per completed chunk
/// through the [`FeedbackSink`](crate::FeedbackSink) protocol. With no
/// feedback yet (the first time step), weights are uniform and AWF behaves
/// like FAC; over successive waves it converges to the heterogeneity-aware
/// partition.
/// The AWF-B and AWF-C variants (Cariño & Banicescu) share this chunk
/// *sizing* arithmetic; they differ in how the per-worker weights are
/// estimated from timing feedback — batch-time vs chunk-time weighting,
/// selected on the [`FeedbackBoard`](crate::FeedbackBoard) via
/// [`RateEstimator`](crate::RateEstimator). Construct them with
/// [`variant`](Self::variant) (or via [`PolicyKind::build`]).
#[derive(Debug, Clone)]
pub struct AdaptiveWeightedFactoring {
    name: &'static str,
    weights: Vec<f64>,
    sizes: Vec<u64>,
    batch_pos: usize,
}

impl Default for AdaptiveWeightedFactoring {
    fn default() -> Self {
        Self::variant("awf")
    }
}

impl AdaptiveWeightedFactoring {
    /// An AWF-family policy reporting `name` (e.g. `"awf-b"`): identical
    /// chunk sizing, distinguished so sweeps and diagnostics can tell the
    /// weight-estimation variants apart.
    pub fn variant(name: &'static str) -> Self {
        Self {
            name,
            weights: Vec::new(),
            sizes: Vec::new(),
            batch_pos: 0,
        }
    }
}

impl ChunkPolicy for AdaptiveWeightedFactoring {
    fn name(&self) -> &'static str {
        self.name
    }
    fn begin(&mut self, _total: u64, workers: usize, weights: &[f64]) {
        debug_assert_eq!(weights.len(), workers);
        // Ratios are what matters (the scheduler's documented contract):
        // normalize here so raw measured rates work as weights too.
        self.weights = normalize_weights(weights, workers);
        self.sizes = vec![0; workers];
        self.batch_pos = 0;
    }
    fn chunk_size(&mut self, remaining: u64, worker: usize) -> u64 {
        if self.batch_pos == 0 {
            // New batch: half the remaining work, weight-proportionally.
            let batch = div_ceil(remaining, 2).max(1) as f64;
            for (size, w) in self.sizes.iter_mut().zip(&self.weights) {
                *size = ((batch * w).round() as u64).max(1);
            }
        }
        self.batch_pos = (self.batch_pos + 1) % self.sizes.len().max(1);
        self.sizes.get(worker).copied().unwrap_or(1)
    }
}

/// The policy menu, for sweeps and configuration surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// [`StaticChunking`].
    Static,
    /// [`SelfScheduling`].
    Ss,
    /// [`GuidedSelfScheduling`].
    Gss,
    /// [`TrapezoidSelfScheduling`].
    Tss,
    /// [`Factoring`].
    Fac,
    /// [`AdaptiveWeightedFactoring`] with the aggregate rate estimator.
    Awf,
    /// AWF-B: AWF sizing with **batch-time** weighting — per-worker rates
    /// estimated from per-batch timing totals, later batches weighted
    /// linearly more (recency-weighted adaptation, Cariño & Banicescu).
    AwfB,
    /// AWF-C: AWF sizing with **chunk-time** weighting — per-worker rates
    /// estimated from individual chunk timings, later chunks weighted
    /// linearly more (the finest-grained adaptive variant).
    AwfC,
}

impl PolicyKind {
    /// Every policy, in overhead-vs-adaptivity order.
    pub const ALL: [PolicyKind; 8] = [
        PolicyKind::Static,
        PolicyKind::Ss,
        PolicyKind::Gss,
        PolicyKind::Tss,
        PolicyKind::Fac,
        PolicyKind::Awf,
        PolicyKind::AwfB,
        PolicyKind::AwfC,
    ];

    /// Short lowercase name (matches [`ChunkPolicy::name`]).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::Ss => "ss",
            PolicyKind::Gss => "gss",
            PolicyKind::Tss => "tss",
            PolicyKind::Fac => "fac",
            PolicyKind::Awf => "awf",
            PolicyKind::AwfB => "awf-b",
            PolicyKind::AwfC => "awf-c",
        }
    }

    /// Construct a fresh policy instance.
    pub fn build(self) -> Box<dyn ChunkPolicy> {
        match self {
            PolicyKind::Static => Box::new(StaticChunking::default()),
            PolicyKind::Ss => Box::new(SelfScheduling),
            PolicyKind::Gss => Box::new(GuidedSelfScheduling::default()),
            PolicyKind::Tss => Box::new(TrapezoidSelfScheduling::default()),
            PolicyKind::Fac => Box::new(Factoring::default()),
            PolicyKind::Awf => Box::new(AdaptiveWeightedFactoring::default()),
            PolicyKind::AwfB => Box::new(AdaptiveWeightedFactoring::variant("awf-b")),
            PolicyKind::AwfC => Box::new(AdaptiveWeightedFactoring::variant("awf-c")),
        }
    }

    /// True for policies that consume measured worker rates.
    pub fn is_adaptive(self) -> bool {
        matches!(self, PolicyKind::Awf | PolicyKind::AwfB | PolicyKind::AwfC)
    }
}

/// How an application distributes its work units over worker threads — the
/// configuration knob threaded through the workload drivers (`LuConfig`,
/// `MatMulConfig`, `LifeConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Distribution {
    /// The paper's static data-parallel distribution: unit `i` goes to
    /// worker `i mod P` (a `ByKey` route), regardless of worker speed.
    #[default]
    Static,
    /// Dynamic loop scheduling: work is partitioned by the chunk policy
    /// (sized from measured worker rates for AWF) and flows through the
    /// `ScheduledSplit` chunk machinery.
    Scheduled(PolicyKind),
}

impl Distribution {
    /// The chunk policy, if dynamically scheduled.
    pub fn policy(self) -> Option<PolicyKind> {
        match self {
            Distribution::Static => None,
            Distribution::Scheduled(kind) => Some(kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChunkScheduler;

    fn partition(kind: PolicyKind, n: u64, p: usize) -> Vec<u64> {
        let weights = vec![1.0 / p as f64; p];
        let mut sched = ChunkScheduler::new(kind.build(), n, p, &weights);
        let mut sizes = Vec::new();
        while let Some(c) = sched.next_chunk() {
            sizes.push(c.len);
        }
        sizes
    }

    #[test]
    fn static_gives_one_chunk_per_worker() {
        let sizes = partition(PolicyKind::Static, 100, 4);
        assert_eq!(sizes, vec![25, 25, 25, 25]);
        let sizes = partition(PolicyKind::Static, 10, 4);
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn ss_gives_unit_chunks() {
        let sizes = partition(PolicyKind::Ss, 7, 3);
        assert_eq!(sizes, vec![1; 7]);
    }

    #[test]
    fn gss_decreases_exponentially() {
        let sizes = partition(PolicyKind::Gss, 100, 4);
        assert_eq!(sizes[0], 25);
        assert!(sizes.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(sizes.iter().sum::<u64>(), 100);
    }

    #[test]
    fn tss_decreases_linearly_to_one() {
        let sizes = partition(PolicyKind::Tss, 1000, 4);
        assert_eq!(sizes[0], 125); // f = N/2P
        assert!(sizes.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
        assert!(*sizes.last().unwrap() <= sizes[0]);
    }

    #[test]
    fn fac_halves_per_batch() {
        let sizes = partition(PolicyKind::Fac, 64, 2);
        // Batches: 16,16 | 8,8 | 4,4 | 2,2 | 1,1 | 1,1 (clamped tail)
        assert_eq!(&sizes[..4], &[16, 16, 8, 8]);
        assert_eq!(sizes.iter().sum::<u64>(), 64);
    }

    #[test]
    fn awf_with_uniform_weights_matches_fac_shape() {
        let fac = partition(PolicyKind::Fac, 128, 4);
        let awf = partition(PolicyKind::Awf, 128, 4);
        assert_eq!(fac.iter().sum::<u64>(), awf.iter().sum::<u64>());
        // Same first batch size (R/2P == R/2 * 1/P).
        assert_eq!(fac[0], awf[0]);
    }

    #[test]
    fn awf_skews_chunks_toward_fast_workers() {
        let weights = [2.0 / 3.0, 1.0 / 3.0];
        let mut sched = ChunkScheduler::new(PolicyKind::Awf.build(), 90, 2, &weights);
        let first = sched.next_chunk().unwrap();
        let second = sched.next_chunk().unwrap();
        assert_eq!(first.worker, 0);
        assert_eq!(second.worker, 1);
        assert!(
            first.len >= 2 * second.len - 1,
            "fast worker chunk {} vs slow {}",
            first.len,
            second.len
        );
    }

    #[test]
    fn awf_accepts_unnormalized_weights() {
        // The scheduler's contract: "normalized or not — policies only use
        // ratios". Raw measured rates must yield the same partition as
        // their normalized form.
        let sizes_of = |weights: &[f64]| {
            let mut sched = ChunkScheduler::new(PolicyKind::Awf.build(), 90, 2, weights);
            let mut sizes = Vec::new();
            while let Some(c) = sched.next_chunk() {
                sizes.push(c.len);
            }
            sizes
        };
        assert_eq!(sizes_of(&[2.0, 1.0]), sizes_of(&[2.0 / 3.0, 1.0 / 3.0]));
        // And a degenerate skew no longer collapses into one giant chunk.
        let sizes = sizes_of(&[2.0e9, 1.0e9]);
        assert!(sizes.len() > 2, "batched partition expected: {sizes:?}");
        assert_eq!(sizes.iter().sum::<u64>(), 90);
    }

    #[test]
    fn kind_roundtrips_names() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build().name(), kind.name());
        }
        assert!(PolicyKind::Awf.is_adaptive());
        assert!(!PolicyKind::Fac.is_adaptive());
    }
}
