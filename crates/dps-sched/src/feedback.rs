//! The chunk-completion feedback protocol.
//!
//! Engines report one [`FeedbackSink::report_chunk`] call per finished
//! chunk. The deterministic simulator reports *virtual* execution times;
//! the OS-thread engine reports *wall-clock* times. Only relative rates
//! matter downstream, so application code behaves identically on both.

use std::sync::Mutex;

/// Where engines deliver per-chunk completion reports.
///
/// `worker` is the thread index within the executing collection, `iters`
/// the number of loop iterations the chunk covered, and `secs` the
/// execution time in the engine's own notion of time (virtual or wall).
pub trait FeedbackSink: Send + Sync {
    /// Record that `worker` finished a chunk of `iters` iterations in
    /// `secs` seconds.
    fn report_chunk(&self, worker: usize, iters: u64, secs: f64);
}

/// Lifetime statistics of one worker.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Chunks completed.
    pub chunks: u64,
    /// Iterations completed.
    pub iters: u64,
    /// Total execution seconds (engine time).
    pub secs: f64,
}

impl WorkerStats {
    /// Measured execution rate in iterations per second, if any work was
    /// reported.
    pub fn rate(&self) -> Option<f64> {
        (self.secs > 0.0 && self.iters > 0).then(|| self.iters as f64 / self.secs)
    }
}

/// Aggregates chunk-completion reports into per-worker rates and the
/// normalized weights AWF consumes.
///
/// The board is shared (`Arc`) between the engine — which writes through
/// the [`FeedbackSink`] impl — and the `ScheduledSplit` operation, which
/// reads [`weights`](Self::weights) at the start of each wave.
#[derive(Debug, Default)]
pub struct FeedbackBoard {
    stats: Mutex<Vec<WorkerStats>>,
}

impl FeedbackBoard {
    /// Empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the per-worker statistics (at least `workers` entries).
    pub fn stats(&self, workers: usize) -> Vec<WorkerStats> {
        let mut s = self.stats.lock().expect("feedback board poisoned").clone();
        if s.len() < workers {
            s.resize(workers, WorkerStats::default());
        }
        s
    }

    /// Per-worker weights, normalized to sum to 1.
    ///
    /// Workers with measured rates are weighted proportionally; workers
    /// with no reports yet are assumed to run at the mean measured rate
    /// (uniform when nothing has been measured — the AWF cold start).
    pub fn weights(&self, workers: usize) -> Vec<f64> {
        let stats = self.stats(workers);
        let rates: Vec<Option<f64>> = stats.iter().take(workers).map(WorkerStats::rate).collect();
        let measured: Vec<f64> = rates.iter().filter_map(|r| *r).collect();
        if measured.is_empty() {
            return vec![1.0 / workers.max(1) as f64; workers];
        }
        let mean = measured.iter().sum::<f64>() / measured.len() as f64;
        let filled: Vec<f64> = rates.into_iter().map(|r| r.unwrap_or(mean)).collect();
        let total: f64 = filled.iter().sum();
        filled.into_iter().map(|r| r / total).collect()
    }

    /// Forget all reports (e.g. between benchmark configurations).
    pub fn reset(&self) {
        self.stats.lock().expect("feedback board poisoned").clear();
    }

    /// Total chunks reported across all workers.
    pub fn total_chunks(&self) -> u64 {
        self.stats
            .lock()
            .expect("feedback board poisoned")
            .iter()
            .map(|s| s.chunks)
            .sum()
    }
}

impl FeedbackSink for FeedbackBoard {
    fn report_chunk(&self, worker: usize, iters: u64, secs: f64) {
        let mut stats = self.stats.lock().expect("feedback board poisoned");
        if stats.len() <= worker {
            stats.resize(worker + 1, WorkerStats::default());
        }
        let s = &mut stats[worker];
        s.chunks += 1;
        s.iters += iters;
        s.secs += secs.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_board_yields_uniform_weights() {
        let b = FeedbackBoard::new();
        assert_eq!(b.weights(4), vec![0.25; 4]);
        assert_eq!(b.total_chunks(), 0);
    }

    #[test]
    fn weights_follow_measured_rates() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 100, 1.0); // 100 it/s
        b.report_chunk(1, 100, 2.0); // 50 it/s
        let w = b.weights(2);
        assert!((w[0] - 2.0 / 3.0).abs() < 1e-12, "{w:?}");
        assert!((w[1] - 1.0 / 3.0).abs() < 1e-12, "{w:?}");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unmeasured_workers_get_mean_rate() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 300, 1.0);
        b.report_chunk(1, 100, 1.0);
        // Worker 2 never reported: assume the mean (200 it/s).
        let w = b.weights(3);
        assert!((w[2] - 200.0 / 600.0).abs() < 1e-12, "{w:?}");
    }

    #[test]
    fn reports_accumulate_and_reset() {
        let b = FeedbackBoard::new();
        b.report_chunk(1, 10, 0.5);
        b.report_chunk(1, 30, 1.5);
        let s = b.stats(2)[1];
        assert_eq!(s.chunks, 2);
        assert_eq!(s.iters, 40);
        assert!((s.rate().unwrap() - 20.0).abs() < 1e-12);
        b.reset();
        assert_eq!(b.total_chunks(), 0);
        assert_eq!(b.stats(2)[1], WorkerStats::default());
    }

    #[test]
    fn zero_time_report_is_not_a_rate() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 5, 0.0);
        assert_eq!(b.stats(1)[0].rate(), None);
        assert_eq!(b.weights(1), vec![1.0]);
    }
}
