//! The chunk-completion feedback protocol.
//!
//! Engines report one [`FeedbackSink::report_chunk`] call per finished
//! chunk. The deterministic simulator reports *virtual* execution times;
//! the OS-thread engine reports *wall-clock* times. Only relative rates
//! matter downstream, so application code behaves identically on both.
//!
//! # Hot-path design
//!
//! Every chunk completion in the system funnels through one board, so the
//! report path must not serialize workers against each other. The board is
//! **sharded**: each worker owns one cache-line-padded [`Slot`] that only it
//! writes (a single-writer seqlock), so [`report_chunk`] is a wait-free
//! write into the reporter's own cache lines — no shared mutex, no
//! cross-worker cache-line traffic. All folding (rate estimation, trimming,
//! recency weighting, normalization) happens on the **read side**
//! ([`weights`](FeedbackBoard::weights) runs once per scheduling wave, not
//! once per chunk) and reproduces the pre-sharding implementation
//! ([`LegacyFeedbackBoard`](crate::legacy::LegacyFeedbackBoard)) bit for
//! bit — property-tested in `tests/proptest_feedback.rs`.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::policy::PolicyKind;

/// Per-worker chunk samples kept for the sample-based estimators.
pub(crate) const MAX_SAMPLES: usize = 64;

/// Per-worker batch totals kept for the batch-weighted estimator.
pub(crate) const MAX_BATCHES: usize = 32;

/// Where engines deliver per-chunk completion reports.
///
/// `worker` is the thread index within the executing collection, `iters`
/// the number of loop iterations the chunk covered, and `secs` the
/// execution time in the engine's own notion of time (virtual or wall).
pub trait FeedbackSink: Send + Sync {
    /// Record that `worker` finished a chunk of `iters` iterations in
    /// `secs` seconds.
    fn report_chunk(&self, worker: usize, iters: u64, secs: f64);

    /// Record several completed chunks of `worker` at once, in completion
    /// order. Equivalent to one [`report_chunk`](Self::report_chunk) call
    /// per entry; sinks may override it to amortize their per-report
    /// synchronization (the [`FeedbackBoard`] publishes the whole batch
    /// under one seqlock write section).
    fn report_batch(&self, worker: usize, chunks: &[(u64, f64)]) {
        for &(iters, secs) in chunks {
            self.report_chunk(worker, iters, secs);
        }
    }

    /// The engine lost `worker` (node failure): its measurements no longer
    /// describe a live resource. Default: ignore.
    fn worker_lost(&self, worker: usize) {
        let _ = worker;
    }
}

/// Lifetime statistics of one worker.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Chunks completed.
    pub chunks: u64,
    /// Iterations completed.
    pub iters: u64,
    /// Total execution seconds (engine time).
    pub secs: f64,
}

impl WorkerStats {
    /// Measured execution rate in iterations per second, if any work was
    /// reported.
    pub fn rate(&self) -> Option<f64> {
        (self.secs > 0.0 && self.iters > 0).then(|| self.iters as f64 / self.secs)
    }
}

/// How a [`FeedbackBoard`] turns chunk-completion reports into per-worker
/// rates — the estimator menu behind the AWF policy family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateEstimator {
    /// `Σ iters / Σ secs` over the worker's lifetime — exact but sensitive
    /// to a single pathological sample. The classic AWF estimator.
    Aggregate,
    /// Trimmed mean of the recent per-chunk rates: the given fraction
    /// (clamped to `0..=0.4`) is dropped from each end of the sorted
    /// samples — the outlier-resistant estimation of the DLS robustness
    /// literature (arXiv:1804.11115).
    Trimmed(f64),
    /// AWF-B **batch-time weighting** (Cariño & Banicescu): reports are
    /// grouped into *batches* — one batch per scheduling wave, closed each
    /// time [`weights`](FeedbackBoard::weights) is read — and batch `b`'s
    /// `(iters, secs)` totals enter the rate with weight `b + 1`, so recent
    /// waves dominate and the estimate tracks drifting node speeds.
    BatchWeighted,
    /// AWF-C **chunk-time weighting** (Cariño & Banicescu): every
    /// individual chunk report enters the rate with a weight linear in its
    /// arrival position — the finest-grained recency weighting, adapting
    /// within a wave at the cost of more variance than AWF-B.
    ChunkWeighted,
}

/// Trimmed-mean rate over `(iters, secs)` measurements.
pub(crate) fn trimmed_rate<'a>(
    samples: impl Iterator<Item = &'a (f64, f64)>,
    trim: f64,
) -> Option<f64> {
    let mut sorted: Vec<f64> = samples
        .filter(|&&(iters, secs)| secs > 0.0 && iters > 0.0)
        .map(|&(iters, secs)| iters / secs)
        .collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    let drop = ((sorted.len() as f64) * trim).floor() as usize;
    let kept = &sorted[drop..sorted.len() - drop];
    if kept.is_empty() {
        return None;
    }
    Some(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// Linearly recency-weighted rate over `(iters, secs)` measurements in
/// arrival order: measurement `j` (0-based) carries weight `j + 1`, so
/// `rate = Σ (j+1)·iters_j / Σ (j+1)·secs_j` — the AWF-B/AWF-C
/// weighted-performance formula.
pub(crate) fn recency_weighted_rate<'a>(
    measurements: impl Iterator<Item = &'a (f64, f64)>,
) -> Option<f64> {
    let (mut wi, mut ws) = (0.0f64, 0.0f64);
    for (j, &(iters, secs)) in measurements.enumerate() {
        let w = (j + 1) as f64;
        wi += w * iters;
        ws += w * secs;
    }
    (ws > 0.0 && wi > 0.0).then(|| wi / ws)
}

/// Normalize per-worker rates into weights summing to 1; unmeasured workers
/// are assumed to run at the mean measured rate (uniform on a cold board).
pub(crate) fn weights_from_rates(rates: Vec<Option<f64>>, workers: usize) -> Vec<f64> {
    let measured: Vec<f64> = rates.iter().filter_map(|r| *r).collect();
    if measured.is_empty() {
        return vec![1.0 / workers.max(1) as f64; workers];
    }
    let mean = measured.iter().sum::<f64>() / measured.len() as f64;
    let filled: Vec<f64> = rates.into_iter().map(|r| r.unwrap_or(mean)).collect();
    let total: f64 = filled.iter().sum();
    filled.into_iter().map(|r| r / total).collect()
}

// ---------------------------------------------------------------------------
// The per-worker report slot.
// ---------------------------------------------------------------------------

/// One worker's report state: written only by that worker's reporter (the
/// single-writer seqlock discipline), folded lock-free by readers.
///
/// Alignment pads the slot to its own cache lines, so one worker's reports
/// never invalidate another worker's slot — the false-sharing half of the
/// old three-mutex bottleneck.
#[repr(align(128))]
struct Slot {
    /// Seqlock word: odd while a write section is in progress. The intended
    /// single writer claims it with one uncontended CAS; the CAS only spins
    /// if two threads misuse the same worker index concurrently (or on the
    /// rare cross-thread [`FeedbackSink::worker_lost`] / reset paths).
    seq: AtomicU32,
    /// Batch epoch the open accumulator belongs to (see
    /// [`FeedbackBoard::weights`]).
    open_epoch: AtomicU32,
    /// Lifetime totals ([`WorkerStats`]); `secs` stored as `f64` bits.
    chunks: AtomicU64,
    iters: AtomicU64,
    secs: AtomicU64,
    /// Samples ever pushed; ring position = `sample_count % MAX_SAMPLES`.
    sample_count: AtomicU64,
    sample_iters: [AtomicU64; MAX_SAMPLES],
    sample_secs: [AtomicU64; MAX_SAMPLES],
    /// Batches ever closed; ring position = `batch_count % MAX_BATCHES`.
    batch_count: AtomicU64,
    batch_iters: [AtomicU64; MAX_BATCHES],
    batch_secs: [AtomicU64; MAX_BATCHES],
    /// The batch currently accumulating (reports since the last epoch).
    open_iters: AtomicU64,
    open_secs: AtomicU64,
}

#[inline]
fn load_f64(a: &AtomicU64) -> f64 {
    f64::from_bits(a.load(Ordering::Relaxed))
}

#[inline]
fn store_f64(a: &AtomicU64, v: f64) {
    a.store(v.to_bits(), Ordering::Relaxed);
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU32::new(0),
            open_epoch: AtomicU32::new(0),
            chunks: AtomicU64::new(0),
            iters: AtomicU64::new(0),
            secs: AtomicU64::new(0),
            sample_count: AtomicU64::new(0),
            sample_iters: std::array::from_fn(|_| AtomicU64::new(0)),
            sample_secs: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_count: AtomicU64::new(0),
            batch_iters: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_secs: std::array::from_fn(|_| AtomicU64::new(0)),
            open_iters: AtomicU64::new(0),
            open_secs: AtomicU64::new(0),
        }
    }

    /// Enter a write section: one uncontended CAS for the slot's owner.
    fn write_claim(&self) -> u32 {
        loop {
            let s = self.seq.load(Ordering::Relaxed);
            if s & 1 == 0
                && self
                    .seq
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return s;
            }
            std::hint::spin_loop();
        }
    }

    /// Leave a write section entered at sequence `s`.
    fn write_release(&self, s: u32) {
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Run `read` against a consistent snapshot of the slot (seqlock retry).
    fn read_consistent<R>(&self, mut read: impl FnMut(&Self) -> R) -> R {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let out = read(self);
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return out;
            }
        }
    }

    /// Append one report. Caller holds the write section.
    fn push(&self, iters: u64, secs: f64, epoch: u32) {
        self.chunks
            .store(self.chunks.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.iters.store(
            self.iters.load(Ordering::Relaxed) + iters,
            Ordering::Relaxed,
        );
        store_f64(&self.secs, load_f64(&self.secs) + secs.max(0.0));
        if secs > 0.0 && iters > 0 {
            // The epoch moved since this open batch started accumulating: a
            // weights() read closed the batch; retire it into the ring.
            if self.open_epoch.load(Ordering::Relaxed) != epoch {
                let open_s = load_f64(&self.open_secs);
                if open_s > 0.0 {
                    let n = self.batch_count.load(Ordering::Relaxed);
                    let at = (n % MAX_BATCHES as u64) as usize;
                    store_f64(&self.batch_iters[at], load_f64(&self.open_iters));
                    store_f64(&self.batch_secs[at], open_s);
                    self.batch_count.store(n + 1, Ordering::Relaxed);
                    store_f64(&self.open_iters, 0.0);
                    store_f64(&self.open_secs, 0.0);
                }
                self.open_epoch.store(epoch, Ordering::Relaxed);
            }
            let n = self.sample_count.load(Ordering::Relaxed);
            let at = (n % MAX_SAMPLES as u64) as usize;
            store_f64(&self.sample_iters[at], iters as f64);
            store_f64(&self.sample_secs[at], secs);
            self.sample_count.store(n + 1, Ordering::Relaxed);
            store_f64(&self.open_iters, load_f64(&self.open_iters) + iters as f64);
            store_f64(&self.open_secs, load_f64(&self.open_secs) + secs);
        }
    }

    /// Zero every measurement. Caller holds the write section.
    fn clear(&self) {
        self.chunks.store(0, Ordering::Relaxed);
        self.iters.store(0, Ordering::Relaxed);
        self.secs.store(0, Ordering::Relaxed);
        self.sample_count.store(0, Ordering::Relaxed);
        self.batch_count.store(0, Ordering::Relaxed);
        self.open_iters.store(0, Ordering::Relaxed);
        self.open_secs.store(0, Ordering::Relaxed);
    }

    /// Recent samples, oldest first (raw loads; wrap in
    /// [`read_consistent`](Self::read_consistent)).
    fn samples(&self) -> Vec<(f64, f64)> {
        let n = self.sample_count.load(Ordering::Relaxed);
        let kept = n.min(MAX_SAMPLES as u64);
        (n - kept..n)
            .map(|j| {
                let at = (j % MAX_SAMPLES as u64) as usize;
                (
                    load_f64(&self.sample_iters[at]),
                    load_f64(&self.sample_secs[at]),
                )
            })
            .collect()
    }

    /// Closed batches plus the still-open accumulator as the newest batch,
    /// oldest first, capped to the last [`MAX_BATCHES`] — exactly the view
    /// the legacy board's read-time batch roll produced. Raw loads; wrap in
    /// [`read_consistent`](Self::read_consistent).
    fn batches(&self) -> Vec<(f64, f64)> {
        let n = self.batch_count.load(Ordering::Relaxed);
        let kept = n.min(MAX_BATCHES as u64);
        let mut out: Vec<(f64, f64)> = (n - kept..n)
            .map(|j| {
                let at = (j % MAX_BATCHES as u64) as usize;
                (
                    load_f64(&self.batch_iters[at]),
                    load_f64(&self.batch_secs[at]),
                )
            })
            .collect();
        let open = (load_f64(&self.open_iters), load_f64(&self.open_secs));
        if open.1 > 0.0 {
            if out.len() == MAX_BATCHES {
                out.remove(0);
            }
            out.push(open);
        }
        out
    }

    /// Lifetime totals (raw loads; wrap in
    /// [`read_consistent`](Self::read_consistent)).
    fn stats(&self) -> WorkerStats {
        WorkerStats {
            chunks: self.chunks.load(Ordering::Relaxed),
            iters: self.iters.load(Ordering::Relaxed),
            secs: load_f64(&self.secs),
        }
    }
}

// ---------------------------------------------------------------------------
// The lock-free growable slot directory.
// ---------------------------------------------------------------------------

/// Log2 of the first segment's slot count.
const SEG0_BITS: u32 = 6;

/// Segments double in size; 26 of them cover ~2³¹ worker indices.
const NUM_SEGS: usize = 26;

/// Map a worker index to its `(segment, offset)` in the doubling directory:
/// segment `k` holds `64 << k` slots.
#[inline]
fn locate(worker: usize) -> (usize, usize) {
    let pos = worker + (1usize << SEG0_BITS);
    let seg = (pos.ilog2() - SEG0_BITS) as usize;
    (seg, pos - (1usize << (seg as u32 + SEG0_BITS)))
}

/// Aggregates chunk-completion reports into per-worker rates and the
/// normalized weights the AWF policy family consumes.
///
/// The board is shared (`Arc`) between the engine — which writes through
/// the [`FeedbackSink`] impl — and the `ScheduledSplit` operation, which
/// reads [`weights`](Self::weights) at the start of each wave.
///
/// The estimator is chosen at construction ([`RateEstimator`]);
/// [`for_policy`](Self::for_policy) picks the matching estimator for an
/// AWF-family [`PolicyKind`].
///
/// # Concurrency
///
/// Reports are wait-free writes into the reporting worker's own padded slot
/// (see the module docs); the engines uphold the single-writer discipline —
/// worker `w`'s completions are reported by one thread at a time. Violating
/// it is safe (a per-slot claim CAS serializes rogue concurrent writers)
/// but no longer wait-free. Reads ([`weights`](Self::weights),
/// [`stats`](Self::stats)) fold all slots through a seqlock and may retry
/// against an active writer; they run once per scheduling wave.
pub struct FeedbackBoard {
    /// Doubling slot segments, allocated on first touch.
    segments: [OnceLock<Box<[Slot]>>; NUM_SEGS],
    /// Highest reporter index + 1 (monotone until [`reset`](Self::reset)).
    len: AtomicUsize,
    /// Batch epoch: bumped by each batch-weighted weight read; reports
    /// carrying a stale epoch retire their open batch first.
    epoch: AtomicU32,
    estimator: RateEstimator,
}

impl std::fmt::Debug for FeedbackBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedbackBoard")
            .field("estimator", &self.estimator)
            .field("workers", &self.len.load(Ordering::Relaxed))
            .field("total_chunks", &self.total_chunks())
            .finish()
    }
}

impl Default for FeedbackBoard {
    fn default() -> Self {
        Self::with_estimator(RateEstimator::Aggregate)
    }
}

impl FeedbackBoard {
    /// Empty board with the aggregate rate estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty board with an explicit rate estimator.
    pub fn with_estimator(estimator: RateEstimator) -> Self {
        let estimator = match estimator {
            RateEstimator::Trimmed(t) => RateEstimator::Trimmed(t.clamp(0.0, 0.4)),
            e => e,
        };
        Self {
            segments: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
            epoch: AtomicU32::new(0),
            estimator,
        }
    }

    /// Empty board with the outlier-resistant trimmed-mean estimator
    /// ([`RateEstimator::Trimmed`]).
    pub fn with_trimmed_rates(trim: f64) -> Self {
        Self::with_estimator(RateEstimator::Trimmed(trim))
    }

    /// The board an AWF-family policy expects: batch-time weighting for
    /// [`PolicyKind::AwfB`], chunk-time weighting for
    /// [`PolicyKind::AwfC`], the aggregate estimator otherwise.
    pub fn for_policy(kind: PolicyKind) -> Self {
        Self::with_estimator(match kind {
            PolicyKind::AwfB => RateEstimator::BatchWeighted,
            PolicyKind::AwfC => RateEstimator::ChunkWeighted,
            _ => RateEstimator::Aggregate,
        })
    }

    /// The estimator this board was constructed with.
    pub fn estimator(&self) -> RateEstimator {
        self.estimator
    }

    /// Worker `w`'s slot, allocating its segment on first touch.
    fn slot(&self, worker: usize) -> &Slot {
        let (seg, idx) = locate(worker);
        assert!(seg < NUM_SEGS, "worker index {worker} out of slot range");
        let slots = self.segments[seg].get_or_init(|| {
            (0..(1usize << (seg as u32 + SEG0_BITS)))
                .map(|_| Slot::new())
                .collect()
        });
        &slots[idx]
    }

    /// Worker `w`'s slot, if its segment was ever touched.
    fn slot_get(&self, worker: usize) -> Option<&Slot> {
        let (seg, idx) = locate(worker);
        self.segments
            .get(seg)
            .and_then(|s| s.get())
            .map(|s| &s[idx])
    }

    /// Slot of `worker` only if it has reported since the last reset.
    fn live_slot(&self, worker: usize) -> Option<&Slot> {
        if worker >= self.len.load(Ordering::Acquire) {
            return None;
        }
        self.slot_get(worker)
    }

    /// Snapshot of the per-worker statistics (at least `workers` entries).
    pub fn stats(&self, workers: usize) -> Vec<WorkerStats> {
        let n = self.len.load(Ordering::Acquire).max(workers);
        (0..n)
            .map(|w| match self.live_slot(w) {
                Some(slot) => slot.read_consistent(Slot::stats),
                None => WorkerStats::default(),
            })
            .collect()
    }

    /// Per-worker measured rates (estimator per construction), `None` for
    /// workers with no usable reports.
    fn rates(&self, workers: usize) -> Vec<Option<f64>> {
        (0..workers)
            .map(|w| {
                let slot = self.live_slot(w)?;
                match self.estimator {
                    RateEstimator::Aggregate => slot.read_consistent(Slot::stats).rate(),
                    RateEstimator::Trimmed(trim) => {
                        trimmed_rate(slot.read_consistent(Slot::samples).iter(), trim)
                    }
                    RateEstimator::ChunkWeighted => {
                        recency_weighted_rate(slot.read_consistent(Slot::samples).iter())
                    }
                    RateEstimator::BatchWeighted => {
                        recency_weighted_rate(slot.read_consistent(Slot::batches).iter())
                    }
                }
            })
            .collect()
    }

    /// Per-worker weights, normalized to sum to 1.
    ///
    /// Workers with measured rates are weighted proportionally; workers
    /// with no reports yet are assumed to run at the mean measured rate
    /// (uniform when nothing has been measured — the AWF cold start).
    ///
    /// For the batch-weighted estimator this read also *closes the current
    /// batch*: the `ScheduledSplit` reads weights exactly once per wave, so
    /// reports between two reads form one batch. (The close is lazy — the
    /// read bumps the batch epoch and folds each worker's open batch as its
    /// newest; the worker's next report retires it into the ring.)
    pub fn weights(&self, workers: usize) -> Vec<f64> {
        if self.estimator == RateEstimator::BatchWeighted {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
        weights_from_rates(self.rates(workers), workers)
    }

    /// Forget all reports (e.g. between benchmark configurations).
    pub fn reset(&self) {
        let n = self.len.load(Ordering::Acquire);
        for w in 0..n {
            if let Some(slot) = self.slot_get(w) {
                let s = slot.write_claim();
                slot.clear();
                slot.write_release(s);
            }
        }
        self.len.store(0, Ordering::Release);
    }

    /// Total chunks reported across all workers.
    pub fn total_chunks(&self) -> u64 {
        let n = self.len.load(Ordering::Acquire);
        (0..n)
            .filter_map(|w| self.slot_get(w))
            .map(|s| s.chunks.load(Ordering::Relaxed))
            .sum()
    }
}

impl FeedbackBoard {
    /// Publish `worker` as live. Steady state (the worker already reported)
    /// is one relaxed load of a shared-clean line; only a worker's first
    /// report (or the first after a reset) pays the shared RMW — an
    /// unconditional `fetch_max` here would put cross-worker cache-line
    /// ownership traffic back on the wait-free report path.
    #[inline]
    fn publish_len(&self, worker: usize) {
        if self.len.load(Ordering::Relaxed) <= worker {
            self.len.fetch_max(worker + 1, Ordering::AcqRel);
        }
    }
}

impl FeedbackSink for FeedbackBoard {
    fn report_chunk(&self, worker: usize, iters: u64, secs: f64) {
        let slot = self.slot(worker);
        let epoch = self.epoch.load(Ordering::Relaxed);
        let s = slot.write_claim();
        slot.push(iters, secs, epoch);
        slot.write_release(s);
        self.publish_len(worker);
    }

    fn report_batch(&self, worker: usize, chunks: &[(u64, f64)]) {
        if chunks.is_empty() {
            return;
        }
        let slot = self.slot(worker);
        let epoch = self.epoch.load(Ordering::Relaxed);
        let s = slot.write_claim();
        for &(iters, secs) in chunks {
            slot.push(iters, secs, epoch);
        }
        slot.write_release(s);
        self.publish_len(worker);
    }

    fn worker_lost(&self, worker: usize) {
        if let Some(slot) = self.live_slot(worker) {
            let s = slot.write_claim();
            slot.clear();
            slot.write_release(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_board_yields_uniform_weights() {
        let b = FeedbackBoard::new();
        assert_eq!(b.weights(4), vec![0.25; 4]);
        assert_eq!(b.total_chunks(), 0);
    }

    #[test]
    fn weights_follow_measured_rates() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 100, 1.0); // 100 it/s
        b.report_chunk(1, 100, 2.0); // 50 it/s
        let w = b.weights(2);
        assert!((w[0] - 2.0 / 3.0).abs() < 1e-12, "{w:?}");
        assert!((w[1] - 1.0 / 3.0).abs() < 1e-12, "{w:?}");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unmeasured_workers_get_mean_rate() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 300, 1.0);
        b.report_chunk(1, 100, 1.0);
        // Worker 2 never reported: assume the mean (200 it/s).
        let w = b.weights(3);
        assert!((w[2] - 200.0 / 600.0).abs() < 1e-12, "{w:?}");
    }

    #[test]
    fn reports_accumulate_and_reset() {
        let b = FeedbackBoard::new();
        b.report_chunk(1, 10, 0.5);
        b.report_chunk(1, 30, 1.5);
        let s = b.stats(2)[1];
        assert_eq!(s.chunks, 2);
        assert_eq!(s.iters, 40);
        assert!((s.rate().unwrap() - 20.0).abs() < 1e-12);
        b.reset();
        assert_eq!(b.total_chunks(), 0);
        assert_eq!(b.stats(2)[1], WorkerStats::default());
    }

    #[test]
    fn zero_time_report_is_not_a_rate() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 5, 0.0);
        assert_eq!(b.stats(1)[0].rate(), None);
        assert_eq!(b.weights(1), vec![1.0]);
    }

    #[test]
    fn batch_report_equals_chunk_reports() {
        let one = FeedbackBoard::with_estimator(RateEstimator::ChunkWeighted);
        let batched = FeedbackBoard::with_estimator(RateEstimator::ChunkWeighted);
        let reports = [(10u64, 0.5f64), (30, 1.5), (20, 0.25)];
        for &(i, s) in &reports {
            one.report_chunk(3, i, s);
        }
        batched.report_batch(3, &reports);
        assert_eq!(one.stats(4), batched.stats(4));
        assert_eq!(one.weights(4), batched.weights(4));
    }

    #[test]
    fn sample_ring_keeps_the_newest_window() {
        // More reports than MAX_SAMPLES: the trimmed estimator must see only
        // the newest window, so the early slow samples age out entirely.
        let b = FeedbackBoard::with_trimmed_rates(0.0);
        for _ in 0..MAX_SAMPLES {
            b.report_chunk(0, 10, 1.0); // 10 it/s, will be evicted
        }
        for _ in 0..MAX_SAMPLES {
            b.report_chunk(0, 40, 1.0); // 40 it/s fills the whole ring
        }
        b.report_chunk(1, 40, 1.0);
        let w = b.weights(2);
        assert!((w[0] - 0.5).abs() < 1e-12, "old samples evicted: {w:?}");
    }

    /// One straggler sample (a chunk that took 100× longer than its peers)
    /// wrecks the aggregate estimator but barely moves the trimmed mean.
    #[test]
    fn trimmed_mean_shrugs_off_a_straggler() {
        let plain = FeedbackBoard::new();
        let trimmed = FeedbackBoard::with_trimmed_rates(0.2);
        for board in [&plain, &trimmed] {
            // Worker 0 is genuinely 2× faster than worker 1 (100 vs 50 it/s)
            // but suffers one pathological chunk at 1 it/s.
            for _ in 0..9 {
                board.report_chunk(0, 100, 1.0);
                board.report_chunk(1, 50, 1.0);
            }
            board.report_chunk(0, 100, 100.0); // the straggler
            board.report_chunk(1, 50, 1.0);
        }
        let wp = plain.weights(2);
        let wt = trimmed.weights(2);
        // Aggregate estimator: worker 0's rate collapses to 1000/109 ≈ 9.2,
        // inverting the true ordering.
        assert!(wp[0] < wp[1], "aggregate estimator is fooled: {wp:?}");
        // Trimmed estimator keeps the true 2:1 ordering.
        assert!(
            (wt[0] - 2.0 / 3.0).abs() < 0.05,
            "trimmed weights off: {wt:?}"
        );
        assert!(wt[0] > 1.8 * wt[1], "{wt:?}");
    }

    #[test]
    fn trimmed_mean_with_few_samples_still_estimates() {
        let b = FeedbackBoard::with_trimmed_rates(0.25);
        b.report_chunk(0, 10, 1.0);
        let w = b.weights(2);
        assert!(w[0] > 0.0 && w[1] > 0.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worker_lost_forgets_its_measurements() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 100, 1.0);
        b.report_chunk(1, 50, 1.0);
        b.worker_lost(0);
        assert_eq!(b.stats(2)[0], WorkerStats::default());
        // Worker 0 is back to "unmeasured": it gets the mean rate.
        let w = b.weights(2);
        assert!((w[0] - 0.5).abs() < 1e-12, "{w:?}");
    }

    #[test]
    fn for_policy_picks_the_matching_estimator() {
        assert_eq!(
            FeedbackBoard::for_policy(PolicyKind::AwfB).estimator(),
            RateEstimator::BatchWeighted
        );
        assert_eq!(
            FeedbackBoard::for_policy(PolicyKind::AwfC).estimator(),
            RateEstimator::ChunkWeighted
        );
        assert_eq!(
            FeedbackBoard::for_policy(PolicyKind::Awf).estimator(),
            RateEstimator::Aggregate
        );
    }

    /// A worker that *was* slow and sped up: the recency-weighted
    /// estimators believe the recent fast measurements over the stale slow
    /// ones, while the aggregate estimator is stuck near the lifetime mean.
    #[test]
    fn chunk_weighting_tracks_a_speed_change() {
        let agg = FeedbackBoard::new();
        let awfc = FeedbackBoard::with_estimator(RateEstimator::ChunkWeighted);
        for board in [&agg, &awfc] {
            for _ in 0..10 {
                board.report_chunk(0, 10, 1.0); // 10 it/s historically
                board.report_chunk(1, 40, 1.0); // steady 40 it/s
            }
            for _ in 0..10 {
                board.report_chunk(0, 40, 1.0); // worker 0 caught up
                board.report_chunk(1, 40, 1.0);
            }
        }
        let wa = agg.weights(2);
        let wc = awfc.weights(2);
        // Aggregate: worker 0 still looks ~25/40 as fast as worker 1.
        assert!(wa[0] < 0.45, "{wa:?}");
        // Chunk-weighted: recent parity dominates — close to 50/50.
        assert!((wc[0] - 0.5).abs() < 0.07, "{wc:?}");
        assert!(wc[0] > wa[0], "recency weighting must track the change");
    }

    /// Batch weighting groups reports between weight reads and favours
    /// recent batches, so a speed change shows up across waves.
    #[test]
    fn batch_weighting_tracks_across_waves() {
        let b = FeedbackBoard::with_estimator(RateEstimator::BatchWeighted);
        // Wave 1: worker 0 slow.
        b.report_chunk(0, 10, 1.0);
        b.report_chunk(1, 40, 1.0);
        let w1 = b.weights(2); // closes batch 1
        assert!(w1[0] < w1[1], "{w1:?}");
        // Waves 2..5: worker 0 at parity.
        for _ in 0..4 {
            b.report_chunk(0, 40, 1.0);
            b.report_chunk(1, 40, 1.0);
            let _ = b.weights(2);
        }
        let w = b.weights(2);
        assert!((w[0] - 0.5).abs() < 0.04, "recent parity dominates: {w:?}");
        // The stale slow batch still has *some* pull: strictly below 1/2.
        assert!(w[0] < 0.5, "{w:?}");
    }

    /// AWF-B and AWF-C estimates agree when rates are stationary.
    #[test]
    fn weighted_estimators_agree_on_stationary_rates() {
        let awfb = FeedbackBoard::with_estimator(RateEstimator::BatchWeighted);
        let awfc = FeedbackBoard::with_estimator(RateEstimator::ChunkWeighted);
        for board in [&awfb, &awfc] {
            for _ in 0..5 {
                board.report_chunk(0, 60, 1.0);
                board.report_chunk(1, 30, 1.0);
                let _ = board.weights(2);
            }
        }
        let wb = awfb.weights(2);
        let wc = awfc.weights(2);
        assert!((wb[0] - 2.0 / 3.0).abs() < 1e-9, "{wb:?}");
        assert!((wc[0] - 2.0 / 3.0).abs() < 1e-9, "{wc:?}");
    }

    #[test]
    fn slots_span_segment_boundaries() {
        // Worker indices on both sides of the first segment boundary (64)
        // land in distinct slots and fold correctly.
        let b = FeedbackBoard::new();
        b.report_chunk(63, 100, 1.0);
        b.report_chunk(64, 50, 1.0);
        b.report_chunk(200, 25, 1.0);
        let s = b.stats(201);
        assert_eq!(s[63].iters, 100);
        assert_eq!(s[64].iters, 50);
        assert_eq!(s[200].iters, 25);
        assert_eq!(b.total_chunks(), 3);
    }

    #[test]
    fn concurrent_reporters_never_lose_reports() {
        use std::sync::Arc;
        let b = Arc::new(FeedbackBoard::new());
        let threads = 8;
        let per = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..per {
                        b.report_chunk(w, 1 + (i % 7), 1.0e-3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("reporter panicked");
        }
        let stats = b.stats(threads);
        for s in &stats[..threads] {
            assert_eq!(s.chunks, per);
            let expect_iters: u64 = (0..per).map(|i| 1 + (i % 7)).sum();
            assert_eq!(s.iters, expect_iters);
            assert!((s.secs - per as f64 * 1.0e-3).abs() < 1e-9);
        }
        assert_eq!(b.total_chunks(), threads as u64 * per);
    }
}
