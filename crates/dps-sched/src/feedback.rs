//! The chunk-completion feedback protocol.
//!
//! Engines report one [`FeedbackSink::report_chunk`] call per finished
//! chunk. The deterministic simulator reports *virtual* execution times;
//! the OS-thread engine reports *wall-clock* times. Only relative rates
//! matter downstream, so application code behaves identically on both.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::policy::PolicyKind;

/// Per-worker chunk samples kept for the sample-based estimators.
const MAX_SAMPLES: usize = 64;

/// Per-worker batch totals kept for the batch-weighted estimator.
const MAX_BATCHES: usize = 32;

/// Where engines deliver per-chunk completion reports.
///
/// `worker` is the thread index within the executing collection, `iters`
/// the number of loop iterations the chunk covered, and `secs` the
/// execution time in the engine's own notion of time (virtual or wall).
pub trait FeedbackSink: Send + Sync {
    /// Record that `worker` finished a chunk of `iters` iterations in
    /// `secs` seconds.
    fn report_chunk(&self, worker: usize, iters: u64, secs: f64);

    /// The engine lost `worker` (node failure): its measurements no longer
    /// describe a live resource. Default: ignore.
    fn worker_lost(&self, worker: usize) {
        let _ = worker;
    }
}

/// Lifetime statistics of one worker.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Chunks completed.
    pub chunks: u64,
    /// Iterations completed.
    pub iters: u64,
    /// Total execution seconds (engine time).
    pub secs: f64,
}

impl WorkerStats {
    /// Measured execution rate in iterations per second, if any work was
    /// reported.
    pub fn rate(&self) -> Option<f64> {
        (self.secs > 0.0 && self.iters > 0).then(|| self.iters as f64 / self.secs)
    }
}

/// How a [`FeedbackBoard`] turns chunk-completion reports into per-worker
/// rates — the estimator menu behind the AWF policy family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateEstimator {
    /// `Σ iters / Σ secs` over the worker's lifetime — exact but sensitive
    /// to a single pathological sample. The classic AWF estimator.
    Aggregate,
    /// Trimmed mean of the recent per-chunk rates: the given fraction
    /// (clamped to `0..=0.4`) is dropped from each end of the sorted
    /// samples — the outlier-resistant estimation of the DLS robustness
    /// literature (arXiv:1804.11115).
    Trimmed(f64),
    /// AWF-B **batch-time weighting** (Cariño & Banicescu): reports are
    /// grouped into *batches* — one batch per scheduling wave, closed each
    /// time [`weights`](FeedbackBoard::weights) is read — and batch `b`'s
    /// `(iters, secs)` totals enter the rate with weight `b + 1`, so recent
    /// waves dominate and the estimate tracks drifting node speeds.
    BatchWeighted,
    /// AWF-C **chunk-time weighting** (Cariño & Banicescu): every
    /// individual chunk report enters the rate with a weight linear in its
    /// arrival position — the finest-grained recency weighting, adapting
    /// within a wave at the cost of more variance than AWF-B.
    ChunkWeighted,
}

/// Per-worker batch accounting for [`RateEstimator::BatchWeighted`].
#[derive(Debug, Default, Clone)]
struct BatchTrack {
    /// Closed batches: summed `(iters, secs)` per scheduling wave.
    closed: VecDeque<(f64, f64)>,
    /// The batch currently accumulating (reports since the last
    /// weight read).
    open: (f64, f64),
}

/// Aggregates chunk-completion reports into per-worker rates and the
/// normalized weights the AWF policy family consumes.
///
/// The board is shared (`Arc`) between the engine — which writes through
/// the [`FeedbackSink`] impl — and the `ScheduledSplit` operation, which
/// reads [`weights`](Self::weights) at the start of each wave.
///
/// The estimator is chosen at construction ([`RateEstimator`]);
/// [`for_policy`](Self::for_policy) picks the matching estimator for an
/// AWF-family [`PolicyKind`].
#[derive(Debug)]
pub struct FeedbackBoard {
    stats: Mutex<Vec<WorkerStats>>,
    /// Recent per-chunk `(iters, secs)` samples per worker.
    samples: Mutex<Vec<VecDeque<(f64, f64)>>>,
    /// Per-wave batch totals per worker (batch-weighted estimator only).
    batches: Mutex<Vec<BatchTrack>>,
    estimator: RateEstimator,
}

impl Default for FeedbackBoard {
    fn default() -> Self {
        Self::with_estimator(RateEstimator::Aggregate)
    }
}

impl FeedbackBoard {
    /// Empty board with the aggregate rate estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty board with an explicit rate estimator.
    pub fn with_estimator(estimator: RateEstimator) -> Self {
        let estimator = match estimator {
            RateEstimator::Trimmed(t) => RateEstimator::Trimmed(t.clamp(0.0, 0.4)),
            e => e,
        };
        Self {
            stats: Mutex::new(Vec::new()),
            samples: Mutex::new(Vec::new()),
            batches: Mutex::new(Vec::new()),
            estimator,
        }
    }

    /// Empty board with the outlier-resistant trimmed-mean estimator
    /// ([`RateEstimator::Trimmed`]).
    pub fn with_trimmed_rates(trim: f64) -> Self {
        Self::with_estimator(RateEstimator::Trimmed(trim))
    }

    /// The board an AWF-family policy expects: batch-time weighting for
    /// [`PolicyKind::AwfB`], chunk-time weighting for
    /// [`PolicyKind::AwfC`], the aggregate estimator otherwise.
    pub fn for_policy(kind: PolicyKind) -> Self {
        Self::with_estimator(match kind {
            PolicyKind::AwfB => RateEstimator::BatchWeighted,
            PolicyKind::AwfC => RateEstimator::ChunkWeighted,
            _ => RateEstimator::Aggregate,
        })
    }

    /// The estimator this board was constructed with.
    pub fn estimator(&self) -> RateEstimator {
        self.estimator
    }

    /// Snapshot of the per-worker statistics (at least `workers` entries).
    pub fn stats(&self, workers: usize) -> Vec<WorkerStats> {
        let mut s = self.stats.lock().expect("feedback board poisoned").clone();
        if s.len() < workers {
            s.resize(workers, WorkerStats::default());
        }
        s
    }

    /// Trimmed-mean rate of one worker's recent chunk samples.
    fn trimmed_rate(samples: &VecDeque<(f64, f64)>, trim: f64) -> Option<f64> {
        let mut sorted: Vec<f64> = samples
            .iter()
            .filter(|&&(iters, secs)| secs > 0.0 && iters > 0.0)
            .map(|&(iters, secs)| iters / secs)
            .collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let drop = ((sorted.len() as f64) * trim).floor() as usize;
        let kept = &sorted[drop..sorted.len() - drop];
        if kept.is_empty() {
            return None;
        }
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }

    /// Linearly recency-weighted rate over `(iters, secs)` measurements in
    /// arrival order: measurement `j` (0-based) carries weight `j + 1`, so
    /// `rate = Σ (j+1)·iters_j / Σ (j+1)·secs_j` — the AWF-B/AWF-C
    /// weighted-performance formula.
    fn recency_weighted_rate<'a>(
        measurements: impl Iterator<Item = &'a (f64, f64)>,
    ) -> Option<f64> {
        let (mut wi, mut ws) = (0.0f64, 0.0f64);
        for (j, &(iters, secs)) in measurements.enumerate() {
            let w = (j + 1) as f64;
            wi += w * iters;
            ws += w * secs;
        }
        (ws > 0.0 && wi > 0.0).then(|| wi / ws)
    }

    /// Per-worker measured rates (estimator per construction), `None` for
    /// workers with no usable reports.
    fn rates(&self, workers: usize) -> Vec<Option<f64>> {
        match self.estimator {
            RateEstimator::Aggregate => self
                .stats(workers)
                .iter()
                .take(workers)
                .map(WorkerStats::rate)
                .collect(),
            RateEstimator::Trimmed(trim) => {
                let samples = self.samples.lock().expect("feedback board poisoned");
                (0..workers)
                    .map(|w| samples.get(w).and_then(|s| Self::trimmed_rate(s, trim)))
                    .collect()
            }
            RateEstimator::ChunkWeighted => {
                let samples = self.samples.lock().expect("feedback board poisoned");
                (0..workers)
                    .map(|w| {
                        samples
                            .get(w)
                            .and_then(|s| Self::recency_weighted_rate(s.iter()))
                    })
                    .collect()
            }
            RateEstimator::BatchWeighted => {
                // `weights()` rolled every open batch before calling here,
                // so the closed deque is the complete measurement history.
                let batches = self.batches.lock().expect("feedback board poisoned");
                (0..workers)
                    .map(|w| {
                        batches
                            .get(w)
                            .and_then(|t| Self::recency_weighted_rate(t.closed.iter()))
                    })
                    .collect()
            }
        }
    }

    /// Per-worker weights, normalized to sum to 1.
    ///
    /// Workers with measured rates are weighted proportionally; workers
    /// with no reports yet are assumed to run at the mean measured rate
    /// (uniform when nothing has been measured — the AWF cold start).
    ///
    /// For the batch-weighted estimator this read also *closes the current
    /// batch*: the `ScheduledSplit` reads weights exactly once per wave, so
    /// reports between two reads form one batch.
    pub fn weights(&self, workers: usize) -> Vec<f64> {
        if self.estimator == RateEstimator::BatchWeighted {
            self.roll_batches();
        }
        let rates = self.rates(workers);
        let measured: Vec<f64> = rates.iter().filter_map(|r| *r).collect();
        if measured.is_empty() {
            return vec![1.0 / workers.max(1) as f64; workers];
        }
        let mean = measured.iter().sum::<f64>() / measured.len() as f64;
        let filled: Vec<f64> = rates.into_iter().map(|r| r.unwrap_or(mean)).collect();
        let total: f64 = filled.iter().sum();
        filled.into_iter().map(|r| r / total).collect()
    }

    /// Close every worker's open batch (no-op for workers that reported
    /// nothing since the last close).
    fn roll_batches(&self) {
        let mut batches = self.batches.lock().expect("feedback board poisoned");
        for t in batches.iter_mut() {
            if t.open.1 > 0.0 {
                if t.closed.len() == MAX_BATCHES {
                    t.closed.pop_front();
                }
                t.closed.push_back(t.open);
                t.open = (0.0, 0.0);
            }
        }
    }

    /// Forget all reports (e.g. between benchmark configurations).
    pub fn reset(&self) {
        self.stats.lock().expect("feedback board poisoned").clear();
        self.samples
            .lock()
            .expect("feedback board poisoned")
            .clear();
        self.batches
            .lock()
            .expect("feedback board poisoned")
            .clear();
    }

    /// Total chunks reported across all workers.
    pub fn total_chunks(&self) -> u64 {
        self.stats
            .lock()
            .expect("feedback board poisoned")
            .iter()
            .map(|s| s.chunks)
            .sum()
    }
}

impl FeedbackSink for FeedbackBoard {
    fn report_chunk(&self, worker: usize, iters: u64, secs: f64) {
        {
            let mut stats = self.stats.lock().expect("feedback board poisoned");
            if stats.len() <= worker {
                stats.resize(worker + 1, WorkerStats::default());
            }
            let s = &mut stats[worker];
            s.chunks += 1;
            s.iters += iters;
            s.secs += secs.max(0.0);
        }
        if secs > 0.0 && iters > 0 {
            {
                let mut samples = self.samples.lock().expect("feedback board poisoned");
                if samples.len() <= worker {
                    samples.resize(worker + 1, VecDeque::new());
                }
                let q = &mut samples[worker];
                if q.len() == MAX_SAMPLES {
                    q.pop_front();
                }
                q.push_back((iters as f64, secs));
            }
            let mut batches = self.batches.lock().expect("feedback board poisoned");
            if batches.len() <= worker {
                batches.resize(worker + 1, BatchTrack::default());
            }
            batches[worker].open.0 += iters as f64;
            batches[worker].open.1 += secs;
        }
    }

    fn worker_lost(&self, worker: usize) {
        let mut stats = self.stats.lock().expect("feedback board poisoned");
        if let Some(s) = stats.get_mut(worker) {
            *s = WorkerStats::default();
        }
        drop(stats);
        let mut samples = self.samples.lock().expect("feedback board poisoned");
        if let Some(q) = samples.get_mut(worker) {
            q.clear();
        }
        drop(samples);
        let mut batches = self.batches.lock().expect("feedback board poisoned");
        if let Some(t) = batches.get_mut(worker) {
            *t = BatchTrack::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_board_yields_uniform_weights() {
        let b = FeedbackBoard::new();
        assert_eq!(b.weights(4), vec![0.25; 4]);
        assert_eq!(b.total_chunks(), 0);
    }

    #[test]
    fn weights_follow_measured_rates() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 100, 1.0); // 100 it/s
        b.report_chunk(1, 100, 2.0); // 50 it/s
        let w = b.weights(2);
        assert!((w[0] - 2.0 / 3.0).abs() < 1e-12, "{w:?}");
        assert!((w[1] - 1.0 / 3.0).abs() < 1e-12, "{w:?}");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unmeasured_workers_get_mean_rate() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 300, 1.0);
        b.report_chunk(1, 100, 1.0);
        // Worker 2 never reported: assume the mean (200 it/s).
        let w = b.weights(3);
        assert!((w[2] - 200.0 / 600.0).abs() < 1e-12, "{w:?}");
    }

    #[test]
    fn reports_accumulate_and_reset() {
        let b = FeedbackBoard::new();
        b.report_chunk(1, 10, 0.5);
        b.report_chunk(1, 30, 1.5);
        let s = b.stats(2)[1];
        assert_eq!(s.chunks, 2);
        assert_eq!(s.iters, 40);
        assert!((s.rate().unwrap() - 20.0).abs() < 1e-12);
        b.reset();
        assert_eq!(b.total_chunks(), 0);
        assert_eq!(b.stats(2)[1], WorkerStats::default());
    }

    #[test]
    fn zero_time_report_is_not_a_rate() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 5, 0.0);
        assert_eq!(b.stats(1)[0].rate(), None);
        assert_eq!(b.weights(1), vec![1.0]);
    }

    /// One straggler sample (a chunk that took 100× longer than its peers)
    /// wrecks the aggregate estimator but barely moves the trimmed mean.
    #[test]
    fn trimmed_mean_shrugs_off_a_straggler() {
        let plain = FeedbackBoard::new();
        let trimmed = FeedbackBoard::with_trimmed_rates(0.2);
        for board in [&plain, &trimmed] {
            // Worker 0 is genuinely 2× faster than worker 1 (100 vs 50 it/s)
            // but suffers one pathological chunk at 1 it/s.
            for _ in 0..9 {
                board.report_chunk(0, 100, 1.0);
                board.report_chunk(1, 50, 1.0);
            }
            board.report_chunk(0, 100, 100.0); // the straggler
            board.report_chunk(1, 50, 1.0);
        }
        let wp = plain.weights(2);
        let wt = trimmed.weights(2);
        // Aggregate estimator: worker 0's rate collapses to 1000/109 ≈ 9.2,
        // inverting the true ordering.
        assert!(wp[0] < wp[1], "aggregate estimator is fooled: {wp:?}");
        // Trimmed estimator keeps the true 2:1 ordering.
        assert!(
            (wt[0] - 2.0 / 3.0).abs() < 0.05,
            "trimmed weights off: {wt:?}"
        );
        assert!(wt[0] > 1.8 * wt[1], "{wt:?}");
    }

    #[test]
    fn trimmed_mean_with_few_samples_still_estimates() {
        let b = FeedbackBoard::with_trimmed_rates(0.25);
        b.report_chunk(0, 10, 1.0);
        let w = b.weights(2);
        assert!(w[0] > 0.0 && w[1] > 0.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worker_lost_forgets_its_measurements() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 100, 1.0);
        b.report_chunk(1, 50, 1.0);
        b.worker_lost(0);
        assert_eq!(b.stats(2)[0], WorkerStats::default());
        // Worker 0 is back to "unmeasured": it gets the mean rate.
        let w = b.weights(2);
        assert!((w[0] - 0.5).abs() < 1e-12, "{w:?}");
    }

    #[test]
    fn for_policy_picks_the_matching_estimator() {
        assert_eq!(
            FeedbackBoard::for_policy(PolicyKind::AwfB).estimator(),
            RateEstimator::BatchWeighted
        );
        assert_eq!(
            FeedbackBoard::for_policy(PolicyKind::AwfC).estimator(),
            RateEstimator::ChunkWeighted
        );
        assert_eq!(
            FeedbackBoard::for_policy(PolicyKind::Awf).estimator(),
            RateEstimator::Aggregate
        );
    }

    /// A worker that *was* slow and sped up: the recency-weighted
    /// estimators believe the recent fast measurements over the stale slow
    /// ones, while the aggregate estimator is stuck near the lifetime mean.
    #[test]
    fn chunk_weighting_tracks_a_speed_change() {
        let agg = FeedbackBoard::new();
        let awfc = FeedbackBoard::with_estimator(RateEstimator::ChunkWeighted);
        for board in [&agg, &awfc] {
            for _ in 0..10 {
                board.report_chunk(0, 10, 1.0); // 10 it/s historically
                board.report_chunk(1, 40, 1.0); // steady 40 it/s
            }
            for _ in 0..10 {
                board.report_chunk(0, 40, 1.0); // worker 0 caught up
                board.report_chunk(1, 40, 1.0);
            }
        }
        let wa = agg.weights(2);
        let wc = awfc.weights(2);
        // Aggregate: worker 0 still looks ~25/40 as fast as worker 1.
        assert!(wa[0] < 0.45, "{wa:?}");
        // Chunk-weighted: recent parity dominates — close to 50/50.
        assert!((wc[0] - 0.5).abs() < 0.07, "{wc:?}");
        assert!(wc[0] > wa[0], "recency weighting must track the change");
    }

    /// Batch weighting groups reports between weight reads and favours
    /// recent batches, so a speed change shows up across waves.
    #[test]
    fn batch_weighting_tracks_across_waves() {
        let b = FeedbackBoard::with_estimator(RateEstimator::BatchWeighted);
        // Wave 1: worker 0 slow.
        b.report_chunk(0, 10, 1.0);
        b.report_chunk(1, 40, 1.0);
        let w1 = b.weights(2); // closes batch 1
        assert!(w1[0] < w1[1], "{w1:?}");
        // Waves 2..5: worker 0 at parity.
        for _ in 0..4 {
            b.report_chunk(0, 40, 1.0);
            b.report_chunk(1, 40, 1.0);
            let _ = b.weights(2);
        }
        let w = b.weights(2);
        assert!((w[0] - 0.5).abs() < 0.04, "recent parity dominates: {w:?}");
        // The stale slow batch still has *some* pull: strictly below 1/2.
        assert!(w[0] < 0.5, "{w:?}");
    }

    /// AWF-B and AWF-C estimates agree when rates are stationary.
    #[test]
    fn weighted_estimators_agree_on_stationary_rates() {
        let awfb = FeedbackBoard::with_estimator(RateEstimator::BatchWeighted);
        let awfc = FeedbackBoard::with_estimator(RateEstimator::ChunkWeighted);
        for board in [&awfb, &awfc] {
            for _ in 0..5 {
                board.report_chunk(0, 60, 1.0);
                board.report_chunk(1, 30, 1.0);
                let _ = board.weights(2);
            }
        }
        let wb = awfb.weights(2);
        let wc = awfc.weights(2);
        assert!((wb[0] - 2.0 / 3.0).abs() < 1e-9, "{wb:?}");
        assert!((wc[0] - 2.0 / 3.0).abs() < 1e-9, "{wc:?}");
    }
}
