//! The chunk-completion feedback protocol.
//!
//! Engines report one [`FeedbackSink::report_chunk`] call per finished
//! chunk. The deterministic simulator reports *virtual* execution times;
//! the OS-thread engine reports *wall-clock* times. Only relative rates
//! matter downstream, so application code behaves identically on both.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Per-worker chunk-rate samples kept for outlier-resistant estimation.
const MAX_SAMPLES: usize = 64;

/// Where engines deliver per-chunk completion reports.
///
/// `worker` is the thread index within the executing collection, `iters`
/// the number of loop iterations the chunk covered, and `secs` the
/// execution time in the engine's own notion of time (virtual or wall).
pub trait FeedbackSink: Send + Sync {
    /// Record that `worker` finished a chunk of `iters` iterations in
    /// `secs` seconds.
    fn report_chunk(&self, worker: usize, iters: u64, secs: f64);

    /// The engine lost `worker` (node failure): its measurements no longer
    /// describe a live resource. Default: ignore.
    fn worker_lost(&self, worker: usize) {
        let _ = worker;
    }
}

/// Lifetime statistics of one worker.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Chunks completed.
    pub chunks: u64,
    /// Iterations completed.
    pub iters: u64,
    /// Total execution seconds (engine time).
    pub secs: f64,
}

impl WorkerStats {
    /// Measured execution rate in iterations per second, if any work was
    /// reported.
    pub fn rate(&self) -> Option<f64> {
        (self.secs > 0.0 && self.iters > 0).then(|| self.iters as f64 / self.secs)
    }
}

/// Aggregates chunk-completion reports into per-worker rates and the
/// normalized weights AWF consumes.
///
/// The board is shared (`Arc`) between the engine — which writes through
/// the [`FeedbackSink`] impl — and the `ScheduledSplit` operation, which
/// reads [`weights`](Self::weights) at the start of each wave.
///
/// Two rate estimators are available:
///
/// * the default aggregate estimator, `Σ iters / Σ secs` per worker — exact
///   but sensitive to a single pathological sample (a page fault, a network
///   hiccup, a preempted chunk);
/// * the **trimmed-mean** estimator
///   ([`with_trimmed_rates`](Self::with_trimmed_rates)), which keeps the
///   recent per-chunk rates and averages them after discarding a fraction
///   from each end — the outlier-resistant estimation recommended by the
///   DLS robustness literature (arXiv:1804.11115).
#[derive(Debug, Default)]
pub struct FeedbackBoard {
    stats: Mutex<Vec<WorkerStats>>,
    samples: Mutex<Vec<VecDeque<f64>>>,
    /// Fraction of samples trimmed from *each* end; 0 selects the aggregate
    /// estimator.
    trim: f64,
}

impl FeedbackBoard {
    /// Empty board with the aggregate rate estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty board with the outlier-resistant estimator: per-worker rates
    /// are the mean of the recent per-chunk rates after dropping the
    /// `trim` fraction (clamped to `0..=0.4`) from each end of the sorted
    /// samples.
    pub fn with_trimmed_rates(trim: f64) -> Self {
        Self {
            trim: trim.clamp(0.0, 0.4),
            ..Self::default()
        }
    }

    /// Snapshot of the per-worker statistics (at least `workers` entries).
    pub fn stats(&self, workers: usize) -> Vec<WorkerStats> {
        let mut s = self.stats.lock().expect("feedback board poisoned").clone();
        if s.len() < workers {
            s.resize(workers, WorkerStats::default());
        }
        s
    }

    /// Trimmed-mean rate of one worker's recent chunk samples.
    fn trimmed_rate(samples: &VecDeque<f64>, trim: f64) -> Option<f64> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let drop = ((sorted.len() as f64) * trim).floor() as usize;
        let kept = &sorted[drop..sorted.len() - drop];
        if kept.is_empty() {
            return None;
        }
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }

    /// Per-worker measured rates (estimator per construction), `None` for
    /// workers with no usable reports.
    fn rates(&self, workers: usize) -> Vec<Option<f64>> {
        if self.trim > 0.0 {
            let samples = self.samples.lock().expect("feedback board poisoned");
            (0..workers)
                .map(|w| {
                    samples
                        .get(w)
                        .and_then(|s| Self::trimmed_rate(s, self.trim))
                })
                .collect()
        } else {
            self.stats(workers)
                .iter()
                .take(workers)
                .map(WorkerStats::rate)
                .collect()
        }
    }

    /// Per-worker weights, normalized to sum to 1.
    ///
    /// Workers with measured rates are weighted proportionally; workers
    /// with no reports yet are assumed to run at the mean measured rate
    /// (uniform when nothing has been measured — the AWF cold start).
    pub fn weights(&self, workers: usize) -> Vec<f64> {
        let rates = self.rates(workers);
        let measured: Vec<f64> = rates.iter().filter_map(|r| *r).collect();
        if measured.is_empty() {
            return vec![1.0 / workers.max(1) as f64; workers];
        }
        let mean = measured.iter().sum::<f64>() / measured.len() as f64;
        let filled: Vec<f64> = rates.into_iter().map(|r| r.unwrap_or(mean)).collect();
        let total: f64 = filled.iter().sum();
        filled.into_iter().map(|r| r / total).collect()
    }

    /// Forget all reports (e.g. between benchmark configurations).
    pub fn reset(&self) {
        self.stats.lock().expect("feedback board poisoned").clear();
        self.samples
            .lock()
            .expect("feedback board poisoned")
            .clear();
    }

    /// Total chunks reported across all workers.
    pub fn total_chunks(&self) -> u64 {
        self.stats
            .lock()
            .expect("feedback board poisoned")
            .iter()
            .map(|s| s.chunks)
            .sum()
    }
}

impl FeedbackSink for FeedbackBoard {
    fn report_chunk(&self, worker: usize, iters: u64, secs: f64) {
        {
            let mut stats = self.stats.lock().expect("feedback board poisoned");
            if stats.len() <= worker {
                stats.resize(worker + 1, WorkerStats::default());
            }
            let s = &mut stats[worker];
            s.chunks += 1;
            s.iters += iters;
            s.secs += secs.max(0.0);
        }
        if secs > 0.0 && iters > 0 {
            let mut samples = self.samples.lock().expect("feedback board poisoned");
            if samples.len() <= worker {
                samples.resize(worker + 1, VecDeque::new());
            }
            let q = &mut samples[worker];
            if q.len() == MAX_SAMPLES {
                q.pop_front();
            }
            q.push_back(iters as f64 / secs);
        }
    }

    fn worker_lost(&self, worker: usize) {
        let mut stats = self.stats.lock().expect("feedback board poisoned");
        if let Some(s) = stats.get_mut(worker) {
            *s = WorkerStats::default();
        }
        drop(stats);
        let mut samples = self.samples.lock().expect("feedback board poisoned");
        if let Some(q) = samples.get_mut(worker) {
            q.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_board_yields_uniform_weights() {
        let b = FeedbackBoard::new();
        assert_eq!(b.weights(4), vec![0.25; 4]);
        assert_eq!(b.total_chunks(), 0);
    }

    #[test]
    fn weights_follow_measured_rates() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 100, 1.0); // 100 it/s
        b.report_chunk(1, 100, 2.0); // 50 it/s
        let w = b.weights(2);
        assert!((w[0] - 2.0 / 3.0).abs() < 1e-12, "{w:?}");
        assert!((w[1] - 1.0 / 3.0).abs() < 1e-12, "{w:?}");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unmeasured_workers_get_mean_rate() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 300, 1.0);
        b.report_chunk(1, 100, 1.0);
        // Worker 2 never reported: assume the mean (200 it/s).
        let w = b.weights(3);
        assert!((w[2] - 200.0 / 600.0).abs() < 1e-12, "{w:?}");
    }

    #[test]
    fn reports_accumulate_and_reset() {
        let b = FeedbackBoard::new();
        b.report_chunk(1, 10, 0.5);
        b.report_chunk(1, 30, 1.5);
        let s = b.stats(2)[1];
        assert_eq!(s.chunks, 2);
        assert_eq!(s.iters, 40);
        assert!((s.rate().unwrap() - 20.0).abs() < 1e-12);
        b.reset();
        assert_eq!(b.total_chunks(), 0);
        assert_eq!(b.stats(2)[1], WorkerStats::default());
    }

    #[test]
    fn zero_time_report_is_not_a_rate() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 5, 0.0);
        assert_eq!(b.stats(1)[0].rate(), None);
        assert_eq!(b.weights(1), vec![1.0]);
    }

    /// One straggler sample (a chunk that took 100× longer than its peers)
    /// wrecks the aggregate estimator but barely moves the trimmed mean.
    #[test]
    fn trimmed_mean_shrugs_off_a_straggler() {
        let plain = FeedbackBoard::new();
        let trimmed = FeedbackBoard::with_trimmed_rates(0.2);
        for board in [&plain, &trimmed] {
            // Worker 0 is genuinely 2× faster than worker 1 (100 vs 50 it/s)
            // but suffers one pathological chunk at 1 it/s.
            for _ in 0..9 {
                board.report_chunk(0, 100, 1.0);
                board.report_chunk(1, 50, 1.0);
            }
            board.report_chunk(0, 100, 100.0); // the straggler
            board.report_chunk(1, 50, 1.0);
        }
        let wp = plain.weights(2);
        let wt = trimmed.weights(2);
        // Aggregate estimator: worker 0's rate collapses to 1000/109 ≈ 9.2,
        // inverting the true ordering.
        assert!(wp[0] < wp[1], "aggregate estimator is fooled: {wp:?}");
        // Trimmed estimator keeps the true 2:1 ordering.
        assert!(
            (wt[0] - 2.0 / 3.0).abs() < 0.05,
            "trimmed weights off: {wt:?}"
        );
        assert!(wt[0] > 1.8 * wt[1], "{wt:?}");
    }

    #[test]
    fn trimmed_mean_with_few_samples_still_estimates() {
        let b = FeedbackBoard::with_trimmed_rates(0.25);
        b.report_chunk(0, 10, 1.0);
        let w = b.weights(2);
        assert!(w[0] > 0.0 && w[1] > 0.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worker_lost_forgets_its_measurements() {
        let b = FeedbackBoard::new();
        b.report_chunk(0, 100, 1.0);
        b.report_chunk(1, 50, 1.0);
        b.worker_lost(0);
        assert_eq!(b.stats(2)[0], WorkerStats::default());
        // Worker 0 is back to "unmeasured": it gets the mean rate.
        let w = b.weights(2);
        assert!((w[0] - 0.5).abs() < 1e-12, "{w:?}");
    }
}
