//! Wire framing for the cluster-shared scheduling state: chunk-lease
//! traffic against a master-hosted [`ChunkHub`] and feedback-report
//! batches flowing back to the master's [`FeedbackBoard`].
//!
//! Shared-memory engines hand every operation the same `Arc<ChunkHub>`.
//! Across process boundaries that `Arc` cannot travel, so a distributed
//! engine splits the hub in two:
//!
//! * the **master** process keeps a real [`ChunkHub`] (the lease directory
//!   and the atomic claim counters) and answers [`HubRequest`]s with
//!   [`HubRequest::serve`];
//! * every **worker** process holds a forwarding hub
//!   ([`ChunkHub::remote`]) whose [`RemoteHub`] delegate frames each
//!   operation as a [`HubRequest`], ships it, and blocks on the matching
//!   [`HubResponse`].
//!
//! The arithmetic stays byte-identical on both sides because the *whole*
//! fixed [`ChunkCalc`] travels in [`HubRequest::Open`] — including the
//! normalized AWF weights and the precomputed TSS parameters — rather
//! than being re-derived from `(kind, total, workers)` at the master.
//!
//! Feedback travels the other way: workers batch `(iters, secs)` pairs per
//! completed chunk into a [`ChunkReport`] and the master applies it to its
//! sink in one [`FeedbackSink::report_batch`] call.
//!
//! This module defines only the framing and the forwarding seam; the
//! transport (sockets, channels) belongs to the engine crates.
//!
//! ```
//! use dps_sched::{ChunkCalc, ChunkHub, PolicyKind};
//! use dps_sched::remote::{HubRequest, HubResponse};
//!
//! // Worker side: frame a claim.
//! let bytes = dps_serial::to_bytes(&HubRequest::Claim { id: 7 });
//!
//! // Master side: decode, serve against the real hub, frame the reply.
//! let hub = ChunkHub::new();
//! let lease = hub.open(ChunkCalc::new(PolicyKind::Gss, 100, 4, &[]));
//! let req: HubRequest = dps_serial::from_bytes(&bytes).unwrap();
//! let resp = req.serve(&hub);
//! assert!(matches!(resp, HubResponse::Claimed { chunk: None })); // lease 7 unknown
//! let first = hub.claim(lease.id).unwrap();
//! assert_eq!(first.start, 0);
//! ```
//!
//! [`FeedbackBoard`]: crate::FeedbackBoard
//! [`FeedbackSink::report_batch`]: crate::FeedbackSink::report_batch

use dps_serial::{impl_wire, impl_wire_enum, Reader, Wire, WireError, Writer};

use crate::calc::{ChunkCalc, ChunkHub, ChunkLease};
use crate::policy::PolicyKind;
use crate::scheduler::Chunk;

/// Worker-side delegate a forwarding [`ChunkHub`] relays every operation
/// through (see [`ChunkHub::remote`]). Implementations frame the call as a
/// [`HubRequest`], send it to the master, and block on the matching
/// [`HubResponse`] — each method is one synchronous round-trip on the
/// per-chunk path, which is exactly the cost model of arXiv:2101.07050's
/// distributed chunk calculation (one shared-state access per chunk).
pub trait RemoteHub: Send + Sync {
    /// Forward [`ChunkHub::open`].
    fn open(&self, calc: ChunkCalc) -> ChunkLease;
    /// Forward [`ChunkHub::claim`].
    fn claim(&self, id: u64) -> Option<Chunk>;
    /// Forward [`ChunkHub::close`].
    fn close(&self, id: u64) -> bool;
}

/// One hub operation, framed. `Open` carries the full fixed calculation so
/// master and workers run byte-identical chunk arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub enum HubRequest {
    /// [`ChunkHub::open`] — announce a range, get a lease.
    Open { calc: ChunkCalc },
    /// [`ChunkHub::claim`] — next chunk of lease `id`, if any.
    Claim { id: u64 },
    /// [`ChunkHub::close`] — retire lease `id` early.
    Close { id: u64 },
}

impl HubRequest {
    /// Apply this request to the real hub (master side) and produce the
    /// response frame to ship back.
    pub fn serve(self, hub: &ChunkHub) -> HubResponse {
        match self {
            HubRequest::Open { calc } => HubResponse::Opened {
                lease: hub.open(calc),
            },
            HubRequest::Claim { id } => HubResponse::Claimed {
                chunk: hub.claim(id),
            },
            HubRequest::Close { id } => HubResponse::Closed {
                closed: hub.close(id),
            },
        }
    }

    /// Like [`serve`](Self::serve), but stamps any lease this request opens
    /// with `owner` (the requesting worker's rank). Distributed masters use
    /// this so [`ChunkHub::expire_owner`] can retire a dead rank's open
    /// leases when its process is lost.
    pub fn serve_owned(self, hub: &ChunkHub, owner: u32) -> HubResponse {
        let resp = self.serve(hub);
        if let HubResponse::Opened { lease } = &resp {
            hub.set_owner(lease.id, owner);
        }
        resp
    }
}

/// The master's answer to a [`HubRequest`], variant-matched by position:
/// `Open → Opened`, `Claim → Claimed`, `Close → Closed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HubResponse {
    /// Lease handed out for an announced range.
    Opened { lease: ChunkLease },
    /// Next chunk, or `None` when the lease is drained/closed/unknown.
    Claimed { chunk: Option<Chunk> },
    /// Whether the close retired an open lease.
    Closed { closed: bool },
}

/// A batch of completed-chunk measurements from one worker: the framed form
/// of one [`FeedbackSink::report_batch`](crate::FeedbackSink::report_batch)
/// call. `secs` are in the reporting engine's own notion of time — only
/// relative rates matter to the adaptive policies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChunkReport {
    /// Worker index within the executing collection.
    pub worker: u64,
    /// `(iters, secs)` per completed chunk, in completion order.
    pub chunks: Vec<(u64, f64)>,
}

impl_wire!(ChunkLease { id, chunks });
impl_wire!(Chunk {
    seq,
    start,
    len,
    worker
});
impl_wire!(ChunkReport { worker, chunks });
impl_wire_enum!(HubRequest {
    0 => Open { calc },
    1 => Claim { id },
    2 => Close { id },
});
impl_wire_enum!(HubResponse {
    0 => Opened { lease },
    1 => Claimed { chunk },
    2 => Closed { closed },
});

impl Wire for PolicyKind {
    fn wire_size(&self) -> usize {
        1
    }
    fn encode(&self, w: &mut Writer) {
        // Stable index into `PolicyKind::ALL` (append-only by convention).
        let idx = PolicyKind::ALL
            .iter()
            .position(|k| k == self)
            .expect("every PolicyKind is listed in ALL");
        w.put_u8(idx as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let idx = r.get_u8()?;
        PolicyKind::ALL
            .get(idx as usize)
            .copied()
            .ok_or(WireError::InvalidDiscriminant {
                type_name: "PolicyKind",
                value: idx as u32,
            })
    }
}

/// All fixed parameters travel — weights and TSS terms included — so the
/// decoded calculation replays the policy with byte-identical floats.
impl Wire for ChunkCalc {
    fn wire_size(&self) -> usize {
        self.kind.wire_size() + 8 * 2 + self.weights.wire_size() + 8 * 2
    }
    fn encode(&self, w: &mut Writer) {
        self.kind.encode(w);
        w.put_u64(self.total);
        w.put_u64(self.workers);
        self.weights.encode(w);
        w.put_f64(self.tss_first);
        w.put_f64(self.tss_decrement);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            kind: PolicyKind::decode(r)?,
            total: r.get_u64()?,
            workers: r.get_u64()?,
            weights: Vec::<f64>::decode(r)?,
            tss_first: r.get_f64()?,
            tss_decrement: r.get_f64()?,
        })
    }
}

impl PartialEq for ChunkCalc {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
            && self.total == other.total
            && self.workers == other.workers
            && self.weights == other.weights
            && self.tss_first == other.tss_first
            && self.tss_decrement == other.tss_decrement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = dps_serial::to_bytes(v);
        assert_eq!(bytes.len(), v.wire_size(), "wire_size is exact");
        let back: T = dps_serial::from_bytes(&bytes).expect("decodes");
        assert_eq!(&back, v, "round-trips");
    }

    #[test]
    fn hub_frames_round_trip() {
        for kind in PolicyKind::ALL {
            let calc = ChunkCalc::new(kind, 1000, 4, &[0.4, 0.3, 0.2, 0.1]);
            roundtrip(&HubRequest::Open { calc });
        }
        roundtrip(&HubRequest::Claim { id: u64::MAX });
        roundtrip(&HubRequest::Close { id: 0 });
        roundtrip(&HubResponse::Opened {
            lease: ChunkLease { id: 7, chunks: 13 },
        });
        roundtrip(&HubResponse::Claimed {
            chunk: Some(Chunk {
                seq: 3,
                start: 128,
                len: 32,
                worker: 2,
            }),
        });
        roundtrip(&HubResponse::Claimed { chunk: None });
        roundtrip(&HubResponse::Closed { closed: true });
        roundtrip(&ChunkReport {
            worker: 5,
            chunks: vec![(10, 0.5), (20, 0.25)],
        });
    }

    /// The decoded calculation produces the same chunk sequence as the
    /// original — the property the distributed engine's byte-identical
    /// guarantee rests on.
    #[test]
    fn decoded_calc_replays_identical_chunks() {
        for kind in PolicyKind::ALL {
            let calc = ChunkCalc::new(kind, 777, 3, &[0.5, 0.25, 0.25]);
            let back: ChunkCalc = dps_serial::from_bytes(&dps_serial::to_bytes(&calc)).unwrap();
            let (mut seq, mut start) = (0u32, 0u64);
            loop {
                let (a, b) = (calc.len_at(seq, start), back.len_at(seq, start));
                assert_eq!(a, b, "{kind:?} chunk {seq}");
                if a == 0 {
                    break;
                }
                start += a;
                seq += 1;
            }
            assert_eq!(start, 777, "{kind:?} covers the range");
        }
    }

    /// A forwarding hub relays everything to its delegate.
    #[test]
    fn forwarding_hub_delegates() {
        struct Direct(ChunkHub);
        impl RemoteHub for Direct {
            fn open(&self, calc: ChunkCalc) -> ChunkLease {
                match (HubRequest::Open { calc }).serve(&self.0) {
                    HubResponse::Opened { lease } => lease,
                    _ => unreachable!(),
                }
            }
            fn claim(&self, id: u64) -> Option<Chunk> {
                match (HubRequest::Claim { id }).serve(&self.0) {
                    HubResponse::Claimed { chunk } => chunk,
                    _ => unreachable!(),
                }
            }
            fn close(&self, id: u64) -> bool {
                match (HubRequest::Close { id }).serve(&self.0) {
                    HubResponse::Closed { closed } => closed,
                    _ => unreachable!(),
                }
            }
        }
        let master = Direct(ChunkHub::new());
        let worker = ChunkHub::remote(Arc::new(master));
        let lease = worker.open(ChunkCalc::new(PolicyKind::Static, 10, 2, &[]));
        assert_eq!(lease.chunks, 2);
        let mut covered = 0;
        while let Some(c) = worker.claim(lease.id) {
            covered += c.len;
        }
        assert_eq!(covered, 10);
        assert!(!worker.close(lease.id), "already drained");
        assert_eq!(worker.open_leases(), 0, "forwarding hub tracks nothing");
        assert!(worker.counter(lease.id).is_none());
    }
}
