//! Distributed chunk calculation (Eleliemy & Ciorba, arXiv:2101.07050).
//!
//! The central [`ChunkScheduler`](crate::ChunkScheduler) materializes every
//! chunk on the thread driving it — on a master thread that serializes the
//! whole schedule. The *distributed chunk-calculation approach* removes the
//! master from the per-chunk path: the only shared state is an atomic pair
//! `(seq, start)` — how many chunks were claimed and how many iterations
//! they covered — and each worker computes its own chunk's boundaries
//! *locally* from that pair with a closed-form (or cheap replayed) per-policy
//! expression.
//!
//! * [`ChunkCalc`] is the pure calculation: `len_at(seq, start)` returns the
//!   length of chunk `seq` given that `start` iterations are already handed
//!   out. It reproduces the central scheduler's chunk sequence **exactly**
//!   (property-tested in `tests/dls_scheduling.rs`).
//! * [`IterCounter`] is the shared state plus the claim loop: one
//!   compare-and-swap per chunk, no locks, no master.
//! * [`ChunkHub`] hands out [`IterCounter`]s under lease ids so split
//!   operations (which announce a range) and worker operations (which claim
//!   chunks) can rendezvous without tokens carrying shared pointers. Lease
//!   ids are plain `u64`s, which is what lets the multi-process engine
//!   forward `open`/`claim`/`close` over the wire
//!   ([`RemoteHub`](crate::remote::RemoteHub)): the master hosts the real
//!   counters and an iteration is handed out exactly once cluster-wide.
//!
//! The full local cycle — announce a range, claim it down chunk by chunk:
//!
//! ```
//! use dps_sched::{ChunkCalc, ChunkHub, PolicyKind};
//!
//! let hub = ChunkHub::new();
//! // A split announces 100 iterations for 4 workers under TSS.
//! let lease = hub.open(ChunkCalc::new(PolicyKind::Tss, 100, 4, &[]));
//! // Workers claim concurrently; here one loop drains the lease.
//! let mut sizes = Vec::new();
//! while let Some(chunk) = hub.claim(lease.id) {
//!     sizes.push(chunk.len);
//! }
//! assert_eq!(sizes.iter().sum::<u64>(), 100, "every iteration exactly once");
//! assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "TSS sizes decrease");
//! assert!(!hub.close(lease.id), "already drained");
//! ```

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::policy::PolicyKind;
use crate::remote::RemoteHub;
use crate::scheduler::Chunk;

/// Low bits of the packed counter word holding the iteration index; the
/// remaining high bits hold the chunk sequence number.
const START_BITS: u32 = 40;
const START_MASK: u64 = (1 << START_BITS) - 1;

/// Closed-form chunk-from-index calculation for one scheduled range: the
/// distributed counterpart of driving a [`ChunkPolicy`] through a
/// [`ChunkScheduler`].
///
/// All parameters are fixed at construction (the central scheduler fixes
/// them in `begin` the same way), so `len_at` is a pure function of the
/// shared `(seq, start)` pair — any worker evaluates it locally and obtains
/// the byte-identical chunk the central scheduler would have produced.
///
/// Per-policy cost of one evaluation: O(1) for static/SS/GSS/TSS (closed
/// form), O(log N) for FAC/AWF (the batch recurrence halves the remaining
/// work per batch, so replaying it is logarithmic).
///
/// [`ChunkPolicy`]: crate::ChunkPolicy
/// [`ChunkScheduler`]: crate::ChunkScheduler
#[derive(Debug, Clone)]
pub struct ChunkCalc {
    pub(crate) kind: PolicyKind,
    pub(crate) total: u64,
    pub(crate) workers: u64,
    pub(crate) weights: Vec<f64>,
    /// TSS first-chunk size (as f64: the policy's arithmetic is float).
    pub(crate) tss_first: f64,
    /// TSS per-chunk linear decrement.
    pub(crate) tss_decrement: f64,
}

impl ChunkCalc {
    /// Fix a calculation for `total` iterations over `workers` workers.
    /// `weights` is consumed by AWF only (normalized per-worker rates; one
    /// entry per worker); other policies ignore it.
    pub fn new(kind: PolicyKind, total: u64, workers: usize, weights: &[f64]) -> Self {
        let workers = workers.max(1) as u64;
        // Same normalization as AdaptiveWeightedFactoring::begin — the two
        // sides must run byte-identical arithmetic.
        let weights = crate::policy::normalize_weights(weights, workers as usize);
        // TSS parameters, exactly as TrapezoidSelfScheduling::begin fixes
        // them: f = ceil(N/2P), l = 1, C = ceil(2N/(f+l)).
        let first = total.div_ceil(2 * workers).max(1);
        let last = 1u64;
        let count = (2 * total).div_ceil(first + last).max(1);
        let tss_decrement = if count > 1 {
            (first - last) as f64 / (count - 1) as f64
        } else {
            0.0
        };
        Self {
            kind,
            total,
            workers,
            weights,
            tss_first: first as f64,
            tss_decrement,
        }
    }

    /// The scheduled range length.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The worker count the calculation was fixed for.
    pub fn workers(&self) -> usize {
        self.workers as usize
    }

    /// The worker the policy sizes chunk `seq` for (the central scheduler's
    /// round-robin batch order) — a routing hint, not an obligation.
    pub fn worker_hint(&self, seq: u32) -> u32 {
        (seq as u64 % self.workers) as u32
    }

    /// FAC batch-size recurrence: the chunk size of batch `batch`, replayed
    /// from the full range. Identical arithmetic to [`Factoring`]
    /// (`⌈R/2P⌉`, floored at 1), so the result matches the central policy
    /// exactly for every batch that is actually issued.
    ///
    /// [`Factoring`]: crate::Factoring
    fn fac_chunk(&self, batch: u64) -> u64 {
        let mut remaining = self.total;
        let mut chunk = 1;
        for _ in 0..=batch {
            chunk = remaining.div_ceil(2 * self.workers).max(1);
            remaining = remaining.saturating_sub(self.workers.saturating_mul(chunk));
        }
        chunk
    }

    /// AWF batch recurrence: the per-worker chunk size of batch `batch`,
    /// replayed with the same float expressions as
    /// [`AdaptiveWeightedFactoring`] (`⌈R/2⌉` split ∝ weights, rounded,
    /// floored at 1).
    ///
    /// [`AdaptiveWeightedFactoring`]: crate::AdaptiveWeightedFactoring
    fn awf_size(&self, batch: u64, worker: usize) -> u64 {
        let mut remaining = self.total;
        let mut size = 1;
        for _ in 0..=batch {
            let b = remaining.div_ceil(2).max(1) as f64;
            let mut handed = 0u64;
            for (w, weight) in self.weights.iter().enumerate() {
                let s = ((b * weight).round() as u64).max(1);
                if w == worker {
                    size = s;
                }
                handed = handed.saturating_add(s);
            }
            remaining = remaining.saturating_sub(handed);
        }
        size
    }

    /// Length of chunk number `seq` given `start` iterations already handed
    /// out, clamped into `1..=remaining` exactly as the central scheduler
    /// clamps. Returns 0 once the range is exhausted.
    pub fn len_at(&self, seq: u32, start: u64) -> u64 {
        if start >= self.total {
            return 0;
        }
        let remaining = self.total - start;
        let intended = match self.kind {
            PolicyKind::Static => self.total.div_ceil(self.workers),
            PolicyKind::Ss => 1,
            PolicyKind::Gss => remaining.div_ceil(self.workers),
            PolicyKind::Tss => {
                // current_k = max(f − k·d, 1), the closed form of the
                // policy's linear descent.
                let current = (self.tss_first - seq as f64 * self.tss_decrement).max(1.0);
                current.round().max(1.0) as u64
            }
            PolicyKind::Fac => self.fac_chunk(seq as u64 / self.workers),
            PolicyKind::Awf | PolicyKind::AwfB | PolicyKind::AwfC => self.awf_size(
                seq as u64 / self.workers,
                (seq as u64 % self.workers) as usize,
            ),
        };
        intended.clamp(1, remaining)
    }

    /// Total number of chunks the policy produces over this range — what a
    /// range-announcing split posts one ticket for.
    ///
    /// Closed form for static/SS; a replay over the (logarithmically or
    /// `O(P)`-bounded) chunk sequence for the decreasing-size policies, so
    /// huge ranges stay cheap for every policy whose chunk count is sane.
    /// Chunk sequences live in `u32` ticket space end to end, so a range
    /// producing more than `u32::MAX` chunks (only SS can) is refused.
    ///
    /// # Panics
    /// For `Ss` over more than `u32::MAX` iterations (one chunk per
    /// iteration exceeds the ticket space).
    pub fn chunk_count(&self) -> u32 {
        match self.kind {
            PolicyKind::Ss => {
                assert!(
                    self.total <= u32::MAX as u64,
                    "self-scheduling over {} iterations exceeds the u32 chunk space",
                    self.total
                );
                self.total as u32
            }
            PolicyKind::Static => {
                if self.total == 0 {
                    0
                } else {
                    let chunk = self.total.div_ceil(self.workers);
                    self.total.div_ceil(chunk) as u32
                }
            }
            _ => {
                // GSS/TSS/FAC/AWF shrink geometrically or are O(P)-bounded:
                // the replay is short even for astronomically long ranges.
                let mut start = 0u64;
                let mut seq = 0u32;
                while start < self.total {
                    start += self.len_at(seq, start);
                    seq += 1;
                }
                seq
            }
        }
    }
}

/// The shared claim state: a packed atomic `(seq, start)` word when the
/// range fits (single-CAS claims, the common case), or a small mutex for
/// ranges beyond the packed word's capacity — larger totals than 2⁴⁰
/// iterations or more than 2²⁴ chunks still schedule correctly, just with
/// a lock instead of a CAS.
#[derive(Debug)]
enum ClaimState {
    Packed(AtomicU64),
    Wide(Mutex<(u64, u32)>),
}

/// The shared scheduling state of one announced range: an atomic
/// `(seq, start)` pair, claimed chunk by chunk. Workers compute their chunk
/// boundaries locally from the pair via the attached [`ChunkCalc`] — the
/// master never touches the per-chunk path.
#[derive(Debug)]
pub struct IterCounter {
    calc: ChunkCalc,
    chunks: u32,
    state: ClaimState,
}

impl IterCounter {
    /// Shared counter over `calc`'s range. Ranges that fit 40 start bits and
    /// 24 sequence bits claim with a single compare-and-swap; larger ranges
    /// fall back to a mutex-guarded pair.
    pub fn new(calc: ChunkCalc) -> Self {
        let chunks = calc.chunk_count();
        let state = if calc.total() < 1 << START_BITS && (chunks as u64) < 1 << (64 - START_BITS) {
            ClaimState::Packed(AtomicU64::new(0))
        } else {
            ClaimState::Wide(Mutex::new((0, 0)))
        };
        Self {
            calc,
            chunks,
            state,
        }
    }

    /// The fixed calculation parameters.
    pub fn calc(&self) -> &ChunkCalc {
        &self.calc
    }

    /// Total chunks this counter will hand out.
    pub fn chunk_count(&self) -> u32 {
        self.chunks
    }

    /// Chunks successfully claimed so far (the claim sequence counter).
    pub fn claimed(&self) -> u32 {
        match &self.state {
            ClaimState::Packed(word) => (word.load(Ordering::Acquire) >> START_BITS) as u32,
            ClaimState::Wide(pair) => pair.lock().1,
        }
    }

    /// Iterations not yet claimed.
    pub fn remaining(&self) -> u64 {
        let start = match &self.state {
            ClaimState::Packed(word) => word.load(Ordering::Acquire) & START_MASK,
            ClaimState::Wide(pair) => pair.lock().0,
        };
        self.calc.total().saturating_sub(start)
    }

    fn make_chunk(&self, seq: u32, start: u64, len: u64) -> Chunk {
        Chunk {
            seq,
            start,
            len,
            worker: self.calc.worker_hint(seq),
        }
    }

    /// Claim the next chunk: one CAS on the shared word (or one short lock
    /// for oversized ranges), boundaries computed locally. Returns `None`
    /// once the range is drained. The sequence of claimed chunks (in claim
    /// order) is identical to the central scheduler's hand-out sequence.
    pub fn claim(&self) -> Option<Chunk> {
        match &self.state {
            ClaimState::Packed(word) => {
                let mut cur = word.load(Ordering::Acquire);
                loop {
                    let start = cur & START_MASK;
                    let seq = (cur >> START_BITS) as u32;
                    if start >= self.calc.total() {
                        return None;
                    }
                    let len = self.calc.len_at(seq, start);
                    let next = ((seq as u64 + 1) << START_BITS) | (start + len);
                    match word.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
                    {
                        Ok(_) => return Some(self.make_chunk(seq, start, len)),
                        Err(seen) => cur = seen,
                    }
                }
            }
            ClaimState::Wide(pair) => {
                let mut guard = pair.lock();
                let (start, seq) = *guard;
                if start >= self.calc.total() {
                    return None;
                }
                let len = self.calc.len_at(seq, start);
                *guard = (start + len, seq + 1);
                drop(guard);
                Some(self.make_chunk(seq, start, len))
            }
        }
    }
}

/// A lease on an announced range: the id workers quote to claim chunks, and
/// the number of chunks the range will produce (= tickets to post).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkLease {
    /// Hub-unique lease id.
    pub id: u64,
    /// Chunks the range partitions into.
    pub chunks: u32,
}

/// One lease's slot in the hub directory.
#[derive(Debug)]
struct LeaseSlot {
    /// Set exactly once by [`ChunkHub::open`]; read lock-free by claimers.
    counter: OnceLock<Arc<IterCounter>>,
    /// Drained or explicitly closed: claims return `None` from here on.
    closed: AtomicBool,
    /// Opening party ([`ChunkHub::NO_OWNER`] until tagged): distributed
    /// engines stamp the worker rank that announced the range so a node
    /// failure can expire exactly that rank's open leases.
    owner: AtomicU32,
}

impl LeaseSlot {
    fn new() -> Self {
        Self {
            counter: OnceLock::new(),
            closed: AtomicBool::new(false),
            owner: AtomicU32::new(ChunkHub::NO_OWNER),
        }
    }
}

/// Log2 of the first lease segment's slot count.
const LEASE_SEG0_BITS: u32 = 5;

/// Lease segments double in size; 32 of them cover ~2³⁶ lease ids.
const LEASE_SEGS: usize = 32;

/// Map a lease id to its `(segment, offset)` in the doubling directory.
#[inline]
fn lease_locate(id: u64) -> Option<(usize, usize)> {
    let pos = (id as usize).checked_add(1 << LEASE_SEG0_BITS)?;
    let seg = (pos.ilog2() - LEASE_SEG0_BITS) as usize;
    (seg < LEASE_SEGS).then(|| (seg, pos - (1usize << (seg as u32 + LEASE_SEG0_BITS))))
}

/// Rendezvous between range-announcing splits and chunk-claiming workers:
/// the split [`open`](Self::open)s a counter and broadcasts the lease id in
/// its tickets; each worker [`claim`](Self::claim)s against that id. Shared
/// by `Arc` between the operations of a graph (tokens stay plain data).
///
/// # Multi-range, lock-free
///
/// Lease ids are dense (`fetch_add`), so the directory is a doubling array
/// of slots indexed by id — not a locked map. [`claim`](Self::claim)
/// resolves a lease with two atomic loads (slot lookup + drained check) and
/// then claims on the lease's own [`IterCounter`]: no lock is taken and no
/// `Arc` is cloned on the per-chunk path, so **any number of concurrent
/// scheduled loops share one hub without contending** with each other.
/// [`open`](Self::open) is equally lock-free (one `fetch_add` plus a
/// `OnceLock` publication), so ranges can be announced while other leases
/// are being drained.
///
/// A drained lease is marked closed by the claim that observes exhaustion
/// (in one atomic `swap` — the old map-based hub's check-then-relock window
/// between the lookup and the removal no longer exists). A wave that aborts
/// before its range drains (a run timeout, a fatal node failure) should
/// [`close`](Self::close) its lease on the recovery path. Slots themselves
/// live until the hub drops — a few hundred bytes per lease ever opened,
/// bounded by the run the hub belongs to.
pub struct ChunkHub {
    /// Doubling lease segments, allocated on first touch.
    segments: [OnceLock<Box<[LeaseSlot]>>; LEASE_SEGS],
    /// Next lease id.
    next: AtomicU64,
    /// Leases opened and not yet drained/closed.
    open: AtomicU64,
    /// Forwarding delegate: when set, every hub operation is relayed to the
    /// process that owns the real lease directory (see [`RemoteHub`]) and
    /// the local slots above stay empty.
    remote: Option<Arc<dyn RemoteHub>>,
    /// Metrics sink, published once by an engine when tracing is enabled.
    /// Reads cost one atomic load plus a relaxed `fetch_add` — the claim
    /// path stays lock-free whether or not a registry is attached.
    metrics: OnceLock<Arc<dps_obs::MetricsRegistry>>,
}

impl std::fmt::Debug for ChunkHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkHub")
            .field("open", &self.open.load(Ordering::Relaxed))
            .field("remote", &self.remote.is_some())
            .finish_non_exhaustive()
    }
}

impl Default for ChunkHub {
    fn default() -> Self {
        Self {
            segments: std::array::from_fn(|_| OnceLock::new()),
            next: AtomicU64::new(0),
            open: AtomicU64::new(0),
            remote: None,
            metrics: OnceLock::new(),
        }
    }
}

impl ChunkHub {
    /// Empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// A forwarding hub: every operation is relayed through `delegate` to
    /// the process hosting the real lease directory. Used by distributed
    /// engines on worker processes so split and worker operations written
    /// against a plain [`ChunkHub`] transparently rendezvous on the
    /// master's hub.
    pub fn remote(delegate: Arc<dyn RemoteHub>) -> Self {
        Self {
            remote: Some(delegate),
            ..Self::default()
        }
    }

    /// Attach a metrics registry: [`open`](Self::open) bumps `LeasesOpened`,
    /// and each lease folds its final claim count into `ChunkClaims` when it
    /// retires (drains or is [`close`](Self::close)d) — the per-claim path
    /// carries zero instrumentation. First attach wins; later calls are
    /// ignored (the hub is shared, so engines racing to attach the same
    /// collector's registry is benign).
    pub fn attach_metrics(&self, metrics: Arc<dps_obs::MetricsRegistry>) {
        let _ = self.metrics.set(metrics);
    }

    /// The slot of lease `id`, if its segment was ever touched.
    fn slot(&self, id: u64) -> Option<&LeaseSlot> {
        let (seg, idx) = lease_locate(id)?;
        self.segments[seg].get().map(|s| &s[idx])
    }

    /// Open a counter over `calc`'s range and lease it out.
    pub fn open(&self, calc: ChunkCalc) -> ChunkLease {
        if let Some(m) = self.metrics.get() {
            m.add(dps_obs::Counter::LeasesOpened, 1);
        }
        if let Some(r) = &self.remote {
            return r.open(calc);
        }
        let counter = IterCounter::new(calc);
        let chunks = counter.chunk_count();
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let (seg, idx) = lease_locate(id).expect("lease id space exhausted");
        let slots = self.segments[seg].get_or_init(|| {
            (0..(1usize << (seg as u32 + LEASE_SEG0_BITS)))
                .map(|_| LeaseSlot::new())
                .collect()
        });
        slots[idx]
            .counter
            .set(Arc::new(counter))
            .expect("lease ids are unique");
        self.open.fetch_add(1, Ordering::Relaxed);
        ChunkLease { id, chunks }
    }

    /// Open a batch of ranges in one call — one lease per range, in order.
    /// Concurrent scheduled loops each drain their own lease; the claim
    /// paths never touch shared state beyond their lease's counter.
    pub fn open_batch(&self, calcs: impl IntoIterator<Item = ChunkCalc>) -> Vec<ChunkLease> {
        calcs.into_iter().map(|c| self.open(c)).collect()
    }

    /// Mark lease `id` drained on the way out, exactly once; returns whether
    /// this call retired it. The metrics fold happens here — one `add` of
    /// the lease counter's final claim sequence per lease, so the per-claim
    /// path carries zero instrumentation.
    fn retire(&self, slot: &LeaseSlot) -> bool {
        let was_open = !slot.closed.swap(true, Ordering::AcqRel);
        if was_open {
            self.open.fetch_sub(1, Ordering::Relaxed);
            if let (Some(m), Some(c)) = (self.metrics.get(), slot.counter.get()) {
                m.add(dps_obs::Counter::ChunkClaims, u64::from(c.claimed()));
            }
        }
        was_open
    }

    /// Claim the next chunk of lease `id`: lock-free lease resolution plus
    /// one CAS on the lease's own counter. `None` when the lease is
    /// drained, [`close`](Self::close)d, or unknown.
    pub fn claim(&self, id: u64) -> Option<Chunk> {
        if let Some(r) = &self.remote {
            return r.claim(id);
        }
        let slot = self.slot(id)?;
        if slot.closed.load(Ordering::Acquire) {
            return None;
        }
        let counter = slot.counter.get()?;
        let chunk = counter.claim();
        if chunk.is_none() || counter.remaining() == 0 {
            self.retire(slot);
        }
        chunk
    }

    /// Close lease `id` before it drains (wave abort, node failure, lease
    /// expiry): subsequent [`claim`](Self::claim)s return `None`. Claims
    /// already past the closed check may still hand out one in-flight chunk
    /// each — closing races a concurrent claim exactly like draining does.
    /// Returns `true` if this call closed the lease (it was open).
    pub fn close(&self, id: u64) -> bool {
        if let Some(r) = &self.remote {
            return r.close(id);
        }
        match self.slot(id) {
            Some(slot) if slot.counter.get().is_some() => self.retire(slot),
            _ => false,
        }
    }

    /// Sentinel owner of an untagged lease (see [`set_owner`](Self::set_owner)).
    pub const NO_OWNER: u32 = u32::MAX;

    /// Tag lease `id` with the party that opened it. Distributed engines
    /// call this while serving a remote `Open` so that
    /// [`expire_owner`](Self::expire_owner) can retire a dead rank's leases.
    /// No-op on a forwarding hub (ownership is tracked where the directory
    /// lives) and for unknown ids.
    pub fn set_owner(&self, id: u64, owner: u32) {
        if self.remote.is_some() {
            return;
        }
        if let Some(slot) = self.slot(id) {
            slot.owner.store(owner, Ordering::Release);
        }
    }

    /// The owner tag of lease `id`, if it was ever tagged.
    pub fn owner_of(&self, id: u64) -> Option<u32> {
        if self.remote.is_some() {
            return None;
        }
        let owner = self.slot(id)?.owner.load(Ordering::Acquire);
        (owner != Self::NO_OWNER).then_some(owner)
    }

    /// Close every still-open lease tagged with `owner` — the recovery
    /// sweep for a dead node: its announced-but-undrained ranges stop
    /// handing out chunks, so survivors re-announce and re-claim the work
    /// in fresh waves instead of spinning on a lease whose split died.
    /// Returns the ids this call expired.
    pub fn expire_owner(&self, owner: u32) -> Vec<u64> {
        if self.remote.is_some() {
            return Vec::new();
        }
        (0..self.leases_issued())
            .filter(|&id| {
                self.slot(id)
                    .is_some_and(|s| s.owner.load(Ordering::Acquire) == owner)
                    && self.close(id)
            })
            .collect()
    }

    /// The counter behind lease `id`, if still open. Always `None` on a
    /// forwarding hub — the counter lives in the owning process.
    pub fn counter(&self, id: u64) -> Option<Arc<IterCounter>> {
        if self.remote.is_some() {
            return None;
        }
        let slot = self.slot(id)?;
        if slot.closed.load(Ordering::Acquire) {
            return None;
        }
        slot.counter.get().cloned()
    }

    /// Leases not yet drained. A forwarding hub reports `0`: the owning
    /// process tracks lease lifetimes.
    pub fn open_leases(&self) -> usize {
        self.open.load(Ordering::Relaxed) as usize
    }

    /// Lease ids handed out so far (all ids in `0..leases_issued()` were
    /// opened at some point). A forwarding hub reports `0`.
    pub fn leases_issued(&self) -> u64 {
        if self.remote.is_some() {
            return 0;
        }
        self.next.load(Ordering::Relaxed)
    }

    /// Progress of lease `id` regardless of open/closed state — the
    /// invariant-layer view (unlike [`counter`](Self::counter), which hides
    /// retired leases from claimers). `None` for unknown ids or on a
    /// forwarding hub.
    pub fn progress(&self, id: u64) -> Option<LeaseProgress> {
        if self.remote.is_some() {
            return None;
        }
        let slot = self.slot(id)?;
        let counter = slot.counter.get()?;
        Some(LeaseProgress {
            id,
            chunks: counter.chunk_count(),
            claimed: counter.claimed(),
            remaining: counter.remaining(),
            closed: slot.closed.load(Ordering::Acquire),
        })
    }

    /// Every lease still open (announced but neither drained nor closed),
    /// with its claim progress. Empty after a clean run — a scheduled wave
    /// that completes drains or closes all of its leases, so anything left
    /// here was **abandoned**: the range was announced and then lost, which
    /// is only legitimate downstream of an injected node failure. The
    /// simulation-testing harness checks exactly that.
    pub fn abandoned_leases(&self) -> Vec<LeaseProgress> {
        (0..self.leases_issued())
            .filter_map(|id| self.progress(id))
            .filter(|p| !p.closed)
            .collect()
    }
}

/// Point-in-time claim progress of one lease (see [`ChunkHub::progress`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseProgress {
    /// The lease id.
    pub id: u64,
    /// Chunks the range partitions into.
    pub chunks: u32,
    /// Chunks claimed so far.
    pub claimed: u32,
    /// Iterations not yet claimed.
    pub remaining: u64,
    /// Drained or explicitly closed.
    pub closed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ChunkScheduler;

    fn uniform(p: usize) -> Vec<f64> {
        vec![1.0 / p as f64; p]
    }

    /// The distributed calculation reproduces the central scheduler chunk
    /// for chunk, for every policy, on a grid of range/worker shapes.
    #[test]
    fn matches_central_scheduler_exactly() {
        for kind in PolicyKind::ALL {
            for &(n, p) in &[(0u64, 3usize), (1, 1), (7, 3), (64, 2), (100, 4), (1000, 7)] {
                let weights = uniform(p);
                let calc = ChunkCalc::new(kind, n, p, &weights);
                let counter = IterCounter::new(calc);
                let mut central = ChunkScheduler::new(kind.build(), n, p, &weights);
                let mut claimed = 0u32;
                while let Some(expect) = central.next_chunk() {
                    let got = counter.claim().unwrap_or_else(|| {
                        panic!("{kind:?} n={n} p={p}: counter drained early at {expect:?}")
                    });
                    assert_eq!(got, expect, "{kind:?} n={n} p={p}");
                    claimed += 1;
                }
                assert!(counter.claim().is_none(), "{kind:?}: counter over-issues");
                assert_eq!(counter.chunk_count(), claimed, "{kind:?}: count mismatch");
            }
        }
    }

    #[test]
    fn awf_equivalence_with_skewed_weights() {
        let weights = [0.5, 0.3, 0.2];
        let calc = ChunkCalc::new(PolicyKind::Awf, 500, 3, &weights);
        let counter = IterCounter::new(calc);
        let mut central = ChunkScheduler::new(PolicyKind::Awf.build(), 500, 3, &weights);
        while let Some(expect) = central.next_chunk() {
            assert_eq!(counter.claim(), Some(expect));
        }
        assert!(counter.claim().is_none());
    }

    #[test]
    fn concurrent_claims_partition_exactly() {
        let calc = ChunkCalc::new(PolicyKind::Gss, 10_000, 4, &uniform(4));
        let counter = Arc::new(IterCounter::new(calc));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut chunks = Vec::new();
                while let Some(chunk) = c.claim() {
                    chunks.push(chunk);
                }
                chunks
            }));
        }
        let mut all: Vec<Chunk> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("claimer panicked"))
            .collect();
        all.sort_by_key(|c| c.start);
        let mut next = 0u64;
        for c in &all {
            assert_eq!(c.start, next, "contiguous, non-overlapping");
            assert!(c.len >= 1);
            next = c.end();
        }
        assert_eq!(next, 10_000, "claims cover the range exactly");
        assert_eq!(counter.remaining(), 0);
    }

    /// Ranges beyond the packed word's 40 start bits use the mutex fallback
    /// and still claim the exact central sequence.
    #[test]
    fn oversized_ranges_fall_back_to_the_wide_counter() {
        let n = 1u64 << 41; // > 2^40: packed representation cannot hold it
        let counter = IterCounter::new(ChunkCalc::new(PolicyKind::Gss, n, 4, &uniform(4)));
        let mut central = ChunkScheduler::new(PolicyKind::Gss.build(), n, 4, &uniform(4));
        let mut claims = 0u32;
        while let Some(expect) = central.next_chunk() {
            assert_eq!(counter.claim(), Some(expect));
            claims += 1;
        }
        assert_eq!(counter.claim(), None);
        assert_eq!(counter.chunk_count(), claims);
        assert_eq!(counter.remaining(), 0);
    }

    #[test]
    fn hub_leases_rendezvous_and_drain() {
        let hub = ChunkHub::new();
        let lease = hub.open(ChunkCalc::new(PolicyKind::Static, 10, 2, &uniform(2)));
        assert_eq!(lease.chunks, 2);
        assert_eq!(hub.open_leases(), 1);
        let a = hub.claim(lease.id).expect("first chunk");
        let b = hub.claim(lease.id).expect("second chunk");
        assert_eq!((a.start, a.len, b.start, b.len), (0, 5, 5, 5));
        assert!(hub.claim(lease.id).is_none());
        assert_eq!(hub.open_leases(), 0, "drained lease dropped");
        assert!(hub.claim(lease.id).is_none(), "unknown lease is None");
    }

    #[test]
    fn empty_range_leases_zero_chunks() {
        let hub = ChunkHub::new();
        let lease = hub.open(ChunkCalc::new(PolicyKind::Awf, 0, 3, &uniform(3)));
        assert_eq!(lease.chunks, 0);
        assert!(hub.claim(lease.id).is_none());
    }

    #[test]
    fn closing_a_lease_stops_claims() {
        let hub = ChunkHub::new();
        let lease = hub.open(ChunkCalc::new(PolicyKind::Ss, 100, 2, &uniform(2)));
        assert!(hub.claim(lease.id).is_some());
        assert!(hub.close(lease.id), "open lease closes");
        assert!(hub.claim(lease.id).is_none(), "closed lease hands nothing");
        assert!(hub.counter(lease.id).is_none());
        assert_eq!(hub.open_leases(), 0);
        assert!(!hub.close(lease.id), "second close is a no-op");
        assert!(!hub.close(9999), "unknown lease cannot close");
    }

    /// Many concurrent leases on one hub (the multi-range batching shape):
    /// each drains independently and exactly.
    #[test]
    fn many_leases_drain_independently() {
        let hub = Arc::new(ChunkHub::new());
        let leases = hub.open_batch(
            (0..64).map(|i| ChunkCalc::new(PolicyKind::Gss, 100 + i as u64, 3, &uniform(3))),
        );
        assert_eq!(hub.open_leases(), 64);
        // Interleave claims across all leases from several threads.
        let mut handles = Vec::new();
        for _ in 0..4 {
            let hub = Arc::clone(&hub);
            let ids: Vec<u64> = leases.iter().map(|l| l.id).collect();
            handles.push(std::thread::spawn(move || {
                let mut got = vec![0u64; ids.len()];
                loop {
                    let mut any = false;
                    for (k, &id) in ids.iter().enumerate() {
                        if let Some(c) = hub.claim(id) {
                            got[k] += c.len;
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                }
                got
            }));
        }
        let mut totals = vec![0u64; leases.len()];
        for h in handles {
            for (k, n) in h.join().expect("claimer panicked").into_iter().enumerate() {
                totals[k] += n;
            }
        }
        for (i, &t) in totals.iter().enumerate() {
            assert_eq!(t, 100 + i as u64, "lease {i} drains exactly");
        }
        assert_eq!(hub.open_leases(), 0);
    }

    #[test]
    fn abandoned_leases_report_undrained_ranges() {
        let hub = ChunkHub::new();
        let drained = hub.open(ChunkCalc::new(PolicyKind::Ss, 4, 2, &uniform(2)));
        let stuck = hub.open(ChunkCalc::new(PolicyKind::Ss, 8, 2, &uniform(2)));
        assert_eq!(hub.leases_issued(), 2);
        while hub.claim(drained.id).is_some() {}
        let _one = hub.claim(stuck.id).expect("one chunk claimed");
        let left = hub.abandoned_leases();
        assert_eq!(left.len(), 1, "only the undrained lease is abandoned");
        assert_eq!(left[0].id, stuck.id);
        assert!(left[0].claimed >= 1 && left[0].remaining > 0);
        // Progress still answers for the retired lease, unlike `counter`.
        assert!(hub.progress(drained.id).expect("known id").closed);
        assert!(hub.counter(drained.id).is_none());
        // The recovery path closes the survivor; nothing is abandoned.
        assert!(hub.close(stuck.id));
        assert!(hub.abandoned_leases().is_empty());
    }

    /// Owner-tagged leases expire exactly by owner: the dead rank's open
    /// ranges close, everyone else's keep draining.
    #[test]
    fn expire_owner_closes_only_that_ranks_leases() {
        let hub = ChunkHub::new();
        let mine = hub.open(ChunkCalc::new(PolicyKind::Ss, 8, 2, &uniform(2)));
        let theirs = hub.open(ChunkCalc::new(PolicyKind::Ss, 8, 2, &uniform(2)));
        let untagged = hub.open(ChunkCalc::new(PolicyKind::Ss, 8, 2, &uniform(2)));
        hub.set_owner(mine.id, 1);
        hub.set_owner(theirs.id, 2);
        assert_eq!(hub.owner_of(mine.id), Some(1));
        assert_eq!(hub.owner_of(untagged.id), None);

        let expired = hub.expire_owner(1);
        assert_eq!(expired, vec![mine.id], "only rank 1's lease expires");
        assert!(hub.claim(mine.id).is_none(), "expired lease hands nothing");
        assert!(hub.claim(theirs.id).is_some(), "rank 2 keeps draining");
        assert!(hub.claim(untagged.id).is_some(), "untagged keeps draining");

        // A second sweep finds nothing left to expire (close is once-only).
        assert!(hub.expire_owner(1).is_empty());
        // Draining the survivors leaves nothing abandoned.
        while hub.claim(theirs.id).is_some() {}
        while hub.claim(untagged.id).is_some() {}
        assert!(hub.abandoned_leases().is_empty());
    }
}
