//! Driving a chunk policy over a concrete iteration range.

use crate::policy::{ChunkPolicy, PolicyKind};

/// One scheduled chunk: the half-open iteration range
/// `start..start + len`, its position in the hand-out order, and the worker
/// the policy intends it for. The intended worker is a *hint* — a
/// load-aware route may override it when the target is congested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Position in hand-out order (0-based).
    pub seq: u32,
    /// First iteration of the chunk.
    pub start: u64,
    /// Number of iterations (always ≥ 1).
    pub len: u64,
    /// Worker index the policy sized this chunk for.
    pub worker: u32,
}

impl Chunk {
    /// One past the last iteration of the chunk.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Drives a [`ChunkPolicy`] over `total` iterations and `workers` workers,
/// enforcing the partition invariants regardless of what the policy
/// returns: chunks are non-empty, contiguous, non-overlapping, and sum to
/// `total`. Workers are cycled round-robin, which is the batch order the
/// FAC/AWF family assumes (one chunk per worker per batch).
pub struct ChunkScheduler {
    policy: Box<dyn ChunkPolicy>,
    next_start: u64,
    remaining: u64,
    workers: usize,
    seq: u32,
}

impl ChunkScheduler {
    /// Set up a partitioning run. `weights` must hold one entry per worker
    /// (normalized or not — policies only use ratios); non-adaptive
    /// policies ignore it.
    pub fn new(
        mut policy: Box<dyn ChunkPolicy>,
        total: u64,
        workers: usize,
        weights: &[f64],
    ) -> Self {
        let workers = workers.max(1);
        debug_assert_eq!(weights.len(), workers);
        policy.begin(total, workers, weights);
        Self {
            policy,
            next_start: 0,
            remaining: total,
            workers,
            seq: 0,
        }
    }

    /// The next chunk, or `None` once the range is exhausted.
    pub fn next_chunk(&mut self) -> Option<Chunk> {
        if self.remaining == 0 {
            return None;
        }
        let worker = (self.seq as usize) % self.workers;
        let len = self
            .policy
            .chunk_size(self.remaining, worker)
            .clamp(1, self.remaining);
        let chunk = Chunk {
            seq: self.seq,
            start: self.next_start,
            len,
            worker: worker as u32,
        };
        self.next_start += len;
        self.remaining -= len;
        self.seq += 1;
        Some(chunk)
    }

    /// Iterations not yet handed out.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Chunks handed out so far.
    pub fn chunks_issued(&self) -> u32 {
        self.seq
    }
}

/// Assign `items` work units to workers by partitioning `0..items` with
/// `kind` and giving every unit of a chunk to the chunk's worker — the
/// schedule-derived ownership map used to place *stateful* work (LU block
/// columns, matmul result blocks) whose data must live where it is
/// processed. With AWF weights from a calibrated feedback board, fast
/// workers own proportionally more units.
pub fn partition_owners(kind: PolicyKind, items: u64, workers: usize, weights: &[f64]) -> Vec<u32> {
    let mut sched = ChunkScheduler::new(kind.build(), items, workers, weights);
    let mut owners = vec![0u32; items as usize];
    while let Some(c) = sched.next_chunk() {
        for slot in &mut owners[c.start as usize..c.end() as usize] {
            *slot = c.worker;
        }
    }
    owners
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    /// A policy that misbehaves: returns 0 and oversized chunks.
    struct Rogue;
    impl ChunkPolicy for Rogue {
        fn name(&self) -> &'static str {
            "rogue"
        }
        fn begin(&mut self, _t: u64, _w: usize, _weights: &[f64]) {}
        fn chunk_size(&mut self, remaining: u64, worker: usize) -> u64 {
            if worker.is_multiple_of(2) {
                0
            } else {
                remaining * 10
            }
        }
    }

    #[test]
    fn scheduler_clamps_rogue_policies() {
        let mut s = ChunkScheduler::new(Box::new(Rogue), 10, 2, &[0.5, 0.5]);
        let mut total = 0;
        let mut prev_end = 0;
        while let Some(c) = s.next_chunk() {
            assert!(c.len >= 1);
            assert_eq!(c.start, prev_end, "contiguous, non-overlapping");
            prev_end = c.end();
            total += c.len;
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn empty_range_yields_no_chunks() {
        let mut s = ChunkScheduler::new(PolicyKind::Gss.build(), 0, 4, &[0.25; 4]);
        assert!(s.next_chunk().is_none());
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.chunks_issued(), 0);
    }

    #[test]
    fn partition_owners_covers_every_item() {
        let weights = [2.0 / 3.0, 1.0 / 3.0];
        let owners = partition_owners(PolicyKind::Awf, 12, 2, &weights);
        assert_eq!(owners.len(), 12);
        assert!(owners.iter().all(|&w| w < 2));
        let fast = owners.iter().filter(|&&w| w == 0).count();
        assert!(
            fast > 12 - fast,
            "fast worker owns the larger share: {owners:?}"
        );
    }

    #[test]
    fn workers_cycle_round_robin() {
        let mut s = ChunkScheduler::new(PolicyKind::Ss.build(), 5, 2, &[0.5, 0.5]);
        let workers: Vec<u32> = std::iter::from_fn(|| s.next_chunk())
            .map(|c| c.worker)
            .collect();
        assert_eq!(workers, vec![0, 1, 0, 1, 0]);
    }
}
