//! The pre-sharding, mutex-based [`FeedbackBoard`](crate::FeedbackBoard)
//! implementation, kept as the **reference baseline**:
//!
//! * the differential property test (`tests/proptest_feedback.rs`) asserts
//!   the sharded board reproduces this implementation's rates, weights and
//!   statistics byte for byte over randomized report sequences;
//! * the `bench_hotpath` binary (dps-bench) measures report throughput
//!   against it, so every committed `BENCH_hotpath.json` carries its own
//!   before/after comparison.
//!
//! Three coarse `parking_lot::Mutex`es guard the per-worker vectors, so
//! every [`report_chunk`](crate::FeedbackSink::report_chunk) from every
//! worker serializes on the same cache lines — the master-side bottleneck
//! the sharded board removes. Do not use this type in new code; it exists
//! to keep the fast path honest.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::feedback::{FeedbackSink, RateEstimator, WorkerStats, MAX_BATCHES, MAX_SAMPLES};
use crate::policy::PolicyKind;

/// Per-worker batch accounting for [`RateEstimator::BatchWeighted`].
#[derive(Debug, Default, Clone)]
struct BatchTrack {
    /// Closed batches: summed `(iters, secs)` per scheduling wave.
    closed: VecDeque<(f64, f64)>,
    /// The batch currently accumulating (reports since the last
    /// weight read).
    open: (f64, f64),
}

/// The coarse-grained (three-mutex) feedback board, preserved verbatim as
/// the baseline the sharded [`FeedbackBoard`](crate::FeedbackBoard) is
/// differential-tested and benchmarked against.
#[derive(Debug)]
pub struct LegacyFeedbackBoard {
    stats: Mutex<Vec<WorkerStats>>,
    /// Recent per-chunk `(iters, secs)` samples per worker.
    samples: Mutex<Vec<VecDeque<(f64, f64)>>>,
    /// Per-wave batch totals per worker (batch-weighted estimator only).
    batches: Mutex<Vec<BatchTrack>>,
    estimator: RateEstimator,
}

impl Default for LegacyFeedbackBoard {
    fn default() -> Self {
        Self::with_estimator(RateEstimator::Aggregate)
    }
}

impl LegacyFeedbackBoard {
    /// Empty board with the aggregate rate estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty board with an explicit rate estimator.
    pub fn with_estimator(estimator: RateEstimator) -> Self {
        let estimator = match estimator {
            RateEstimator::Trimmed(t) => RateEstimator::Trimmed(t.clamp(0.0, 0.4)),
            e => e,
        };
        Self {
            stats: Mutex::new(Vec::new()),
            samples: Mutex::new(Vec::new()),
            batches: Mutex::new(Vec::new()),
            estimator,
        }
    }

    /// Empty board with the outlier-resistant trimmed-mean estimator.
    pub fn with_trimmed_rates(trim: f64) -> Self {
        Self::with_estimator(RateEstimator::Trimmed(trim))
    }

    /// The board an AWF-family policy expects (see
    /// [`FeedbackBoard::for_policy`](crate::FeedbackBoard::for_policy)).
    pub fn for_policy(kind: PolicyKind) -> Self {
        Self::with_estimator(match kind {
            PolicyKind::AwfB => RateEstimator::BatchWeighted,
            PolicyKind::AwfC => RateEstimator::ChunkWeighted,
            _ => RateEstimator::Aggregate,
        })
    }

    /// The estimator this board was constructed with.
    pub fn estimator(&self) -> RateEstimator {
        self.estimator
    }

    /// Snapshot of the per-worker statistics (at least `workers` entries).
    pub fn stats(&self, workers: usize) -> Vec<WorkerStats> {
        let mut s = self.stats.lock().clone();
        if s.len() < workers {
            s.resize(workers, WorkerStats::default());
        }
        s
    }

    /// Per-worker measured rates (estimator per construction), `None` for
    /// workers with no usable reports.
    fn rates(&self, workers: usize) -> Vec<Option<f64>> {
        match self.estimator {
            RateEstimator::Aggregate => self
                .stats(workers)
                .iter()
                .take(workers)
                .map(WorkerStats::rate)
                .collect(),
            RateEstimator::Trimmed(trim) => {
                let samples = self.samples.lock();
                (0..workers)
                    .map(|w| {
                        samples
                            .get(w)
                            .and_then(|s| crate::feedback::trimmed_rate(s.iter(), trim))
                    })
                    .collect()
            }
            RateEstimator::ChunkWeighted => {
                let samples = self.samples.lock();
                (0..workers)
                    .map(|w| {
                        samples
                            .get(w)
                            .and_then(|s| crate::feedback::recency_weighted_rate(s.iter()))
                    })
                    .collect()
            }
            RateEstimator::BatchWeighted => {
                // `weights()` rolled every open batch before calling here,
                // so the closed deque is the complete measurement history.
                let batches = self.batches.lock();
                (0..workers)
                    .map(|w| {
                        batches
                            .get(w)
                            .and_then(|t| crate::feedback::recency_weighted_rate(t.closed.iter()))
                    })
                    .collect()
            }
        }
    }

    /// Per-worker weights, normalized to sum to 1 (see
    /// [`FeedbackBoard::weights`](crate::FeedbackBoard::weights)).
    pub fn weights(&self, workers: usize) -> Vec<f64> {
        if self.estimator == RateEstimator::BatchWeighted {
            self.roll_batches();
        }
        crate::feedback::weights_from_rates(self.rates(workers), workers)
    }

    /// Close every worker's open batch (no-op for workers that reported
    /// nothing since the last close).
    fn roll_batches(&self) {
        let mut batches = self.batches.lock();
        for t in batches.iter_mut() {
            if t.open.1 > 0.0 {
                if t.closed.len() == MAX_BATCHES {
                    t.closed.pop_front();
                }
                t.closed.push_back(t.open);
                t.open = (0.0, 0.0);
            }
        }
    }

    /// Forget all reports (e.g. between benchmark configurations).
    pub fn reset(&self) {
        self.stats.lock().clear();
        self.samples.lock().clear();
        self.batches.lock().clear();
    }

    /// Total chunks reported across all workers.
    pub fn total_chunks(&self) -> u64 {
        self.stats.lock().iter().map(|s| s.chunks).sum()
    }
}

impl FeedbackSink for LegacyFeedbackBoard {
    fn report_chunk(&self, worker: usize, iters: u64, secs: f64) {
        {
            let mut stats = self.stats.lock();
            if stats.len() <= worker {
                stats.resize(worker + 1, WorkerStats::default());
            }
            let s = &mut stats[worker];
            s.chunks += 1;
            s.iters += iters;
            s.secs += secs.max(0.0);
        }
        if secs > 0.0 && iters > 0 {
            {
                let mut samples = self.samples.lock();
                if samples.len() <= worker {
                    samples.resize(worker + 1, VecDeque::new());
                }
                let q = &mut samples[worker];
                if q.len() == MAX_SAMPLES {
                    q.pop_front();
                }
                q.push_back((iters as f64, secs));
            }
            let mut batches = self.batches.lock();
            if batches.len() <= worker {
                batches.resize(worker + 1, BatchTrack::default());
            }
            batches[worker].open.0 += iters as f64;
            batches[worker].open.1 += secs;
        }
    }

    fn worker_lost(&self, worker: usize) {
        let mut stats = self.stats.lock();
        if let Some(s) = stats.get_mut(worker) {
            *s = WorkerStats::default();
        }
        drop(stats);
        let mut samples = self.samples.lock();
        if let Some(q) = samples.get_mut(worker) {
            q.clear();
        }
        drop(samples);
        let mut batches = self.batches.lock();
        if let Some(t) = batches.get_mut(worker) {
            *t = BatchTrack::default();
        }
    }
}
