//! # dps-sched — dynamic loop scheduling for DPS
//!
//! The paper's split operations partition work *statically*; this crate
//! supplies the self-scheduling chunk policies from the dynamic loop
//! scheduling (DLS) literature (Mohammed et al., arXiv:1804.11115;
//! Eleliemy & Ciorba, arXiv:2101.07050) so splits can adapt chunk sizes to
//! heterogeneous and irregular workloads.
//!
//! A [`ChunkPolicy`] decides the size of the next chunk of a loop of `N`
//! iterations scheduled onto `P` workers, given the remaining iteration
//! count `R`:
//!
//! | policy | formula for the next chunk |
//! |---|---|
//! | [`StaticChunking`] | `⌈N/P⌉` — one pre-sized chunk per worker |
//! | [`SelfScheduling`] (SS) | `1` — pure work stealing granularity |
//! | [`GuidedSelfScheduling`] (GSS) | `⌈R/P⌉` — exponentially decreasing |
//! | [`TrapezoidSelfScheduling`] (TSS) | linear decrease from `f = ⌈N/2P⌉` to `l = 1` in `C = ⌈2N/(f+l)⌉` steps |
//! | [`Factoring`] (FAC) | batches of `P` chunks, each `⌈R/2P⌉` at batch start |
//! | [`AdaptiveWeightedFactoring`] (AWF) | factoring batches of `⌈R/2⌉` iterations, divided ∝ measured per-worker rates |
//! | AWF-B / AWF-C ([`PolicyKind::AwfB`]/[`PolicyKind::AwfC`]) | AWF sizing with **batch-** vs **chunk-time** recency-weighted rate estimation ([`RateEstimator`]) |
//!
//! The [`ChunkScheduler`] drives a policy over a concrete iteration range
//! and guarantees the partition invariants: every chunk is non-empty,
//! chunks are contiguous and non-overlapping, and their lengths sum to `N`
//! (property-tested in the workspace's `proptest_schedules`).
//!
//! ## The feedback protocol
//!
//! AWF needs to know how fast each worker actually is. Engines report one
//! [`FeedbackSink::report_chunk`] call per completed chunk — the
//! deterministic simulator reports *virtual* completion times, the
//! OS-thread engine reports *wall-clock* times; only the relative rates
//! matter, so the same application code adapts identically on both. The
//! [`FeedbackBoard`] aggregates those reports into per-worker rates and
//! turns them into the normalized weights AWF consumes on its next wave.
//!
//! ## Distributed chunk calculation
//!
//! Driving a policy centrally serializes every chunk on one thread. The
//! `calc` module removes that master bottleneck (Eleliemy & Ciorba,
//! arXiv:2101.07050): a [`ChunkCalc`] evaluates any chunk's boundaries
//! *closed-form from its sequence number*, an [`IterCounter`] shares the
//! claim state as one atomic word, and a [`ChunkHub`] leases counters to
//! the workers of a flow graph. The distributed chunk sequence is
//! byte-identical to the central scheduler's (property-tested).
//!
//! ## The lock-free hot path
//!
//! The per-chunk path — claim a chunk, execute it, report its completion —
//! takes no locks: [`ChunkHub::claim`] resolves leases through a doubling
//! slot directory (many concurrent scheduled loops share one hub without
//! contending) and [`FeedbackBoard`] reports are wait-free single-writer
//! seqlock writes into per-worker cache-line-padded slots; all rate
//! estimation folds on the infrequent read side. The pre-sharding
//! mutex-based board survives as [`legacy::LegacyFeedbackBoard`], the
//! baseline the differential proptest and the `bench_hotpath` benchmark
//! compare against.
//!
//! This crate is engine-independent: `dps-core`'s `ScheduledSplit`
//! operation plugs these policies into flow graphs.

mod calc;
mod feedback;
pub mod legacy;
mod policy;
pub mod remote;
mod scheduler;

pub use calc::{ChunkCalc, ChunkHub, ChunkLease, IterCounter, LeaseProgress};
pub use feedback::{FeedbackBoard, FeedbackSink, RateEstimator, WorkerStats};
pub use policy::{
    AdaptiveWeightedFactoring, ChunkPolicy, Distribution, Factoring, GuidedSelfScheduling,
    PolicyKind, SelfScheduling, StaticChunking, TrapezoidSelfScheduling,
};
pub use scheduler::{partition_owners, Chunk, ChunkScheduler};
