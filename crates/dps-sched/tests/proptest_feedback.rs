//! Differential property test: the sharded, wait-free [`FeedbackBoard`]
//! must be observationally **byte-identical** to the pre-sharding
//! mutex-based [`LegacyFeedbackBoard`] — same weights, same statistics,
//! same policy partitions — over randomized report sequences interleaved
//! with weight reads (which close batches for AWF-B) and worker losses,
//! for every [`RateEstimator`] variant.
//!
//! The comparison is on `f64::to_bits`, not approximate: the sharded board
//! moved the estimator folding to the read side, and this test pins down
//! that the fold replays the legacy arithmetic exactly.

use dps_sched::legacy::LegacyFeedbackBoard;
use dps_sched::{partition_owners, FeedbackBoard, FeedbackSink, PolicyKind, RateEstimator};
use proptest::collection::vec;
use proptest::prelude::*;

const WORKERS: usize = 5;

/// One scripted action against both boards, decoded from raw draws.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `report_chunk(worker, iters, secs)`.
    Report {
        worker: usize,
        iters: u64,
        secs: f64,
    },
    /// `weights(WORKERS)` on both boards, compared bitwise. For AWF-B this
    /// is also the batch boundary.
    ReadWeights,
    /// `worker_lost(worker)`.
    Lose { worker: usize },
}

/// Decode a raw `(sel, worker, iters, secs_q)` draw into an op. Reports
/// dominate; `secs_q == 0` produces the zero-time edge case the boards must
/// ignore for rate purposes while still counting the chunk.
fn decode(raw: (u8, u8, u16, u8)) -> Op {
    let (sel, worker, iters, secs_q) = raw;
    let worker = worker as usize % WORKERS;
    match sel % 10 {
        8 => Op::ReadWeights,
        9 => Op::Lose { worker },
        _ => Op::Report {
            worker,
            iters: iters as u64 % 1000,
            // Quantized positive times plus the 0.0 edge; eighths are exact
            // in binary so accumulated sums stay reproducible.
            secs: secs_q as f64 / 8.0,
        },
    }
}

fn estimators() -> [RateEstimator; 5] {
    [
        RateEstimator::Aggregate,
        RateEstimator::Trimmed(0.0),
        RateEstimator::Trimmed(0.25),
        RateEstimator::BatchWeighted,
        RateEstimator::ChunkWeighted,
    ]
}

fn assert_bitwise_eq(a: &[f64], b: &[f64], what: &str, est: RateEstimator) {
    assert_eq!(a.len(), b.len(), "{what} length under {est:?}");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}] diverges under {est:?}: sharded {x} vs legacy {y}"
        );
    }
}

fn run_script(est: RateEstimator, ops: &[Op]) {
    let sharded = FeedbackBoard::with_estimator(est);
    let legacy = LegacyFeedbackBoard::with_estimator(est);
    for &op in ops {
        match op {
            Op::Report {
                worker,
                iters,
                secs,
            } => {
                sharded.report_chunk(worker, iters, secs);
                legacy.report_chunk(worker, iters, secs);
            }
            Op::ReadWeights => {
                assert_bitwise_eq(
                    &sharded.weights(WORKERS),
                    &legacy.weights(WORKERS),
                    "weights",
                    est,
                );
            }
            Op::Lose { worker } => {
                sharded.worker_lost(worker);
                legacy.worker_lost(worker);
            }
        }
    }
    // Final full-state comparison: weights, stats, chunk totals, and the
    // policy partitions derived from the weights.
    let (ws, wl) = (sharded.weights(WORKERS), legacy.weights(WORKERS));
    assert_bitwise_eq(&ws, &wl, "final weights", est);
    assert_eq!(sharded.total_chunks(), legacy.total_chunks(), "{est:?}");
    let (ss, sl) = (sharded.stats(WORKERS), legacy.stats(WORKERS));
    assert_eq!(ss.len(), sl.len(), "{est:?} stats length");
    for (i, (a, b)) in ss.iter().zip(&sl).enumerate() {
        assert_eq!(a.chunks, b.chunks, "{est:?} stats[{i}].chunks");
        assert_eq!(a.iters, b.iters, "{est:?} stats[{i}].iters");
        assert_eq!(
            a.secs.to_bits(),
            b.secs.to_bits(),
            "{est:?} stats[{i}].secs"
        );
    }
    for kind in PolicyKind::ALL {
        assert_eq!(
            partition_owners(kind, 64, WORKERS, &ws),
            partition_owners(kind, 64, WORKERS, &wl),
            "{kind:?} partition under {est:?}"
        );
    }
}

proptest! {
    #[test]
    fn sharded_board_matches_legacy_bit_for_bit(
        raw in vec(any::<(u8, u8, u16, u8)>(), 0..300),
    ) {
        let ops: Vec<Op> = raw.into_iter().map(decode).collect();
        for est in estimators() {
            run_script(est, &ops);
        }
    }

    /// Long single-worker streams overflow both the sample ring (64) and
    /// the batch ring (32): the eviction orders must agree too.
    #[test]
    fn ring_eviction_matches_legacy(
        raw in vec(any::<(u16, u8)>(), 0..400),
        reads_every in 1usize..9,
    ) {
        for est in estimators() {
            let sharded = FeedbackBoard::with_estimator(est);
            let legacy = LegacyFeedbackBoard::with_estimator(est);
            for (j, &(iters, secs_q)) in raw.iter().enumerate() {
                let iters = iters as u64 % 500;
                let secs = secs_q as f64 / 8.0;
                sharded.report_chunk(0, iters, secs);
                legacy.report_chunk(0, iters, secs);
                if j % reads_every == 0 {
                    assert_bitwise_eq(
                        &sharded.weights(2),
                        &legacy.weights(2),
                        "streamed weights",
                        est,
                    );
                }
            }
            assert_bitwise_eq(&sharded.weights(2), &legacy.weights(2), "tail weights", est);
        }
    }
}

/// `reset` returns both implementations to the cold state.
#[test]
fn reset_matches_legacy() {
    for est in estimators() {
        let sharded = FeedbackBoard::with_estimator(est);
        let legacy = LegacyFeedbackBoard::with_estimator(est);
        for w in 0..WORKERS {
            sharded.report_chunk(w, 10 + w as u64, 0.5);
            legacy.report_chunk(w, 10 + w as u64, 0.5);
        }
        let _ = (sharded.weights(WORKERS), legacy.weights(WORKERS));
        sharded.reset();
        legacy.reset();
        assert_bitwise_eq(
            &sharded.weights(WORKERS),
            &legacy.weights(WORKERS),
            "post-reset weights",
            est,
        );
        assert_eq!(sharded.total_chunks(), 0);
        assert_eq!(legacy.total_chunks(), 0);
        // Reports after a reset start a fresh, still-identical history.
        sharded.report_chunk(1, 40, 0.25);
        legacy.report_chunk(1, 40, 0.25);
        assert_bitwise_eq(
            &sharded.weights(WORKERS),
            &legacy.weights(WORKERS),
            "post-reset report weights",
            est,
        );
    }
}
