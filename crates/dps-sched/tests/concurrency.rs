//! Schedule-randomizing concurrency tests (shuttle-style: no real model
//! checker is available offline, so interleavings are explored by running
//! each scenario across many seeds, with seed-derived yield/backoff points
//! perturbing the thread schedule and invariants checked at *every*
//! intermediate observation, not just at quiescence).
//!
//! Covered:
//! * the wait-free [`FeedbackBoard`] report slot — concurrent reporters
//!   plus a folding reader never observe torn or lost state;
//! * `worker_lost` racing a live reporter — snapshots are all-or-nothing;
//! * [`ChunkHub`] multi-range lease claim/close interleavings — exact
//!   partitioning, no hand-outs after close is observed, drained leases
//!   retire exactly once.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use dps_sched::{ChunkCalc, ChunkHub, FeedbackBoard, FeedbackSink, PolicyKind};

/// Tiny deterministic PRNG (xorshift64*) for seed-derived schedules.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Perturb the schedule: nothing, a spin hint, or an OS yield.
    fn jitter(&mut self) {
        match self.next() % 8 {
            0 => std::thread::yield_now(),
            1 | 2 => std::hint::spin_loop(),
            _ => {}
        }
    }
}

/// Concurrent reporters (one per worker index, the engines' single-writer
/// discipline) with a reader folding mid-flight: every snapshot the reader
/// takes must be internally consistent — `iters` and `secs` always agree
/// with `chunks` — and the final state must be exact.
#[test]
fn report_slots_are_never_torn_or_lost() {
    const WORKERS: usize = 4;
    const REPORTS: u64 = 2_000;
    for seed in 0..8u64 {
        let board = Arc::new(FeedbackBoard::new());
        let start = Arc::new(Barrier::new(WORKERS + 1));
        let done = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let board = Arc::clone(&board);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    let mut rng = Rng::new(seed * 31 + w as u64);
                    start.wait();
                    for _ in 0..REPORTS {
                        // iters = 7·chunk, secs = 0.5·chunk: any consistent
                        // snapshot satisfies the exact linear invariants.
                        board.report_chunk(w, 7, 0.5);
                        rng.jitter();
                    }
                })
            })
            .collect();
        let reader = {
            let board = Arc::clone(&board);
            let start = Arc::clone(&start);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut rng = Rng::new(seed ^ 0xfeed);
                start.wait();
                let mut observations = 0u64;
                while !done.load(Ordering::Acquire) {
                    for s in board.stats(WORKERS) {
                        assert_eq!(s.iters, 7 * s.chunks, "torn iters/chunks");
                        assert_eq!(
                            s.secs.to_bits(),
                            (0.5 * s.chunks as f64).to_bits(),
                            "torn secs/chunks"
                        );
                    }
                    let w = board.weights(WORKERS);
                    assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{w:?}");
                    observations += 1;
                    rng.jitter();
                }
                observations
            })
        };
        for h in writers {
            h.join().expect("reporter panicked");
        }
        done.store(true, Ordering::Release);
        let observations = reader.join().expect("reader panicked");
        assert!(observations > 0, "reader never ran");
        for s in &board.stats(WORKERS)[..WORKERS] {
            assert_eq!(s.chunks, REPORTS, "lost reports");
            assert_eq!(s.iters, 7 * REPORTS);
        }
        assert_eq!(board.total_chunks(), WORKERS as u64 * REPORTS);
    }
}

/// `worker_lost` (a cross-thread write into the victim's slot) racing the
/// victim's own reports: the reset is atomic from every reader's view —
/// snapshots never mix pre-loss and post-loss state.
#[test]
fn worker_lost_races_are_all_or_nothing() {
    for seed in 0..12u64 {
        let board = Arc::new(FeedbackBoard::new());
        let start = Arc::new(Barrier::new(3));
        let reporter = {
            let board = Arc::clone(&board);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let mut rng = Rng::new(seed);
                start.wait();
                for _ in 0..3_000 {
                    board.report_chunk(0, 7, 0.5);
                    rng.jitter();
                }
            })
        };
        let loser = {
            let board = Arc::clone(&board);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let mut rng = Rng::new(seed ^ 0xdead);
                start.wait();
                for _ in 0..40 {
                    board.worker_lost(0);
                    for _ in 0..(rng.next() % 64) {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        start.wait();
        for _ in 0..2_000 {
            let s = board.stats(1)[0];
            assert_eq!(s.iters, 7 * s.chunks, "reset mixed with reports");
            assert_eq!(s.secs.to_bits(), (0.5 * s.chunks as f64).to_bits());
        }
        reporter.join().expect("reporter panicked");
        loser.join().expect("loser panicked");
    }
}

/// Concurrent claimers over several leases with a closer expiring one lease
/// mid-drain: claims stay an exact prefix partition of each range, nothing
/// is handed out after `close` is observed, and every lease retires from
/// `open_leases` exactly once.
#[test]
fn lease_claim_and_close_interleavings() {
    const CLAIMERS: usize = 4;
    for seed in 0..10u64 {
        let hub = Arc::new(ChunkHub::new());
        let keep = hub.open(ChunkCalc::new(PolicyKind::Gss, 5_000, CLAIMERS, &[]));
        let doomed = hub.open(ChunkCalc::new(PolicyKind::Ss, 50_000, CLAIMERS, &[]));
        assert_eq!(hub.open_leases(), 2);
        let start = Arc::new(Barrier::new(CLAIMERS + 2));
        let doomed_iters = Arc::new(AtomicU64::new(0));
        let closed_at = Arc::new(AtomicU64::new(u64::MAX));
        let claimers: Vec<_> = (0..CLAIMERS)
            .map(|c| {
                let hub = Arc::clone(&hub);
                let start = Arc::clone(&start);
                let doomed_iters = Arc::clone(&doomed_iters);
                let closed_at = Arc::clone(&closed_at);
                std::thread::spawn(move || {
                    let mut rng = Rng::new(seed * 17 + c as u64);
                    start.wait();
                    let mut keep_iters = 0u64;
                    loop {
                        let mut progressed = false;
                        if let Some(chunk) = hub.claim(keep.id) {
                            keep_iters += chunk.len;
                            progressed = true;
                        }
                        // After close() returned, a claim may at most race
                        // the close itself; once we *observed* None from
                        // the doomed lease it must stay None.
                        if closed_at.load(Ordering::Acquire) == u64::MAX {
                            if let Some(chunk) = hub.claim(doomed.id) {
                                doomed_iters.fetch_add(chunk.len, Ordering::Relaxed);
                                progressed = true;
                            }
                        } else {
                            assert!(
                                hub.claim(doomed.id).is_none(),
                                "closed lease handed out a chunk"
                            );
                        }
                        rng.jitter();
                        if !progressed && hub.claim(keep.id).is_none() {
                            break;
                        }
                    }
                    keep_iters
                })
            })
            .collect();
        let closer = {
            let hub = Arc::clone(&hub);
            let start = Arc::clone(&start);
            let closed_at = Arc::clone(&closed_at);
            let doomed_iters = Arc::clone(&doomed_iters);
            std::thread::spawn(move || {
                let mut rng = Rng::new(seed ^ 0xc105e);
                start.wait();
                for _ in 0..(rng.next() % 2_000) {
                    std::hint::spin_loop();
                }
                hub.close(doomed.id);
                closed_at.store(doomed_iters.load(Ordering::Relaxed), Ordering::Release);
            })
        };
        start.wait();
        let keep_total: u64 = claimers
            .into_iter()
            .map(|h| h.join().expect("claimer panicked"))
            .sum();
        closer.join().expect("closer panicked");
        // The surviving lease drains exactly.
        assert_eq!(keep_total, 5_000, "seed {seed}: exact partition");
        // The doomed lease handed out at most its range, and nothing after
        // the close was observed (checked inside the claimers).
        assert!(doomed_iters.load(Ordering::Relaxed) <= 50_000);
        assert!(hub.claim(doomed.id).is_none());
        assert_eq!(hub.open_leases(), 0, "both leases retired exactly once");
        // Closing again is a no-op; the drained lease cannot reopen.
        assert!(!hub.close(doomed.id));
        assert!(!hub.close(keep.id));
    }
}

/// Batch reports interleaved with single reports from the same owner
/// thread serialize correctly under a concurrent reader.
#[test]
fn batch_reports_fold_consistently() {
    let board = Arc::new(FeedbackBoard::new());
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let board = Arc::clone(&board);
        std::thread::spawn(move || {
            for j in 0..1_000u64 {
                if j % 3 == 0 {
                    board.report_batch(0, &[(7, 0.5), (7, 0.5), (7, 0.5)]);
                } else {
                    board.report_chunk(0, 7, 0.5);
                }
            }
        })
    };
    let reader = {
        let board = Arc::clone(&board);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                let s = board.stats(1)[0];
                assert_eq!(s.iters, 7 * s.chunks);
                assert_eq!(s.secs.to_bits(), (0.5 * s.chunks as f64).to_bits());
            }
        })
    };
    writer.join().expect("writer panicked");
    done.store(true, Ordering::Release);
    reader.join().expect("reader panicked");
    // 334 batches of 3 + 666 singles.
    assert_eq!(board.stats(1)[0].chunks, 334 * 3 + 666);
}
