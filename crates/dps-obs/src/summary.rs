//! The compact per-wave summary: makespan, per-worker busy fractions, and a
//! claim-latency histogram — the numbers the DLS literature validates
//! policies with, derived from the same event stream as the Chrome export.

use std::collections::BTreeMap;
use std::fmt;

use crate::collect::TraceLog;
use crate::event::EventKind;

/// Power-of-two-bucketed latency histogram (nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` ns (bucket 0 also
    /// holds zero-latency samples).
    pub buckets: [u64; 40],
    /// Total samples.
    pub count: u64,
    /// Largest sample (ns).
    pub max: u64,
    /// Sum of samples (ns).
    pub total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; 40],
            count: 0,
            max: 0,
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// Record one latency sample.
    pub fn record(&mut self, nanos: u64) {
        let b = (64 - nanos.leading_zeros()).saturating_sub(1).min(39) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.max = self.max.max(nanos);
        self.total += nanos;
    }

    /// Mean latency in ns (0 when empty).
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (ns) of the bucket containing quantile `q` in `0..=1`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        self.max
    }
}

/// One wave's digest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WaveSummary {
    /// Graph name.
    pub graph: String,
    /// Wave id.
    pub wave: u32,
    /// Wave start (engine ns).
    pub start: u64,
    /// Wave end (engine ns).
    pub end: u64,
    /// Per-track `(node, thread, busy_nanos)` — time inside op spans.
    pub busy: Vec<(u16, u16, u64)>,
    /// Enqueue→deliver latency of the wave's tokens.
    pub claim_latency: LatencyHistogram,
    /// Chunks executed (from `ChunkExec` events inside the wave).
    pub chunks: u64,
    /// Iterations covered by those chunks.
    pub iters: u64,
}

impl WaveSummary {
    /// Wave makespan in nanoseconds.
    pub fn makespan(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Busy fraction of `(node, thread)` over the wave (0 when unknown).
    pub fn busy_fraction(&self, node: u16, thread: u16) -> f64 {
        let span = self.makespan().max(1) as f64;
        self.busy
            .iter()
            .find(|&&(n, t, _)| n == node && t == thread)
            .map_or(0.0, |&(_, _, b)| b as f64 / span)
    }
}

impl fmt::Display for WaveSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "wave {} ({}): makespan {:.3} ms, {} chunks / {} iters",
            self.wave,
            if self.graph.is_empty() {
                "?"
            } else {
                &self.graph
            },
            self.makespan() as f64 / 1e6,
            self.chunks,
            self.iters,
        )?;
        let span = self.makespan().max(1) as f64;
        for &(node, thread, busy) in &self.busy {
            writeln!(
                f,
                "  node{node}/t{thread}: busy {:5.1}%",
                100.0 * busy as f64 / span
            )?;
        }
        if self.claim_latency.count > 0 {
            writeln!(
                f,
                "  delivery latency: mean {} ns, p50 ≤ {} ns, p99 ≤ {} ns, max {} ns ({} samples)",
                self.claim_latency.mean(),
                self.claim_latency.quantile(0.5),
                self.claim_latency.quantile(0.99),
                self.claim_latency.max,
                self.claim_latency.count,
            )?;
        }
        Ok(())
    }
}

/// Fold a log into per-wave summaries, ordered by wave id.
pub fn wave_summaries(log: &TraceLog) -> Vec<WaveSummary> {
    let mut waves: BTreeMap<u32, WaveSummary> = BTreeMap::new();
    let mut open_ops: BTreeMap<(u16, u16), u64> = BTreeMap::new();
    let mut enqueues: BTreeMap<u64, u64> = BTreeMap::new();
    let max_at = log.events.iter().map(|e| e.at).max().unwrap_or(0);
    fn entry(waves: &mut BTreeMap<u32, WaveSummary>, wave: u32, max_at: u64) -> &mut WaveSummary {
        waves.entry(wave).or_insert_with(|| WaveSummary {
            wave,
            end: max_at,
            ..WaveSummary::default()
        })
    }
    // Chunk events carry no wave id; attribute them to the newest open wave.
    let mut current_wave: Option<u32> = None;
    for e in &log.events {
        match e.kind {
            EventKind::WaveStart { graph, wave } => {
                let w = entry(&mut waves, wave, max_at);
                w.graph = log.label(graph).to_string();
                w.start = e.at;
                current_wave = Some(wave);
            }
            EventKind::WaveEnd { wave, .. } => {
                entry(&mut waves, wave, max_at).end = e.at;
                if current_wave == Some(wave) {
                    current_wave = None;
                }
            }
            EventKind::OpStart { wave, .. } => {
                open_ops.insert((e.node, e.thread), e.at);
                entry(&mut waves, wave, max_at);
            }
            EventKind::OpEnd { wave, .. } => {
                if let Some(t0) = open_ops.remove(&(e.node, e.thread)) {
                    let w = entry(&mut waves, wave, max_at);
                    match w.busy.iter_mut().find(|b| b.0 == e.node && b.1 == e.thread) {
                        Some(b) => b.2 += e.at.saturating_sub(t0),
                        None => w.busy.push((e.node, e.thread, e.at.saturating_sub(t0))),
                    }
                }
            }
            EventKind::TokenEnqueue { flow, .. } => {
                enqueues.insert(flow, e.at);
            }
            EventKind::TokenDeliver { wave, flow, .. } => {
                if let Some(t0) = enqueues.remove(&flow) {
                    entry(&mut waves, wave, max_at)
                        .claim_latency
                        .record(e.at.saturating_sub(t0));
                }
            }
            EventKind::ChunkExec { iters, .. } => {
                if let Some(wave) = current_wave {
                    let w = entry(&mut waves, wave, max_at);
                    w.chunks += 1;
                    w.iters += iters;
                }
            }
            _ => {}
        }
    }
    waves.into_values().collect()
}

/// Render every wave summary as one report.
pub fn render_summary(log: &TraceLog) -> String {
    let mut out = String::new();
    for w in wave_summaries(log) {
        out.push_str(&w.to_string());
    }
    if out.is_empty() {
        out.push_str("(no waves recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::TraceCollector;
    use crate::event::EventKind;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        for n in [0u64, 1, 1, 2, 1000, 1_000_000] {
            h.record(n);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.max, 1_000_000);
        assert!(h.quantile(0.5) <= 4);
        assert!(h.quantile(1.0) >= 1_000_000 / 2);
        assert_eq!(LatencyHistogram::default().quantile(0.5), 0);
    }

    #[test]
    fn summaries_fold_busy_and_latency() {
        let c = TraceCollector::new();
        let g = c.label("life");
        let op = c.label("life:leaf");
        let tok = c.label("Band");
        let mut w = c.writer(0, 0);
        w.record_on(0, 0, 0, EventKind::WaveStart { graph: g, wave: 2 });
        w.record_on(
            10,
            0,
            0,
            EventKind::TokenEnqueue {
                token: tok,
                wave: 2,
                flow: 1,
            },
        );
        w.record_on(
            110,
            1,
            0,
            EventKind::TokenDeliver {
                token: tok,
                wave: 2,
                flow: 1,
            },
        );
        w.record_on(110, 1, 0, EventKind::OpStart { op, wave: 2 });
        w.record_on(
            500,
            1,
            0,
            EventKind::ChunkExec {
                iters: 32,
                nanos: 390,
            },
        );
        w.record_on(510, 1, 0, EventKind::OpEnd { op, wave: 2 });
        w.record_on(1000, 0, 0, EventKind::WaveEnd { graph: g, wave: 2 });
        let log = c.take_log();
        let sums = wave_summaries(&log);
        assert_eq!(sums.len(), 1);
        let s = &sums[0];
        assert_eq!(s.wave, 2);
        assert_eq!(s.graph, "life");
        assert_eq!(s.makespan(), 1000);
        assert_eq!(s.busy, vec![(1, 0, 400)]);
        assert!((s.busy_fraction(1, 0) - 0.4).abs() < 1e-9);
        assert_eq!(s.claim_latency.count, 1);
        assert_eq!((s.chunks, s.iters), (1, 32));
        let text = render_summary(&log);
        assert!(text.contains("wave 2 (life)"));
        assert!(text.contains("node1/t0"));
    }
}
