//! The trace-event model: what the engines record.
//!
//! Events are small `Copy` records — every string (graph name, operation
//! name, frame kind) is interned into a [`LabelId`] on the cold path, so the
//! hot path writes fixed-size plain data into its ring and never allocates.

/// An interned string: an index into the owning [`TraceLog`](crate::TraceLog)
/// (or [`TraceCollector`](crate::TraceCollector)) label table.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LabelId(pub u32);

/// One timestamped observation, recorded by whichever engine executed it.
///
/// `at` is in nanoseconds of the *engine's own* notion of time — virtual
/// time on the simulator, wall-clock since collector creation on the thread
/// and process engines. `node`/`thread` identify the track the event belongs
/// to: the cluster node (or kernel rank) and the thread index within it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Engine time in nanoseconds.
    pub at: u64,
    /// Cluster node / kernel rank (the Chrome-trace `pid`).
    pub node: u16,
    /// Thread index within the node (the Chrome-trace `tid`).
    pub thread: u16,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// A zeroed placeholder (ring-buffer slot initializer).
    pub const fn empty() -> Self {
        Self {
            at: 0,
            node: 0,
            thread: 0,
            kind: EventKind::WaveStart {
                graph: LabelId(0),
                wave: 0,
            },
        }
    }
}

/// The event vocabulary — one variant per instrumentation point named in
/// the engines: wave and operation lifecycles, the scheduled-loop chunk
/// protocol, token movement, wire frames, and failures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A split opened wave `wave` of graph `graph`.
    WaveStart {
        /// Graph name.
        graph: LabelId,
        /// Wave identifier (unique within the run).
        wave: u32,
    },
    /// Wave `wave` closed (its merge finalized).
    WaveEnd {
        /// Graph name.
        graph: LabelId,
        /// Wave identifier.
        wave: u32,
    },
    /// An operation began executing a token.
    OpStart {
        /// Operation label (graph + node kind).
        op: LabelId,
        /// Wave the token belongs to.
        wave: u32,
    },
    /// The operation finished (pairs with the preceding `OpStart` on the
    /// same track).
    OpEnd {
        /// Operation label.
        op: LabelId,
        /// Wave the token belongs to.
        wave: u32,
    },
    /// A worker claimed a chunk from a hub lease (distributed chunk
    /// calculation).
    ChunkClaim {
        /// Hub lease id.
        lease: u64,
        /// First iteration of the claimed chunk.
        start: u64,
        /// Iterations claimed.
        len: u64,
    },
    /// A worker finished executing a chunk of a scheduled loop.
    ChunkExec {
        /// Iterations the chunk covered.
        iters: u64,
        /// Execution time in nanoseconds (engine time).
        nanos: u64,
    },
    /// The chunk's completion was reported to the feedback sink.
    ChunkReport {
        /// Reporting worker index (collection-wide).
        worker: u32,
        /// Iterations reported.
        iters: u64,
        /// Execution nanoseconds reported.
        nanos: u64,
    },
    /// A token was routed and queued toward a destination thread.
    TokenEnqueue {
        /// Token type name.
        token: LabelId,
        /// Wave the token belongs to.
        wave: u32,
        /// Flow id linking this enqueue to its delivery (unique per run).
        flow: u64,
    },
    /// A queued token reached its destination thread.
    TokenDeliver {
        /// Token type name.
        token: LabelId,
        /// Wave the token belongs to.
        wave: u32,
        /// Flow id matching the `TokenEnqueue`.
        flow: u64,
    },
    /// A wire frame left this kernel (process engine).
    FrameSend {
        /// Frame kind name.
        frame: LabelId,
        /// Encoded size in bytes.
        bytes: u64,
    },
    /// A wire frame arrived at this kernel.
    FrameRecv {
        /// Frame kind name.
        frame: LabelId,
        /// Encoded size in bytes.
        bytes: u64,
    },
    /// A node (or worker thread/process) was declared dead.
    NodeDown {
        /// The failed node.
        node: u16,
    },
    /// Deliveries stranded on a failed node were re-routed.
    Requeue {
        /// Tokens re-queued.
        tokens: u32,
    },
    /// An operation failed terminally (the wave cannot complete).
    OpFailed {
        /// Application or operation label.
        op: LabelId,
    },
    /// A fault was injected or a failure-handling path ran: node kills,
    /// modeled packet drops/delays/duplicates, stranded-delivery requeues.
    /// The breadcrumb the simulation-testing harness leaves so perturbed
    /// runs are legible in Chrome traces.
    Fault {
        /// Fault class code (see [`fault_code`]).
        code: u32,
        /// Class-specific detail — tokens requeued, retransmits, extra
        /// delay nanoseconds.
        detail: u64,
    },
}

/// Fault class codes carried by [`EventKind::Fault`].
pub mod fault_code {
    /// A node was killed and its stranded deliveries re-routed; `detail`
    /// is the number of tokens requeued.
    pub const NODE_KILL: u32 = 1;
    /// A modeled packet drop forced retransmits; `detail` is the
    /// retransmit count.
    pub const NET_DROP: u32 = 2;
    /// A modeled delivery delay; `detail` is the extra nanoseconds.
    pub const NET_DELAY: u32 = 3;
    /// A modeled duplicate frame (suppressed above the transport);
    /// `detail` is the duplicate count.
    pub const NET_DUP: u32 = 4;
}

impl EventKind {
    /// Stable numeric tag (wire encoding and hashing).
    pub const fn tag(&self) -> u8 {
        match self {
            EventKind::WaveStart { .. } => 0,
            EventKind::WaveEnd { .. } => 1,
            EventKind::OpStart { .. } => 2,
            EventKind::OpEnd { .. } => 3,
            EventKind::ChunkClaim { .. } => 4,
            EventKind::ChunkExec { .. } => 5,
            EventKind::ChunkReport { .. } => 6,
            EventKind::TokenEnqueue { .. } => 7,
            EventKind::TokenDeliver { .. } => 8,
            EventKind::FrameSend { .. } => 9,
            EventKind::FrameRecv { .. } => 10,
            EventKind::NodeDown { .. } => 11,
            EventKind::Requeue { .. } => 12,
            EventKind::OpFailed { .. } => 13,
            EventKind::Fault { .. } => 14,
        }
    }

    /// The payload as up to three `u64` words, `(a, b, c)` (wire encoding
    /// and hashing; label ids widen to `u64`).
    pub const fn payload(&self) -> (u64, u64, u64) {
        match *self {
            EventKind::WaveStart { graph, wave } | EventKind::WaveEnd { graph, wave } => {
                (graph.0 as u64, wave as u64, 0)
            }
            EventKind::OpStart { op, wave } | EventKind::OpEnd { op, wave } => {
                (op.0 as u64, wave as u64, 0)
            }
            EventKind::ChunkClaim { lease, start, len } => (lease, start, len),
            EventKind::ChunkExec { iters, nanos } => (iters, nanos, 0),
            EventKind::ChunkReport {
                worker,
                iters,
                nanos,
            } => (worker as u64, iters, nanos),
            EventKind::TokenEnqueue { token, wave, flow }
            | EventKind::TokenDeliver { token, wave, flow } => (token.0 as u64, wave as u64, flow),
            EventKind::FrameSend { frame, bytes } | EventKind::FrameRecv { frame, bytes } => {
                (frame.0 as u64, bytes, 0)
            }
            EventKind::NodeDown { node } => (node as u64, 0, 0),
            EventKind::Requeue { tokens } => (tokens as u64, 0, 0),
            EventKind::OpFailed { op } => (op.0 as u64, 0, 0),
            EventKind::Fault { code, detail } => (code as u64, detail, 0),
        }
    }

    /// Rebuild a kind from its `tag` and `payload` words (wire decoding).
    pub fn from_wire(tag: u8, a: u64, b: u64, c: u64) -> Option<Self> {
        let label = |v: u64| LabelId(v as u32);
        Some(match tag {
            0 => EventKind::WaveStart {
                graph: label(a),
                wave: b as u32,
            },
            1 => EventKind::WaveEnd {
                graph: label(a),
                wave: b as u32,
            },
            2 => EventKind::OpStart {
                op: label(a),
                wave: b as u32,
            },
            3 => EventKind::OpEnd {
                op: label(a),
                wave: b as u32,
            },
            4 => EventKind::ChunkClaim {
                lease: a,
                start: b,
                len: c,
            },
            5 => EventKind::ChunkExec { iters: a, nanos: b },
            6 => EventKind::ChunkReport {
                worker: a as u32,
                iters: b,
                nanos: c,
            },
            7 => EventKind::TokenEnqueue {
                token: label(a),
                wave: b as u32,
                flow: c,
            },
            8 => EventKind::TokenDeliver {
                token: label(a),
                wave: b as u32,
                flow: c,
            },
            9 => EventKind::FrameSend {
                frame: label(a),
                bytes: b,
            },
            10 => EventKind::FrameRecv {
                frame: label(a),
                bytes: b,
            },
            11 => EventKind::NodeDown { node: a as u16 },
            12 => EventKind::Requeue { tokens: a as u32 },
            13 => EventKind::OpFailed { op: label(a) },
            14 => EventKind::Fault {
                code: a as u32,
                detail: b,
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip_covers_every_tag() {
        let samples = [
            EventKind::WaveStart {
                graph: LabelId(3),
                wave: 7,
            },
            EventKind::WaveEnd {
                graph: LabelId(3),
                wave: 7,
            },
            EventKind::OpStart {
                op: LabelId(1),
                wave: 2,
            },
            EventKind::OpEnd {
                op: LabelId(1),
                wave: 2,
            },
            EventKind::ChunkClaim {
                lease: 9,
                start: 100,
                len: 25,
            },
            EventKind::ChunkExec {
                iters: 25,
                nanos: 1234,
            },
            EventKind::ChunkReport {
                worker: 4,
                iters: 25,
                nanos: 1234,
            },
            EventKind::TokenEnqueue {
                token: LabelId(5),
                wave: 1,
                flow: 42,
            },
            EventKind::TokenDeliver {
                token: LabelId(5),
                wave: 1,
                flow: 42,
            },
            EventKind::FrameSend {
                frame: LabelId(2),
                bytes: 512,
            },
            EventKind::FrameRecv {
                frame: LabelId(2),
                bytes: 512,
            },
            EventKind::NodeDown { node: 3 },
            EventKind::Requeue { tokens: 6 },
            EventKind::OpFailed { op: LabelId(8) },
            EventKind::Fault {
                code: fault_code::NODE_KILL,
                detail: 6,
            },
        ];
        for (i, k) in samples.iter().enumerate() {
            assert_eq!(k.tag() as usize, i, "tags are dense and ordered");
            let (a, b, c) = k.payload();
            assert_eq!(EventKind::from_wire(k.tag(), a, b, c), Some(*k));
        }
        assert_eq!(EventKind::from_wire(200, 0, 0, 0), None);
    }
}
