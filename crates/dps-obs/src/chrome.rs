//! Chrome trace-event JSON export — open the file in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The mapping: one *process* track per cluster node (or kernel rank), one
//! *thread* track per DPS thread; wave lifetimes become **async** spans
//! (`b`/`e` keyed by wave id) on every node that executed part of the wave
//! — waves overlap freely under pipelining, so they cannot be stack-nested
//! duration spans — while op executions stay synchronous `B`/`E` spans on
//! their thread track; token deliveries become flow arrows (`s`/`f`) from
//! the enqueue to the delivery.
//!
//! [`validate_chrome_trace`] is the structural checker the tests and the CI
//! smoke job run over emitted files: it parses the JSON from scratch and
//! verifies the track/span/flow invariants, not just syntax.

use std::collections::{BTreeMap, BTreeSet};

use crate::collect::TraceLog;
use crate::event::EventKind;

/// Escape a string into a JSON literal (without surrounding quotes).
fn esc(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// One emitted record plus its ordering class (equal-timestamp records must
/// open enclosing spans first and close them last).
struct Rec {
    at: u64,
    class: u8,
    json: String,
}

fn span_rec(
    at: u64,
    class: u8,
    ph: char,
    (pid, tid): (u16, u16),
    name: &str,
    cat: &str,
    args: &str,
) -> Rec {
    let mut json = String::with_capacity(96);
    json.push_str(&format!(
        "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{:.3},\"name\":\"",
        at as f64 / 1000.0
    ));
    esc(name, &mut json);
    json.push_str("\",\"cat\":\"");
    esc(cat, &mut json);
    json.push('"');
    if !args.is_empty() {
        json.push_str(",\"args\":{");
        json.push_str(args);
        json.push('}');
    }
    json.push('}');
    Rec { at, class, json }
}

/// Render `log` as a complete Chrome trace-event JSON document.
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let mut recs: Vec<Rec> = Vec::with_capacity(log.events.len() * 2 + 16);
    let mut tracks: BTreeSet<(u16, u16)> = BTreeSet::new();
    let max_at = log.events.iter().map(|e| e.at).max().unwrap_or(0);

    // Wave intervals: wave id -> (graph label, start, end, tracks involved).
    struct Wave {
        name: String,
        start: u64,
        end: u64,
        tracks: BTreeSet<(u16, u16)>,
    }
    let mut waves: BTreeMap<u32, Wave> = BTreeMap::new();
    for e in &log.events {
        tracks.insert((e.node, e.thread));
        match e.kind {
            EventKind::WaveStart { graph, wave } => {
                let w = waves.entry(wave).or_insert_with(|| Wave {
                    name: String::new(),
                    start: e.at,
                    end: max_at,
                    tracks: BTreeSet::new(),
                });
                w.name = format!("{} wave {}", log.label(graph), wave);
                w.start = w.start.min(e.at);
                w.tracks.insert((e.node, e.thread));
            }
            EventKind::WaveEnd { wave, .. } => {
                if let Some(w) = waves.get_mut(&wave) {
                    w.end = e.at;
                    w.tracks.insert((e.node, e.thread));
                }
            }
            EventKind::OpStart { wave, .. } | EventKind::OpEnd { wave, .. } => {
                if let Some(w) = waves.get_mut(&wave) {
                    w.end = w.end.max(e.at);
                    w.tracks.insert((e.node, e.thread));
                }
            }
            _ => {}
        }
    }

    // Track metadata.
    for &(node, thread) in &tracks {
        let mut json = format!(
            "{{\"ph\":\"M\",\"pid\":{node},\"tid\":{thread},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"thread {thread}\"}}}}"
        );
        recs.push(Rec {
            at: 0,
            class: 0,
            json,
        });
        json = format!(
            "{{\"ph\":\"M\",\"pid\":{node},\"tid\":{thread},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"node{node}\"}}}}"
        );
        recs.push(Rec {
            at: 0,
            class: 0,
            json,
        });
    }

    // Wave spans: async (`b`/`e` by wave id), one pair per participating
    // node — pipelined waves overlap, which synchronous B/E stacks cannot
    // express.
    for (&id, w) in &waves {
        let end = w.end.max(w.start);
        let mut pids: BTreeMap<u16, u16> = BTreeMap::new();
        for &(pid, tid) in &w.tracks {
            let t = pids.entry(pid).or_insert(tid);
            *t = (*t).min(tid);
        }
        for (&pid, &tid) in &pids {
            recs.push(async_rec(w.start, 1, 'b', pid, tid, id, &w.name));
            recs.push(async_rec(end, 4, 'e', pid, tid, id, &w.name));
        }
    }

    // Per-event records.
    for e in &log.events {
        let (pid, tid) = (e.node, e.thread);
        match e.kind {
            // Wave lifecycles were rendered above as per-track spans.
            EventKind::WaveStart { .. } | EventKind::WaveEnd { .. } => {}
            EventKind::OpStart { op, wave } => {
                let args = format!("\"wave\":{wave}");
                recs.push(span_rec(
                    e.at,
                    2,
                    'B',
                    (pid, tid),
                    log.label(op),
                    "op",
                    &args,
                ));
            }
            EventKind::OpEnd { op, wave } => {
                let args = format!("\"wave\":{wave}");
                recs.push(span_rec(
                    e.at,
                    3,
                    'E',
                    (pid, tid),
                    log.label(op),
                    "op",
                    &args,
                ));
            }
            EventKind::TokenEnqueue { token, wave, flow } => {
                let mut json = format!(
                    "{{\"ph\":\"s\",\"pid\":{pid},\"tid\":{tid},\"ts\":{:.3},\"id\":{flow},\"name\":\"",
                    e.at as f64 / 1000.0
                );
                esc(log.label(token), &mut json);
                json.push_str(&format!(
                    "\",\"cat\":\"token\",\"args\":{{\"wave\":{wave}}}}}"
                ));
                recs.push(Rec {
                    at: e.at,
                    class: 2,
                    json,
                });
            }
            EventKind::TokenDeliver { token, wave, flow } => {
                let mut json = format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{pid},\"tid\":{tid},\"ts\":{:.3},\"id\":{flow},\"name\":\"",
                    e.at as f64 / 1000.0
                );
                esc(log.label(token), &mut json);
                json.push_str(&format!(
                    "\",\"cat\":\"token\",\"args\":{{\"wave\":{wave}}}}}"
                ));
                recs.push(Rec {
                    at: e.at,
                    class: 2,
                    json,
                });
            }
            EventKind::ChunkClaim { lease, start, len } => {
                let args = format!("\"lease\":{lease},\"start\":{start},\"len\":{len}");
                recs.push(instant(e.at, pid, tid, "chunk claim", "sched", &args));
            }
            EventKind::ChunkExec { iters, nanos } => {
                let args = format!("\"iters\":{iters},\"nanos\":{nanos}");
                recs.push(instant(e.at, pid, tid, "chunk exec", "sched", &args));
            }
            EventKind::ChunkReport {
                worker,
                iters,
                nanos,
            } => {
                let args = format!("\"worker\":{worker},\"iters\":{iters},\"nanos\":{nanos}");
                recs.push(instant(e.at, pid, tid, "chunk report", "sched", &args));
            }
            EventKind::FrameSend { frame, bytes } => {
                let args = format!("\"bytes\":{bytes}");
                let name = format!("send {}", log.label(frame));
                recs.push(instant(e.at, pid, tid, &name, "frame", &args));
            }
            EventKind::FrameRecv { frame, bytes } => {
                let args = format!("\"bytes\":{bytes}");
                let name = format!("recv {}", log.label(frame));
                recs.push(instant(e.at, pid, tid, &name, "frame", &args));
            }
            EventKind::NodeDown { node } => {
                let args = format!("\"node\":{node}");
                recs.push(instant(e.at, pid, tid, "node down", "fault", &args));
            }
            EventKind::Requeue { tokens } => {
                let args = format!("\"tokens\":{tokens}");
                recs.push(instant(e.at, pid, tid, "requeue", "fault", &args));
            }
            EventKind::OpFailed { op } => {
                let name = format!("op failed: {}", log.label(op));
                recs.push(instant(e.at, pid, tid, &name, "fault", ""));
            }
            EventKind::Fault { code, detail } => {
                let name = match code {
                    crate::event::fault_code::NODE_KILL => "fault: node kill",
                    crate::event::fault_code::NET_DROP => "fault: net drop",
                    crate::event::fault_code::NET_DELAY => "fault: net delay",
                    crate::event::fault_code::NET_DUP => "fault: net dup",
                    _ => "fault",
                };
                let args = format!("\"code\":{code},\"detail\":{detail}");
                recs.push(instant(e.at, pid, tid, name, "fault", &args));
            }
        }
    }

    recs.sort_by_key(|r| (r.at, r.class));
    let mut out = String::with_capacity(recs.len() * 100 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, r) in recs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&r.json);
    }
    out.push_str("\n]}\n");
    out
}

fn async_rec(at: u64, class: u8, ph: char, pid: u16, tid: u16, id: u32, name: &str) -> Rec {
    let mut json = format!(
        "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{:.3},\"id\":{id},\"name\":\"",
        at as f64 / 1000.0
    );
    esc(name, &mut json);
    json.push_str("\",\"cat\":\"wave\"}");
    Rec { at, class, json }
}

fn instant(at: u64, pid: u16, tid: u16, name: &str, cat: &str, args: &str) -> Rec {
    let mut json = format!(
        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{:.3},\"name\":\"",
        at as f64 / 1000.0
    );
    esc(name, &mut json);
    json.push_str("\",\"cat\":\"");
    esc(cat, &mut json);
    json.push('"');
    if !args.is_empty() {
        json.push_str(",\"args\":{");
        json.push_str(args);
        json.push('}');
    }
    json.push('}');
    Rec { at, class: 2, json }
}

// ---------------------------------------------------------------------------
// Validation: a self-contained JSON parser + Chrome-trace structural checks.
// ---------------------------------------------------------------------------

/// A parsed JSON value (validator-internal, but public so tests can poke).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.at < self.b.len() && self.b[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.at).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.ws();
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.ws();
        let start = self.at;
        while self
            .b
            .get(self.at)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.b[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.at).ok_or("unterminated string")?;
            self.at += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.b.get(self.at).ok_or("bad escape")?;
                    self.at += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.at += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                }
                c if c < 0x20 => return Err("raw control char in string".into()),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Re-decode the UTF-8 sequence starting at c.
                    let start = self.at - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let s = self
                        .b
                        .get(start..start + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or("bad utf-8 in string")?;
                    out.push_str(s);
                    self.at = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.eat(b':')?;
            pairs.push((k, self.value()?));
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        at: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.at != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.at));
    }
    Ok(v)
}

/// What [`validate_chrome_trace`] measured while checking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeStats {
    /// Total records in `traceEvents`.
    pub records: usize,
    /// Distinct `(pid, tid)` tracks seen.
    pub tracks: usize,
    /// Async wave spans (`cat == "wave"`, `ph == "b"`).
    pub wave_spans: usize,
    /// Operation duration spans (`cat == "op"`, `ph == "B"`).
    pub op_spans: usize,
    /// Op spans that opened while a wave span was open on the same node —
    /// the nesting Perfetto renders.
    pub nested_op_spans: usize,
    /// Completed flow arrows (an `f` whose id saw an earlier `s`).
    pub flows: usize,
}

/// Parse `text` as Chrome trace-event JSON and check the structural
/// invariants the exporters promise: every record carries `ph`/`pid`/`tid`,
/// duration spans balance per track, async wave spans balance per
/// `(pid, id)`, op spans nest under wave spans, and every flow-finish has a
/// matching flow-start. Returns counts on success.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeStats, String> {
    let doc = parse_json(text)?;
    let events = doc.get("traceEvents").ok_or("missing traceEvents")?;
    let Json::Arr(events) = events else {
        return Err("traceEvents is not an array".into());
    };
    let mut stats = ChromeStats {
        records: events.len(),
        ..ChromeStats::default()
    };
    let mut tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
    // Per-track stack of open span categories.
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    // Open async spans by (pid, cat, id), and how many waves are open per
    // node (what op spans nest under).
    let mut open_async: BTreeMap<(u64, String, u64), usize> = BTreeMap::new();
    let mut open_waves: BTreeMap<u64, usize> = BTreeMap::new();
    let mut open_flows: BTreeSet<u64> = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {i}: missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("record {i}: missing pid"))? as u64;
        let tid = ev
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("record {i}: missing tid"))? as u64;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {i}: missing name"))?;
        if ph != "M" {
            ev.get("ts")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("record {i}: missing ts"))?;
            // Async spans live on per-(cat, id) rows, not thread tracks.
            if ph != "b" && ph != "e" {
                tracks.insert((pid, tid));
            }
        }
        let cat = ev.get("cat").and_then(Json::as_str).unwrap_or("");
        match ph {
            "B" => {
                let stack = stacks.entry((pid, tid)).or_default();
                if cat == "wave" {
                    stats.wave_spans += 1;
                } else if cat == "op" {
                    stats.op_spans += 1;
                    if stack.iter().any(|c| c == "wave")
                        || open_waves.get(&pid).is_some_and(|&n| n > 0)
                    {
                        stats.nested_op_spans += 1;
                    }
                }
                stack.push(cat.to_string());
            }
            "b" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("record {i}: async begin without id"))?;
                *open_async
                    .entry((pid, cat.to_string(), id as u64))
                    .or_insert(0) += 1;
                if cat == "wave" {
                    stats.wave_spans += 1;
                    *open_waves.entry(pid).or_insert(0) += 1;
                }
            }
            "e" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("record {i}: async end without id"))?;
                let key = (pid, cat.to_string(), id as u64);
                match open_async.get_mut(&key) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => {
                        return Err(format!(
                            "record {i}: async end '{cat}' id {id} without begin on pid {pid}"
                        ))
                    }
                }
                if cat == "wave" {
                    if let Some(n) = open_waves.get_mut(&pid) {
                        *n = n.saturating_sub(1);
                    }
                }
            }
            "E" => {
                let stack = stacks.entry((pid, tid)).or_default();
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("record {i}: E without open B on ({pid},{tid})"))?;
                if open != cat {
                    return Err(format!(
                        "record {i}: E closes '{cat}' but '{open}' is open on ({pid},{tid})"
                    ));
                }
            }
            "s" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("record {i}: flow start without id"))?;
                open_flows.insert(id as u64);
            }
            "f" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("record {i}: flow finish without id"))?;
                if !open_flows.contains(&(id as u64)) {
                    return Err(format!("record {i}: flow finish {id} without start"));
                }
                stats.flows += 1;
            }
            "i" | "M" | "X" => {}
            other => return Err(format!("record {i}: unknown ph '{other}'")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "track ({pid},{tid}) has {} unclosed span(s)",
                stack.len()
            ));
        }
    }
    for ((pid, cat, id), n) in &open_async {
        if *n > 0 {
            return Err(format!("async span '{cat}' id {id} left open on pid {pid}"));
        }
    }
    stats.tracks = tracks.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::TraceCollector;
    use crate::event::EventKind;

    #[test]
    fn export_validates_and_nests() {
        let c = TraceCollector::new();
        let g = c.label("lu");
        let op = c.label("lu:leaf2");
        let tok = c.label("LuTask");
        let mut w = c.writer(0, 0);
        w.record_on(0, 0, 0, EventKind::WaveStart { graph: g, wave: 1 });
        w.record_on(
            100,
            0,
            0,
            EventKind::TokenEnqueue {
                token: tok,
                wave: 1,
                flow: 7,
            },
        );
        w.record_on(
            200,
            1,
            0,
            EventKind::TokenDeliver {
                token: tok,
                wave: 1,
                flow: 7,
            },
        );
        w.record_on(200, 1, 0, EventKind::OpStart { op, wave: 1 });
        w.record_on(900, 1, 0, EventKind::OpEnd { op, wave: 1 });
        w.record_on(1000, 0, 0, EventKind::WaveEnd { graph: g, wave: 1 });
        let json = chrome_trace_json(&c.take_log());
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.tracks, 2, "two (pid,tid) tracks");
        assert_eq!(stats.op_spans, 1);
        assert_eq!(stats.nested_op_spans, 1, "op nests under its wave");
        assert_eq!(stats.flows, 1, "delivery flow arrow present");
        assert!(stats.wave_spans >= 2, "wave span on each involved track");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err(), "no traceEvents");
        assert!(
            validate_chrome_trace(
                r#"{"traceEvents":[{"ph":"E","pid":0,"tid":0,"ts":1,"name":"x","cat":"op"}]}"#
            )
            .is_err(),
            "E without B"
        );
        assert!(
            validate_chrome_trace(
                r#"{"traceEvents":[{"ph":"f","bp":"e","pid":0,"tid":0,"ts":1,"name":"x","id":9}]}"#
            )
            .is_err(),
            "flow finish without start"
        );
    }

    #[test]
    fn json_parser_handles_escapes_and_numbers() {
        let v = parse_json(r#"{"a":"q\"\\\nAü","n":-1.5e2,"b":[true,false,null]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str().unwrap(), "q\"\\\nAü");
        assert_eq!(v.get("n").unwrap().as_num().unwrap(), -150.0);
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("[1] junk").is_err());
    }
}
