//! The per-worker event ring: a bounded single-producer single-consumer
//! queue of [`TraceEvent`]s.
//!
//! Same single-writer discipline as the feedback board's seqlock slots —
//! each worker thread owns exactly one ring and is its only producer, so a
//! push is a handful of plain stores into cache lines the producer already
//! owns plus one release store of the tail. No lock, no RMW, no cross-worker
//! traffic on the hot path. The consumer (the collector's drain, once per
//! wave) reads `head..tail` under acquire and bumps `head`.
//!
//! When the ring is full the event is *dropped* and counted — tracing must
//! never block or slow the traced system, and the drop counter makes the
//! loss visible in the exported metrics.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

use crate::event::TraceEvent;

/// Bounded SPSC ring of trace events. Capacity is rounded up to a power of
/// two. See the module docs for the producer/consumer contract.
pub struct EventRing {
    mask: u64,
    slots: Box<[UnsafeCell<TraceEvent>]>,
    /// Next write position (producer-owned, consumer reads it).
    tail: CachePadded<AtomicU64>,
    /// Next read position (consumer-owned, producer reads it).
    head: CachePadded<AtomicU64>,
    /// Events discarded because the ring was full.
    dropped: CachePadded<AtomicU64>,
}

// SAFETY: slot `i` is written only by the single producer while
// `head <= i < head + capacity` and `i >= tail`, and read only by the single
// consumer after observing `tail > i` with acquire ordering; the release
// store of `tail` publishes the slot contents. The one-producer/one-consumer
// discipline is upheld by `TraceWriter` (one per ring) and the collector's
// drain lock.
unsafe impl Sync for EventRing {}

impl EventRing {
    /// A ring holding at least `capacity` events (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two() as u64;
        Self {
            mask: cap - 1,
            slots: (0..cap)
                .map(|_| UnsafeCell::new(TraceEvent::empty()))
                .collect(),
            tail: CachePadded::new(AtomicU64::new(0)),
            head: CachePadded::new(AtomicU64::new(0)),
            dropped: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Slot capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events discarded because the ring was full when they were recorded.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Producer side: append `ev`, dropping it (and counting the drop) if
    /// the ring is full. `cached_head` is the producer's locally remembered
    /// consumer position — it is only refreshed from the shared `head` when
    /// the ring *looks* full, so the steady-state push never loads a
    /// cache line the consumer writes.
    ///
    /// Must only be called by the ring's single producer (see module docs).
    #[inline]
    pub fn push(&self, cached_head: &mut u64, ev: TraceEvent) {
        let t = self.tail.load(Ordering::Relaxed);
        if t.wrapping_sub(*cached_head) > self.mask {
            *cached_head = self.head.load(Ordering::Acquire);
            if t.wrapping_sub(*cached_head) > self.mask {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // SAFETY: `t` is within the producer's exclusive window (checked
        // above) and no consumer reads it until the release store below.
        unsafe {
            *self.slots[(t & self.mask) as usize].get() = ev;
        }
        self.tail.store(t.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side: move every pending event into `out`, in push order.
    /// Returns the number of events drained.
    ///
    /// Must only be called by one consumer at a time (the collector holds
    /// its drain lock across this).
    pub fn drain_into(&self, out: &mut Vec<TraceEvent>) -> usize {
        let t = self.tail.load(Ordering::Acquire);
        let h = self.head.load(Ordering::Relaxed);
        let n = t.wrapping_sub(h);
        out.reserve(n as usize);
        for i in h..t {
            // SAFETY: `h..t` slots were published by the producer's release
            // store of `tail`; the producer will not overwrite them until
            // `head` advances past them below.
            out.push(unsafe { *self.slots[(i & self.mask) as usize].get() });
        }
        self.head.store(t, Ordering::Release);
        n as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, LabelId};

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at,
            node: 0,
            thread: 0,
            kind: EventKind::WaveStart {
                graph: LabelId(0),
                wave: at as u32,
            },
        }
    }

    #[test]
    fn push_drain_preserves_order() {
        let r = EventRing::new(16);
        let mut cache = 0;
        for i in 0..10 {
            r.push(&mut cache, ev(i));
        }
        let mut out = Vec::new();
        assert_eq!(r.drain_into(&mut out), 10);
        assert_eq!(
            out.iter().map(|e| e.at).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        // Ring reusable after drain.
        r.push(&mut cache, ev(99));
        out.clear();
        assert_eq!(r.drain_into(&mut out), 1);
        assert_eq!(out[0].at, 99);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let r = EventRing::new(8);
        let mut cache = 0;
        for i in 0..20 {
            r.push(&mut cache, ev(i));
        }
        assert_eq!(r.dropped(), 12);
        let mut out = Vec::new();
        assert_eq!(r.drain_into(&mut out), 8);
        // The *oldest* events survive: tracing keeps the causal prefix.
        assert_eq!(out[0].at, 0);
        assert_eq!(out[7].at, 7);
    }

    #[test]
    fn wraps_across_many_drains() {
        let r = EventRing::new(8);
        let mut cache = 0;
        let mut out = Vec::new();
        for round in 0..50u64 {
            for i in 0..5 {
                r.push(&mut cache, ev(round * 5 + i));
            }
            r.drain_into(&mut out);
        }
        assert_eq!(out.len(), 250);
        assert!(out.windows(2).all(|w| w[0].at + 1 == w[1].at));
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing_but_drops() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let r = Arc::new(EventRing::new(64));
        let done = Arc::new(AtomicBool::new(false));
        let total = 20_000u64;
        let producer = {
            let r = Arc::clone(&r);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut cache = 0;
                for i in 0..total {
                    r.push(&mut cache, ev(i));
                }
                done.store(true, Ordering::Release);
            })
        };
        let mut out = Vec::new();
        while !done.load(Ordering::Acquire) {
            r.drain_into(&mut out);
        }
        r.drain_into(&mut out);
        producer.join().unwrap();
        // Whatever was not dropped arrived exactly once, in order.
        assert_eq!(out.len() as u64 + r.dropped(), total);
        assert!(out.windows(2).all(|w| w[0].at < w[1].at));
    }
}
