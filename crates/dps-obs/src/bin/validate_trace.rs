//! Structural validator for exported Chrome trace files — what CI runs
//! over the JSON the examples and benches write with `--trace`.
//!
//! Usage: `validate_trace FILE [FILE...]`. Each file must parse as Chrome
//! trace-event JSON and pass [`dps_obs::validate_chrome_trace`] (balanced
//! op spans, async wave spans closed, flow arrows resolved, metadata
//! records well-formed). Exits non-zero on the first invalid file.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_trace FILE [FILE...]");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let json = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        match dps_obs::validate_chrome_trace(&json) {
            Ok(stats) => println!(
                "{path}: ok — {} records, {} tracks, {} wave spans, {} op spans \
                 ({} nested), {} flows",
                stats.records,
                stats.tracks,
                stats.wave_spans,
                stats.op_spans,
                stats.nested_op_spans,
                stats.flows
            ),
            Err(e) => {
                eprintln!("{path}: INVALID Chrome trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
