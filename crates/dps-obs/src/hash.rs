//! The schedule-trace hash: an FNV-1a digest over the ordered event stream.
//!
//! On the deterministic simulator, two runs of the same seeded workload
//! produce the same event stream, so their hashes are equal — and any
//! divergence (a different policy, a changed interleaving, a perturbed
//! virtual clock) changes the hash. That makes this `u64` the replay-identity
//! primitive for simulation testing: assert the hash instead of diffing
//! whole traces.

use crate::collect::TraceLog;

/// Incremental FNV-1a 64-bit accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// FNV-1a offset basis.
    pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a prime.
    pub const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh accumulator.
    pub const fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Fold in raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
    }

    /// Fold in a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

/// The canonical schedule-trace hash of a drained log: FNV-1a over the
/// label table then every event's `(at, node, thread, tag, payload)` words
/// in stream order.
pub fn schedule_hash(log: &TraceLog) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(log.labels.len() as u64);
    for l in &log.labels {
        h.write_u64(l.len() as u64);
        h.write(l.as_bytes());
    }
    h.write_u64(log.events.len() as u64);
    for e in &log.events {
        h.write_u64(e.at);
        h.write_u64((e.node as u64) << 16 | e.thread as u64);
        let (a, b, c) = e.kind.payload();
        h.write_u64(e.kind.tag() as u64);
        h.write_u64(a);
        h.write_u64(b);
        h.write_u64(c);
    }
    h.finish()
}

impl TraceLog {
    /// The [`schedule_hash`] of this log.
    pub fn schedule_hash(&self) -> u64 {
        schedule_hash(self)
    }
}

/// Where two trace logs first part ways — the replay-failure diagnostic:
/// when a harness finds unequal schedule hashes, this names the first
/// divergent record instead of leaving the user to diff whole logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The interned label tables differ at this index.
    Label(usize),
    /// The event streams differ at this index (same-position events are
    /// compared on `(at, node, thread, kind)`).
    Event(usize),
    /// One log is a strict prefix of the other; the shorter length.
    Length(usize),
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Label(i) => write!(f, "label table diverges at index {i}"),
            Divergence::Event(i) => write!(f, "event streams diverge at index {i}"),
            Divergence::Length(n) => write!(f, "one log is a prefix of the other (length {n})"),
        }
    }
}

/// True iff the two logs are identical record for record — the property
/// `schedule_hash` fingerprints (equal hashes with unequal logs would be an
/// FNV collision; equal logs always hash equal).
pub fn logs_identical(a: &TraceLog, b: &TraceLog) -> bool {
    a.labels == b.labels && a.events == b.events
}

/// First point of divergence between two logs, or `None` when identical.
/// Labels are compared first (a renamed label shifts every event that
/// references it), then events in stream order, then lengths.
pub fn first_divergence(a: &TraceLog, b: &TraceLog) -> Option<Divergence> {
    for (i, (la, lb)) in a.labels.iter().zip(&b.labels).enumerate() {
        if la != lb {
            return Some(Divergence::Label(i));
        }
    }
    if a.labels.len() != b.labels.len() {
        return Some(Divergence::Label(a.labels.len().min(b.labels.len())));
    }
    for (i, (ea, eb)) in a.events.iter().zip(&b.events).enumerate() {
        if ea != eb {
            return Some(Divergence::Event(i));
        }
    }
    if a.events.len() != b.events.len() {
        return Some(Divergence::Length(a.events.len().min(b.events.len())));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, LabelId, TraceEvent};

    fn log(wave: u32) -> TraceLog {
        TraceLog {
            labels: vec![String::new(), "g".into()],
            events: vec![TraceEvent {
                at: 10,
                node: 0,
                thread: 0,
                kind: EventKind::WaveStart {
                    graph: LabelId(1),
                    wave,
                },
            }],
        }
    }

    #[test]
    fn known_vector() {
        // FNV-1a of "a" per the reference implementation.
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn equal_logs_hash_equal_and_divergence_shows() {
        assert_eq!(log(1).schedule_hash(), log(1).schedule_hash());
        assert_ne!(log(1).schedule_hash(), log(2).schedule_hash());
        let mut shifted = log(1);
        shifted.events[0].at = 11;
        assert_ne!(log(1).schedule_hash(), shifted.schedule_hash());
        let mut renamed = log(1);
        renamed.labels[1] = "h".into();
        assert_ne!(log(1).schedule_hash(), renamed.schedule_hash());
    }

    #[test]
    fn divergence_names_the_first_differing_record() {
        assert!(logs_identical(&log(1), &log(1)));
        assert_eq!(first_divergence(&log(1), &log(1)), None);
        assert_eq!(
            first_divergence(&log(1), &log(2)),
            Some(Divergence::Event(0))
        );
        let mut renamed = log(1);
        renamed.labels[1] = "h".into();
        assert_eq!(
            first_divergence(&log(1), &renamed),
            Some(Divergence::Label(1))
        );
        let mut longer = log(1);
        longer.events.push(longer.events[0]);
        assert!(!logs_identical(&log(1), &longer));
        assert_eq!(
            first_divergence(&log(1), &longer),
            Some(Divergence::Length(1))
        );
        assert_eq!(
            Divergence::Event(3).to_string(),
            "event streams diverge at index 3"
        );
    }

    #[test]
    fn empty_log_hash_is_stable() {
        let e = TraceLog::default();
        assert_eq!(e.schedule_hash(), e.schedule_hash());
    }
}
