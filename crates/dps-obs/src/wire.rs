//! Byte encoding of a [`TraceLog`] — the payload of the process engine's
//! `Trace` frame (workers ship their local log to the master before
//! releasing).
//!
//! Plain little-endian, self-contained, versioned. Kept here (not in the
//! engine's wire module) so the encoding and the event model evolve
//! together.

use crate::collect::TraceLog;
use crate::event::{EventKind, TraceEvent};

/// Encoding version; bump on any layout change.
pub const TRACE_WIRE_VERSION: u32 = 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode `log` into a self-contained byte buffer.
pub fn encode_log(log: &TraceLog) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + log.events.len() * 37);
    put_u32(&mut out, TRACE_WIRE_VERSION);
    put_u32(&mut out, log.labels.len() as u32);
    for l in &log.labels {
        put_u32(&mut out, l.len() as u32);
        out.extend_from_slice(l.as_bytes());
    }
    put_u32(&mut out, log.events.len() as u32);
    for e in &log.events {
        put_u64(&mut out, e.at);
        put_u32(&mut out, (e.node as u32) << 16 | e.thread as u32);
        out.push(e.kind.tag());
        let (a, b, c) = e.kind.payload();
        put_u64(&mut out, a);
        put_u64(&mut out, b);
        put_u64(&mut out, c);
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

/// Decode a buffer produced by [`encode_log`]. `None` on truncation,
/// version mismatch, or an unknown event tag.
pub fn decode_log(buf: &[u8]) -> Option<TraceLog> {
    let mut r = Reader { buf, at: 0 };
    if r.u32()? != TRACE_WIRE_VERSION {
        return None;
    }
    let nlabels = r.u32()? as usize;
    let mut labels = Vec::with_capacity(nlabels.min(1 << 16));
    for _ in 0..nlabels {
        let len = r.u32()? as usize;
        labels.push(String::from_utf8(r.take(len)?.to_vec()).ok()?);
    }
    let nevents = r.u32()? as usize;
    let mut events = Vec::with_capacity(nevents.min(1 << 20));
    for _ in 0..nevents {
        let at = r.u64()?;
        let track = r.u32()?;
        let tag = r.u8()?;
        let (a, b, c) = (r.u64()?, r.u64()?, r.u64()?);
        events.push(TraceEvent {
            at,
            node: (track >> 16) as u16,
            thread: (track & 0xffff) as u16,
            kind: EventKind::from_wire(tag, a, b, c)?,
        });
    }
    if r.at != buf.len() {
        return None;
    }
    Some(TraceLog { labels, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LabelId;

    fn sample() -> TraceLog {
        TraceLog {
            labels: vec![String::new(), "lu-pipelined".into(), "ChunkTicket".into()],
            events: vec![
                TraceEvent {
                    at: 1_000,
                    node: 1,
                    thread: 2,
                    kind: EventKind::WaveStart {
                        graph: LabelId(1),
                        wave: 3,
                    },
                },
                TraceEvent {
                    at: 2_000,
                    node: 1,
                    thread: 2,
                    kind: EventKind::TokenEnqueue {
                        token: LabelId(2),
                        wave: 3,
                        flow: 77,
                    },
                },
                TraceEvent {
                    at: 3_000,
                    node: 0,
                    thread: 0,
                    kind: EventKind::ChunkClaim {
                        lease: 5,
                        start: 100,
                        len: 20,
                    },
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let log = sample();
        let buf = encode_log(&log);
        assert_eq!(decode_log(&buf), Some(log));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode_log(&[]), None);
        assert_eq!(decode_log(&[1, 2, 3]), None);
        let mut buf = encode_log(&sample());
        buf.truncate(buf.len() - 1);
        assert_eq!(decode_log(&buf), None, "truncation detected");
        let mut versioned = encode_log(&sample());
        versioned[0] = 99;
        assert_eq!(decode_log(&versioned), None, "version mismatch detected");
        let mut trailing = encode_log(&sample());
        trailing.push(0);
        assert_eq!(decode_log(&trailing), None, "trailing bytes detected");
    }
}
