//! The trace collector: label interning, per-worker writer handles, and the
//! merged event log.
//!
//! One [`TraceCollector`] is attached to an engine (`set_trace_sink`); the
//! engine hands each executing thread its own [`TraceWriter`] (one SPSC ring
//! per writer, single-producer by construction) and calls
//! [`drain`](TraceCollector::drain) at wave boundaries. [`take_log`]
//! (TraceCollector::take_log) yields the merged, time-ordered [`TraceLog`]
//! the exporters and the schedule hash consume.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{EventKind, LabelId, TraceEvent};
use crate::metrics::{Counter, Gauge, MetricsRegistry};
use crate::ring::EventRing;

/// Default per-writer ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

/// A drained, merged, time-ordered trace: the label table plus the events.
///
/// This is the exchange format between collectors (the process engine ships
/// worker logs to the master as one of these) and the input to the Chrome
/// exporter, the wave summaries and the schedule hash.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    /// Interned strings; [`LabelId`] indexes into this table.
    pub labels: Vec<String>,
    /// Events, stably ordered by timestamp.
    pub events: Vec<TraceEvent>,
}

impl TraceLog {
    /// The string behind `id` (empty for out-of-range ids).
    pub fn label(&self, id: LabelId) -> &str {
        self.labels.get(id.0 as usize).map_or("", |s| s.as_str())
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Label interner: id 0 is always the empty string.
#[derive(Default)]
struct Interner {
    names: Vec<String>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> LabelId {
        if self.names.is_empty() {
            self.names.push(String::new());
        }
        if let Some(i) = self.names.iter().position(|n| n == s) {
            return LabelId(i as u32);
        }
        self.names.push(s.to_string());
        LabelId((self.names.len() - 1) as u32)
    }

    fn snapshot(&self) -> Vec<String> {
        if self.names.is_empty() {
            vec![String::new()]
        } else {
            self.names.clone()
        }
    }
}

/// The engine-facing trace sink: interns labels, hands out per-worker
/// [`TraceWriter`]s, merges their rings into one ordered log, and carries
/// the [`MetricsRegistry`].
///
/// All methods take `&self`; the collector is shared via `Arc` between the
/// application (which exports) and the engine (which records).
pub struct TraceCollector {
    labels: Mutex<Interner>,
    rings: Mutex<Vec<Arc<EventRing>>>,
    log: Mutex<Vec<TraceEvent>>,
    metrics: Arc<MetricsRegistry>,
    epoch: Instant,
    ring_capacity: usize,
    /// Ring-drop totals already folded into the metrics counter.
    folded_drops: AtomicU64,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("writers", &self.rings.lock().unwrap().len())
            .field("pending_log", &self.log.lock().unwrap().len())
            .finish()
    }
}

impl TraceCollector {
    /// A collector with the default per-writer ring capacity.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A collector whose writers get rings of at least `capacity` events.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Self {
            labels: Mutex::new(Interner::default()),
            rings: Mutex::new(Vec::new()),
            log: Mutex::new(Vec::new()),
            metrics: Arc::new(MetricsRegistry::new()),
            epoch: Instant::now(),
            ring_capacity: capacity,
            folded_drops: AtomicU64::new(0),
        }
    }

    /// Intern `name`, returning its stable id (cold path: takes a lock).
    pub fn label(&self, name: &str) -> LabelId {
        self.labels.lock().unwrap().intern(name)
    }

    /// Wall-clock nanoseconds since this collector was created — the
    /// timestamp base for the wall-clock engines. (The simulator passes its
    /// own virtual nanoseconds instead.)
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The metrics registry, shared with e.g. a `ChunkHub`.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A clonable handle to the metrics registry.
    pub fn metrics_arc(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Register a new single-producer writer stamping `(node, thread)` by
    /// default. Cold path — engines call this once per executing thread.
    pub fn writer(self: &Arc<Self>, node: u16, thread: u16) -> TraceWriter {
        let ring = Arc::new(EventRing::new(self.ring_capacity));
        let mut rings = self.rings.lock().unwrap();
        rings.push(Arc::clone(&ring));
        self.metrics
            .gauge_max(Gauge::WritersPeak, rings.len() as u64);
        drop(rings);
        TraceWriter {
            ring,
            cached_head: 0,
            node,
            thread,
        }
    }

    /// Record one event directly into the merged log, bypassing the rings —
    /// the cold path for rare events (errors, node-down) recorded from
    /// threads that have no writer of their own. Timestamped with
    /// [`now_nanos`](Self::now_nanos).
    pub fn record_now(&self, node: u16, thread: u16, kind: EventKind) {
        let at = self.now_nanos();
        self.log.lock().unwrap().push(TraceEvent {
            at,
            node,
            thread,
            kind,
        });
    }

    /// Drain every writer's ring into the pending log (stable-ordered by
    /// timestamp). Engines call this once per wave and once at idle.
    pub fn drain(&self) {
        let rings = self.rings.lock().unwrap();
        let mut fresh = Vec::new();
        let mut total_drops = 0;
        for r in rings.iter() {
            r.drain_into(&mut fresh);
            total_drops += r.dropped();
        }
        drop(rings);
        let folded = self.folded_drops.swap(total_drops, Ordering::Relaxed);
        if total_drops > folded {
            self.metrics
                .add(Counter::EventsDropped, total_drops - folded);
        }
        if fresh.is_empty() {
            return;
        }
        fresh.sort_by_key(|e| e.at);
        self.log.lock().unwrap().extend(fresh);
    }

    /// Append an already-merged log from another collector (the process
    /// engine's master ingesting a worker's shipped trace), remapping the
    /// foreign label ids into this collector's table.
    pub fn ingest(&self, foreign: &TraceLog) {
        let map: Vec<LabelId> = {
            let mut labels = self.labels.lock().unwrap();
            foreign.labels.iter().map(|n| labels.intern(n)).collect()
        };
        let remap = |id: LabelId| map.get(id.0 as usize).copied().unwrap_or(LabelId(0));
        let mut log = self.log.lock().unwrap();
        log.extend(foreign.events.iter().map(|e| TraceEvent {
            kind: e.kind.map_labels(remap),
            ..*e
        }));
    }

    /// Drain, then move the accumulated events out as a time-ordered
    /// [`TraceLog`]. The collector stays usable (labels and metrics are
    /// kept; the event log restarts empty).
    pub fn take_log(&self) -> TraceLog {
        self.drain();
        let mut events = std::mem::take(&mut *self.log.lock().unwrap());
        events.sort_by_key(|e| e.at);
        TraceLog {
            labels: self.labels.lock().unwrap().snapshot(),
            events,
        }
    }

    /// Drain, then copy the accumulated events without clearing them.
    pub fn snapshot_log(&self) -> TraceLog {
        self.drain();
        let mut events = self.log.lock().unwrap().clone();
        events.sort_by_key(|e| e.at);
        TraceLog {
            labels: self.labels.lock().unwrap().snapshot(),
            events,
        }
    }
}

impl EventKind {
    /// Rewrite every label id through `f` (collector-to-collector ingest).
    pub fn map_labels(self, f: impl Fn(LabelId) -> LabelId) -> Self {
        match self {
            EventKind::WaveStart { graph, wave } => EventKind::WaveStart {
                graph: f(graph),
                wave,
            },
            EventKind::WaveEnd { graph, wave } => EventKind::WaveEnd {
                graph: f(graph),
                wave,
            },
            EventKind::OpStart { op, wave } => EventKind::OpStart { op: f(op), wave },
            EventKind::OpEnd { op, wave } => EventKind::OpEnd { op: f(op), wave },
            EventKind::TokenEnqueue { token, wave, flow } => EventKind::TokenEnqueue {
                token: f(token),
                wave,
                flow,
            },
            EventKind::TokenDeliver { token, wave, flow } => EventKind::TokenDeliver {
                token: f(token),
                wave,
                flow,
            },
            EventKind::FrameSend { frame, bytes } => EventKind::FrameSend {
                frame: f(frame),
                bytes,
            },
            EventKind::FrameRecv { frame, bytes } => EventKind::FrameRecv {
                frame: f(frame),
                bytes,
            },
            EventKind::OpFailed { op } => EventKind::OpFailed { op: f(op) },
            other => other,
        }
    }
}

/// One worker thread's recording handle: owns that thread's ring (single
/// producer) and stamps its `(node, thread)` track by default.
///
/// `record` is the hot path: no lock, no allocation, no RMW — a bounds
/// check against a cached consumer position and a handful of plain stores
/// (see [`EventRing::push`]).
pub struct TraceWriter {
    ring: Arc<EventRing>,
    cached_head: u64,
    node: u16,
    thread: u16,
}

impl std::fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("node", &self.node)
            .field("thread", &self.thread)
            .finish()
    }
}

impl TraceWriter {
    /// Record `kind` at engine time `at` on this writer's own track.
    #[inline]
    pub fn record(&mut self, at: u64, kind: EventKind) {
        let (node, thread) = (self.node, self.thread);
        self.record_on(at, node, thread, kind);
    }

    /// Record `kind` at `at` on an explicit `(node, thread)` track — the
    /// single-threaded simulator records every track through one writer.
    #[inline]
    pub fn record_on(&mut self, at: u64, node: u16, thread: u16, kind: EventKind) {
        self.ring.push(
            &mut self.cached_head,
            TraceEvent {
                at,
                node,
                thread,
                kind,
            },
        );
    }

    /// The track this writer stamps by default.
    pub fn track(&self) -> (u16, u16) {
        (self.node, self.thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_intern_stably() {
        let c = TraceCollector::new();
        let a = c.label("lu");
        let b = c.label("life");
        assert_eq!(c.label("lu"), a);
        assert_ne!(a, b);
        assert_ne!(a, LabelId(0), "id 0 is reserved for the empty string");
        let log = c.take_log();
        assert_eq!(log.label(a), "lu");
        assert_eq!(log.label(LabelId(0)), "");
        assert_eq!(log.label(LabelId(999)), "");
    }

    #[test]
    fn writers_merge_time_ordered() {
        let c = TraceCollector::new();
        let mut w0 = c.writer(0, 0);
        let mut w1 = c.writer(0, 1);
        let g = c.label("g");
        w1.record(20, EventKind::WaveEnd { graph: g, wave: 1 });
        w0.record(10, EventKind::WaveStart { graph: g, wave: 1 });
        let log = c.take_log();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].at, 10);
        assert_eq!(log.events[0].thread, 0);
        assert_eq!(log.events[1].at, 20);
        // Collector reusable after take.
        w0.record(30, EventKind::WaveStart { graph: g, wave: 2 });
        assert_eq!(c.take_log().events.len(), 1);
    }

    #[test]
    fn ingest_remaps_labels() {
        let worker = TraceCollector::new();
        let lu = worker.label("lu");
        let mut w = worker.writer(2, 0);
        w.record(5, EventKind::WaveStart { graph: lu, wave: 0 });
        let shipped = worker.take_log();

        let master = TraceCollector::new();
        master.label("something-else"); // shift the id space
        master.ingest(&shipped);
        let log = master.take_log();
        assert_eq!(log.events.len(), 1);
        let EventKind::WaveStart { graph, .. } = log.events[0].kind else {
            panic!("wrong kind");
        };
        assert_eq!(log.label(graph), "lu");
        assert_eq!(log.events[0].node, 2, "track survives the ship");
    }
}
