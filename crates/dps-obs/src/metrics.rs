//! The metrics registry: fixed, enum-indexed monotonic counters and
//! peak-tracking gauges, shared by all three engines.
//!
//! Counters are deliberately a closed enum rather than a string-keyed map:
//! incrementing is one relaxed `fetch_add` on a dedicated cache-padded
//! atomic — cheap enough to leave permanently enabled on paths like frame
//! sends and chunk claims, and the closed set keeps the per-engine meanings
//! aligned so one export path serves them all.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// The monotonic counters every engine can surface.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Wire frames sent (process engine).
    FramesSent,
    /// Wire frames received (process engine).
    FramesRecv,
    /// Payload bytes sent over the wire (process engine) or across node
    /// boundaries (simulated network).
    WireBytesSent,
    /// Payload bytes received over the wire.
    WireBytesRecv,
    /// Tokens routed and queued toward a destination thread.
    TokensEnqueued,
    /// Tokens delivered to their destination thread.
    TokensDelivered,
    /// Chunk-hub lease opens (one per scheduled wave).
    LeasesOpened,
    /// Chunks claimed from hub leases (distributed chunk calculation).
    ChunkClaims,
    /// Chunk completions reported to the feedback sink.
    ChunkReports,
    /// Deliveries re-queued off failed nodes.
    Requeues,
    /// Nodes (or worker processes) declared dead.
    NodesDown,
    /// Trace events dropped because a ring was full.
    EventsDropped,
}

impl Counter {
    /// Every counter, in index order.
    pub const ALL: [Counter; 12] = [
        Counter::FramesSent,
        Counter::FramesRecv,
        Counter::WireBytesSent,
        Counter::WireBytesRecv,
        Counter::TokensEnqueued,
        Counter::TokensDelivered,
        Counter::LeasesOpened,
        Counter::ChunkClaims,
        Counter::ChunkReports,
        Counter::Requeues,
        Counter::NodesDown,
        Counter::EventsDropped,
    ];

    /// Stable snake_case name (export key).
    pub const fn name(&self) -> &'static str {
        match self {
            Counter::FramesSent => "frames_sent",
            Counter::FramesRecv => "frames_recv",
            Counter::WireBytesSent => "wire_bytes_sent",
            Counter::WireBytesRecv => "wire_bytes_recv",
            Counter::TokensEnqueued => "tokens_enqueued",
            Counter::TokensDelivered => "tokens_delivered",
            Counter::LeasesOpened => "leases_opened",
            Counter::ChunkClaims => "chunk_claims",
            Counter::ChunkReports => "chunk_reports",
            Counter::Requeues => "requeues",
            Counter::NodesDown => "nodes_down",
            Counter::EventsDropped => "events_dropped",
        }
    }
}

/// The peak-tracking gauges (updated with `fetch_max`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Deepest per-thread delivery queue observed.
    QueueDepthPeak,
    /// Most trace-ring writers registered.
    WritersPeak,
}

impl Gauge {
    /// Every gauge, in index order.
    pub const ALL: [Gauge; 2] = [Gauge::QueueDepthPeak, Gauge::WritersPeak];

    /// Stable snake_case name (export key).
    pub const fn name(&self) -> &'static str {
        match self {
            Gauge::QueueDepthPeak => "queue_depth_peak",
            Gauge::WritersPeak => "writers_peak",
        }
    }
}

/// Monotonic counters and peak gauges, shared between an engine and
/// whoever exports them. Cloneable via `Arc`; all methods take `&self`.
pub struct MetricsRegistry {
    counters: [CachePadded<AtomicU64>; Counter::ALL.len()],
    gauges: [CachePadded<AtomicU64>; Gauge::ALL.len()],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self {
            counters: std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0))),
            gauges: std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0))),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("MetricsRegistry");
        for c in Counter::ALL {
            d.field(c.name(), &self.get(c));
        }
        for g in Gauge::ALL {
            d.field(g.name(), &self.gauge(g));
        }
        d.finish()
    }
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1 to `c`.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Add `n` to `c`.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Raise gauge `g` to at least `v`.
    #[inline]
    pub fn gauge_max(&self, g: Gauge, v: u64) {
        self.gauges[g as usize].fetch_max(v, Ordering::Relaxed);
    }

    /// Current value of gauge `g`.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize].load(Ordering::Relaxed)
    }

    /// `(name, value)` snapshot of every counter then every gauge, in
    /// declaration order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.get(c)))
            .chain(Gauge::ALL.iter().map(|&g| (g.name(), self.gauge(g))))
            .collect()
    }

    /// Zero everything (between benchmark configurations).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = MetricsRegistry::new();
        m.incr(Counter::FramesSent);
        m.add(Counter::WireBytesSent, 512);
        m.gauge_max(Gauge::QueueDepthPeak, 3);
        m.gauge_max(Gauge::QueueDepthPeak, 2); // peak keeps 3
        assert_eq!(m.get(Counter::FramesSent), 1);
        assert_eq!(m.get(Counter::WireBytesSent), 512);
        assert_eq!(m.gauge(Gauge::QueueDepthPeak), 3);
        let snap = m.snapshot();
        assert_eq!(snap.len(), Counter::ALL.len() + Gauge::ALL.len());
        assert!(snap.contains(&("wire_bytes_sent", 512)));
        m.reset();
        assert!(m.snapshot().iter().all(|&(_, v)| v == 0));
    }
}
