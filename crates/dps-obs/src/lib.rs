//! # dps-obs — tracing and metrics for Dynamic Parallel Schedules
//!
//! One observability substrate for all three DPS execution engines. The
//! paper's whole argument is about *where time goes* — the overlap of
//! computation and communication in the flow graph — and this crate is how
//! that becomes visible:
//!
//! * [`TraceEvent`]/[`EventKind`] — the event model: wave start/end, chunk
//!   claim/exec/report, token enqueue/deliver, op start/end, frame
//!   send/recv, node down/requeue. Events are `Copy`, label strings are
//!   interned ([`LabelId`]), so recording never allocates.
//! * [`EventRing`] — per-worker cache-padded SPSC rings, the same
//!   single-writer idiom as the feedback board's seqlock slots: no lock on
//!   the hot path, drained once per wave. Full rings drop (and count) —
//!   tracing never blocks the traced system.
//! * [`TraceCollector`]/[`TraceWriter`] — the sink engines attach via
//!   `Engine::set_trace_sink`: the simulator records virtual timestamps
//!   through one writer, the OS-thread engine one writer per thread
//!   (wall-clock), and the process engine's workers ship their local logs
//!   to the master in a `Trace` wire frame
//!   ([`wire::encode_log`]/[`wire::decode_log`]) for
//!   [`ingest`](TraceCollector::ingest)ing.
//! * [`MetricsRegistry`] — fixed monotonic [`Counter`]s and peak
//!   [`Gauge`]s (frames, wire bytes, chunk claims, requeues, queue depths).
//! * Exporters: [`chrome_trace_json`] (loads in Perfetto — per-node/thread
//!   tracks, op spans nested under waves, flow arrows for deliveries, with
//!   [`validate_chrome_trace`] as the structural checker) and
//!   [`wave_summaries`]/[`render_summary`] (makespan, per-worker busy
//!   fraction, delivery-latency histogram).
//! * [`schedule_hash`] — an FNV-1a digest over the ordered event stream.
//!   On the deterministic simulator this is the **schedule-trace hash**:
//!   equal across replays of the same seeded workload, different the moment
//!   the schedule diverges.

mod chrome;
mod collect;
mod event;
mod hash;
mod metrics;
mod ring;
mod summary;
pub mod wire;

pub use chrome::{chrome_trace_json, parse_json, validate_chrome_trace, ChromeStats, Json};
pub use collect::{TraceCollector, TraceLog, TraceWriter, DEFAULT_RING_CAPACITY};
pub use event::{fault_code, EventKind, LabelId, TraceEvent};
pub use hash::{first_divergence, logs_identical, schedule_hash, Divergence, Fnv1a};
pub use metrics::{Counter, Gauge, MetricsRegistry};
pub use ring::EventRing;
pub use summary::{render_summary, wave_summaries, LatencyHistogram, WaveSummary};
