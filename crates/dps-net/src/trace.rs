//! Optional recording of every cross-node transfer.

use dps_des::SimTime;

use crate::model::NodeId;

/// One recorded transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// Instant the transfer was requested.
    pub at: SimTime,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload bytes (before headers).
    pub payload_bytes: u64,
    /// Bytes on the wire (payload + headers).
    pub wire_bytes: u64,
    /// When the sender's NIC finished transmitting.
    pub sender_done: SimTime,
    /// When the message was fully received.
    pub delivered: SimTime,
}

/// Append-only transfer log, used by tests to assert on communication
/// patterns (e.g. "the improved Game-of-Life graph exchanges exactly the
/// same borders as the simple one").
#[derive(Debug, Default, Clone)]
pub struct NetTrace {
    records: Vec<TransferRecord>,
}

impl NetTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn record(&mut self, rec: TransferRecord) {
        self.records.push(rec);
    }

    /// All records, in request order.
    pub fn records(&self) -> &[TransferRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total payload bytes between a given pair (either direction).
    pub fn bytes_between(&self, a: NodeId, b: NodeId) -> u64 {
        self.records
            .iter()
            .filter(|r| (r.src == a && r.dst == b) || (r.src == b && r.dst == a))
            .map(|r| r.payload_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(src: u32, dst: u32, bytes: u64) -> TransferRecord {
        TransferRecord {
            at: SimTime::ZERO,
            src: NodeId(src),
            dst: NodeId(dst),
            payload_bytes: bytes,
            wire_bytes: bytes,
            sender_done: SimTime::ZERO,
            delivered: SimTime::ZERO,
        }
    }

    #[test]
    fn bytes_between_counts_both_directions() {
        let mut t = NetTrace::new();
        t.record(rec(0, 1, 10));
        t.record(rec(1, 0, 5));
        t.record(rec(0, 2, 100));
        assert_eq!(t.bytes_between(NodeId(0), NodeId(1)), 15);
        assert_eq!(t.bytes_between(NodeId(1), NodeId(2)), 0);
        assert_eq!(t.len(), 3);
    }
}
