//! Kernel discovery: the paper's "simple name server".
//!
//! DPS kernels "are named independently of the underlying host names",
//! allowing several kernels per host (used in the paper for debugging with
//! the full networking stack on one machine). Kernels find each other via
//! UDP broadcast or a name server; we model the registry directly.

use std::collections::BTreeMap;

use crate::model::NodeId;

/// Registry mapping kernel names to the node on which the kernel runs.
///
/// Uses a `BTreeMap` so enumeration order (the simulated UDP-broadcast
/// discovery) is deterministic.
#[derive(Debug, Default, Clone)]
pub struct NameServer {
    kernels: BTreeMap<String, NodeId>,
}

impl NameServer {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a kernel under `name`. Returns the previously registered
    /// node if the name was already taken (the new registration wins,
    /// matching a kernel restart).
    pub fn register(&mut self, name: impl Into<String>, node: NodeId) -> Option<NodeId> {
        self.kernels.insert(name.into(), node)
    }

    /// Remove a kernel (node shutdown). Returns its node if it existed.
    pub fn unregister(&mut self, name: &str) -> Option<NodeId> {
        self.kernels.remove(name)
    }

    /// Look up one kernel by name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.kernels.get(name).copied()
    }

    /// Enumerate all kernels in name order — the simulated broadcast
    /// discovery path.
    pub fn discover(&self) -> impl Iterator<Item = (&str, NodeId)> {
        self.kernels.iter().map(|(n, &id)| (n.as_str(), id))
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True if no kernels are registered.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_unregister() {
        let mut ns = NameServer::new();
        assert!(ns.is_empty());
        assert_eq!(ns.register("kernel1", NodeId(0)), None);
        assert_eq!(ns.register("kernel2", NodeId(1)), None);
        assert_eq!(ns.lookup("kernel1"), Some(NodeId(0)));
        assert_eq!(ns.lookup("nope"), None);
        assert_eq!(ns.unregister("kernel1"), Some(NodeId(0)));
        assert_eq!(ns.lookup("kernel1"), None);
        assert_eq!(ns.len(), 1);
    }

    #[test]
    fn restart_replaces_registration() {
        let mut ns = NameServer::new();
        ns.register("k", NodeId(0));
        assert_eq!(ns.register("k", NodeId(3)), Some(NodeId(0)));
        assert_eq!(ns.lookup("k"), Some(NodeId(3)));
    }

    #[test]
    fn multiple_kernels_per_node_allowed() {
        // The paper runs several kernels on one host for debugging.
        let mut ns = NameServer::new();
        ns.register("a", NodeId(0));
        ns.register("b", NodeId(0));
        assert_eq!(ns.len(), 2);
    }

    #[test]
    fn discovery_is_deterministic() {
        let mut ns = NameServer::new();
        ns.register("zeta", NodeId(2));
        ns.register("alpha", NodeId(0));
        ns.register("mid", NodeId(1));
        let names: Vec<&str> = ns.discover().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
