//! Seeded network fault injection for simulation testing.
//!
//! The model is a **reliable transport over a lossy wire** — the same
//! stance real DPS takes on TCP. A dropped frame is retransmitted after a
//! timeout, a duplicated frame is suppressed by the receiver's DPS header
//! dedup, a delayed frame simply arrives later, and reordering falls out of
//! delay jitter plus the simulator's tie-break hook. The consequence that
//! makes the harness's invariants checkable: **faults perturb timing and
//! wire cost, never payload content**, so a perturbed run must still produce
//! byte-identical outputs — only an explicit node kill may degrade them.
//!
//! Decisions are drawn from a [`SplitMix64`] stream owned by the injector:
//! the same seed applied to the same deterministic engine replays the exact
//! same fault schedule.

use dps_des::{SimSpan, SplitMix64};

/// Fault classes and rates applied to every cross-node transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a frame is dropped and must be retransmitted (applied
    /// repeatedly: each retransmit may drop again, capped at
    /// [`FaultConfig::MAX_RETRANSMITS`]).
    pub drop_rate: f64,
    /// Probability a frame is delayed by up to `max_extra_delay`.
    pub delay_rate: f64,
    /// Probability the wire carries a duplicate copy (suppressed above the
    /// transport; costs wire bytes, not correctness).
    pub duplicate_rate: f64,
    /// Upper bound of the uniform extra delay a delayed frame suffers.
    pub max_extra_delay: SimSpan,
    /// Retransmit timeout charged per dropped copy.
    pub retransmit_timeout: SimSpan,
}

impl FaultConfig {
    /// Retransmit attempts before the injector gives up dropping (the
    /// transport always delivers eventually — this caps the modeled stall,
    /// it does not model connection loss).
    pub const MAX_RETRANSMITS: u32 = 8;

    /// No faults at all (the identity injector).
    pub const fn none() -> Self {
        Self {
            drop_rate: 0.0,
            delay_rate: 0.0,
            duplicate_rate: 0.0,
            max_extra_delay: SimSpan::ZERO,
            retransmit_timeout: SimSpan::ZERO,
        }
    }

    /// A lively default for smoke sweeps: every class enabled at `rate`,
    /// with millisecond-scale delay and retransmit spans (large against the
    /// paper-testbed microsecond latencies, so perturbations actually move
    /// deliveries across interleaving boundaries).
    pub fn all(rate: f64) -> Self {
        Self {
            drop_rate: rate,
            delay_rate: rate,
            duplicate_rate: rate,
            max_extra_delay: SimSpan::from_millis(2),
            retransmit_timeout: SimSpan::from_millis(1),
        }
    }

    /// True when every class is disabled.
    pub fn is_none(&self) -> bool {
        self.drop_rate <= 0.0 && self.delay_rate <= 0.0 && self.duplicate_rate <= 0.0
    }
}

/// What the injector decided for one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// Extra delivery latency (retransmit timeouts + jitter), zero when the
    /// frame sailed through.
    pub extra_delay: SimSpan,
    /// Dropped copies that had to be resent.
    pub retransmits: u32,
    /// Duplicate copies the wire carried.
    pub duplicates: u32,
}

impl FaultDecision {
    /// True when this transfer was perturbed in any way.
    pub fn faulted(&self) -> bool {
        self.extra_delay > SimSpan::ZERO || self.retransmits > 0 || self.duplicates > 0
    }
}

/// Deterministic per-transfer fault source: one RNG stream, one decision
/// per [`FaultInjector::decide`] call. Because the simulator consults it in
/// a deterministic order, seed + workload fully determine the schedule.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: SplitMix64,
    decisions: u64,
    faults: u64,
}

impl FaultInjector {
    /// Injector drawing from `seed` under `cfg`.
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: SplitMix64::new(seed),
            decisions: 0,
            faults: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Transfers consulted so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Transfers that were actually perturbed.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Decide the fate of one cross-node transfer.
    pub fn decide(&mut self) -> FaultDecision {
        self.decisions += 1;
        let mut d = FaultDecision::default();
        while d.retransmits < FaultConfig::MAX_RETRANSMITS
            && self.cfg.drop_rate > 0.0
            && self.rng.next_f64() < self.cfg.drop_rate
        {
            d.retransmits += 1;
            d.extra_delay += self.cfg.retransmit_timeout;
        }
        if self.cfg.delay_rate > 0.0 && self.rng.next_f64() < self.cfg.delay_rate {
            let jitter = self.cfg.max_extra_delay.as_nanos();
            if jitter > 0 {
                d.extra_delay += SimSpan::from_nanos(1 + self.rng.next_below(jitter));
            }
        }
        if self.cfg.duplicate_rate > 0.0 && self.rng.next_f64() < self.cfg.duplicate_rate {
            d.duplicates += 1;
        }
        if d.faulted() {
            self.faults += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_the_identity() {
        let mut inj = FaultInjector::new(FaultConfig::none(), 7);
        for _ in 0..100 {
            assert_eq!(inj.decide(), FaultDecision::default());
        }
        assert_eq!(inj.faults(), 0);
        assert_eq!(inj.decisions(), 100);
    }

    #[test]
    fn same_seed_replays_the_same_fault_schedule() {
        let run = |seed: u64| {
            let mut inj = FaultInjector::new(FaultConfig::all(0.3), seed);
            (0..200).map(|_| inj.decide()).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should differ");
    }

    #[test]
    fn rates_bite_and_delay_is_bounded() {
        let cfg = FaultConfig::all(0.5);
        let mut inj = FaultInjector::new(cfg, 3);
        let decisions: Vec<_> = (0..500).map(|_| inj.decide()).collect();
        assert!(inj.faults() > 100, "half-rate faults must actually fire");
        let bound = SimSpan::from_nanos(
            cfg.retransmit_timeout.as_nanos() * FaultConfig::MAX_RETRANSMITS as u64
                + cfg.max_extra_delay.as_nanos(),
        );
        for d in &decisions {
            assert!(d.extra_delay <= bound, "delay exceeded the modeled bound");
            assert!(d.retransmits <= FaultConfig::MAX_RETRANSMITS);
        }
        assert!(decisions.iter().any(|d| d.retransmits > 0));
        assert!(decisions.iter().any(|d| d.duplicates > 0));
    }
}
