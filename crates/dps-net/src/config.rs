//! Network model constants.

use dps_des::SimSpan;

/// All tunable constants of the cluster network model.
///
/// The `Default` values are calibrated to the paper's testbed — eight
/// bi-Pentium-III 733 MHz PCs under Windows 2000 on a Gigabit-Ethernet
/// switch — by fitting the socket curve of Fig. 6: throughput rises from a
/// couple of MB/s at 1 KB transfers to a ≈35 MB/s plateau at 1 MB transfers,
/// which pins down (bandwidth, per-message overhead) ≈ (36 MB/s, ~55 µs).
/// The DPS curve of the same figure sits slightly below the socket curve at
/// small sizes, which pins down the control-structure overhead per data
/// object.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Sustained per-direction NIC bandwidth, bytes/second. This is the
    /// *effective* TCP payload bandwidth of the testbed (≈36 MB/s), not the
    /// 125 MB/s raw line rate of Gigabit Ethernet: the paper's 733 MHz hosts
    /// are CPU-bound in the protocol stack.
    pub bandwidth_bps: f64,
    /// Fixed per-message cost on each NIC direction (syscalls, interrupt
    /// handling, protocol stack). Dominates throughput for small messages.
    pub per_message_overhead: SimSpan,
    /// One-way propagation latency through the switch.
    pub latency: SimSpan,
    /// One-time cost of opening a TCP connection between a node pair. DPS
    /// opens connections lazily — the first data object between two nodes
    /// pays this (paper §4 "delayed mechanism for starting communications").
    pub connect_latency: SimSpan,
    /// Extra bytes DPS attaches to every data object: "control structures
    /// giving information about their state and position within the flow
    /// graph" (paper §4). Raw socket transfers do not pay this.
    pub dps_header_bytes: u64,
    /// Extra per-object CPU-ish cost of DPS serialization/deserialization
    /// and queue management, charged on both NIC directions on top of
    /// `per_message_overhead`.
    pub dps_object_overhead: SimSpan,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            bandwidth_bps: 36.0e6,
            per_message_overhead: SimSpan::from_micros(55),
            latency: SimSpan::from_micros(30),
            connect_latency: SimSpan::from_millis(2),
            dps_header_bytes: 96,
            dps_object_overhead: SimSpan::from_micros(40),
        }
    }
}

impl NetConfig {
    /// Time for `bytes` of payload to cross one NIC direction, excluding
    /// fixed overheads.
    pub fn wire_time(&self, bytes: u64) -> SimSpan {
        SimSpan::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }

    /// Per-direction occupancy of a *raw socket* message of `bytes`.
    pub fn socket_occupancy(&self, bytes: u64) -> SimSpan {
        self.per_message_overhead + self.wire_time(bytes)
    }

    /// Per-direction occupancy of a *DPS data object* whose payload is
    /// `bytes`: header bytes ride along and per-object costs are added.
    pub fn dps_occupancy(&self, bytes: u64) -> SimSpan {
        self.per_message_overhead
            + self.dps_object_overhead
            + self.wire_time(bytes + self.dps_header_bytes)
    }

    /// An idealized loss-free configuration for unit tests: 1 GB/s, zero
    /// overheads and latencies.
    pub fn ideal() -> Self {
        Self {
            bandwidth_bps: 1e9,
            per_message_overhead: SimSpan::ZERO,
            latency: SimSpan::ZERO,
            connect_latency: SimSpan::ZERO,
            dps_header_bytes: 0,
            dps_object_overhead: SimSpan::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_linearly() {
        let cfg = NetConfig::default();
        let t1 = cfg.wire_time(1_000_000);
        let t2 = cfg.wire_time(2_000_000);
        assert_eq!(t2.as_nanos(), 2 * t1.as_nanos());
        // 1 MB at 36 MB/s ≈ 27.8 ms
        assert!((t1.as_secs_f64() - 1.0 / 36.0).abs() < 1e-6);
    }

    #[test]
    fn dps_costs_exceed_socket_costs() {
        let cfg = NetConfig::default();
        for bytes in [100, 10_000, 1_000_000] {
            assert!(cfg.dps_occupancy(bytes) > cfg.socket_occupancy(bytes));
        }
    }

    #[test]
    fn overheads_vanish_for_large_messages() {
        // The relative DPS penalty must become negligible at 1 MB — that is
        // the convergence visible in Fig. 6.
        let cfg = NetConfig::default();
        let ratio = cfg.dps_occupancy(1_000_000).as_secs_f64()
            / cfg.socket_occupancy(1_000_000).as_secs_f64();
        assert!(ratio < 1.01, "ratio {ratio}");
        let small_ratio =
            cfg.dps_occupancy(1_000).as_secs_f64() / cfg.socket_occupancy(1_000).as_secs_f64();
        assert!(small_ratio > 1.3, "small ratio {small_ratio}");
    }

    #[test]
    fn ideal_config_is_free() {
        let cfg = NetConfig::ideal();
        assert_eq!(cfg.socket_occupancy(0), SimSpan::ZERO);
        assert_eq!(cfg.dps_occupancy(0), SimSpan::ZERO);
    }
}
