//! # dps-net — network substrate for the DPS cluster simulator
//!
//! Models the communication hardware and OS stack of the paper's testbed: a
//! Gigabit-Ethernet switched cluster of PCs whose *measured* point-to-point
//! TCP throughput tops out around 35 MB/s under Windows 2000 (Fig. 6 of the
//! paper), plus DPS-specific costs — control structures piggy-backed on each
//! data object and lazily-opened TCP connections.
//!
//! * [`NetConfig`] — all tunable constants (bandwidth, per-message overhead,
//!   propagation latency, connect latency, DPS header bytes), with a
//!   `Default` calibrated to the paper's testbed.
//! * [`NetworkModel`] — full-duplex per-node NIC timelines + a TCP
//!   connection cache; [`NetworkModel::transfer`] turns (src, dst, bytes)
//!   into a deterministic `(sender done, delivered)` pair of instants.
//! * [`NameServer`] — the paper's "simple name server" by which kernels
//!   locate each other (the alternative UDP-broadcast discovery is modelled
//!   as an instantaneous registry scan).
//! * [`NetTrace`] — optional transfer recording for tests and debugging.
//!
//! The model is *reservation-based*: each NIC direction is a
//! [`Timeline`](dps_des::Timeline), so simultaneous send+receive (the ring
//! experiment of Fig. 6) proceeds at full duplex, while two messages leaving
//! the same node serialize on its transmit lane — exactly the first-order
//! behaviour that shaped the paper's measurements.

mod config;
mod model;
mod nameserver;
mod trace;

pub use config::NetConfig;
pub use model::{NetworkModel, NodeId, Traffic, TransferPlan};
pub use nameserver::NameServer;
pub use trace::{NetTrace, TransferRecord};
