//! # dps-net — network substrate for the DPS cluster simulator
//!
//! Models the communication hardware and OS stack of the paper's testbed: a
//! Gigabit-Ethernet switched cluster of PCs whose *measured* point-to-point
//! TCP throughput tops out around 35 MB/s under Windows 2000 (Fig. 6 of the
//! paper), plus DPS-specific costs — control structures piggy-backed on each
//! data object and lazily-opened TCP connections.
//!
//! * [`NetConfig`] — all tunable constants (bandwidth, per-message overhead,
//!   propagation latency, connect latency, DPS header bytes), with a
//!   `Default` calibrated to the paper's testbed.
//! * [`NetworkModel`] — full-duplex per-node NIC timelines + a TCP
//!   connection cache; [`NetworkModel::transfer`] turns (src, dst, bytes)
//!   into a deterministic `(sender done, delivered)` pair of instants.
//! * [`NameServer`] — the paper's "simple name server" by which kernels
//!   locate each other (the alternative UDP-broadcast discovery is modelled
//!   as an instantaneous registry scan). This is not only simulation
//!   machinery: the multi-process `dps-netengine` resolves its worker
//!   kernels (`kernel1`, `kernel2`, …) to cluster nodes through the same
//!   registry.
//! * [`NetTrace`] — optional transfer recording for tests and debugging.
//!
//! The model is *reservation-based*: each NIC direction is a
//! [`Timeline`](dps_des::Timeline), so simultaneous send+receive (the ring
//! experiment of Fig. 6) proceeds at full duplex, while two messages leaving
//! the same node serialize on its transmit lane — exactly the first-order
//! behaviour that shaped the paper's measurements.
//!
//! Kernel naming is independent of host naming, so several kernels can
//! share a node (the paper's one-machine debugging setup) and a restart
//! simply re-registers:
//!
//! ```
//! use dps_net::{NameServer, NodeId};
//!
//! let mut ns = NameServer::new();
//! assert_eq!(ns.register("kernel1", NodeId(1)), None);
//! assert_eq!(ns.register("kernel2", NodeId(1)), None); // same host is fine
//! assert_eq!(ns.lookup("kernel2"), Some(NodeId(1)));
//! // A kernel restart on another node wins and reports the old placement.
//! assert_eq!(ns.register("kernel2", NodeId(2)), Some(NodeId(1)));
//! // Discovery (the modelled UDP broadcast) enumerates deterministically.
//! let found: Vec<_> = ns.discover().map(|(name, _)| name.to_string()).collect();
//! assert_eq!(found, ["kernel1", "kernel2"]);
//! ```

mod config;
mod fault;
mod model;
mod nameserver;
mod trace;

pub use config::NetConfig;
pub use fault::{FaultConfig, FaultDecision, FaultInjector};
pub use model::{NetworkModel, NodeId, Traffic, TransferPlan};
pub use nameserver::NameServer;
pub use trace::{NetTrace, TransferRecord};
