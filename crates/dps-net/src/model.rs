//! Full-duplex NIC reservation model with a lazy TCP connection cache.

use std::collections::HashSet;

use dps_des::{SimSpan, SimTime, Timeline};

use crate::config::NetConfig;
use crate::trace::{NetTrace, TransferRecord};

/// Identifier of a cluster node (index into the cluster's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Outcome of planning one message transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPlan {
    /// When the sender's transmit lane is free again (the sending thread can
    /// continue earlier — DPS posts asynchronously — but the NIC cannot).
    pub sender_done: SimTime,
    /// When the message is fully received and can be enqueued on the
    /// destination thread's token queue.
    pub delivered: SimTime,
    /// Bytes that actually crossed the wire (payload + any DPS header).
    pub wire_bytes: u64,
}

/// Kind of traffic for a transfer: raw socket bytes or a DPS data object
/// (which carries control structures and pays serialization costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traffic {
    /// Plain socket send/receive (the baseline of Fig. 6).
    Socket,
    /// A DPS data object.
    DpsObject,
}

/// Deterministic cluster network: one transmit and one receive
/// [`Timeline`] per node, plus a connection cache.
///
/// Same-node transfers short-circuit: the paper transfers a pointer between
/// threads of the same address space "at a negligible cost", so `transfer`
/// returns `(now, now)` without touching any timeline.
#[derive(Debug)]
pub struct NetworkModel {
    cfg: NetConfig,
    tx: Vec<Timeline>,
    rx: Vec<Timeline>,
    connected: HashSet<(NodeId, NodeId)>,
    trace: Option<NetTrace>,
    transfers: u64,
    wire_bytes: u64,
}

impl NetworkModel {
    /// A network joining `nodes` nodes under configuration `cfg`.
    pub fn new(nodes: usize, cfg: NetConfig) -> Self {
        Self {
            cfg,
            tx: vec![Timeline::new(); nodes],
            rx: vec![Timeline::new(); nodes],
            connected: HashSet::new(),
            trace: None,
            transfers: 0,
            wire_bytes: 0,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    /// Access the configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Enable transfer tracing (for tests / debugging).
    pub fn enable_trace(&mut self) {
        self.trace = Some(NetTrace::new());
    }

    /// Recorded transfers, if tracing is enabled.
    pub fn trace(&self) -> Option<&NetTrace> {
        self.trace.as_ref()
    }

    /// Total messages that crossed node boundaries.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Total bytes that crossed the wire (payload + headers).
    pub fn wire_bytes_total(&self) -> u64 {
        self.wire_bytes
    }

    /// True if a connection between `a` and `b` is already open.
    pub fn is_connected(&self, a: NodeId, b: NodeId) -> bool {
        self.connected.contains(&ordered(a, b))
    }

    /// Plan the transfer of a message of `payload_bytes` from `src` to `dst`
    /// starting no earlier than `now`.
    ///
    /// The first transfer between a node pair additionally pays the TCP
    /// connect latency (lazy connections, paper §4). Traffic kind selects
    /// raw-socket or DPS-object cost accounting.
    pub fn transfer(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u64,
        traffic: Traffic,
    ) -> TransferPlan {
        if src == dst {
            // Same address space: pointer passing, no serialization.
            return TransferPlan {
                sender_done: now,
                delivered: now,
                wire_bytes: 0,
            };
        }
        let connect = if self.connected.insert(ordered(src, dst)) {
            self.cfg.connect_latency
        } else {
            SimSpan::ZERO
        };
        let (occupancy, wire_bytes) = match traffic {
            Traffic::Socket => (self.cfg.socket_occupancy(payload_bytes), payload_bytes),
            Traffic::DpsObject => (
                self.cfg.dps_occupancy(payload_bytes),
                payload_bytes + self.cfg.dps_header_bytes,
            ),
        };
        let (tx_start, tx_end) = self.tx[src.index()].reserve(now + connect, occupancy);
        // Cut-through: the receive lane engages one propagation delay after
        // transmission starts and must be held for the same occupancy.
        let (_, rx_end) = self.rx[dst.index()].reserve(tx_start + self.cfg.latency, occupancy);
        self.transfers += 1;
        self.wire_bytes += wire_bytes;
        let plan = TransferPlan {
            sender_done: tx_end,
            delivered: rx_end,
            wire_bytes,
        };
        if let Some(trace) = &mut self.trace {
            trace.record(TransferRecord {
                at: now,
                src,
                dst,
                payload_bytes,
                wire_bytes,
                sender_done: plan.sender_done,
                delivered: plan.delivered,
            });
        }
        plan
    }

    /// Transmit-lane utilization of a node: busy time on its tx timeline.
    pub fn tx_busy(&self, node: NodeId) -> SimSpan {
        self.tx[node.index()].busy_total()
    }

    /// Receive-lane utilization of a node.
    pub fn rx_busy(&self, node: NodeId) -> SimSpan {
        self.rx[node.index()].busy_total()
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel::new(4, NetConfig::ideal())
    }

    #[test]
    fn same_node_is_free() {
        let mut n = net();
        let p = n.transfer(
            SimTime(5),
            NodeId(1),
            NodeId(1),
            1_000_000,
            Traffic::DpsObject,
        );
        assert_eq!(p.sender_done, SimTime(5));
        assert_eq!(p.delivered, SimTime(5));
        assert_eq!(p.wire_bytes, 0);
        assert_eq!(n.transfer_count(), 0);
    }

    #[test]
    fn cross_node_takes_wire_time() {
        let mut cfg = NetConfig::ideal();
        cfg.bandwidth_bps = 1e9; // 1 byte/ns
        let mut n = NetworkModel::new(2, cfg);
        let p = n.transfer(SimTime(0), NodeId(0), NodeId(1), 1000, Traffic::Socket);
        assert_eq!(p.sender_done, SimTime(1000));
        assert_eq!(p.delivered, SimTime(1000));
        assert_eq!(p.wire_bytes, 1000);
    }

    #[test]
    fn connect_latency_paid_once_per_pair() {
        let mut cfg = NetConfig::ideal();
        cfg.connect_latency = SimSpan::from_nanos(500);
        let mut n = NetworkModel::new(2, cfg);
        assert!(!n.is_connected(NodeId(0), NodeId(1)));
        let p1 = n.transfer(SimTime(0), NodeId(0), NodeId(1), 0, Traffic::Socket);
        assert_eq!(p1.delivered, SimTime(500));
        assert!(n.is_connected(NodeId(0), NodeId(1)));
        // Reverse direction reuses the same TCP connection.
        let p2 = n.transfer(SimTime(600), NodeId(1), NodeId(0), 0, Traffic::Socket);
        assert_eq!(p2.delivered, SimTime(600));
    }

    #[test]
    fn tx_lane_serializes_two_sends() {
        let mut cfg = NetConfig::ideal();
        cfg.bandwidth_bps = 1e9;
        let mut n = NetworkModel::new(3, cfg);
        let a = n.transfer(SimTime(0), NodeId(0), NodeId(1), 100, Traffic::Socket);
        let b = n.transfer(SimTime(0), NodeId(0), NodeId(2), 100, Traffic::Socket);
        assert_eq!(a.sender_done, SimTime(100));
        assert_eq!(b.sender_done, SimTime(200), "second send queued on tx lane");
    }

    #[test]
    fn full_duplex_send_and_receive_overlap() {
        // Ring forwarding: node 1 receives from 0 while sending to 2.
        let mut cfg = NetConfig::ideal();
        cfg.bandwidth_bps = 1e9;
        let mut n = NetworkModel::new(3, cfg);
        let in1 = n.transfer(SimTime(0), NodeId(0), NodeId(1), 1000, Traffic::Socket);
        let out1 = n.transfer(SimTime(0), NodeId(1), NodeId(2), 1000, Traffic::Socket);
        // Both complete at t=1000: rx and tx lanes are independent.
        assert_eq!(in1.delivered, SimTime(1000));
        assert_eq!(out1.sender_done, SimTime(1000));
    }

    #[test]
    fn dps_traffic_carries_header() {
        let mut n = NetworkModel::new(2, NetConfig::default());
        let p = n.transfer(SimTime(0), NodeId(0), NodeId(1), 1000, Traffic::DpsObject);
        assert_eq!(p.wire_bytes, 1000 + NetConfig::default().dps_header_bytes);
        assert_eq!(n.wire_bytes_total(), p.wire_bytes);
    }

    #[test]
    fn trace_records_transfers() {
        let mut n = net();
        n.enable_trace();
        n.transfer(SimTime(0), NodeId(0), NodeId(1), 10, Traffic::Socket);
        n.transfer(SimTime(1), NodeId(1), NodeId(2), 20, Traffic::Socket);
        let t = n.trace().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].payload_bytes, 20);
    }

    #[test]
    fn latency_delays_delivery() {
        let mut cfg = NetConfig::ideal();
        cfg.latency = SimSpan::from_micros(10);
        let mut n = NetworkModel::new(2, cfg);
        let p = n.transfer(SimTime(0), NodeId(0), NodeId(1), 0, Traffic::Socket);
        assert_eq!(p.delivered, SimTime(10_000));
    }
}
