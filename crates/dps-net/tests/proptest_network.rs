//! Property tests of the network model: causality, per-pair FIFO ordering,
//! and byte accounting under random traffic.

use dps_des::{SimTime, SplitMix64};
use dps_net::{NetConfig, NetworkModel, NodeId, Traffic};
use proptest::prelude::*;

fn random_traffic(seed: u64, nodes: u32, count: usize) -> Vec<(u64, u32, u32, u64)> {
    // (time, src, dst, bytes), times nondecreasing.
    let mut rng = SplitMix64::new(seed);
    let mut t = 0u64;
    (0..count)
        .map(|_| {
            t += rng.next_below(50_000);
            let src = rng.next_below(u64::from(nodes)) as u32;
            let mut dst = rng.next_below(u64::from(nodes)) as u32;
            if dst == src {
                dst = (dst + 1) % nodes;
            }
            (t, src, dst, rng.next_below(100_000))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Deliveries never precede the request, the sender finishes no later
    /// than delivery completes, and wire-byte accounting is exact.
    #[test]
    fn causality_and_accounting(seed in any::<u64>(), count in 1usize..80) {
        let mut net = NetworkModel::new(4, NetConfig::default());
        let mut total = 0u64;
        for (t, src, dst, bytes) in random_traffic(seed, 4, count) {
            let plan = net.transfer(
                SimTime(t),
                NodeId(src),
                NodeId(dst),
                bytes,
                Traffic::DpsObject,
            );
            prop_assert!(plan.sender_done >= SimTime(t));
            prop_assert!(plan.delivered >= plan.sender_done);
            prop_assert_eq!(plan.wire_bytes, bytes + net.config().dps_header_bytes);
            total += plan.wire_bytes;
        }
        prop_assert_eq!(net.wire_bytes_total(), total);
        prop_assert_eq!(net.transfer_count(), count as u64);
    }

    /// Messages between one ordered pair are delivered in send order (the
    /// TCP FIFO property DPS relies on for wave totals).
    #[test]
    fn per_pair_fifo(seed in any::<u64>(), count in 2usize..60) {
        let mut net = NetworkModel::new(2, NetConfig::default());
        let mut rng = SplitMix64::new(seed);
        let mut t = 0u64;
        let mut last_delivered = SimTime::ZERO;
        for _ in 0..count {
            t += rng.next_below(20_000);
            let bytes = rng.next_below(50_000);
            let plan = net.transfer(SimTime(t), NodeId(0), NodeId(1), bytes, Traffic::Socket);
            prop_assert!(
                plan.delivered >= last_delivered,
                "FIFO violated: {:?} before {:?}",
                plan.delivered,
                last_delivered
            );
            last_delivered = plan.delivered;
        }
    }

    /// Local (same-node) transfers are free and never touch the wire.
    #[test]
    fn local_transfers_free(seed in any::<u64>(), count in 1usize..40) {
        let mut net = NetworkModel::new(3, NetConfig::default());
        let mut rng = SplitMix64::new(seed);
        for i in 0..count {
            let node = NodeId(rng.next_below(3) as u32);
            let plan = net.transfer(
                SimTime(i as u64),
                node,
                node,
                rng.next_below(1_000_000),
                Traffic::DpsObject,
            );
            prop_assert_eq!(plan.delivered, SimTime(i as u64));
            prop_assert_eq!(plan.wire_bytes, 0);
        }
        prop_assert_eq!(net.wire_bytes_total(), 0);
    }
}
