//! Plain-old-data marker and the bulk-copied [`Buffer`](crate::Buffer)
//! element contract.

use crate::error::WireError;
use crate::reader::Reader;
use crate::wire::Wire;
use crate::writer::Writer;

/// Marker for *simple* element types in the paper's sense: fixed wire size,
/// no internal structure, eligible for bulk copy inside a
/// [`Buffer`](crate::Buffer).
///
/// The C++ DPS library serializes `SimpleToken`s and `Buffer<int>` contents
/// "with simple memory copies". Rust cannot portably memcpy structs with
/// padding, so `Pod` instead guarantees a fixed `WIDTH` and provides bulk
/// slice encode/decode, with a genuine memcpy fast path for `u8`/`i8`.
pub trait Pod: Wire + Copy + Sized {
    /// Serialized width of every value of this type, in bytes.
    const WIDTH: usize;

    /// Encode a whole slice. The default loops; `u8` overrides with memcpy.
    fn encode_slice(slice: &[Self], w: &mut Writer) {
        for v in slice {
            v.encode(w);
        }
    }

    /// Decode `len` elements into a vector.
    fn decode_slice(len: usize, r: &mut Reader<'_>) -> Result<Vec<Self>, WireError> {
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(Self::decode(r)?);
        }
        Ok(v)
    }
}

macro_rules! impl_pod {
    ($($ty:ty => $width:expr;)*) => {
        $(impl Pod for $ty { const WIDTH: usize = $width; })*
    };
}

impl_pod! {
    u16 => 2; u32 => 4; u64 => 8; u128 => 16;
    i16 => 2; i32 => 4; i64 => 8; i128 => 16;
    f32 => 4; f64 => 8;
    bool => 1; char => 4;
}

impl Pod for u8 {
    const WIDTH: usize = 1;

    fn encode_slice(slice: &[Self], w: &mut Writer) {
        w.put_slice(slice);
    }

    fn decode_slice(len: usize, r: &mut Reader<'_>) -> Result<Vec<Self>, WireError> {
        Ok(r.get_slice(len)?.to_vec())
    }
}

impl Pod for i8 {
    const WIDTH: usize = 1;

    fn encode_slice(slice: &[Self], w: &mut Writer) {
        // i8 and u8 share a byte representation; cast is free and safe.
        let bytes: Vec<u8> = slice.iter().map(|&v| v as u8).collect();
        w.put_slice(&bytes);
    }

    fn decode_slice(len: usize, r: &mut Reader<'_>) -> Result<Vec<Self>, WireError> {
        Ok(r.get_slice(len)?.iter().map(|&b| b as i8).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_wire_size() {
        assert_eq!(<u32 as Pod>::WIDTH, 0u32.wire_size());
        assert_eq!(<f64 as Pod>::WIDTH, 0f64.wire_size());
        assert_eq!(<bool as Pod>::WIDTH, true.wire_size());
        assert_eq!(<char as Pod>::WIDTH, 'x'.wire_size());
    }

    #[test]
    fn u8_bulk_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        let mut w = Writer::new();
        u8::encode_slice(&data, &mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes, data);
        let got = u8::decode_slice(data.len(), &mut Reader::new(&bytes)).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn i8_bulk_roundtrip() {
        let data: Vec<i8> = vec![-128, -1, 0, 1, 127];
        let mut w = Writer::new();
        i8::encode_slice(&data, &mut w);
        let bytes = w.into_bytes();
        let got = i8::decode_slice(data.len(), &mut Reader::new(&bytes)).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn generic_bulk_roundtrip() {
        let data: Vec<f32> = vec![1.5, -2.25, 0.0];
        let mut w = Writer::new();
        f32::encode_slice(&data, &mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), data.len() * <f32 as Pod>::WIDTH);
        let got = f32::decode_slice(data.len(), &mut Reader::new(&bytes)).unwrap();
        assert_eq!(got, data);
    }
}
