//! Growable little-endian byte writer.

use bytes::{BufMut, BytesMut};

/// A growable byte sink used by [`Wire::encode`](crate::Wire::encode).
///
/// All multi-byte integers are written little-endian with fixed width, which
/// keeps the format trivially deterministic across nodes — the property DPS
/// relies on when a kernel deserializes a data object produced by another
/// application instance.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self {
            buf: BytesMut::new(),
        }
    }

    /// Create a writer with `cap` bytes preallocated (typically the value of
    /// [`Wire::wire_size`](crate::Wire::wire_size), making encoding a single
    /// allocation).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Consume the writer, yielding a cheaply-cloneable `bytes::Bytes`.
    pub fn into_shared(self) -> bytes::Bytes {
        self.buf.freeze()
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Write a single byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Write a `u16` little-endian.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Write a `u32` little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Write a `u64` little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Write a `u128` little-endian.
    #[inline]
    pub fn put_u128(&mut self, v: u128) {
        self.buf.put_u128_le(v);
    }

    /// Write an `i8`.
    #[inline]
    pub fn put_i8(&mut self, v: i8) {
        self.buf.put_i8(v);
    }

    /// Write an `i16` little-endian.
    #[inline]
    pub fn put_i16(&mut self, v: i16) {
        self.buf.put_i16_le(v);
    }

    /// Write an `i32` little-endian.
    #[inline]
    pub fn put_i32(&mut self, v: i32) {
        self.buf.put_i32_le(v);
    }

    /// Write an `i64` little-endian.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Write an `i128` little-endian.
    #[inline]
    pub fn put_i128(&mut self, v: i128) {
        self.buf.put_i128_le(v);
    }

    /// Write an `f32` as its IEEE-754 bits, little-endian.
    #[inline]
    pub fn put_f32(&mut self, v: f32) {
        self.buf.put_f32_le(v);
    }

    /// Write an `f64` as its IEEE-754 bits, little-endian.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Write a length prefix (`u32`); DPS data objects never exceed 4 GiB.
    ///
    /// # Panics
    /// Panics if `len` does not fit in a `u32`.
    #[inline]
    pub fn put_len(&mut self, len: usize) {
        let v = u32::try_from(len).expect("wire length exceeds u32::MAX");
        self.put_u32(v);
    }

    /// Append raw bytes verbatim (used for the [`Buffer`](crate::Buffer)
    /// bulk fast path and for pre-serialized payloads).
    #[inline]
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_layout() {
        let mut w = Writer::new();
        w.put_u32(0x0403_0201);
        assert_eq!(w.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn len_tracking_and_into_bytes() {
        let mut w = Writer::with_capacity(16);
        assert!(w.is_empty());
        w.put_u8(7);
        w.put_u64(1);
        assert_eq!(w.len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes[0], 7);
    }

    #[test]
    #[should_panic(expected = "wire length exceeds")]
    fn oversized_len_panics() {
        let mut w = Writer::new();
        w.put_len(u32::MAX as usize + 1);
    }

    #[test]
    fn floats_roundtrip_bits() {
        let mut w = Writer::new();
        w.put_f64(std::f64::consts::PI);
        let bytes = w.into_bytes();
        assert_eq!(
            f64::from_le_bytes(bytes[..8].try_into().unwrap()),
            std::f64::consts::PI
        );
    }
}
