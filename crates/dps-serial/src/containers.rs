//! The paper's container templates: `Buffer<T>`, `Vector<T>`, and `CT<T>`.

use std::ops::{Deref, DerefMut, Index, IndexMut};

use crate::error::WireError;
use crate::pod::Pod;
use crate::reader::Reader;
use crate::wire::Wire;
use crate::writer::Writer;

/// Variable-size array of *simple* elements, bulk-copied on the wire.
///
/// Equivalent of the paper's `Buffer<int>`: "a variable-size array of
/// integers" serialized with memory copies. Use this for large numeric
/// payloads (matrix blocks, pixel rows, cell bands); the `u8` element type
/// takes a true memcpy fast path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Buffer<T: Pod> {
    data: Vec<T>,
}

impl<T: Pod> Buffer<T> {
    /// Empty buffer.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Buffer taking ownership of `data`.
    pub fn from_vec(data: Vec<T>) -> Self {
        Self { data }
    }

    /// Buffer of `len` copies of `fill`.
    pub fn filled(fill: T, len: usize) -> Self {
        Self {
            data: vec![fill; len],
        }
    }

    /// Extract the owned element vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow the elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Borrow the elements mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Pod> From<Vec<T>> for Buffer<T> {
    fn from(data: Vec<T>) -> Self {
        Self::from_vec(data)
    }
}

impl<T: Pod> Deref for Buffer<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.data
    }
}

impl<T: Pod> DerefMut for Buffer<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.data
    }
}

impl<T: Pod> Index<usize> for Buffer<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T: Pod> IndexMut<usize> for Buffer<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

impl<T: Pod> Wire for Buffer<T> {
    fn wire_size(&self) -> usize {
        4 + self.data.len() * T::WIDTH
    }
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.data.len());
        T::encode_slice(&self.data, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        Ok(Self {
            data: T::decode_slice(len, r)?,
        })
    }
}

impl<T: Pod> FromIterator<T> for Buffer<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

/// Variable-size array of *complex* elements (nested [`Wire`] values).
///
/// Equivalent of the paper's `Vector<Something>`. In Rust this is a thin
/// newtype over `Vec<T>` — kept as a distinct type so DPS data-object
/// declarations read like the published API.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector<T: Wire> {
    data: Vec<T>,
}

impl<T: Wire> Vector<T> {
    /// Empty vector.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Vector taking ownership of `data`.
    pub fn from_vec(data: Vec<T>) -> Self {
        Self { data }
    }

    /// Extract the owned element vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Wire> From<Vec<T>> for Vector<T> {
    fn from(data: Vec<T>) -> Self {
        Self::from_vec(data)
    }
}

impl<T: Wire> Deref for Vector<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.data
    }
}

impl<T: Wire> DerefMut for Vector<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.data
    }
}

impl<T: Wire> Wire for Vector<T> {
    fn wire_size(&self) -> usize {
        self.data.wire_size()
    }
    fn encode(&self, w: &mut Writer) {
        self.data.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            data: Vec::<T>::decode(r)?,
        })
    }
}

impl<T: Wire> FromIterator<T> for Vector<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

/// Transparent wrapper marking a *simple* type embedded in a complex data
/// object — the paper's `CT<int>` / `CT<std::string>`.
///
/// The C++ library needs `CT` to route simple members through the complex
/// serializer; Rust's trait system does not, so this is a zero-cost newtype
/// preserved for API fidelity. `CT<T>` derefs to `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CT<T: Wire>(pub T);

impl<T: Wire> Deref for CT<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: Wire> DerefMut for CT<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: Wire> From<T> for CT<T> {
    fn from(v: T) -> Self {
        CT(v)
    }
}

impl<T: Wire> Wire for CT<T> {
    fn wire_size(&self) -> usize {
        self.0.wire_size()
    }
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CT(T::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    #[test]
    fn buffer_roundtrip_and_size() {
        let buf: Buffer<f64> = vec![1.0, 2.5, -3.0].into();
        assert_eq!(buf.wire_size(), 4 + 3 * 8);
        let got: Buffer<f64> = from_bytes(&to_bytes(&buf)).unwrap();
        assert_eq!(got, buf);
    }

    #[test]
    fn buffer_u8_fast_path_layout() {
        let buf: Buffer<u8> = vec![9, 8, 7].into();
        let bytes = to_bytes(&buf);
        assert_eq!(&bytes[4..], &[9, 8, 7]);
    }

    #[test]
    fn buffer_deref_and_index() {
        let mut buf: Buffer<u32> = Buffer::filled(0, 4);
        buf[2] = 99;
        buf.push(5);
        assert_eq!(buf.len(), 5);
        assert_eq!(buf[2], 99);
        assert_eq!(buf.as_slice(), &[0, 0, 99, 0, 5]);
    }

    #[test]
    fn vector_of_complex_roundtrip() {
        let v: Vector<String> = vec!["a".to_string(), "bb".to_string()].into();
        let got: Vector<String> = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn nested_vector_of_buffers() {
        let v: Vector<Buffer<u16>> =
            vec![Buffer::from_vec(vec![1, 2]), Buffer::from_vec(vec![])].into();
        let got: Vector<Buffer<u16>> = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn ct_is_transparent() {
        let id: CT<i32> = 42.into();
        assert_eq!(*id, 42);
        assert_eq!(id.wire_size(), 4);
        let got: CT<i32> = from_bytes(&to_bytes(&id)).unwrap();
        assert_eq!(got, id);
    }

    #[test]
    fn buffer_from_iterator() {
        let buf: Buffer<u32> = (0..5).collect();
        assert_eq!(buf.as_slice(), &[0, 1, 2, 3, 4]);
    }
}
