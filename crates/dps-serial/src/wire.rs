//! The [`Wire`] trait and implementations for standard types.

use crate::error::WireError;
use crate::reader::Reader;
use crate::writer::Writer;

/// Serialization contract for DPS data objects and their fields.
///
/// Mirrors what the paper's `IDENTIFY` machinery provides implicitly in C++:
/// a way to measure, write, and reconstruct a value from a byte stream with a
/// single declaration of its fields (see [`impl_wire!`](crate::impl_wire)).
///
/// Invariants:
/// * `encode` writes exactly `wire_size()` bytes;
/// * `decode(encode(v)) == v` for every value (round-trip);
/// * the encoding is independent of host endianness and platform word size.
pub trait Wire {
    /// Exact number of bytes `encode` will produce for `self`.
    fn wire_size(&self) -> usize;

    /// Append the serialized form of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Reconstruct a value from the byte stream.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>
    where
        Self: Sized;
}

macro_rules! impl_wire_primitive {
    ($($ty:ty => $put:ident, $get:ident, $size:expr;)*) => {
        $(
            impl Wire for $ty {
                #[inline]
                fn wire_size(&self) -> usize { $size }
                #[inline]
                fn encode(&self, w: &mut Writer) { w.$put(*self); }
                #[inline]
                fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> { r.$get() }
            }
        )*
    };
}

impl_wire_primitive! {
    u8   => put_u8,   get_u8,   1;
    u16  => put_u16,  get_u16,  2;
    u32  => put_u32,  get_u32,  4;
    u64  => put_u64,  get_u64,  8;
    u128 => put_u128, get_u128, 16;
    i8   => put_i8,   get_i8,   1;
    i16  => put_i16,  get_i16,  2;
    i32  => put_i32,  get_i32,  4;
    i64  => put_i64,  get_i64,  8;
    i128 => put_i128, get_i128, 16;
    f32  => put_f32,  get_f32,  4;
    f64  => put_f64,  get_f64,  8;
}

/// `usize` travels as `u64` so 32- and 64-bit nodes interoperate.
impl Wire for usize {
    #[inline]
    fn wire_size(&self) -> usize {
        8
    }
    #[inline]
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = r.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::LengthOverflow { len: v })
    }
}

impl Wire for bool {
    #[inline]
    fn wire_size(&self) -> usize {
        1
    }
    #[inline]
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::InvalidBool(b)),
        }
    }
}

impl Wire for char {
    #[inline]
    fn wire_size(&self) -> usize {
        4
    }
    #[inline]
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self as u32);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = r.get_u32()?;
        char::from_u32(v).ok_or(WireError::InvalidChar(v))
    }
}

impl Wire for () {
    #[inline]
    fn wire_size(&self) -> usize {
        0
    }
    #[inline]
    fn encode(&self, _w: &mut Writer) {}
    #[inline]
    fn decode(_r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for String {
    fn wire_size(&self) -> usize {
        4 + self.len()
    }
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        w.put_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let bytes = r.get_slice(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::wire_size)
    }
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(WireError::InvalidBool(b)),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(Wire::wire_size).sum::<usize>()
    }
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Box<T> {
    fn wire_size(&self) -> usize {
        (**self).wire_size()
    }
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn wire_size(&self) -> usize {
        self.iter().map(Wire::wire_size).sum()
    }
    fn encode(&self, w: &mut Writer) {
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        // Build into a Vec first; avoids unsafe MaybeUninit juggling for the
        // cold decode path.
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::decode(r)?);
        }
        v.try_into()
            .map_err(|_| unreachable!("length is guaranteed to be N"))
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn wire_size(&self) -> usize {
                0 $(+ self.$idx.wire_size())+
            }
            fn encode(&self, w: &mut Writer) {
                $(self.$idx.encode(w);)+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(bytes.len(), v.wire_size(), "wire_size must match encode");
        let got: T = from_bytes(&bytes).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(i16::MIN);
        roundtrip(0x1234_5678u32);
        roundtrip(u64::MAX);
        roundtrip(i128::MIN);
        roundtrip(-0.0f32);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip('é');
        roundtrip(());
        roundtrip(usize::MAX / 2);
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let v = f64::NAN;
        let bytes = to_bytes(&v);
        let got: f64 = from_bytes(&bytes).unwrap();
        assert_eq!(got.to_bits(), v.to_bits());
    }

    #[test]
    fn compound_roundtrip() {
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip(vec![1u16, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip(vec![Some(vec![1u8, 2]), None]);
        roundtrip(Box::new(7i64));
        roundtrip([1u32, 2, 3, 4]);
        roundtrip((1u8, String::from("x"), -3i32));
        roundtrip((1u8, 2u8, 3u8, 4u8, 5u8, 6u8));
    }

    #[test]
    fn invalid_bool_rejected() {
        let err = from_bytes::<bool>(&[2]).unwrap_err();
        assert_eq!(err, WireError::InvalidBool(2));
    }

    #[test]
    fn invalid_char_rejected() {
        let bytes = 0xD800u32.to_le_bytes(); // surrogate: invalid scalar
        let err = from_bytes::<char>(&bytes).unwrap_err();
        assert_eq!(err, WireError::InvalidChar(0xD800));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let err = from_bytes::<String>(&bytes).unwrap_err();
        assert_eq!(err, WireError::InvalidUtf8);
    }

    #[test]
    fn truncated_vec_rejected() {
        let bytes = to_bytes(&vec![1u32, 2, 3]);
        let err = from_bytes::<Vec<u32>>(&bytes[..bytes.len() - 2]).unwrap_err();
        assert!(matches!(err, WireError::UnexpectedEof { .. }));
    }

    #[test]
    fn usize_is_eight_bytes_on_wire() {
        assert_eq!(5usize.wire_size(), 8);
    }
}
