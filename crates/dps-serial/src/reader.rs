//! Bounds-checked little-endian byte reader.

use crate::error::WireError;

/// Sanity cap on decoded length prefixes: a single DPS container larger than
/// this (1 GiB of elements) indicates stream corruption rather than a real
/// data object, and is rejected before any allocation is attempted.
pub(crate) const MAX_WIRE_LEN: u64 = 1 << 30;

/// A cursor over received bytes used by [`Wire::decode`](crate::Wire::decode).
///
/// Every read is bounds-checked and returns [`WireError::UnexpectedEof`]
/// rather than panicking, since the bytes may come from a remote peer.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Absolute read position from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16` little-endian.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32` little-endian.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64` little-endian.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u128` little-endian.
    #[inline]
    pub fn get_u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Read an `i8`.
    #[inline]
    pub fn get_i8(&mut self) -> Result<i8, WireError> {
        Ok(self.get_u8()? as i8)
    }

    /// Read an `i16` little-endian.
    #[inline]
    pub fn get_i16(&mut self) -> Result<i16, WireError> {
        Ok(self.get_u16()? as i16)
    }

    /// Read an `i32` little-endian.
    #[inline]
    pub fn get_i32(&mut self) -> Result<i32, WireError> {
        Ok(self.get_u32()? as i32)
    }

    /// Read an `i64` little-endian.
    #[inline]
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(self.get_u64()? as i64)
    }

    /// Read an `i128` little-endian.
    #[inline]
    pub fn get_i128(&mut self) -> Result<i128, WireError> {
        Ok(self.get_u128()? as i128)
    }

    /// Read an `f32` from IEEE-754 bits.
    #[inline]
    pub fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an `f64` from IEEE-754 bits.
    #[inline]
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length prefix written by [`Writer::put_len`](crate::Writer::put_len),
    /// rejecting implausible values before any allocation happens.
    #[inline]
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let len = self.get_u32()? as u64;
        if len > MAX_WIRE_LEN {
            return Err(WireError::LengthOverflow { len });
        }
        // A length can never exceed the remaining payload: each element is at
        // least one byte on the wire. This turns huge-but-under-cap corrupt
        // lengths into an early error instead of an OOM in Vec::with_capacity.
        if len as usize > self.remaining() {
            return Err(WireError::UnexpectedEof {
                needed: len as usize,
                remaining: self.remaining(),
            });
        }
        Ok(len as usize)
    }

    /// Read exactly `n` raw bytes.
    #[inline]
    pub fn get_slice(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads() {
        let bytes = [1u8, 0, 0, 0, 0xff];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u32().unwrap(), 1);
        assert_eq!(r.get_u8().unwrap(), 0xff);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn eof_is_reported_not_panicked() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.get_u32().unwrap_err();
        assert_eq!(
            err,
            WireError::UnexpectedEof {
                needed: 4,
                remaining: 2
            }
        );
    }

    #[test]
    fn len_rejects_overflow() {
        // length prefix of MAX_WIRE_LEN + 1
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(((MAX_WIRE_LEN + 1) as u32).to_le_bytes()));
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_len().unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
    }

    #[test]
    fn len_rejects_more_than_remaining() {
        // plausible length (100) but only 4 bytes of payload follow
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&[0; 4]);
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_len().unwrap_err(),
            WireError::UnexpectedEof { needed: 100, .. }
        ));
    }

    #[test]
    fn position_tracks_consumption() {
        let bytes = [0u8; 10];
        let mut r = Reader::new(&bytes);
        r.get_u64().unwrap();
        assert_eq!(r.position(), 8);
        assert_eq!(r.remaining(), 2);
    }
}
