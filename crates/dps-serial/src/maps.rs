//! `Wire` for standard map and set types.
//!
//! Hash-based containers have unspecified iteration order, so they are
//! encoded through sorted key order — the wire form of a map is a pure
//! function of its contents, which keeps cross-node message sizes and
//! deterministic-simulation traces stable.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

use crate::error::WireError;
use crate::reader::Reader;
use crate::wire::Wire;
use crate::writer::Writer;

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn wire_size(&self) -> usize {
        4 + self
            .iter()
            .map(|(k, v)| k.wire_size() + v.wire_size())
            .sum::<usize>()
    }
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Wire + Ord> Wire for BTreeSet<K> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(Wire::wire_size).sum::<usize>()
    }
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        for k in self {
            k.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(K::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Wire + Ord + Hash + Clone, V: Wire> Wire for HashMap<K, V> {
    fn wire_size(&self) -> usize {
        4 + self
            .iter()
            .map(|(k, v)| k.wire_size() + v.wire_size())
            .sum::<usize>()
    }
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        for k in keys {
            k.encode(w);
            self[k].encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let mut out = HashMap::with_capacity(len);
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Wire + Ord + Hash> Wire for HashSet<K> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(Wire::wire_size).sum::<usize>()
    }
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.len());
        let mut keys: Vec<&K> = self.iter().collect();
        keys.sort();
        for k in keys {
            k.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let mut out = HashSet::with_capacity(len);
        for _ in 0..len {
            out.insert(K::decode(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    #[test]
    fn btreemap_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "c".to_string());
        m.insert(1, "a".to_string());
        let got: BTreeMap<u32, String> = from_bytes(&to_bytes(&m)).unwrap();
        assert_eq!(got, m);
        assert_eq!(to_bytes(&m).len(), m.wire_size());
    }

    #[test]
    fn hashmap_encoding_is_order_independent() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..32u32 {
            a.insert(i, i * 2);
        }
        for i in (0..32u32).rev() {
            b.insert(i, i * 2);
        }
        assert_eq!(to_bytes(&a), to_bytes(&b), "canonical encoding");
        let got: HashMap<u32, u32> = from_bytes(&to_bytes(&a)).unwrap();
        assert_eq!(got, a);
    }

    #[test]
    fn sets_roundtrip() {
        let bs: BTreeSet<i16> = [-3, 9, 0].into_iter().collect();
        let got: BTreeSet<i16> = from_bytes(&to_bytes(&bs)).unwrap();
        assert_eq!(got, bs);

        let hs: HashSet<String> = ["x".to_string(), "yy".to_string()].into_iter().collect();
        let got: HashSet<String> = from_bytes(&to_bytes(&hs)).unwrap();
        assert_eq!(got, hs);
    }

    #[test]
    fn empty_maps() {
        let m: BTreeMap<u8, u8> = BTreeMap::new();
        assert_eq!(m.wire_size(), 4);
        let got: BTreeMap<u8, u8> = from_bytes(&to_bytes(&m)).unwrap();
        assert!(got.is_empty());
    }
}
