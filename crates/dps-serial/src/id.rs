//! Stable type identifiers — the factory half of the paper's `IDENTIFY`.

use crate::wire::Wire;

/// Version stamp embedded in every tagged value; lets mixed-version clusters
/// fail fast with [`WireError::VersionMismatch`](crate::WireError::VersionMismatch)
/// instead of silently misdecoding.
pub const WIRE_FORMAT_VERSION: u16 = 2;

/// Stable identifier of a wire type, derived from its registered name.
///
/// Computed with FNV-1a over the type *name* (not Rust's `TypeId`, which is
/// not stable across builds), so two independently compiled application
/// instances — the DPS scenario of one parallel program calling another —
/// agree on identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WireId(pub u64);

impl WireId {
    /// Identifier for a type registered under `name`.
    pub fn of_name(name: &str) -> Self {
        WireId(hash_name(name))
    }
}

/// FNV-1a 64-bit hash of a name. Deterministic across platforms and builds.
pub fn hash_name(name: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A wire type with a stable name and identifier — what the paper's
/// `IDENTIFY(ClassName)` macro declares.
///
/// Implemented via the [`identify!`](crate::identify) macro:
///
/// ```
/// use dps_serial::{impl_wire, identify, Identified, WireId};
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct StringToken { s: String }
/// impl_wire!(StringToken { s });
/// identify!(StringToken);
///
/// assert_eq!(StringToken::WIRE_NAME, "StringToken");
/// assert_eq!(StringToken::wire_id(), WireId::of_name("StringToken"));
/// ```
pub trait Identified: Wire {
    /// Registered name; defaults to the bare type name in `identify!`.
    const WIRE_NAME: &'static str;

    /// Stable identifier derived from [`Self::WIRE_NAME`].
    fn wire_id() -> WireId {
        WireId::of_name(Self::WIRE_NAME)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Known FNV-1a 64 results.
        assert_eq!(hash_name(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_name("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_name("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_names_distinct_ids() {
        assert_ne!(WireId::of_name("CharToken"), WireId::of_name("StringToken"));
    }

    #[test]
    fn id_is_stable() {
        let a = WireId::of_name("MatrixBlock");
        let b = WireId::of_name("MatrixBlock");
        assert_eq!(a, b);
    }
}
