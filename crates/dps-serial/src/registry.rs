//! Abstract factory: instantiate values from wire identifiers.

use std::collections::HashMap;

use crate::error::WireError;
use crate::id::{Identified, WireId, WIRE_FORMAT_VERSION};
use crate::reader::Reader;
use crate::wire::Wire;
use crate::writer::Writer;

/// Factory function reconstructing one boxed value of a registered type.
pub type DecodeFn<B> = fn(&mut Reader<'_>) -> Result<B, WireError>;

/// Registry mapping [`WireId`]s to decode factories — the paper's abstract
/// class factory that "instantiate\[s\] the data object during deserialization".
///
/// The boxed output type `B` is chosen by the embedding layer; `dps-core`
/// uses `Box<dyn Token>`. Registration is explicit (Rust has no static
/// constructors): each application registers its token types once at start-up,
/// mirroring how a DPS C++ binary contains its `IDENTIFY` factories.
pub struct Registry<B> {
    factories: HashMap<WireId, (&'static str, DecodeFn<B>)>,
}

impl<B> Default for Registry<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B> std::fmt::Debug for Registry<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.factories.values().map(|(n, _)| *n).collect();
        names.sort_unstable();
        f.debug_struct("Registry").field("types", &names).finish()
    }
}

impl<B> Registry<B> {
    /// Empty registry.
    pub fn new() -> Self {
        Self {
            factories: HashMap::new(),
        }
    }

    /// Register a factory for `id` under a human-readable `name`.
    ///
    /// Returns `false` (and keeps the existing entry) if `id` was already
    /// registered — re-registration of the same type is a no-op so shared
    /// set-up code can run repeatedly.
    pub fn register_raw(&mut self, id: WireId, name: &'static str, f: DecodeFn<B>) -> bool {
        use std::collections::hash_map::Entry;
        match self.factories.entry(id) {
            Entry::Occupied(e) => {
                let (existing, _) = e.get();
                assert_eq!(
                    *existing, name,
                    "wire id collision: {existing:?} vs {name:?} hash to the same WireId"
                );
                false
            }
            Entry::Vacant(e) => {
                e.insert((name, f));
                true
            }
        }
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// True if no types are registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }

    /// Whether `id` has a registered factory.
    pub fn contains(&self, id: WireId) -> bool {
        self.factories.contains_key(&id)
    }

    /// Registered name for `id`, if any.
    pub fn name_of(&self, id: WireId) -> Option<&'static str> {
        self.factories.get(&id).map(|(n, _)| *n)
    }

    /// Decode one *tagged* value: `[wire id: u64][version: u16][payload]`.
    ///
    /// This is the receive path of a DPS kernel: look up the announced type,
    /// check the format version, and invoke the factory.
    pub fn decode_tagged(&self, r: &mut Reader<'_>) -> Result<B, WireError> {
        let id = WireId(r.get_u64()?);
        let version = r.get_u16()?;
        if version != WIRE_FORMAT_VERSION {
            return Err(WireError::VersionMismatch {
                expected: WIRE_FORMAT_VERSION,
                found: version,
            });
        }
        let (_, f) = self
            .factories
            .get(&id)
            .ok_or(WireError::UnknownTypeId(id))?;
        f(r)
    }
}

/// Encode one tagged value: `[wire id][version][payload]`. The inverse of
/// [`Registry::decode_tagged`].
pub fn encode_tagged<T: Identified>(value: &T, w: &mut Writer) {
    w.put_u64(T::wire_id().0);
    w.put_u16(WIRE_FORMAT_VERSION);
    value.encode(w);
}

/// Wire size of a value once tagged (id + version + payload).
pub fn tagged_size<T>(value: &T) -> usize
where
    T: Identified + Wire + ?Sized,
{
    8 + 2 + value.wire_size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{identify, impl_wire};

    #[derive(Debug, Clone, PartialEq)]
    struct Ping {
        seq: u32,
    }
    impl_wire!(Ping { seq });
    identify!(Ping);

    #[derive(Debug, Clone, PartialEq)]
    struct Pong {
        seq: u32,
    }
    impl_wire!(Pong { seq });
    identify!(Pong);

    #[derive(Debug, PartialEq)]
    enum AnyMsg {
        Ping(Ping),
        Pong(Pong),
    }

    fn registry() -> Registry<AnyMsg> {
        let mut reg = Registry::new();
        reg.register_raw(Ping::wire_id(), Ping::WIRE_NAME, |r| {
            Ok(AnyMsg::Ping(Ping::decode(r)?))
        });
        reg.register_raw(Pong::wire_id(), Pong::WIRE_NAME, |r| {
            Ok(AnyMsg::Pong(Pong::decode(r)?))
        });
        reg
    }

    #[test]
    fn tagged_roundtrip_dispatches_on_type() {
        let reg = registry();
        let mut w = Writer::new();
        encode_tagged(&Ping { seq: 1 }, &mut w);
        encode_tagged(&Pong { seq: 2 }, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            reg.decode_tagged(&mut r).unwrap(),
            AnyMsg::Ping(Ping { seq: 1 })
        );
        assert_eq!(
            reg.decode_tagged(&mut r).unwrap(),
            AnyMsg::Pong(Pong { seq: 2 })
        );
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn unknown_id_rejected() {
        let reg: Registry<AnyMsg> = Registry::new();
        let mut w = Writer::new();
        encode_tagged(&Ping { seq: 1 }, &mut w);
        let bytes = w.into_bytes();
        let err = reg.decode_tagged(&mut Reader::new(&bytes)).unwrap_err();
        assert_eq!(err, WireError::UnknownTypeId(Ping::wire_id()));
    }

    #[test]
    fn version_mismatch_rejected() {
        let reg = registry();
        let mut w = Writer::new();
        w.put_u64(Ping::wire_id().0);
        w.put_u16(WIRE_FORMAT_VERSION + 1);
        w.put_u32(5);
        let bytes = w.into_bytes();
        let err = reg.decode_tagged(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, WireError::VersionMismatch { .. }));
    }

    #[test]
    fn duplicate_registration_is_noop() {
        let mut reg = registry();
        let fresh = reg.register_raw(Ping::wire_id(), Ping::WIRE_NAME, |r| {
            Ok(AnyMsg::Ping(Ping::decode(r)?))
        });
        assert!(!fresh);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn tagged_size_matches() {
        let p = Ping { seq: 9 };
        let mut w = Writer::new();
        encode_tagged(&p, &mut w);
        assert_eq!(w.len(), tagged_size(&p));
    }

    #[test]
    fn debug_lists_names() {
        let reg = registry();
        let dbg = format!("{reg:?}");
        assert!(dbg.contains("Ping") && dbg.contains("Pong"));
    }
}
