//! Error type for wire encoding and decoding.

use std::fmt;

use crate::id::WireId;

/// Errors produced while decoding DPS wire data.
///
/// Encoding is infallible (the [`Writer`](crate::Writer) grows as needed);
/// all failure modes are on the decode side, where the bytes may come from a
/// remote, differently-versioned, or simply corrupted peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes while `needed` more were required.
    UnexpectedEof {
        /// Bytes still required by the decoder.
        needed: usize,
        /// Bytes actually remaining in the buffer.
        remaining: usize,
    },
    /// A length prefix exceeded the sanity limit, indicating corruption.
    LengthOverflow {
        /// The decoded (implausible) length.
        len: u64,
    },
    /// A `bool` byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A `char` was not a valid Unicode scalar value.
    InvalidChar(u32),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant did not match any known variant.
    InvalidDiscriminant {
        /// Name of the enum type being decoded.
        type_name: &'static str,
        /// The unknown discriminant value.
        value: u32,
    },
    /// A tagged value announced a [`WireId`] unknown to the registry.
    UnknownTypeId(WireId),
    /// A tagged value was encoded with an incompatible format version.
    VersionMismatch {
        /// Version expected by this build.
        expected: u16,
        /// Version found in the byte stream.
        found: u16,
    },
    /// Decoding succeeded but left unconsumed bytes where none were expected.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of wire data: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::LengthOverflow { len } => {
                write!(f, "implausible length prefix {len} (corrupted stream?)")
            }
            WireError::InvalidBool(b) => write!(f, "invalid bool byte {b:#x}"),
            WireError::InvalidChar(c) => write!(f, "invalid char scalar {c:#x}"),
            WireError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::InvalidDiscriminant { type_name, value } => {
                write!(f, "invalid discriminant {value} for enum {type_name}")
            }
            WireError::UnknownTypeId(id) => {
                write!(f, "wire id {id:?} is not registered in the type registry")
            }
            WireError::VersionMismatch { expected, found } => write!(
                f,
                "wire format version mismatch: expected {expected}, found {found}"
            ),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::UnexpectedEof {
            needed: 8,
            remaining: 3,
        };
        let s = e.to_string();
        assert!(s.contains("needed 8"));
        assert!(s.contains("3 remaining"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(WireError::InvalidUtf8);
        assert!(e.to_string().contains("UTF-8"));
    }
}
