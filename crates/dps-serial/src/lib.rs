//! # dps-serial — serialization substrate for DPS data objects
//!
//! The DPS paper (§3 *Expressing data objects*) lets application developers
//! declare plain C++ classes and obtain serialization, deserialization and an
//! abstract class factory "for free" through the `IDENTIFY` macro and the
//! `Buffer`/`Vector`/`CT` container templates. This crate is the Rust
//! equivalent:
//!
//! * [`Wire`] — the serialization trait (size / encode / decode), implemented
//!   for primitives, tuples, arrays, `String`, `Option`, `Vec`, `Box`.
//! * [`Writer`] / [`Reader`] — byte-stream cursors (little-endian, fixed
//!   width) built on the `bytes` crate.
//! * [`Buffer`] — variable-size array of *simple* (plain-old-data) elements,
//!   bulk-copied on the wire (the paper's `Buffer<int>`).
//! * [`Vector`] — variable-size array of *complex* (nested `Wire`) elements
//!   (the paper's `Vector<Something>`).
//! * [`CT`] — transparent wrapper marking a simple type embedded in a complex
//!   data object (the paper's `CT<int>`); in Rust it is a zero-cost newtype
//!   kept for fidelity with the published API.
//! * [`WireId`] / [`Identified`] / [`Registry`] — stable type identifiers and
//!   the abstract factory used to instantiate objects during deserialization
//!   (the paper cites the *Design Patterns* factory, ref.\ \[23\]).
//! * [`impl_wire!`](crate::impl_wire) / [`impl_wire_enum!`](crate::impl_wire_enum)
//!   / [`identify!`](crate::identify) — macros replacing the C++ `IDENTIFY`
//!   macro, so a data object is declared once with no redundant field lists.
//!
//! The format is deliberately simple and deterministic: little-endian fixed
//! width integers, `u32` lengths, UTF-8 strings. Every *tagged* value starts
//! with its [`WireId`] and a format version so a receiving node can
//! instantiate the right concrete type via its [`Registry`].
//!
//! ```
//! use dps_serial::{impl_wire, identify, Wire, Writer, Reader};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! struct CharToken { chr: u8, pos: u32 }
//! impl_wire!(CharToken { chr, pos });
//! identify!(CharToken);
//!
//! let tok = CharToken { chr: b'a', pos: 7 };
//! let mut w = Writer::new();
//! tok.encode(&mut w);
//! let bytes = w.into_bytes();
//! let got = CharToken::decode(&mut Reader::new(&bytes)).unwrap();
//! assert_eq!(got, tok);
//! ```

mod containers;
mod error;
mod id;
mod macros;
mod maps;
mod pod;
mod reader;
mod registry;
mod wire;
mod writer;

pub use containers::{Buffer, Vector, CT};
pub use error::WireError;
pub use id::{hash_name, Identified, WireId, WIRE_FORMAT_VERSION};
pub use pod::Pod;
pub use reader::Reader;
pub use registry::{encode_tagged, tagged_size, DecodeFn, Registry};
pub use wire::Wire;
pub use writer::Writer;

/// Serialize any [`Wire`] value to a fresh byte vector.
///
/// Convenience for tests and one-shot messaging; hot paths should reuse a
/// [`Writer`].
pub fn to_bytes<T: Wire + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = Writer::with_capacity(value.wire_size());
    value.encode(&mut w);
    w.into_bytes()
}

/// Deserialize a [`Wire`] value from a byte slice, requiring that the whole
/// slice is consumed.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_helpers() {
        let v: Vec<u32> = vec![1, 2, 3, 0xdead_beef];
        let bytes = to_bytes(&v);
        let got: Vec<u32> = from_bytes(&bytes).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = to_bytes(&42u32);
        bytes.push(0xff);
        let err = from_bytes::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::TrailingBytes { remaining: 1 }));
    }
}
