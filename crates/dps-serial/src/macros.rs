//! Declaration macros replacing the C++ `IDENTIFY` machinery.

/// Implement [`Wire`](crate::Wire) for a struct by listing its fields once.
///
/// The C++ DPS library walks data-object fields "with pointer arithmetic" so
/// no redundant declarations are needed; in Rust the single field list in
/// `impl_wire!` plays that role. Every field must itself implement `Wire`.
///
/// ```
/// use dps_serial::{impl_wire, Buffer, Wire};
///
/// #[derive(Debug, Clone, PartialEq, Default)]
/// struct FramePart {
///     frame: u64,
///     part: u32,
///     pixels: Buffer<u8>,
/// }
/// impl_wire!(FramePart { frame, part, pixels });
///
/// let fp = FramePart { frame: 3, part: 1, pixels: vec![1, 2, 3].into() };
/// assert_eq!(fp.wire_size(), 8 + 4 + (4 + 3));
/// ```
///
/// Unit structs are supported with `impl_wire!(Marker {});`.
#[macro_export]
macro_rules! impl_wire {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Wire for $ty {
            fn wire_size(&self) -> usize {
                0usize $(+ $crate::Wire::wire_size(&self.$field))*
            }
            fn encode(&self, w: &mut $crate::Writer) {
                $( $crate::Wire::encode(&self.$field, w); )*
                let _ = w; // silence unused for field-less structs
            }
            fn decode(r: &mut $crate::Reader<'_>) -> ::core::result::Result<Self, $crate::WireError> {
                let _ = &r; // silence unused for field-less structs
                Ok(Self {
                    $( $field: $crate::Wire::decode(r)?, )*
                })
            }
        }
    };
}

/// Implement [`Wire`](crate::Wire) for an enum with struct- or unit-like
/// variants, using an explicit `u32` discriminant per variant.
///
/// ```
/// use dps_serial::{impl_wire_enum, Wire};
///
/// #[derive(Debug, Clone, PartialEq)]
/// enum Command {
///     Start { node: u32 },
///     Stop,
///     Resize { w: u16, h: u16 },
/// }
/// impl_wire_enum!(Command {
///     0 => Start { node },
///     1 => Stop { },
///     2 => Resize { w, h },
/// });
///
/// let c = Command::Resize { w: 4, h: 2 };
/// let bytes = dps_serial::to_bytes(&c);
/// assert_eq!(dps_serial::from_bytes::<Command>(&bytes).unwrap(), c);
/// ```
#[macro_export]
macro_rules! impl_wire_enum {
    ($ty:ident { $($disc:literal => $variant:ident { $($field:ident),* $(,)? }),* $(,)? }) => {
        impl $crate::Wire for $ty {
            fn wire_size(&self) -> usize {
                match self {
                    $( $ty::$variant { $($field),* } => {
                        4usize $(+ $crate::Wire::wire_size($field))*
                    } )*
                }
            }
            fn encode(&self, w: &mut $crate::Writer) {
                match self {
                    $( $ty::$variant { $($field),* } => {
                        w.put_u32($disc);
                        $( $crate::Wire::encode($field, w); )*
                    } )*
                }
            }
            fn decode(r: &mut $crate::Reader<'_>) -> ::core::result::Result<Self, $crate::WireError> {
                match r.get_u32()? {
                    $( $disc => Ok($ty::$variant {
                        $( $field: $crate::Wire::decode(r)?, )*
                    }), )*
                    value => Err($crate::WireError::InvalidDiscriminant {
                        type_name: stringify!($ty),
                        value,
                    }),
                }
            }
        }
    };
}

/// Give a wire type a stable name and identifier — the paper's
/// `IDENTIFY(ClassName)`.
///
/// `identify!(Foo)` registers the bare name; `identify!(Foo, "my.app.Foo")`
/// chooses an explicit registered name (useful to avoid collisions between
/// applications sharing a cluster).
#[macro_export]
macro_rules! identify {
    ($ty:ident) => {
        impl $crate::Identified for $ty {
            const WIRE_NAME: &'static str = stringify!($ty);
        }
    };
    ($ty:ident, $name:literal) => {
        impl $crate::Identified for $ty {
            const WIRE_NAME: &'static str = $name;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::{from_bytes, to_bytes, Buffer, Identified, Vector, Wire, WireId, CT};

    #[derive(Debug, Clone, PartialEq, Default)]
    struct Complex {
        id: CT<i32>,
        name: String,
        children: Vector<Child>,
        a_buffer: Buffer<i32>,
    }

    #[derive(Debug, Clone, PartialEq, Default)]
    struct Child {
        tag: u8,
    }

    impl_wire!(Child { tag });
    impl_wire!(Complex {
        id,
        name,
        children,
        a_buffer
    });
    identify!(Complex, "tests.Complex");

    #[derive(Debug, Clone, PartialEq)]
    struct Empty {}
    impl_wire!(Empty {});

    #[test]
    fn paper_complex_token_shape_roundtrips() {
        // Mirrors the paper's MyComplexToken: CT<int>, string, Vector, Buffer.
        let v = Complex {
            id: 7.into(),
            name: "token".into(),
            children: vec![Child { tag: 1 }, Child { tag: 2 }].into(),
            a_buffer: vec![10, 20, 30].into(),
        };
        let got: Complex = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn explicit_name_is_used() {
        assert_eq!(Complex::WIRE_NAME, "tests.Complex");
        assert_eq!(Complex::wire_id(), WireId::of_name("tests.Complex"));
    }

    #[test]
    fn empty_struct_is_zero_bytes() {
        let e = Empty {};
        assert_eq!(e.wire_size(), 0);
        let got: Empty = from_bytes(&to_bytes(&e)).unwrap();
        assert_eq!(got, e);
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        A { x: u32 },
        B,
        C { s: String, f: f64 },
    }
    impl_wire_enum!(Msg {
        0 => A { x },
        1 => B { },
        2 => C { s, f },
    });

    #[test]
    fn enum_variants_roundtrip() {
        for v in [
            Msg::A { x: 5 },
            Msg::B,
            Msg::C {
                s: "hi".into(),
                f: 2.5,
            },
        ] {
            let got: Msg = from_bytes(&to_bytes(&v)).unwrap();
            assert_eq!(got, v);
        }
    }

    #[test]
    fn enum_bad_discriminant_rejected() {
        let bytes = 99u32.to_le_bytes();
        let err = from_bytes::<Msg>(&bytes).unwrap_err();
        assert!(matches!(
            err,
            crate::WireError::InvalidDiscriminant {
                type_name: "Msg",
                value: 99
            }
        ));
    }

    #[test]
    fn enum_size_matches_encoding() {
        let v = Msg::C {
            s: "abc".into(),
            f: 1.0,
        };
        assert_eq!(to_bytes(&v).len(), v.wire_size());
    }
}
