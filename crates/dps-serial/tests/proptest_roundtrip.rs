//! Property tests: wire round-trip holds for arbitrary values, and decoding
//! arbitrary garbage never panics.

use dps_serial::{from_bytes, identify, impl_wire, to_bytes, Buffer, Vector, Wire, CT};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq, Default)]
struct Nested {
    tag: u16,
    label: String,
    data: Buffer<i64>,
}
impl_wire!(Nested { tag, label, data });
identify!(Nested);

#[derive(Debug, Clone, PartialEq, Default)]
struct Outer {
    id: CT<u64>,
    flag: bool,
    items: Vector<Nested>,
    opt: Option<String>,
    raw: Buffer<u8>,
}
impl_wire!(Outer {
    id,
    flag,
    items,
    opt,
    raw
});
identify!(Outer);

fn arb_nested() -> impl Strategy<Value = Nested> {
    (
        any::<u16>(),
        ".{0,16}",
        proptest::collection::vec(any::<i64>(), 0..8),
    )
        .prop_map(|(tag, label, data)| Nested {
            tag,
            label,
            data: data.into(),
        })
}

fn arb_outer() -> impl Strategy<Value = Outer> {
    (
        any::<u64>(),
        any::<bool>(),
        proptest::collection::vec(arb_nested(), 0..5),
        proptest::option::of(".{0,8}"),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(id, flag, items, opt, raw)| Outer {
            id: id.into(),
            flag,
            items: items.into(),
            opt,
            raw: raw.into(),
        })
}

proptest! {
    #[test]
    fn roundtrip_primitives(v in any::<(u8, i32, u64, f32, bool)>()) {
        let bytes = to_bytes(&v);
        prop_assert_eq!(bytes.len(), v.wire_size());
        let got: (u8, i32, u64, f32, bool) = from_bytes(&bytes).unwrap();
        // f32 NaN compares unequal; compare bit patterns instead.
        prop_assert_eq!(got.0, v.0);
        prop_assert_eq!(got.1, v.1);
        prop_assert_eq!(got.2, v.2);
        prop_assert_eq!(got.3.to_bits(), v.3.to_bits());
        prop_assert_eq!(got.4, v.4);
    }

    #[test]
    fn roundtrip_strings(s in ".{0,256}") {
        let bytes = to_bytes(&s);
        prop_assert_eq!(bytes.len(), s.wire_size());
        let got: String = from_bytes(&bytes).unwrap();
        prop_assert_eq!(got, s);
    }

    #[test]
    fn roundtrip_nested_structs(v in arb_outer()) {
        let bytes = to_bytes(&v);
        prop_assert_eq!(bytes.len(), v.wire_size());
        let got: Outer = from_bytes(&bytes).unwrap();
        prop_assert_eq!(got, v);
    }

    #[test]
    fn roundtrip_buffers(v in proptest::collection::vec(any::<f64>(), 0..128)) {
        let buf: Buffer<f64> = v.into();
        let bytes = to_bytes(&buf);
        let got: Buffer<f64> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(got.len(), buf.len());
        for (a, b) in got.iter().zip(buf.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn decoding_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Result is allowed to be Ok (garbage may be valid) — the property is
        // "no panic, no absurd allocation".
        let _ = from_bytes::<Outer>(&bytes);
        let _ = from_bytes::<Vec<String>>(&bytes);
        let _ = from_bytes::<Nested>(&bytes);
    }

    #[test]
    fn truncation_yields_error_not_panic(v in arb_outer(), cut in 0usize..32) {
        let bytes = to_bytes(&v);
        if cut < bytes.len() {
            let trunc = &bytes[..bytes.len() - 1 - cut];
            let r = from_bytes::<Outer>(trunc);
            prop_assert!(r.is_err());
        }
    }
}
