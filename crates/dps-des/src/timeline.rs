//! Reservation-based resources for flows whose durations are known at
//! request time (network interface directions, disk arms).

use crate::time::{SimSpan, SimTime};

/// A single-lane FIFO pipe: each reservation starts when the previous one
/// ends. Models one direction of a network interface or a disk arm.
///
/// Reservations must be issued in nondecreasing `now` order (the event loop
/// guarantees this naturally); each returns the `(start, end)` window.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    free_at: SimTime,
    busy_accum: SimSpan,
    reservations: u64,
}

impl Timeline {
    /// A timeline free from t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the lane for `span`, no earlier than `now`.
    pub fn reserve(&mut self, now: SimTime, span: SimSpan) -> (SimTime, SimTime) {
        let start = now.max(self.free_at);
        let end = start + span;
        self.free_at = end;
        self.busy_accum += span;
        self.reservations += 1;
        (start, end)
    }

    /// Instant at which the lane becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total reserved time.
    pub fn busy_total(&self) -> SimSpan {
        self.busy_accum
    }

    /// Number of reservations made.
    pub fn reservations(&self) -> u64 {
        self.reservations
    }
}

/// A k-lane reservation resource; each reservation takes the earliest
/// available lane. Models a striped disk array or a multi-port switch.
#[derive(Debug, Clone)]
pub struct MultiTimeline {
    lanes: Vec<Timeline>,
}

impl MultiTimeline {
    /// Create `lanes` parallel lanes.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        Self {
            lanes: vec![Timeline::new(); lanes],
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Reserve `span` on the earliest-free lane; returns
    /// `(lane, start, end)`. Ties pick the lowest-index lane, keeping runs
    /// deterministic.
    pub fn reserve(&mut self, now: SimTime, span: SimSpan) -> (usize, SimTime, SimTime) {
        let lane = self
            .lanes
            .iter()
            .enumerate()
            .min_by_key(|(i, l)| (l.free_at(), *i))
            .map(|(i, _)| i)
            .expect("at least one lane");
        let (start, end) = self.lanes[lane].reserve(now, span);
        (lane, start, end)
    }

    /// Reserve on a specific lane (e.g. a particular disk in a stripe set).
    pub fn reserve_on(&mut self, lane: usize, now: SimTime, span: SimSpan) -> (SimTime, SimTime) {
        self.lanes[lane].reserve(now, span)
    }

    /// Per-lane view.
    pub fn lane(&self, i: usize) -> &Timeline {
        &self.lanes[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reservations_queue() {
        let mut t = Timeline::new();
        let (s1, e1) = t.reserve(SimTime(0), SimSpan::from_nanos(10));
        let (s2, e2) = t.reserve(SimTime(0), SimSpan::from_nanos(5));
        assert_eq!((s1, e1), (SimTime(0), SimTime(10)));
        assert_eq!((s2, e2), (SimTime(10), SimTime(15)));
        assert_eq!(t.busy_total(), SimSpan::from_nanos(15));
        assert_eq!(t.reservations(), 2);
    }

    #[test]
    fn idle_gap_is_skipped() {
        let mut t = Timeline::new();
        t.reserve(SimTime(0), SimSpan::from_nanos(10));
        let (s, e) = t.reserve(SimTime(100), SimSpan::from_nanos(10));
        assert_eq!((s, e), (SimTime(100), SimTime(110)));
    }

    #[test]
    fn multi_picks_earliest_lane() {
        let mut m = MultiTimeline::new(2);
        let (l1, ..) = m.reserve(SimTime(0), SimSpan::from_nanos(10));
        let (l2, ..) = m.reserve(SimTime(0), SimSpan::from_nanos(4));
        assert_eq!((l1, l2), (0, 1));
        // Lane 1 frees at t=4, so the next reservation lands there.
        let (l3, s3, _) = m.reserve(SimTime(0), SimSpan::from_nanos(1));
        assert_eq!(l3, 1);
        assert_eq!(s3, SimTime(4));
    }

    #[test]
    fn reserve_on_targets_lane() {
        let mut m = MultiTimeline::new(3);
        let (s, e) = m.reserve_on(2, SimTime(5), SimSpan::from_nanos(7));
        assert_eq!((s, e), (SimTime(5), SimTime(12)));
        assert_eq!(m.lane(2).reservations(), 1);
        assert_eq!(m.lane(0).reservations(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        MultiTimeline::new(0);
    }
}
