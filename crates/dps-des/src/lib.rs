//! # dps-des — deterministic discrete-event simulation engine
//!
//! The DPS paper evaluated its runtime on a cluster of eight bi-Pentium-III
//! nodes with Gigabit Ethernet. To reproduce the paper's multi-node timing
//! experiments on a single machine, the DPS runtime semantics are executed in
//! **virtual time** on this engine: operations occupy virtual CPUs, token
//! transfers occupy virtual network interfaces, and the event loop advances a
//! simulated clock deterministically.
//!
//! Contents:
//!
//! * [`SimTime`] / [`SimSpan`] — integer-nanosecond instants and durations
//!   (floating-point clocks are not associative and would break determinism).
//! * [`Sim`] — the event loop: a priority queue of `(time, seq)`-ordered
//!   events holding closures over a user *world* type; ties fire in
//!   scheduling order, so identical inputs produce identical traces.
//! * [`Pool`] — a k-server resource with FIFO queueing and continuation
//!   callbacks (virtual CPUs of a cluster node).
//! * [`Timeline`] / [`MultiTimeline`] — reservation-based resources for flows
//!   whose durations are known at request time (NIC directions, disk arms).
//! * [`SplitMix64`] — a tiny deterministic RNG for workload generation inside
//!   simulations (seeded, stream-splittable).
//! * [`stats`] — counters and time-weighted statistics used by the harness.
//!
//! The engine is deliberately single-threaded: determinism is the property
//! the experiment harness relies on (`same seed ⇒ identical virtual-time
//! results`), and all *real* parallelism lives in `dps-mt`.

mod pool;
mod rng;
mod sim;
pub mod stats;
mod time;
mod timeline;

pub use pool::{Pool, PoolId};
pub use rng::SplitMix64;
pub use sim::{EventId, RunLimit, RunStats, Sim};
pub use time::{SimSpan, SimTime};
pub use timeline::{MultiTimeline, Timeline};
