//! The event loop.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::pool::PoolTable;
use crate::time::{SimSpan, SimTime};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub(crate) u64);

/// Callback type for events: full access to the simulation (world + clock +
/// scheduler), so handlers can mutate state and schedule follow-up events.
type EventFn<S> = Box<dyn FnOnce(&mut Sim<S>)>;

/// Tie-break key generator: maps an event's scheduling sequence number to
/// the key that orders it against other events at the *same instant*.
/// Identity (the default) preserves FIFO ties; a seeded permutation turns
/// every same-time tie into a deterministic interleaving choice.
type TieBreakFn = Box<dyn FnMut(u64) -> u64>;

struct Entry<S> {
    at: SimTime,
    key: u64,
    seq: u64,
    id: EventId,
    f: EventFn<S>,
}

// Ordering for the max-heap wrapped in Reverse: earliest (time, key, seq)
// first. `key == seq` unless a tie-break hook is installed, so the default
// order is pure scheduling order.
impl<S> PartialEq for Entry<S> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.key, self.seq) == (other.at, other.key, other.seq)
    }
}
impl<S> Eq for Entry<S> {}
impl<S> PartialOrd for Entry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Entry<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.key, self.seq).cmp(&(other.at, other.key, other.seq))
    }
}

/// Bound on a [`Sim::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLimit {
    /// Run until no events remain.
    UntilIdle,
    /// Run until the clock would pass the given instant; events at exactly
    /// the instant still fire.
    UntilTime(SimTime),
    /// Fire at most this many events.
    MaxEvents(u64),
}

/// Summary of a [`Sim::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of events fired.
    pub events: u64,
    /// Clock value when the run stopped.
    pub end_time: SimTime,
    /// True if the run stopped because the event queue drained.
    pub idle: bool,
}

/// A deterministic discrete-event simulation over a user-defined world `S`.
///
/// Events are closures `FnOnce(&mut Sim<S>)` ordered by `(time, seq)` where
/// `seq` is the scheduling order — two events at the same instant fire in the
/// order they were scheduled, making runs exactly reproducible.
///
/// ```
/// use dps_des::{Sim, SimSpan};
///
/// let mut sim = Sim::new(Vec::<u32>::new());
/// sim.schedule_in(SimSpan::from_millis(2), |s| s.world.push(2));
/// sim.schedule_in(SimSpan::from_millis(1), |s| {
///     s.world.push(1);
///     // events may schedule more events
///     s.schedule_in(SimSpan::from_millis(5), |s| s.world.push(3));
/// });
/// let stats = sim.run();
/// assert_eq!(sim.world, vec![1, 2, 3]);
/// assert_eq!(stats.events, 3);
/// assert_eq!(stats.end_time.as_nanos(), 6_000_000);
/// ```
pub struct Sim<S> {
    /// The user world: all model state lives here.
    pub world: S,
    now: SimTime,
    next_seq: u64,
    next_event: u64,
    heap: BinaryHeap<Reverse<Entry<S>>>,
    cancelled: HashSet<EventId>,
    tie_break: Option<TieBreakFn>,
    pub(crate) pools: PoolTable<S>,
}

impl<S> Sim<S> {
    /// Create a simulation at time zero owning `world`.
    pub fn new(world: S) -> Self {
        Self {
            world,
            now: SimTime::ZERO,
            next_seq: 0,
            next_event: 0,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            tie_break: None,
            pools: PoolTable::new(),
        }
    }

    /// Install a tie-break ordering hook: for every scheduled event the hook
    /// maps its sequence number to the key that orders it among events at
    /// the **same instant** (the full order is `(time, key, seq)`). Events
    /// at different times are unaffected, so causality holds; events already
    /// in the heap keep their keys. Since the hook sees only the scheduling
    /// sequence, a pure function of a seed makes the perturbed order exactly
    /// reproducible — the simulation-testing harness uses this to explore
    /// delivery interleavings without giving up replay.
    pub fn set_tie_break(&mut self, f: impl FnMut(u64) -> u64 + 'static) {
        self.tie_break = Some(Box::new(f));
    }

    /// Remove the tie-break hook: subsequent ties fire in scheduling order.
    pub fn clear_tie_break(&mut self) {
        self.tie_break = None;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Schedule `f` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — causality violations are always bugs
    /// in the model, never recoverable conditions.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim<S>) + 'static) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let id = EventId(self.next_event);
        self.next_event += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = match &mut self.tie_break {
            Some(hook) => hook(seq),
            None => seq,
        };
        self.heap.push(Reverse(Entry {
            at,
            key,
            seq,
            id,
            f: Box::new(f),
        }));
        id
    }

    /// Schedule `f` after a delay of `d`.
    pub fn schedule_in(&mut self, d: SimSpan, f: impl FnOnce(&mut Sim<S>) + 'static) -> EventId {
        self.schedule_at(self.now + d, f)
    }

    /// Cancel a pending event. Returns `true` if the event had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_event {
            return false;
        }
        // Lazy cancellation: the heap entry stays and is skipped at pop time.
        self.cancelled.insert(id)
    }

    /// Fire the single next event. Returns `false` if the queue is empty.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(Reverse(entry)) = self.heap.pop() else {
                return false;
            };
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "heap returned an event in the past");
            self.now = entry.at;
            (entry.f)(self);
            return true;
        }
    }

    /// Time of the next pending event, if any, without firing it.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        loop {
            let Reverse(entry) = self.heap.peek()?;
            if self.cancelled.contains(&entry.id) {
                let Reverse(e) = self.heap.pop().unwrap();
                self.cancelled.remove(&e.id);
                continue;
            }
            return Some(entry.at);
        }
    }

    /// Run until the event queue drains; returns run statistics.
    pub fn run(&mut self) -> RunStats {
        self.run_limited(RunLimit::UntilIdle)
    }

    /// Run under an explicit limit.
    pub fn run_limited(&mut self, limit: RunLimit) -> RunStats {
        let mut stats = RunStats::default();
        loop {
            match limit {
                RunLimit::UntilIdle => {}
                RunLimit::UntilTime(t) => {
                    match self.peek_next_time() {
                        Some(next) if next <= t => {}
                        _ => break,
                    };
                }
                RunLimit::MaxEvents(n) => {
                    if stats.events >= n {
                        break;
                    }
                }
            }
            if !self.step() {
                stats.idle = true;
                break;
            }
            stats.events += 1;
        }
        stats.end_time = self.now;
        if self.pending() == 0 {
            stats.idle = true;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_at(SimTime(30), |s| s.world.push(3));
        sim.schedule_at(SimTime(10), |s| s.world.push(1));
        sim.schedule_at(SimTime(20), |s| s.world.push(2));
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim = Sim::new(Vec::new());
        for i in 0..100 {
            sim.schedule_at(SimTime(5), move |s| s.world.push(i));
        }
        sim.run();
        assert_eq!(sim.world, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn tie_break_hook_permutes_same_time_events_deterministically() {
        use crate::SplitMix64;
        let run = |seed: u64| {
            let mut sim = Sim::new(Vec::new());
            let mut rng = SplitMix64::new(seed);
            sim.set_tie_break(move |seq| rng.next_u64() ^ seq);
            for i in 0..100 {
                sim.schedule_at(SimTime(5), move |s| s.world.push(i));
            }
            // Different instants still fire in time order regardless of keys.
            sim.schedule_at(SimTime(1), |s| s.world.push(-1));
            sim.run();
            sim.world
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed must replay the same interleaving");
        assert_ne!(
            a,
            run(43),
            "a different seed should find a different tie order"
        );
        assert_eq!(a[0], -1, "the earlier event fires first under any keys");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (-1..100).collect::<Vec<_>>(),
            "a permutation, no loss"
        );
    }

    #[test]
    fn cancellation_skips_event() {
        let mut sim = Sim::new(0u32);
        let a = sim.schedule_at(SimTime(1), |s| s.world += 1);
        sim.schedule_at(SimTime(2), |s| s.world += 10);
        assert!(sim.cancel(a));
        assert!(!sim.cancel(a), "double-cancel reports false");
        let stats = sim.run();
        assert_eq!(sim.world, 10);
        assert_eq!(stats.events, 1);
    }

    #[test]
    fn run_until_time_stops_clock() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_at(SimTime(10), |s| s.world.push(1));
        sim.schedule_at(SimTime(20), |s| s.world.push(2));
        sim.schedule_at(SimTime(30), |s| s.world.push(3));
        let stats = sim.run_limited(RunLimit::UntilTime(SimTime(20)));
        assert_eq!(sim.world, vec![1, 2]);
        assert!(!stats.idle);
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3]);
    }

    #[test]
    fn max_events_limit() {
        let mut sim = Sim::new(0u64);
        for i in 0..10 {
            sim.schedule_at(SimTime(i), |s| s.world += 1);
        }
        let stats = sim.run_limited(RunLimit::MaxEvents(4));
        assert_eq!(stats.events, 4);
        assert_eq!(sim.world, 4);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut sim = Sim::new(());
        sim.schedule_at(SimTime(10), |s| {
            s.schedule_at(SimTime(5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn nested_scheduling_advances_clock() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_in(SimSpan::from_nanos(5), |s| {
            let now = s.now();
            s.world.push(now.as_nanos());
            s.schedule_in(SimSpan::from_nanos(7), |s| {
                let now = s.now();
                s.world.push(now.as_nanos());
            });
        });
        let stats = sim.run();
        assert_eq!(sim.world, vec![5, 12]);
        assert_eq!(stats.end_time, SimTime(12));
        assert!(stats.idle);
    }

    #[test]
    fn determinism_same_schedule_same_trace() {
        fn build() -> Vec<u64> {
            let mut sim = Sim::new(Vec::new());
            for i in (0..50).rev() {
                sim.schedule_at(SimTime(i % 7), move |s| {
                    s.world.push(i);
                });
            }
            sim.run();
            sim.world
        }
        assert_eq!(build(), build());
    }
}
