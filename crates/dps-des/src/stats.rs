//! Statistics collectors for simulation experiments.

use crate::time::{SimSpan, SimTime};

/// Streaming mean / variance / extrema (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty collector.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Median and percentiles over a bounded sample buffer.
///
/// Table 2 of the paper reports *median* call times; this collector keeps
/// all samples (experiments are finite) and sorts on demand.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.values.push(x);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// q-th percentile (0 ≤ q ≤ 100) by nearest-rank; `None` if empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let rank = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Arithmetic mean; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }
}

/// Time-weighted average of a piecewise-constant quantity (queue length,
/// tokens in flight). Integrates `value · dt` between updates.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial `value`.
    pub fn new(t0: SimTime, value: f64) -> Self {
        Self {
            last_time: t0,
            last_value: value,
            integral: 0.0,
            peak: value,
        }
    }

    /// Record that the quantity changed to `value` at time `now`.
    pub fn update(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_time).as_secs_f64();
        self.integral += self.last_value * dt;
        self.last_time = now;
        self.last_value = value;
        self.peak = self.peak.max(value);
    }

    /// Time-weighted average over `[t0, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let dt = now.since(self.last_time).as_secs_f64();
        let total = self.integral + self.last_value * dt;
        let elapsed = now.as_secs_f64();
        if elapsed <= 0.0 {
            self.last_value
        } else {
            total / elapsed
        }
    }

    /// Largest value ever recorded.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

/// Bytes-over-time throughput meter.
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    bytes: u64,
    first: Option<SimTime>,
    last: SimTime,
}

impl Throughput {
    /// Empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` delivered at `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.bytes += bytes;
        if self.first.is_none() {
            self.first = Some(now);
        }
        self.last = self.last.max(now);
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean throughput in MB/s over the active window, measured from `start`
    /// (usually `SimTime::ZERO`) to the last recorded delivery.
    pub fn mbps(&self, start: SimTime) -> f64 {
        let span = self.last.since(start);
        let secs = span.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / 1e6 / secs
    }

    /// Elapsed span between `start` and the last delivery.
    pub fn elapsed(&self, start: SimTime) -> SimSpan {
        self.last.since(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn samples_median() {
        let mut s = Samples::new();
        for x in [5.0, 1.0, 3.0] {
            s.record(x);
        }
        assert_eq!(s.median(), Some(3.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(5.0));
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(Samples::new().median(), None);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime(1_000_000_000), 10.0); // 0 for 1s
        tw.update(SimTime(3_000_000_000), 0.0); // 10 for 2s
        let avg = tw.average(SimTime(4_000_000_000)); // 0 for 1s
        assert!((avg - 5.0).abs() < 1e-9, "got {avg}");
        assert_eq!(tw.peak(), 10.0);
    }

    #[test]
    fn throughput_mbps() {
        let mut t = Throughput::new();
        t.record(SimTime(500_000_000), 1_000_000);
        t.record(SimTime(1_000_000_000), 1_000_000);
        // 2 MB over 1 s
        assert!((t.mbps(SimTime::ZERO) - 2.0).abs() < 1e-9);
        assert_eq!(t.total_bytes(), 2_000_000);
    }

    #[test]
    fn throughput_empty_is_zero() {
        let t = Throughput::new();
        assert_eq!(t.mbps(SimTime::ZERO), 0.0);
    }
}
