//! Deterministic RNG for simulated workloads.

/// SplitMix64: tiny, fast, high-quality 64-bit generator with trivially
/// seedable independent streams.
///
/// Used for workload generation *inside* simulations (e.g. the random block
/// positions of the Table 2 service-call experiment). Determinism matters
/// more than cryptographic quality here: a seeded run must reproduce the
/// paper table bit-for-bit on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent stream for substream `index`.
    pub fn split(&self, index: u64) -> Self {
        // Mix the stream index through one SplitMix64 round so adjacent
        // indices yield unrelated streams.
        let mut child = Self::new(self.state ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        child.next_u64();
        Self::new(child.next_u64())
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free multiply-shift; bias is < 2^-64 * bound,
        // negligible for workload generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // Reference values for SplitMix64 with seed 1234567 (from the
        // public-domain C implementation by Vigna).
        let mut rng = SplitMix64::new(1234567);
        let v: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(v[0], 6457827717110365317);
        assert_eq!(v[1], 3203168211198807973);
        assert_eq!(v[2], 9817491932198370423);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_differ() {
        let root = SplitMix64::new(7);
        let mut s0 = root.split(0);
        let mut s1 = root.split(1);
        let same = (0..64).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
        // All residues eventually hit.
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = rng.next_range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
