//! Integer virtual time: instants and spans in nanoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in integer nanoseconds since simulation start.
///
/// Integer time keeps event ordering exact: with `f64` clocks, the order of
/// additions changes low-order bits and therefore event order, destroying the
/// reproducibility the experiment harness depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A duration in virtual time, in integer nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(pub u64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The far future; useful as an "idle" sentinel.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Elapsed nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed virtual seconds as `f64` (for reporting only; never for
    /// event-ordering arithmetic).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from `earlier` to `self`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimSpan {
    /// Zero-length span.
    pub const ZERO: SimSpan = SimSpan(0);

    /// Span from integer nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimSpan(ns)
    }

    /// Span from integer microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimSpan(us.saturating_mul(1_000))
    }

    /// Span from integer milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimSpan(ms.saturating_mul(1_000_000))
    }

    /// Span from integer seconds.
    pub fn from_secs(s: u64) -> Self {
        SimSpan(s.saturating_mul(1_000_000_000))
    }

    /// Span from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// This is the bridge from physical cost models (`bytes / bandwidth`);
    /// the rounding happens once per modelled quantity, after which all
    /// arithmetic is exact.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "span must be finite and non-negative, got {s}"
        );
        SimSpan((s * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True for the zero span.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub<SimSpan> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimSpan {
    fn sub_assign(&mut self, rhs: SimSpan) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    fn mul(self, rhs: u64) -> SimSpan {
        SimSpan(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}µs", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_exact() {
        let t = SimTime::ZERO + SimSpan::from_micros(3) + SimSpan::from_nanos(5);
        assert_eq!(t.as_nanos(), 3_005);
        assert_eq!(t.since(SimTime(5)).as_nanos(), 3_000);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(3).since(SimTime(10)), SimSpan::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimSpan::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimSpan::from_secs_f64(0.0).as_nanos(), 0);
        assert_eq!(SimSpan::from_secs_f64(2.0).as_nanos(), 2_000_000_000);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_span_panics() {
        SimSpan::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimSpan::from_millis(1) < SimSpan::from_secs(1));
        assert_eq!(SimTime(5).max(SimTime(3)), SimTime(5));
    }

    #[test]
    fn span_scaling() {
        assert_eq!((SimSpan::from_micros(10) * 3).as_nanos(), 30_000);
        assert_eq!((SimSpan::from_micros(10) / 4).as_nanos(), 2_500);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimSpan::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimSpan::from_micros(1500).to_string(), "1.50ms");
        assert_eq!(SimSpan::from_secs(2).to_string(), "2.000s");
    }
}
