//! k-server FIFO resource with continuation callbacks.
//!
//! Models the CPUs of a cluster node: DPS threads request a processor, run
//! for a model-determined span, and release it; excess requests queue FIFO.

use std::collections::VecDeque;

use crate::sim::Sim;
use crate::time::SimSpan;

/// Handle to a pool created with [`Sim::add_pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolId(pub(crate) usize);

/// A pool job: runs when a server is granted, returns how long the server is
/// held. Completion effects are scheduled by the job itself via the `Sim`.
type PoolJob<S> = Box<dyn FnOnce(&mut Sim<S>) -> SimSpan>;

pub(crate) struct PoolState<S> {
    servers: usize,
    busy: usize,
    queue: VecDeque<PoolJob<S>>,
    total_jobs: u64,
    busy_ns_accum: u64,
}

/// Read-only view of a pool's instantaneous state (for stats/debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    /// Total number of servers.
    pub servers: usize,
    /// Servers currently granted.
    pub busy: usize,
    /// Jobs waiting for a server.
    pub queued: usize,
    /// Jobs ever started.
    pub total_jobs: u64,
    /// Accumulated busy time across all servers, in nanoseconds.
    pub busy_nanos: u64,
}

pub(crate) struct PoolTable<S> {
    pools: Vec<PoolState<S>>,
}

impl<S> PoolTable<S> {
    pub(crate) fn new() -> Self {
        Self { pools: Vec::new() }
    }
}

impl<S> Sim<S> {
    /// Create a pool of `servers` identical servers (e.g. the CPUs of one
    /// virtual node). `servers` must be at least 1.
    pub fn add_pool(&mut self, servers: usize) -> PoolId {
        assert!(servers >= 1, "a pool needs at least one server");
        self.pools.pools.push(PoolState {
            servers,
            busy: 0,
            queue: VecDeque::new(),
            total_jobs: 0,
            busy_ns_accum: 0,
        });
        PoolId(self.pools.pools.len() - 1)
    }

    /// Snapshot of a pool's state.
    pub fn pool(&self, id: PoolId) -> Pool {
        let p = &self.pools.pools[id.0];
        Pool {
            servers: p.servers,
            busy: p.busy,
            queued: p.queue.len(),
            total_jobs: p.total_jobs,
            busy_nanos: p.busy_ns_accum,
        }
    }

    /// Request a server from `id`. When one is available (immediately or
    /// after queued predecessors release), `job` runs at that virtual instant
    /// and returns the span for which the server stays held. FIFO order is
    /// guaranteed among queued requests.
    pub fn pool_acquire(&mut self, id: PoolId, job: impl FnOnce(&mut Sim<S>) -> SimSpan + 'static) {
        let state = &mut self.pools.pools[id.0];
        if state.busy < state.servers {
            state.busy += 1;
            self.start_pool_job(id, Box::new(job));
        } else {
            state.queue.push_back(Box::new(job));
        }
    }

    fn start_pool_job(&mut self, id: PoolId, job: PoolJob<S>) {
        self.pools.pools[id.0].total_jobs += 1;
        let hold = job(self);
        self.pools.pools[id.0].busy_ns_accum += hold.as_nanos();
        self.schedule_in(hold, move |sim| sim.finish_pool_job(id));
    }

    fn finish_pool_job(&mut self, id: PoolId) {
        let state = &mut self.pools.pools[id.0];
        if let Some(next) = state.queue.pop_front() {
            // Server passes directly to the next queued job; `busy` unchanged.
            self.start_pool_job(id, next);
        } else {
            state.busy -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    /// World recording (job index, start time) pairs.
    type World = Vec<(u32, u64)>;

    #[test]
    fn single_server_serializes_jobs() {
        let mut sim: Sim<World> = Sim::new(Vec::new());
        let pool = sim.add_pool(1);
        for i in 0..3u32 {
            sim.schedule_at(SimTime::ZERO, move |s| {
                s.pool_acquire(pool, move |s| {
                    let now = s.now().as_nanos();
                    s.world.push((i, now));
                    SimSpan::from_nanos(10)
                });
            });
        }
        sim.run();
        assert_eq!(sim.world, vec![(0, 0), (1, 10), (2, 20)]);
    }

    #[test]
    fn two_servers_run_pairwise() {
        let mut sim: Sim<World> = Sim::new(Vec::new());
        let pool = sim.add_pool(2);
        for i in 0..4u32 {
            sim.schedule_at(SimTime::ZERO, move |s| {
                s.pool_acquire(pool, move |s| {
                    let now = s.now().as_nanos();
                    s.world.push((i, now));
                    SimSpan::from_nanos(10)
                });
            });
        }
        sim.run();
        assert_eq!(sim.world, vec![(0, 0), (1, 0), (2, 10), (3, 10)]);
    }

    #[test]
    fn fifo_among_queued() {
        let mut sim: Sim<World> = Sim::new(Vec::new());
        let pool = sim.add_pool(1);
        // Occupy the server, then enqueue in a known order at distinct times.
        sim.schedule_at(SimTime::ZERO, move |s| {
            s.pool_acquire(pool, |_| SimSpan::from_nanos(100));
        });
        for i in 0..5u32 {
            sim.schedule_at(SimTime(10 + u64::from(i)), move |s| {
                s.pool_acquire(pool, move |s| {
                    let now = s.now().as_nanos();
                    s.world.push((i, now));
                    SimSpan::from_nanos(1)
                });
            });
        }
        sim.run();
        let order: Vec<u32> = sim.world.iter().map(|&(i, _)| i).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.world[0].1, 100);
    }

    #[test]
    fn zero_duration_jobs_release_immediately() {
        let mut sim: Sim<World> = Sim::new(Vec::new());
        let pool = sim.add_pool(1);
        for i in 0..3u32 {
            sim.schedule_at(SimTime::ZERO, move |s| {
                s.pool_acquire(pool, move |s| {
                    let now = s.now().as_nanos();
                    s.world.push((i, now));
                    SimSpan::ZERO
                });
            });
        }
        sim.run();
        assert_eq!(sim.world, vec![(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn stats_track_usage() {
        let mut sim: Sim<World> = Sim::new(Vec::new());
        let pool = sim.add_pool(2);
        for _ in 0..4 {
            sim.schedule_at(SimTime::ZERO, move |s| {
                s.pool_acquire(pool, |_| SimSpan::from_nanos(25));
            });
        }
        sim.run();
        let p = sim.pool(pool);
        assert_eq!(p.total_jobs, 4);
        assert_eq!(p.busy, 0);
        assert_eq!(p.queued, 0);
        assert_eq!(p.busy_nanos, 100);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_pool_rejected() {
        let mut sim: Sim<()> = Sim::new(());
        sim.add_pool(0);
    }
}
