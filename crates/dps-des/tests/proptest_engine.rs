//! Property tests for the event engine: determinism, ordering, and pool
//! conservation invariants.

use dps_des::{Sim, SimSpan, SimTime, SplitMix64};
use proptest::prelude::*;

proptest! {
    /// Events always fire in nondecreasing time order, with ties broken by
    /// scheduling order.
    #[test]
    fn firing_order_is_sorted_stable(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut sim = Sim::new(Vec::new());
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime(t), move |s| s.world.push((t, i)));
        }
        sim.run();
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expected.sort(); // (time, seq) — stable tie-break by seq
        prop_assert_eq!(sim.world, expected);
    }

    /// Two identical runs produce identical traces (bitwise determinism).
    #[test]
    fn runs_are_reproducible(seed in any::<u64>()) {
        fn trace(seed: u64) -> Vec<(u64, u64)> {
            let mut sim = Sim::new(Vec::new());
            let mut rng = SplitMix64::new(seed);
            for _ in 0..100 {
                let t = rng.next_below(1_000);
                let tag = rng.next_u64();
                sim.schedule_at(SimTime(t), move |s| {
                    let now = s.now().as_nanos();
                    s.world.push((now, tag));
                });
            }
            sim.run();
            sim.world
        }
        prop_assert_eq!(trace(seed), trace(seed));
    }

    /// A k-server pool never runs more than k jobs concurrently and runs
    /// every submitted job exactly once.
    #[test]
    fn pool_conservation(
        servers in 1usize..5,
        jobs in proptest::collection::vec((0u64..100, 1u64..50), 1..100),
    ) {
        #[derive(Default)]
        struct World {
            running: usize,
            max_running: usize,
            completed: usize,
        }
        let mut sim = Sim::new(World::default());
        let pool = sim.add_pool(servers);
        let n = jobs.len();
        for (at, dur) in jobs {
            sim.schedule_at(SimTime(at), move |s| {
                s.pool_acquire(pool, move |s| {
                    s.world.running += 1;
                    s.world.max_running = s.world.max_running.max(s.world.running);
                    let span = SimSpan::from_nanos(dur);
                    s.schedule_in(span, |s| {
                        s.world.running -= 1;
                        s.world.completed += 1;
                    });
                    span
                });
            });
        }
        sim.run();
        prop_assert_eq!(sim.world.completed, n);
        prop_assert_eq!(sim.world.running, 0);
        prop_assert!(sim.world.max_running <= servers);
        prop_assert_eq!(sim.pool(pool).total_jobs, n as u64);
    }

    /// Timeline reservations never overlap and never start before requested.
    #[test]
    fn timeline_no_overlap(reqs in proptest::collection::vec((0u64..1000, 1u64..100), 1..100)) {
        use dps_des::Timeline;
        let mut sorted = reqs;
        sorted.sort();
        let mut tl = Timeline::new();
        let mut prev_end = SimTime::ZERO;
        for (now, span) in sorted {
            let (start, end) = tl.reserve(SimTime(now), SimSpan::from_nanos(span));
            prop_assert!(start >= SimTime(now));
            prop_assert!(start >= prev_end);
            prop_assert_eq!(end.as_nanos(), start.as_nanos() + span);
            prev_end = end;
        }
    }
}
