//! The assembled virtual cluster.

use dps_des::{SimSpan, SimTime};
use dps_net::{NameServer, NetworkModel, NodeId, Traffic, TransferPlan};

use crate::deploy::{AppId, Deployment};
use crate::spec::ClusterSpec;

/// The complete virtual-cluster world: inventory, network, kernel name
/// service, application deployment, and node liveness.
///
/// This is the state the DPS simulation engine embeds; every timing decision
/// about "the machines" goes through here.
#[derive(Debug)]
pub struct Cluster {
    spec: ClusterSpec,
    /// The network model (public: the engine reserves NIC time directly).
    pub net: NetworkModel,
    /// Kernel discovery registry.
    pub names: NameServer,
    /// Application instance deployment state.
    pub deploy: Deployment,
    alive: Vec<bool>,
}

impl Cluster {
    /// Build the cluster from a spec; registers every node's kernel in the
    /// name server under the node's name.
    pub fn new(spec: ClusterSpec) -> Self {
        let mut names = NameServer::new();
        for id in spec.node_ids() {
            names.register(spec.node(id).name.clone(), id);
        }
        let nodes = spec.len();
        let net = NetworkModel::new(nodes, spec.net.clone());
        Self {
            spec,
            net,
            names,
            deploy: Deployment::default(),
            alive: vec![true; nodes],
        }
    }

    /// The cluster spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.spec.len()
    }

    /// True if the cluster has no nodes (not constructible via specs).
    pub fn is_empty(&self) -> bool {
        self.spec.is_empty()
    }

    /// Whether `node` is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Inject a node failure: the kernel unregisters and all application
    /// instances on the node are evicted. Returns the affected applications.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<AppId> {
        self.alive[node.index()] = false;
        let name = self.spec.node(node).name.clone();
        self.names.unregister(&name);
        self.deploy.evict_node(node)
    }

    /// Restart a failed node (kernel re-registers; no instances yet).
    pub fn restart_node(&mut self, node: NodeId) {
        self.alive[node.index()] = true;
        self.names.register(self.spec.node(node).name.clone(), node);
    }

    /// Virtual time to execute `flops` floating-point operations on `node`.
    pub fn compute_span(&self, node: NodeId, flops: f64) -> SimSpan {
        SimSpan::from_secs_f64(flops / self.spec.node(node).flops)
    }

    /// Plan delivery of a DPS data object of `bytes` from `src` to `dst`,
    /// including lazy application-instance launch on the destination:
    /// the token cannot be processed before the instance is up.
    pub fn deliver_token(
        &mut self,
        now: SimTime,
        app: AppId,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> TransferPlan {
        let mut plan = self.net.transfer(now, src, dst, bytes, Traffic::DpsObject);
        let ready = self.deploy.ensure_instance(plan.delivered, app, dst);
        plan.delivered = plan.delivered.max(ready);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_net::NetConfig;

    fn cluster(n: usize) -> Cluster {
        let mut spec = ClusterSpec::uniform(n, 2);
        spec.net = NetConfig::ideal();
        Cluster::new(spec)
    }

    #[test]
    fn kernels_registered_on_construction() {
        let c = cluster(3);
        assert_eq!(c.names.lookup("node1"), Some(NodeId(1)));
        assert_eq!(c.names.len(), 3);
    }

    #[test]
    fn compute_span_uses_node_rate() {
        let c = cluster(1);
        let span = c.compute_span(NodeId(0), 70.0e6);
        assert!((span.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn failure_evicts_and_unregisters() {
        let mut c = cluster(2);
        c.deploy.ensure_instance(SimTime::ZERO, AppId(1), NodeId(1));
        let affected = c.fail_node(NodeId(1));
        assert!(!c.is_alive(NodeId(1)));
        assert_eq!(c.names.lookup("node1"), None);
        assert_eq!(affected, vec![AppId(1)]);
        c.restart_node(NodeId(1));
        assert!(c.is_alive(NodeId(1)));
        assert_eq!(c.names.lookup("node1"), Some(NodeId(1)));
    }

    #[test]
    fn token_delivery_waits_for_instance_launch() {
        let mut c = cluster(2);
        // Zero-cost network, but the instance must launch (120 ms default).
        c.deploy = Deployment::new(SimSpan::from_millis(120));
        c.deploy.preload(AppId(1), NodeId(0));
        let plan = c.deliver_token(SimTime::ZERO, AppId(1), NodeId(0), NodeId(1), 0);
        assert_eq!(plan.delivered, SimTime::ZERO + SimSpan::from_millis(120));
        // Second token arrives after start-up: no extra delay.
        let plan2 = c.deliver_token(plan.delivered, AppId(1), NodeId(0), NodeId(1), 0);
        assert_eq!(plan2.delivered, plan.delivered);
    }

    #[test]
    fn same_node_delivery_still_checks_instance() {
        let mut c = cluster(1);
        c.deploy = Deployment::new(SimSpan::from_millis(50));
        let plan = c.deliver_token(SimTime::ZERO, AppId(7), NodeId(0), NodeId(0), 10);
        assert_eq!(plan.delivered, SimTime::ZERO + SimSpan::from_millis(50));
    }
}
