//! Lazy application-instance deployment.
//!
//! Paper §4: "When an application thread posts a data object to a thread
//! running on a node where there is no active instance of the application,
//! the kernel on that node starts a new instance of the application. This
//! strategy minimizes resource consumption […] However, this approach
//! requires a slightly longer startup time (e.g. one second on an 8 node
//! system)".

use std::collections::HashMap;

use dps_des::{SimSpan, SimTime};
use dps_net::NodeId;

/// Identifier of a running parallel application within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u32);

/// Lifecycle of one application instance on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// The kernel is starting the instance; it becomes usable at the instant.
    Starting(SimTime),
    /// The instance is up and can process tokens.
    Running,
}

/// Tracks which application instances exist on which nodes and charges the
/// start-up delay for lazily launched ones.
#[derive(Debug, Clone)]
pub struct Deployment {
    instances: HashMap<(AppId, NodeId), InstanceState>,
    launch_delay: SimSpan,
    launches: u64,
}

impl Deployment {
    /// Deployment with the given per-instance launch delay.
    ///
    /// The default used by the simulator is 120 ms: the paper reports ~1 s
    /// to reach full N-to-N start-up on 8 nodes, i.e. on the order of 100 ms
    /// per instance launch.
    pub fn new(launch_delay: SimSpan) -> Self {
        Self {
            instances: HashMap::new(),
            launch_delay,
            launches: 0,
        }
    }

    /// Per-instance launch delay.
    pub fn launch_delay(&self) -> SimSpan {
        self.launch_delay
    }

    /// Number of instances ever launched.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Mark an instance as already running (the node where the user started
    /// the application binary by hand).
    pub fn preload(&mut self, app: AppId, node: NodeId) {
        self.instances.insert((app, node), InstanceState::Running);
    }

    /// Ensure an instance of `app` exists on `node`, launching it lazily if
    /// needed. Returns the earliest instant (≥ `now`) at which the instance
    /// can accept a token.
    pub fn ensure_instance(&mut self, now: SimTime, app: AppId, node: NodeId) -> SimTime {
        match self.instances.get(&(app, node)) {
            Some(InstanceState::Running) => now,
            Some(InstanceState::Starting(ready)) => {
                let ready = *ready;
                if ready <= now {
                    self.instances.insert((app, node), InstanceState::Running);
                    now
                } else {
                    ready
                }
            }
            None => {
                let ready = now + self.launch_delay;
                self.launches += 1;
                if self.launch_delay.is_zero() {
                    self.instances.insert((app, node), InstanceState::Running);
                    now
                } else {
                    self.instances
                        .insert((app, node), InstanceState::Starting(ready));
                    ready
                }
            }
        }
    }

    /// Current state of an instance, if any.
    pub fn state(&self, app: AppId, node: NodeId) -> Option<InstanceState> {
        self.instances.get(&(app, node)).copied()
    }

    /// Remove all instances of `app` (application shutdown), returning how
    /// many were removed.
    pub fn shutdown_app(&mut self, app: AppId) -> usize {
        let keys: Vec<_> = self
            .instances
            .keys()
            .filter(|(a, _)| *a == app)
            .copied()
            .collect();
        for k in &keys {
            self.instances.remove(k);
        }
        keys.len()
    }

    /// Remove all instances on `node` (node shutdown / failure), returning
    /// the affected applications.
    pub fn evict_node(&mut self, node: NodeId) -> Vec<AppId> {
        let keys: Vec<_> = self
            .instances
            .keys()
            .filter(|(_, n)| *n == node)
            .copied()
            .collect();
        let mut apps: Vec<AppId> = keys.iter().map(|(a, _)| *a).collect();
        for k in &keys {
            self.instances.remove(k);
        }
        apps.sort();
        apps.dedup();
        apps
    }
}

impl Default for Deployment {
    fn default() -> Self {
        Self::new(SimSpan::from_millis(120))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: AppId = AppId(1);
    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    #[test]
    fn first_token_pays_launch_delay() {
        let mut d = Deployment::new(SimSpan::from_millis(100));
        let ready = d.ensure_instance(SimTime::ZERO, APP, N0);
        assert_eq!(ready, SimTime::ZERO + SimSpan::from_millis(100));
        assert_eq!(d.launches(), 1);
        // A second token while starting waits for the same instant.
        let ready2 = d.ensure_instance(SimTime(1), APP, N0);
        assert_eq!(ready2, ready);
        assert_eq!(d.launches(), 1);
    }

    #[test]
    fn instance_becomes_running_after_delay() {
        let mut d = Deployment::new(SimSpan::from_millis(100));
        let ready = d.ensure_instance(SimTime::ZERO, APP, N0);
        let later = ready + SimSpan::from_millis(5);
        assert_eq!(d.ensure_instance(later, APP, N0), later);
        assert_eq!(d.state(APP, N0), Some(InstanceState::Running));
    }

    #[test]
    fn preload_skips_delay() {
        let mut d = Deployment::new(SimSpan::from_millis(100));
        d.preload(APP, N0);
        assert_eq!(d.ensure_instance(SimTime(7), APP, N0), SimTime(7));
        assert_eq!(d.launches(), 0);
    }

    #[test]
    fn distinct_nodes_and_apps_launch_separately() {
        let mut d = Deployment::new(SimSpan::from_millis(10));
        d.ensure_instance(SimTime::ZERO, APP, N0);
        d.ensure_instance(SimTime::ZERO, APP, N1);
        d.ensure_instance(SimTime::ZERO, AppId(2), N0);
        assert_eq!(d.launches(), 3);
    }

    #[test]
    fn zero_delay_runs_immediately() {
        let mut d = Deployment::new(SimSpan::ZERO);
        assert_eq!(d.ensure_instance(SimTime(3), APP, N0), SimTime(3));
        assert_eq!(d.state(APP, N0), Some(InstanceState::Running));
    }

    #[test]
    fn shutdown_and_evict() {
        let mut d = Deployment::new(SimSpan::ZERO);
        d.ensure_instance(SimTime::ZERO, APP, N0);
        d.ensure_instance(SimTime::ZERO, APP, N1);
        d.ensure_instance(SimTime::ZERO, AppId(2), N1);
        assert_eq!(d.shutdown_app(APP), 2);
        assert_eq!(d.state(APP, N0), None);
        let affected = d.evict_node(N1);
        assert_eq!(affected, vec![AppId(2)]);
    }
}
