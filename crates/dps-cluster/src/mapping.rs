//! Thread-collection mapping strings.
//!
//! The paper maps thread collections to nodes with strings such as
//! `"nodeA*2 nodeB"` — "names of the nodes separated by spaces, with an
//! optional multiplier to create multiple threads on the same node". The
//! string can come from a configuration file, a constant, or be built at
//! runtime; this module parses and resolves it.

use std::fmt;

use dps_net::NodeId;

use crate::spec::ClusterSpec;

/// Errors from mapping-string parsing or resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The string contained no node names.
    Empty,
    /// A multiplier was not a positive integer.
    BadMultiplier {
        /// The offending token.
        token: String,
    },
    /// A node name is not part of the cluster.
    UnknownNode {
        /// The unknown name.
        name: String,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::Empty => write!(f, "mapping string contains no node names"),
            MappingError::BadMultiplier { token } => {
                write!(f, "bad multiplier in mapping token {token:?}")
            }
            MappingError::UnknownNode { name } => {
                write!(f, "mapping names unknown node {name:?}")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// Parse a mapping string into `(node name, thread count)` pairs without
/// resolving names against a cluster.
///
/// ```
/// use dps_cluster::parse_mapping;
///
/// let m = parse_mapping("nodeA*2 nodeB").unwrap();
/// assert_eq!(m, vec![("nodeA".to_string(), 2), ("nodeB".to_string(), 1)]);
/// ```
pub fn parse_mapping(s: &str) -> Result<Vec<(String, usize)>, MappingError> {
    let mut out = Vec::new();
    for token in s.split_whitespace() {
        match token.split_once('*') {
            None => out.push((token.to_string(), 1)),
            Some((name, mult)) => {
                let count: usize = mult.parse().map_err(|_| MappingError::BadMultiplier {
                    token: token.to_string(),
                })?;
                if count == 0 || name.is_empty() {
                    return Err(MappingError::BadMultiplier {
                        token: token.to_string(),
                    });
                }
                out.push((name.to_string(), count));
            }
        }
    }
    if out.is_empty() {
        return Err(MappingError::Empty);
    }
    Ok(out)
}

/// Parse and resolve a mapping string against a cluster, producing one
/// [`NodeId`] per thread in collection order.
///
/// `"nodeA*2 nodeB"` resolves to `[nodeA, nodeA, nodeB]` — the thread with
/// index 0 and 1 live on nodeA, thread 2 on nodeB.
pub fn resolve_mapping(spec: &ClusterSpec, s: &str) -> Result<Vec<NodeId>, MappingError> {
    let mut out = Vec::new();
    for (name, count) in parse_mapping(s)? {
        let id = spec
            .node_id(&name)
            .ok_or(MappingError::UnknownNode { name })?;
        out.extend(std::iter::repeat_n(id, count));
    }
    Ok(out)
}

/// Build the canonical round-robin mapping string for the first `nodes`
/// nodes with `per_node` threads each — a convenience for benchmarks that
/// sweep node counts.
pub fn round_robin_mapping(spec: &ClusterSpec, nodes: usize, per_node: usize) -> String {
    assert!(nodes >= 1 && nodes <= spec.len(), "node count out of range");
    let mut parts = Vec::with_capacity(nodes);
    for id in spec.node_ids().take(nodes) {
        let name = &spec.node(id).name;
        if per_node == 1 {
            parts.push(name.clone());
        } else {
            parts.push(format!("{name}*{per_node}"));
        }
    }
    parts.join(" ")
}

/// The spec-free counterpart of [`round_robin_mapping`] for clusters with
/// the conventional `node0..node{n-1}` names (every [`ClusterSpec`]
/// constructor and the OS-thread engine use them): engine-generic setup
/// code can build its worker mapping without a cluster handle.
pub fn default_mapping(nodes: usize, per_node: usize) -> String {
    default_mapping_from(0, nodes, per_node)
}

/// [`default_mapping`] starting at node `first` — for layouts that keep a
/// dedicated master machine and place the workers on the remaining nodes.
pub fn default_mapping_from(first: usize, nodes: usize, per_node: usize) -> String {
    assert!(nodes >= 1, "at least one node");
    (first..first + nodes)
        .map(|i| {
            if per_node == 1 {
                format!("node{i}")
            } else {
                format!("node{i}*{per_node}")
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mapping_matches_round_robin_on_uniform_specs() {
        let spec = ClusterSpec::uniform(3, 1);
        assert_eq!(default_mapping(3, 2), round_robin_mapping(&spec, 3, 2));
        assert_eq!(default_mapping(2, 1), "node0 node1");
    }

    #[test]
    fn paper_example_parses() {
        // The exact string from §3 of the paper.
        let m = parse_mapping("nodeA*2 nodeB").unwrap();
        assert_eq!(m, vec![("nodeA".into(), 2), ("nodeB".into(), 1)]);
    }

    #[test]
    fn whitespace_is_flexible() {
        let m = parse_mapping("  a   b*3\tc ").unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m[1], ("b".into(), 3));
    }

    #[test]
    fn bad_multipliers_rejected() {
        assert!(matches!(
            parse_mapping("a*x"),
            Err(MappingError::BadMultiplier { .. })
        ));
        assert!(matches!(
            parse_mapping("a*0"),
            Err(MappingError::BadMultiplier { .. })
        ));
        assert!(matches!(
            parse_mapping("*3"),
            Err(MappingError::BadMultiplier { .. })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(parse_mapping("   "), Err(MappingError::Empty));
    }

    #[test]
    fn resolution_expands_threads() {
        let spec = ClusterSpec::uniform(3, 2);
        let ids = resolve_mapping(&spec, "node0*2 node2").unwrap();
        assert_eq!(ids, vec![NodeId(0), NodeId(0), NodeId(2)]);
    }

    #[test]
    fn unknown_node_rejected() {
        let spec = ClusterSpec::uniform(2, 1);
        assert!(matches!(
            resolve_mapping(&spec, "node0 ghost"),
            Err(MappingError::UnknownNode { .. })
        ));
    }

    #[test]
    fn round_robin_builder() {
        let spec = ClusterSpec::uniform(4, 2);
        assert_eq!(round_robin_mapping(&spec, 2, 1), "node0 node1");
        assert_eq!(round_robin_mapping(&spec, 2, 2), "node0*2 node1*2");
        let ids = resolve_mapping(&spec, &round_robin_mapping(&spec, 3, 2)).unwrap();
        assert_eq!(ids.len(), 6);
    }
}
