//! Node and cluster specifications.

use dps_net::{NetConfig, NodeId};

/// Description of one cluster node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Kernel name (independent of host names, paper §4; several kernels may
    /// share a host in debugging set-ups).
    pub name: String,
    /// Number of processors. The paper's nodes are bi-processor PCs, so a
    /// node can execute two DPS operations truly concurrently.
    pub cpus: usize,
    /// Sustained compute rate in FLOP/s for the scalar numeric kernels of
    /// the paper's applications. Used by operation cost models to convert
    /// work estimates into virtual time.
    pub flops: f64,
}

impl NodeSpec {
    /// A node named `name` shaped like the paper's testbed machines:
    /// 2 × 733 MHz Pentium III. The 70 MFLOP/s rate is the sustained scalar
    /// triple-loop matmul rate fitted from Table 1 (see EXPERIMENTS.md).
    pub fn paper_node(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cpus: 2,
            flops: 70.0e6,
        }
    }
}

/// The full cluster inventory plus its network configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Nodes, indexed by [`NodeId`].
    pub nodes: Vec<NodeSpec>,
    /// Network model constants.
    pub net: NetConfig,
}

impl ClusterSpec {
    /// `n` identical nodes named `node0..node{n-1}` with `cpus` CPUs each
    /// and default paper-calibrated compute and network parameters.
    pub fn uniform(n: usize, cpus: usize) -> Self {
        assert!(n >= 1, "a cluster needs at least one node");
        Self {
            nodes: (0..n)
                .map(|i| NodeSpec {
                    cpus,
                    ..NodeSpec::paper_node(format!("node{i}"))
                })
                .collect(),
            net: NetConfig::default(),
        }
    }

    /// The paper's testbed: `n` bi-processor 733 MHz nodes (up to 8) on
    /// Gigabit Ethernet.
    pub fn paper_testbed(n: usize) -> Self {
        Self::uniform(n, 2)
    }

    /// A heterogeneous cluster: one node per entry of `flops`, named
    /// `node0..`, each with `cpus` CPUs, on the default paper-calibrated
    /// network. The substrate for dynamic-loop-scheduling experiments,
    /// where per-node compute rates differ.
    pub fn heterogeneous(cpus: usize, flops: &[f64]) -> Self {
        assert!(!flops.is_empty(), "a cluster needs at least one node");
        assert!(
            flops.iter().all(|&f| f > 0.0),
            "compute rates must be positive"
        );
        Self {
            nodes: flops
                .iter()
                .enumerate()
                .map(|(i, &f)| NodeSpec {
                    name: format!("node{i}"),
                    cpus,
                    flops: f,
                })
                .collect(),
            net: NetConfig::default(),
        }
    }

    /// A `skew`-factor heterogeneous cluster of `n` nodes with `cpus` CPUs
    /// each: the first half runs at the paper rate, the second half `skew`×
    /// slower (e.g. `skew = 2.0` halves the late nodes' compute rate).
    pub fn skewed(n: usize, cpus: usize, skew: f64) -> Self {
        assert!(n >= 1, "a cluster needs at least one node");
        assert!(skew >= 1.0, "skew is a slowdown factor (>= 1)");
        let base = NodeSpec::paper_node("x").flops;
        let rates: Vec<f64> = (0..n)
            .map(|i| if i < n.div_ceil(2) { base } else { base / skew })
            .collect();
        Self::heterogeneous(cpus, &rates)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes (never constructible via `uniform`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Look up a node id by kernel name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// The spec of a node.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    /// All node ids in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_names_and_lookup() {
        let spec = ClusterSpec::uniform(4, 2);
        assert_eq!(spec.len(), 4);
        assert_eq!(spec.node_id("node2"), Some(NodeId(2)));
        assert_eq!(spec.node_id("nodeX"), None);
        assert_eq!(spec.node(NodeId(0)).cpus, 2);
    }

    #[test]
    fn paper_testbed_shape() {
        let spec = ClusterSpec::paper_testbed(8);
        assert_eq!(spec.len(), 8);
        assert!(spec.nodes.iter().all(|n| n.cpus == 2));
        assert!(spec.nodes.iter().all(|n| n.flops > 1e6));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        ClusterSpec::uniform(0, 1);
    }

    #[test]
    fn heterogeneous_assigns_rates_in_order() {
        let spec = ClusterSpec::heterogeneous(1, &[70.0e6, 35.0e6, 17.5e6]);
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.node(NodeId(0)).flops, 70.0e6);
        assert_eq!(spec.node(NodeId(2)).flops, 17.5e6);
        assert_eq!(spec.node_id("node2"), Some(NodeId(2)));
    }

    #[test]
    fn skewed_halves_are_fast_then_slow() {
        let spec = ClusterSpec::skewed(4, 1, 2.0);
        let base = spec.node(NodeId(0)).flops;
        assert_eq!(spec.node(NodeId(1)).flops, base);
        assert_eq!(spec.node(NodeId(2)).flops, base / 2.0);
        assert_eq!(spec.node(NodeId(3)).flops, base / 2.0);
        // Odd n: the extra node is fast.
        let spec = ClusterSpec::skewed(3, 1, 4.0);
        assert_eq!(spec.node(NodeId(1)).flops, base);
        assert_eq!(spec.node(NodeId(2)).flops, base / 4.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn heterogeneous_rejects_zero_rate() {
        ClusterSpec::heterogeneous(1, &[70.0e6, 0.0]);
    }

    #[test]
    fn node_ids_iterates_in_order() {
        let spec = ClusterSpec::uniform(3, 1);
        let ids: Vec<NodeId> = spec.node_ids().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
}
