//! # dps-cluster — the virtual cluster substrate
//!
//! Models the machines the DPS runtime runs on: the paper's testbed is a
//! cluster of eight bi-Pentium-III 733 MHz PCs joined by Gigabit Ethernet,
//! each running a DPS *kernel* that launches application instances on demand
//! (paper §4, *Runtime Support*).
//!
//! * [`NodeSpec`] / [`ClusterSpec`] — node inventory: name, CPU count, and a
//!   scalar compute rate used by operation cost models.
//! * [`parse_mapping`] / [`resolve_mapping`] — the paper's thread-collection
//!   mapping strings (`"nodeA*2 nodeB"`), parsed and resolved to node ids.
//! * [`Deployment`] — lazy application-instance launch: the first data
//!   object addressed to a node where the application is not yet running
//!   triggers an instance start and pays a start-up delay, exactly the
//!   "delayed mechanism" §4 describes (≈1 s to reach full 8-node N-to-N
//!   connectivity).
//! * [`Cluster`] — the assembled world: spec + [`NetworkModel`](dps_net::NetworkModel) +
//!   [`NameServer`](dps_net::NameServer) + deployment state + node-failure flags (failure
//!   injection backs the graceful-degradation extension discussed in the
//!   paper's future work).

mod cluster;
mod deploy;
mod mapping;
mod spec;

pub use cluster::Cluster;
pub use deploy::{AppId, Deployment, InstanceState};
pub use mapping::{
    default_mapping, default_mapping_from, parse_mapping, resolve_mapping, round_robin_mapping,
    MappingError,
};
pub use spec::{ClusterSpec, NodeSpec};

pub use dps_net::NodeId;
