//! # dps-linalg — linear-algebra substrate for the DPS paper experiments
//!
//! The paper evaluates DPS on block-based matrix multiplication (Table 1:
//! overlap of communication and computation) and on block LU factorization
//! with partial pivoting (Fig. 11–15). It notes that "no optimized linear
//! algebra library was used"; accordingly this crate implements the scalar
//! kernels from scratch:
//!
//! * [`Matrix`] — dense row-major `f64` matrix with block extraction.
//! * [`gemm`] / [`Matrix::matmul`] — general matrix multiply, dispatching
//!   between the scalar `ikj` fallback and the packed blocked kernel.
//! * [`kernel`] — the cache-blocked microkernels (packed `MR×NR` gemm,
//!   blocked trsm, blocked panel factorization) with a pinned accumulation
//!   order: blocked and scalar paths produce identical bits, preserving
//!   the cross-engine byte-identity contract.
//! * [`panel_lu`] — rectangular LU factorization with partial pivoting of a
//!   block column (paper step 1).
//! * [`trsm_lower_unit`] — triangular solve `L₁₁·X = B` (paper step 2, the
//!   BLAS `trsm`).
//! * [`blocked_lu`] — the sequential block LU driver (paper steps 1–3,
//!   recursively applied), the reference the parallel schedules are checked
//!   against.
//! * [`lu_residual`] — ‖P·A − L·U‖∞ verification.
//! * [`parallel`] — the DPS flow graphs: pipelined/non-pipelined block
//!   matmul (Table 1) and pipelined (stream) / non-pipelined (merge+split)
//!   block LU (Fig. 12/15).
//!
//! FLOP-count helpers ([`flops`]) feed the virtual-time cost model so the
//! simulator charges the paper's 733 MHz nodes realistically.

mod factor;
pub mod flops;
pub mod kernel;
mod matrix;
pub mod parallel;

pub use factor::{apply_row_swaps, blocked_lu, lu_residual, panel_lu, trsm_lower_unit, LuFactors};
pub use matrix::{gemm, Matrix};
