//! FLOP counts for the virtual-time cost model.
//!
//! The simulator charges operation costs as `flops / node_rate`; these
//! helpers centralize the standard dense-kernel counts so graph code and
//! benchmarks agree.

/// `C += A·B` with `A: m×k`, `B: k×n` — `2·m·n·k` flops.
pub fn gemm(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Rectangular panel LU with partial pivoting of an `m × r` panel
/// (`m ≥ r`): `Σ_{j<r} 2·(m−j)·(r−j)` ≈ `m·r² − r³/3` flops (plus pivot
/// searches, counted as one flop per comparison).
pub fn panel_lu(m: usize, r: usize) -> f64 {
    let (m, r) = (m as f64, r as f64);
    m * r * r - r * r * r / 3.0 + m * r
}

/// Unit-lower triangular solve `L⁻¹ B` with `L: r×r`, `B: r×n` — `r²·n`
/// flops.
pub fn trsm(r: usize, n: usize) -> f64 {
    r as f64 * r as f64 * n as f64
}

/// One Game-of-Life cell update costs roughly this many "flop-equivalent"
/// operations on the scalar path (8 neighbour loads + adds + rule).
pub const LIFE_CELL_OPS: f64 = 12.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_count() {
        assert_eq!(gemm(2, 3, 4), 48.0);
    }

    #[test]
    fn panel_dominated_by_update() {
        // For m >> r the panel cost approaches m·r².
        let f = panel_lu(1000, 10);
        assert!((f / (1000.0 * 100.0) - 1.0).abs() < 0.15, "got {f}");
    }

    #[test]
    fn trsm_count() {
        assert_eq!(trsm(4, 8), 128.0);
    }
}
