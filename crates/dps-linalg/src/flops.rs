//! FLOP counts for the virtual-time cost model.
//!
//! The simulator charges operation costs as `flops / node_rate`; these
//! helpers centralize the standard dense-kernel counts so graph code and
//! benchmarks agree.

/// `C += A·B` with `A: m×k`, `B: k×n` — `2·m·n·k` flops.
pub fn gemm(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Packing traffic of the blocked gemm kernel: both operands are copied
/// once into panel layout (`m·k + k·n` moved elements), counted as one
/// flop-equivalent each in the virtual-time cost model.
pub fn gemm_pack(m: usize, n: usize, k: usize) -> f64 {
    (m * k + k * n) as f64
}

/// Cost of one `m×k · k×n` product through [`crate::gemm`]'s dispatcher:
/// the multiply-add count, plus the packing traffic exactly when the
/// problem clears [`crate::kernel::BLOCK_THRESHOLD`] and runs the blocked
/// kernel. Graph code charging gemm work must use this so virtual time
/// tracks what the kernel actually does.
pub fn gemm_cost(m: usize, n: usize, k: usize) -> f64 {
    let mut cost = gemm(m, n, k);
    if crate::kernel::uses_blocked(m, n, k) {
        cost += gemm_pack(m, n, k);
    }
    cost
}

/// Rectangular panel LU with partial pivoting of an `m × r` panel
/// (`m ≥ r`): `Σ_{j<r} 2·(m−j)·(r−j)` ≈ `m·r² − r³/3` flops (plus pivot
/// searches, counted as one flop per comparison).
pub fn panel_lu(m: usize, r: usize) -> f64 {
    let (m, r) = (m as f64, r as f64);
    m * r * r - r * r * r / 3.0 + m * r
}

/// Unit-lower triangular solve `L⁻¹ B` with `L: r×r`, `B: r×n` — `r²·n`
/// flops.
pub fn trsm(r: usize, n: usize) -> f64 {
    r as f64 * r as f64 * n as f64
}

/// One Game-of-Life cell update costs roughly this many "flop-equivalent"
/// operations on the scalar path (8 neighbour loads + adds + rule).
pub const LIFE_CELL_OPS: f64 = 12.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_count() {
        assert_eq!(gemm(2, 3, 4), 48.0);
    }

    #[test]
    fn panel_dominated_by_update() {
        // For m >> r the panel cost approaches m·r².
        let f = panel_lu(1000, 10);
        assert!((f / (1000.0 * 100.0) - 1.0).abs() < 0.15, "got {f}");
    }

    #[test]
    fn trsm_count() {
        assert_eq!(trsm(4, 8), 128.0);
    }

    #[test]
    fn blocked_cost_adds_packing_above_threshold_only() {
        // 8³ = 512 < threshold: scalar path, no packing charge.
        assert_eq!(gemm_cost(8, 8, 8), gemm(8, 8, 8));
        // 64³ clears the threshold: packing traffic is charged.
        assert_eq!(
            gemm_cost(64, 64, 64),
            gemm(64, 64, 64) + gemm_pack(64, 64, 64)
        );
        assert_eq!(gemm_pack(64, 64, 64), 2.0 * 64.0 * 64.0);
    }
}
