//! LU factorization kernels: panel LU with partial pivoting, triangular
//! solves, the sequential block driver, and verification.
//!
//! Following the paper's §5 decomposition of `A` into
//! `[[A11, A12], [A21, B]]` with `A11` of size `r × r`:
//!
//! 1. rectangular LU of the panel `[A11; A21] = [L11; L21] · U11` with
//!    partial pivoting,
//! 2. `A12 = L11 · T12` solved by `trsm`, with the pivoting's row flips
//!    applied,
//! 3. `A' = B − L21 · T12`, recursively factorized.

use crate::matrix::{gemm, Matrix};

/// Result of a (panel or full) LU factorization: `L` is unit lower
/// triangular, `U` upper triangular, and `pivots[k] = p` means rows `k` and
/// `p` were swapped at elimination step `k` (LAPACK `ipiv` convention,
/// zero-based).
#[derive(Debug, Clone, PartialEq)]
pub struct LuFactors {
    /// Combined factors: `U` on and above the diagonal, `L` strictly below
    /// (unit diagonal implied) — the usual packed form.
    pub lu: Matrix,
    /// Row-swap record, one entry per eliminated column.
    pub pivots: Vec<usize>,
}

impl LuFactors {
    /// Extract the unit-lower-triangular `L` (size `m × k`, `k = min(m,n)`).
    pub fn l(&self) -> Matrix {
        let (m, n) = (self.lu.rows(), self.lu.cols());
        let k = m.min(n);
        Matrix::from_fn(m, k, |i, j| match i.cmp(&j) {
            std::cmp::Ordering::Greater => self.lu[(i, j)],
            std::cmp::Ordering::Equal => 1.0,
            std::cmp::Ordering::Less => 0.0,
        })
    }

    /// Extract the upper-triangular `U` (size `k × n`, `k = min(m,n)`).
    pub fn u(&self) -> Matrix {
        let (m, n) = (self.lu.rows(), self.lu.cols());
        let k = m.min(n);
        Matrix::from_fn(k, n, |i, j| if j >= i { self.lu[(i, j)] } else { 0.0 })
    }
}

/// Rectangular LU factorization with partial pivoting of an `m × r` panel
/// (`m ≥ r`), in place. This is the paper's step 1:
/// `[A11; A21] = [L11; L21] · U11`.
///
/// Runs the blocked panel kernel
/// ([`kernel::panel_lu_blocked`](crate::kernel::panel_lu_blocked)), which
/// is bitwise identical to the unblocked elimination — same pivots, same
/// bits. Returns the pivot record. Panics if the panel is singular to
/// working precision (the experiment matrices are diagonally dominant).
pub fn panel_lu(panel: &mut Matrix) -> Vec<usize> {
    crate::kernel::panel_lu_blocked(panel)
}

/// Apply a pivot record (as produced by [`panel_lu`]) to the rows of `m`:
/// the row flips of step 2a. `offset` shifts the pivot indices (pivots are
/// relative to the panel's first row).
pub fn apply_row_swaps(m: &mut Matrix, pivots: &[usize], offset: usize) {
    for (k, &p) in pivots.iter().enumerate() {
        m.swap_rows(offset + k, offset + p);
    }
}

/// Solve `L · X = B` in place of `B`, where `l` is unit lower triangular
/// (only the strict lower part is read) — the BLAS `trsm` of step 2.
///
/// Runs the row-blocked kernel
/// ([`kernel::trsm_blocked`](crate::kernel::trsm_blocked)), bitwise
/// identical to plain forward substitution.
pub fn trsm_lower_unit(l: &Matrix, b: &mut Matrix) {
    crate::kernel::trsm_blocked(l, b);
}

/// Sequential block LU factorization with partial pivoting, block size `r`
/// (the paper's three steps applied recursively). Returns packed factors
/// and the global pivot record.
///
/// This is the reference implementation the parallel DPS schedule is
/// verified against.
pub fn blocked_lu(a: &Matrix, r: usize) -> LuFactors {
    let n = a.rows();
    assert_eq!(a.cols(), n, "blocked_lu expects a square matrix");
    assert!(
        r >= 1 && n.is_multiple_of(r),
        "block size must divide the order"
    );
    let mut lu = a.clone();
    let mut pivots = vec![0usize; n];

    let nb = n / r;
    for kb in 0..nb {
        let k0 = kb * r;
        let m = n - k0;
        // Step 1: panel LU of the current block column (rows k0.., cols k0..k0+r).
        let mut panel = lu.block(k0, k0, m, r);
        let ppiv = panel_lu(&mut panel);
        lu.set_block(k0, k0, &panel);
        // Record pivots globally and apply the row flips to the rest of the
        // matrix (left of the panel: step 2a's flips on previous columns;
        // right of the panel: the columns about to be updated).
        for (k, &p) in ppiv.iter().enumerate() {
            pivots[k0 + k] = k0 + p;
            if p != k {
                // swap rows k0+k and k0+p outside the panel columns
                for j in (0..k0).chain(k0 + r..n) {
                    let tmp = lu[(k0 + k, j)];
                    lu[(k0 + k, j)] = lu[(k0 + p, j)];
                    lu[(k0 + p, j)] = tmp;
                }
            }
        }
        if kb + 1 == nb {
            break;
        }
        // Step 2: T12 = L11⁻¹ · A12.
        let l11 = lu.block(k0, k0, r, r);
        let mut a12 = lu.block(k0, k0 + r, r, n - k0 - r);
        trsm_lower_unit(&l11, &mut a12);
        lu.set_block(k0, k0 + r, &a12);
        // Step 3: A' = B − L21 · T12.
        let l21 = lu.block(k0 + r, k0, m - r, r);
        let mut b = lu.block(k0 + r, k0 + r, m - r, n - k0 - r);
        gemm(-1.0, &l21, &a12, 1.0, &mut b);
        lu.set_block(k0 + r, k0 + r, &b);
    }
    LuFactors { lu, pivots }
}

/// ‖P·A − L·U‖∞ — the verification residual for an LU factorization of `a`.
pub fn lu_residual(a: &Matrix, f: &LuFactors) -> f64 {
    let mut pa = a.clone();
    apply_row_swaps(&mut pa, &f.pivots, 0);
    let recon = f.l().matmul(&f.u());
    let mut diff = pa;
    diff.sub_assign(&recon);
    diff.max_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_lu_reconstructs() {
        let a = Matrix::random(8, 3, 42);
        let mut panel = a.clone();
        let pivots = panel_lu(&mut panel);
        let f = LuFactors { lu: panel, pivots };
        assert!(
            lu_residual(&a, &f) < 1e-10,
            "residual {}",
            lu_residual(&a, &f)
        );
    }

    #[test]
    fn panel_lu_pivots_move_largest() {
        // First column is [1, 100, 2]: pivot must pick row 1.
        let mut p = Matrix::from_vec(3, 1, vec![1.0, 100.0, 2.0]);
        let piv = panel_lu(&mut p);
        assert_eq!(piv, vec![1]);
        assert_eq!(p[(0, 0)], 100.0);
    }

    #[test]
    fn trsm_solves_unit_lower() {
        let l = Matrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, 2.0, 1.0, 0.0, 3.0, 4.0, 1.0]);
        let x_true = Matrix::random(3, 2, 5);
        let mut b = l.matmul(&x_true);
        trsm_lower_unit(&l, &mut b);
        let mut diff = b;
        diff.sub_assign(&x_true);
        assert!(diff.max_abs() < 1e-12);
    }

    #[test]
    fn blocked_lu_matches_direct_reconstruction() {
        for (n, r) in [(8, 2), (12, 4), (16, 16), (20, 5)] {
            let a = Matrix::random(n, n, n as u64);
            let f = blocked_lu(&a, r);
            let res = lu_residual(&a, &f);
            assert!(res < 1e-9, "n={n} r={r} residual {res}");
        }
    }

    #[test]
    fn blocked_lu_handles_general_pivoting() {
        // Non-dominant matrices force real row swaps at every step.
        for (n, r) in [(12, 3), (24, 8), (32, 4)] {
            let a = Matrix::random_general(n, n, 1000 + n as u64);
            let f = blocked_lu(&a, r);
            let res = lu_residual(&a, &f);
            assert!(res < 1e-9, "n={n} r={r} residual {res}");
            let swaps = f
                .pivots
                .iter()
                .enumerate()
                .filter(|&(i, &p)| p != i)
                .count();
            assert!(swaps > 0, "expected non-trivial pivoting");
        }
    }

    #[test]
    fn blocked_lu_block_size_independent() {
        // The factorization (values, not just the product) must not depend
        // on the block size: same pivots, same packed LU.
        let a = Matrix::random(12, 12, 3);
        let f1 = blocked_lu(&a, 2);
        let f2 = blocked_lu(&a, 6);
        let f3 = blocked_lu(&a, 12);
        assert_eq!(f1.pivots, f2.pivots);
        assert_eq!(f2.pivots, f3.pivots);
        let d12 = {
            let mut d = f1.lu.clone();
            d.sub_assign(&f2.lu);
            d.max_abs()
        };
        let d23 = {
            let mut d = f2.lu.clone();
            d.sub_assign(&f3.lu);
            d.max_abs()
        };
        assert!(d12 < 1e-10 && d23 < 1e-10, "d12={d12} d23={d23}");
    }

    #[test]
    fn l_and_u_shapes() {
        let a = Matrix::random(6, 6, 9);
        let f = blocked_lu(&a, 3);
        let l = f.l();
        let u = f.u();
        assert_eq!((l.rows(), l.cols()), (6, 6));
        assert_eq!((u.rows(), u.cols()), (6, 6));
        for i in 0..6 {
            assert_eq!(l[(i, i)], 1.0);
            for j in i + 1..6 {
                assert_eq!(l[(i, j)], 0.0);
                assert_eq!(u[(j, i)], 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_panel_detected() {
        let mut p = Matrix::zeros(3, 2);
        panel_lu(&mut p);
    }

    #[test]
    fn apply_row_swaps_matches_pivot_semantics() {
        let a = Matrix::from_fn(3, 1, |i, _| i as f64);
        let mut b = a.clone();
        // pivots [2, 2]: swap(0,2) then swap(1,2)
        apply_row_swaps(&mut b, &[2, 2], 0);
        assert_eq!(b.as_slice(), &[2.0, 0.0, 1.0]);
    }
}
