//! Cache-blocked compute kernels with a pinned accumulation order.
//!
//! The paper's experiments run "no optimized linear algebra library"; the
//! first PRs kept that spirit with scalar loops. This module adds the
//! blocked kernels the scheduler deserves — packed GEMM with an `MR × NR`
//! register tile, a blocked `trsm`, and a blocked panel factorization —
//! while preserving the repository's strongest invariant: **bitwise
//! determinism**. Cross-engine tests pin the parallel applications to the
//! sequential reference byte for byte, so a kernel may reorder *memory
//! traffic* freely but must never reorder *floating-point accumulation*.
//!
//! # The determinism contract
//!
//! Every kernel computes each output element through **one
//! multiply-accumulate chain in ascending `k` order**:
//!
//! * [`gemm_blocked`] loads the `C` tile into registers, accumulates over
//!   the full inner dimension (`KC = K`, no partial products merged out of
//!   order), and folds `alpha` into the packed copy of `A` — exactly the
//!   arithmetic of the scalar `ikj` loop, element for element.
//! * [`trsm_blocked`] splits the row loop into blocks: updates from already
//!   solved rows arrive via one gemm call (`k` ascending), then the
//!   diagonal triangle finishes the chain (`x -= l·b` and `x += (−l)·b`
//!   are the same IEEE-754 operation).
//! * [`panel_lu_blocked`] is right-looking with an inner column block:
//!   pivot decisions see exactly the values the unblocked elimination
//!   would, because deferred right-strip updates are applied in ascending
//!   `k` blocks before each sub-panel is factored.
//!
//! Consequently `gemm_blocked == gemm_scalar`, `trsm_blocked == the scalar
//! solve`, and `panel_lu_blocked == the unblocked panel LU` **exactly**
//! (`==` on the `f64` bit patterns), which the proptests in
//! `tests/proptest_kernels.rs` enforce. The naive `ijk` loop
//! ([`gemm_naive`]) is kept only as the benchmark baseline and the
//! ulp-bounded oracle — its accumulation order differs, so it is *not*
//! bit-comparable.
//!
//! # Blocking scheme
//!
//! `B` is packed once into `NR`-column panels, `A` row-panel by row-panel
//! into `MR`-row panels with `alpha` pre-multiplied; the microkernel keeps
//! an `MR × NR` accumulator tile in registers and streams both packed
//! panels with unit stride, so the compiler autovectorizes the inner loop
//! (two `f64` lanes on baseline x86-64) without any arch-specific
//! intrinsics. Partial edge tiles run the same loop with guarded loads and
//! stores — the pad lanes accumulate zeros and are never written back.

use crate::matrix::Matrix;

/// Microkernel tile height (rows of `C` held in registers).
pub const MR: usize = 4;
/// Microkernel tile width (columns of `C` held in registers).
pub const NR: usize = 8;

/// Problem volume (`m·n·k`) above which [`gemm_auto`] picks the packed
/// blocked path; below it the packing traffic outweighs the reuse.
pub const BLOCK_THRESHOLD: usize = 16 * 16 * 16;

/// Whether [`gemm_auto`] runs the blocked kernel for an `m×k · k×n`
/// product. Exposed so the FLOP accounting (`flops::gemm_cost`) can charge
/// packing traffic exactly when it happens.
pub fn uses_blocked(m: usize, n: usize, k: usize) -> bool {
    m * n * k >= BLOCK_THRESHOLD
}

// --- scalar references --------------------------------------------------------

/// Textbook `ijk` GEMM (`C = alpha·A·B + beta·C`): the *naive* baseline.
///
/// Strided walks down columns of `B` in the innermost loop make this the
/// cache-hostile reference the benchmark's "naive vs blocked" comparison
/// and the ulp-bounded proptests measure against. Accumulation is still a
/// single `k`-ascending chain per element, but intermediate sums live in a
/// scalar rather than the `C` row, so it is only *mathematically* equal to
/// the other kernels.
pub fn gemm_naive(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, kdim, n) = check_dims(a, b, c);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..kdim {
                acc += a[(i, k)] * b[(k, j)];
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

/// Scalar `ikj` GEMM: the cache-friendly fallback and the bitwise
/// reference for [`gemm_blocked`].
///
/// The innermost loop runs along contiguous rows of `B` and `C` (unit
/// stride, autovectorizable). Per element the accumulation is
/// `c += (alpha·a[i,k]) · b[k,j]` for `k` ascending — the exact chain the
/// blocked kernel reproduces.
pub fn gemm_scalar(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, kdim, n) = check_dims(a, b, c);
    scale(beta, c.as_mut_slice());
    gemm_scalar_strided(
        alpha,
        a.as_slice(),
        kdim,
        m,
        kdim,
        b.as_slice(),
        n,
        c.as_mut_slice(),
        n,
        n,
    );
}

/// Packed blocked GEMM (`C = alpha·A·B + beta·C`), bitwise identical to
/// [`gemm_scalar`]. See the module docs for the blocking scheme and the
/// determinism contract.
pub fn gemm_blocked(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, kdim, n) = check_dims(a, b, c);
    scale(beta, c.as_mut_slice());
    gemm_blocked_strided(
        alpha,
        a.as_slice(),
        kdim,
        m,
        kdim,
        b.as_slice(),
        n,
        c.as_mut_slice(),
        n,
        n,
    );
}

/// GEMM with automatic kernel selection: blocked above
/// [`BLOCK_THRESHOLD`], scalar `ikj` below. Both paths produce identical
/// bits, so the threshold is purely a performance knob.
pub fn gemm_auto(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    if uses_blocked(a.rows(), b.cols(), a.cols()) {
        gemm_blocked(alpha, a, b, beta, c);
    } else {
        gemm_scalar(alpha, a, b, beta, c);
    }
}

fn check_dims(a: &Matrix, b: &Matrix, c: &Matrix) -> (usize, usize, usize) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "C rows");
    assert_eq!(c.cols(), b.cols(), "C cols");
    (a.rows(), a.cols(), b.cols())
}

fn scale(beta: f64, c: &mut [f64]) {
    if beta != 1.0 {
        for v in c {
            *v *= beta;
        }
    }
}

// --- strided cores ------------------------------------------------------------
//
// The in-place factorizations below need `C += alpha·A·B` over sub-blocks
// of a shared buffer, so the cores take raw row-major slices with explicit
// leading dimensions (`ld*` = row stride) and no beta pass.

/// `C += alpha·A·B` in scalar `ikj` order over strided buffers.
#[allow(clippy::too_many_arguments)]
fn gemm_scalar_strided(
    alpha: f64,
    a: &[f64],
    lda: usize,
    m: usize,
    kdim: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    n: usize,
) {
    for i in 0..m {
        let c_row = &mut c[i * ldc..i * ldc + n];
        for k in 0..kdim {
            let aik = alpha * a[i * lda + k];
            let b_row = &b[k * ldb..k * ldb + n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

/// `C += alpha·A·B` through the packed microkernel, bitwise identical to
/// [`gemm_scalar_strided`].
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_strided(
    alpha: f64,
    a: &[f64],
    lda: usize,
    m: usize,
    kdim: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    n: usize,
) {
    if m == 0 || n == 0 || kdim == 0 {
        return;
    }
    // Pack B once: NR-column panels, k-major, zero-padded to full NR.
    let n_panels = n.div_ceil(NR);
    let mut bp = vec![0.0f64; n_panels * kdim * NR];
    for q in 0..n_panels {
        let j0 = q * NR;
        let nr = NR.min(n - j0);
        let panel = &mut bp[q * kdim * NR..(q + 1) * kdim * NR];
        for k in 0..kdim {
            let src = &b[k * ldb + j0..k * ldb + j0 + nr];
            panel[k * NR..k * NR + nr].copy_from_slice(src);
        }
    }
    // Row-panel loop over A: pack MR rows (alpha folded in), sweep the B
    // panels, one register tile per (row panel, column panel) pair.
    let mut ap = vec![0.0f64; kdim * MR];
    for p in 0..m.div_ceil(MR) {
        let i0 = p * MR;
        let mr = MR.min(m - i0);
        ap.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..mr {
            let src = &a[(i0 + i) * lda..(i0 + i) * lda + kdim];
            for (k, &v) in src.iter().enumerate() {
                ap[k * MR + i] = alpha * v;
            }
        }
        for q in 0..n_panels {
            let j0 = q * NR;
            let nr = NR.min(n - j0);
            let bpanel = &bp[q * kdim * NR..(q + 1) * kdim * NR];
            let ctile = &mut c[i0 * ldc + j0..];
            if mr == MR && nr == NR {
                microkernel_full(kdim, &ap, bpanel, ctile, ldc);
            } else {
                microkernel_edge(kdim, &ap, bpanel, ctile, ldc, mr, nr);
            }
        }
    }
}

/// Full `MR × NR` register tile: load `C`, accumulate the whole `k` range
/// with unit-stride packed operands, store back. One chain per element.
#[inline]
fn microkernel_full(kdim: usize, ap: &[f64], bp: &[f64], c: &mut [f64], ldc: usize) {
    let mut acc = [[0.0f64; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[i * ldc..i * ldc + NR]);
    }
    for k in 0..kdim {
        let av = &ap[k * MR..k * MR + MR];
        let bv = &bp[k * NR..k * NR + NR];
        for (i, row) in acc.iter_mut().enumerate() {
            let aik = av[i];
            for (cv, b) in row.iter_mut().zip(bv) {
                *cv += aik * b;
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        c[i * ldc..i * ldc + NR].copy_from_slice(row);
    }
}

/// Edge tile (`mr ≤ MR`, `nr ≤ NR`): same accumulation loop with guarded
/// loads and stores. Pad lanes start at zero, accumulate padded zeros, and
/// are never written back.
#[inline]
fn microkernel_edge(
    kdim: usize,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate().take(mr) {
        row[..nr].copy_from_slice(&c[i * ldc..i * ldc + nr]);
    }
    for k in 0..kdim {
        let av = &ap[k * MR..k * MR + MR];
        let bv = &bp[k * NR..k * NR + NR];
        for (i, row) in acc.iter_mut().enumerate() {
            let aik = av[i];
            for (cv, b) in row.iter_mut().zip(bv) {
                *cv += aik * b;
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(mr) {
        c[i * ldc..i * ldc + nr].copy_from_slice(&row[..nr]);
    }
}

// --- blocked trsm -------------------------------------------------------------

/// Row-block size of [`trsm_blocked`].
pub const TRSM_BLOCK: usize = 32;

/// Solve `L · X = B` in place of `B` (`L` unit lower triangular, only the
/// strict lower part read), row-blocked: each block first receives the
/// update from all already-solved rows through one gemm call, then the
/// diagonal triangle finishes scalar. Per element the subtraction chain is
/// `k = 0..i` ascending — bitwise identical to the unblocked solve.
pub fn trsm_blocked(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    assert_eq!(l.cols(), n, "L must be square");
    assert_eq!(b.rows(), n, "dimension mismatch");
    let cols = b.cols();
    let ld = l.as_slice();
    let bd = b.as_mut_slice();
    let mut i0 = 0;
    while i0 < n {
        let tb = TRSM_BLOCK.min(n - i0);
        if i0 > 0 {
            // B[i0..i0+tb] += (−1) · L[i0..i0+tb, 0..i0] · B[0..i0]
            let (solved, rest) = bd.split_at_mut(i0 * cols);
            gemm_blocked_strided(
                -1.0,
                &ld[i0 * n..],
                n,
                tb,
                i0,
                solved,
                cols,
                &mut rest[..tb * cols],
                cols,
                cols,
            );
        }
        // Diagonal triangle: forward substitution inside the block.
        for i in i0 + 1..i0 + tb {
            for k in i0..i {
                let lik = ld[i * n + k];
                let (top, row_i) = bd.split_at_mut(i * cols);
                let row_k = &top[k * cols..k * cols + cols];
                for (x, bk) in row_i[..cols].iter_mut().zip(row_k) {
                    *x -= lik * bk;
                }
            }
        }
        i0 += tb;
    }
}

// --- blocked panel factorization ---------------------------------------------

/// Inner column-block width of [`panel_lu_blocked`].
pub const PANEL_BLOCK: usize = 8;

/// Unblocked rectangular panel LU with partial pivoting — the bitwise
/// reference for [`panel_lu_blocked`] and the oracle of its proptests.
/// Identical to the historical scalar loop except that zero multipliers
/// are *not* skipped, so the blocked kernel (which cannot skip inside a
/// gemm) matches it bit for bit even in signed-zero corners.
pub fn panel_lu_naive(panel: &mut Matrix) -> Vec<usize> {
    let m = panel.rows();
    let r = panel.cols();
    assert!(m >= r, "panel must be at least as tall as wide");
    let mut pivots = Vec::with_capacity(r);
    for k in 0..r {
        let p = pivot_row(panel, k, m);
        panel.swap_rows(k, p);
        pivots.push(p);
        let akk = panel[(k, k)];
        for i in k + 1..m {
            let lik = panel[(i, k)] / akk;
            panel[(i, k)] = lik;
            for j in k + 1..r {
                let upd = lik * panel[(k, j)];
                panel[(i, j)] -= upd;
            }
        }
    }
    pivots
}

/// Partial-pivot search in column `k`, rows `k..m`; panics on a singular
/// column (same contract as the historical scalar panel LU).
fn pivot_row(panel: &Matrix, k: usize, m: usize) -> usize {
    let mut p = k;
    let mut best = panel[(k, k)].abs();
    for i in k + 1..m {
        let v = panel[(i, k)].abs();
        if v > best {
            best = v;
            p = i;
        }
    }
    assert!(best > 0.0, "panel is singular at column {k}");
    p
}

/// Blocked rectangular panel LU with partial pivoting, bitwise identical
/// to [`panel_lu_naive`]: right-looking over [`PANEL_BLOCK`]-wide column
/// blocks — factor the sub-panel scalar (full-width row swaps, elimination
/// confined to the block), then push the deferred right-strip updates
/// through the blocked trsm triangle and one gemm call. Every element
/// still accumulates in ascending `k` order, and every pivot decision sees
/// exactly the unblocked values.
pub fn panel_lu_blocked(panel: &mut Matrix) -> Vec<usize> {
    let m = panel.rows();
    let r = panel.cols();
    assert!(m >= r, "panel must be at least as tall as wide");
    let mut pivots = Vec::with_capacity(r);
    let mut c0 = 0;
    while c0 < r {
        let ib = PANEL_BLOCK.min(r - c0);
        // Factor the sub-panel (columns c0..c0+ib, rows c0..m).
        for k in c0..c0 + ib {
            let p = pivot_row(panel, k, m);
            panel.swap_rows(k, p);
            pivots.push(p);
            let akk = panel[(k, k)];
            for i in k + 1..m {
                let lik = panel[(i, k)] / akk;
                panel[(i, k)] = lik;
                for j in k + 1..c0 + ib {
                    let upd = lik * panel[(k, j)];
                    panel[(i, j)] -= upd;
                }
            }
        }
        let right0 = c0 + ib;
        if right0 < r {
            let rn = r - right0;
            // Deferred right-strip rows c0..c0+ib: the trsm triangle
            // (k = c0..i ascending, continuing each element's chain).
            for i in c0 + 1..c0 + ib {
                for k in c0..i {
                    let lik = panel[(i, k)];
                    for j in right0..r {
                        let upd = lik * panel[(k, j)];
                        panel[(i, j)] -= upd;
                    }
                }
            }
            // Rows below the sub-panel: one gemm with the L21 strip. The
            // strip is copied out first — it shares rows with the target
            // block — which doubles as the microkernel's packing copy.
            let rows_below = m - right0;
            if rows_below > 0 {
                let mut l21 = vec![0.0f64; rows_below * ib];
                for i in 0..rows_below {
                    for k in 0..ib {
                        l21[i * ib + k] = panel[(right0 + i, c0 + k)];
                    }
                }
                let ldp = r;
                let data = panel.as_mut_slice();
                let (top, below) = data.split_at_mut(right0 * ldp);
                gemm_blocked_strided(
                    -1.0,
                    &l21,
                    ib,
                    rows_below,
                    ib,
                    &top[c0 * ldp + right0..],
                    ldp,
                    &mut below[right0..],
                    ldp,
                    rn,
                );
            }
        }
        c0 += ib;
    }
    pivots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: element {i} differs: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn blocked_gemm_is_bitwise_scalar() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (4, 8, 8), (13, 9, 17), (32, 32, 32)] {
            let a = Matrix::random_general(m, k, 1 + (m * k) as u64);
            let b = Matrix::random_general(k, n, 2 + (k * n) as u64);
            let mut c1 = Matrix::random_general(m, n, 3);
            let mut c2 = c1.clone();
            gemm_scalar(-0.5, &a, &b, 0.25, &mut c1);
            gemm_blocked(-0.5, &a, &b, 0.25, &mut c2);
            assert_bits_eq(&c1, &c2, "gemm m×k×n");
        }
    }

    #[test]
    fn blocked_gemm_matches_naive_numerically() {
        let a = Matrix::random_general(20, 15, 4);
        let b = Matrix::random_general(15, 11, 5);
        let mut c1 = Matrix::zeros(20, 11);
        let mut c2 = Matrix::zeros(20, 11);
        gemm_naive(1.0, &a, &b, 0.0, &mut c1);
        gemm_blocked(1.0, &a, &b, 0.0, &mut c2);
        let mut d = c1.clone();
        d.sub_assign(&c2);
        assert!(d.max_abs() < 1e-12, "diff {}", d.max_abs());
    }

    #[test]
    fn trsm_blocked_is_bitwise_forward_substitution() {
        for n in [1usize, 7, 32, 33, 70] {
            let mut l = Matrix::random_general(n, n, 6 + n as u64);
            for i in 0..n {
                l[(i, i)] = 1.0;
            }
            let b0 = Matrix::random_general(n, 5, 7 + n as u64);
            let mut b1 = b0.clone();
            // Unblocked reference: plain forward substitution, k ascending.
            for i in 0..n {
                for k in 0..i {
                    let lik = l[(i, k)];
                    for j in 0..5 {
                        let upd = lik * b1[(k, j)];
                        b1[(i, j)] -= upd;
                    }
                }
            }
            let mut b2 = b0.clone();
            trsm_blocked(&l, &mut b2);
            assert_bits_eq(&b1, &b2, "trsm n");
        }
    }

    #[test]
    fn panel_lu_blocked_is_bitwise_naive() {
        for (m, r) in [(4, 4), (12, 5), (40, 16), (33, 20)] {
            let p0 = Matrix::random_general(m, r, 11 + (m + r) as u64);
            let mut p1 = p0.clone();
            let mut p2 = p0.clone();
            let piv1 = panel_lu_naive(&mut p1);
            let piv2 = panel_lu_blocked(&mut p2);
            assert_eq!(piv1, piv2, "pivots m={m} r={r}");
            assert_bits_eq(&p1, &p2, "panel m×r");
        }
    }

    #[test]
    fn gemm_auto_threshold_is_bit_invisible() {
        // Both sides of the threshold compute identical bits.
        let a = Matrix::random_general(16, 16, 21);
        let b = Matrix::random_general(16, 16, 22);
        let mut c1 = Matrix::zeros(16, 16);
        let mut c2 = Matrix::zeros(16, 16);
        gemm_scalar(1.0, &a, &b, 0.0, &mut c1);
        gemm_auto(1.0, &a, &b, 0.0, &mut c2);
        assert_bits_eq(&c1, &c2, "auto dispatch");
        assert!(uses_blocked(16, 16, 16));
        assert!(!uses_blocked(15, 15, 15));
    }
}
