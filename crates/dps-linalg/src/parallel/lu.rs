//! Block LU factorization with partial pivoting under DPS — Fig. 11–15.
//!
//! The matrix is distributed "onto the computation nodes as columns of
//! vertically adjacent blocks" (paper §5): block-column `j` lives in the
//! thread state of worker `j mod p`. The schedule follows Fig. 12:
//!
//! * **(a)** the entry split factors the top-left panel and posts one task
//!   per other block column, each carrying the panel (`L11`, `L21`) and the
//!   pivot record — that broadcast is the step's communication;
//! * **(b)/(d)** a leaf per column applies the row flips, solves the
//!   triangular system (`trsm`), and performs its column's trailing-matrix
//!   multiplications, then posts a notification; the notification for the
//!   *next panel column* carries the column's updated panel rows;
//! * **(e)** a *stream* operation collects the notifications. It runs in a
//!   **separate thread collection** on the next panel owner's node (the
//!   paper maps collective work to separate collections "for load balancing
//!   purposes", Fig. 14), so the moment the next panel column reports, the
//!   node's second processor factors the next panel while the first
//!   processor keeps updating the remaining columns; step-`k+1` tasks then
//!   stream out as each column reports — the pipelining of Fig. 13;
//! * **(f)** row flips on previous columns travel as cheap pivot-only
//!   tasks, and the factored panel travels back to its owner as a
//!   store-back task;
//! * **(g)** a final merge collects the last step's notifications.
//!
//! The **non-pipelined** variant replaces each stream with a merge (wait
//! for *all* notifications, then factor the panel) followed by a split that
//! rebroadcasts — "a standard merge-split construct instead of the stream
//! operations" — exactly the comparison of Fig. 15.
//!
//! Per-column task ordering is causal by construction: the step-`k+1` task
//! for column `j` is only posted after the notification that column `j`
//! finished step `k` was received.
//!
//! # Chunked trailing updates
//!
//! The trailing update — the `A_ij -= L21 · U_kj` gemm dominating each
//! step — is no longer one monolithic task per block column. The column
//! worker (`ColumnWork`) is a nested *split*: it performs the row flips
//! and the `trsm`, then opens a [`dps_sched::ChunkHub`] lease
//! over the column's tail *row blocks* and posts a wave of boundary-free
//! [`UpdTicket`]s (the distributed chunk-calculation protocol of the
//! `ScheduledSplit` machinery: tickets carry only the lease id, and each
//! executor claims its `(start, len)` boundary locally — or over the wire
//! on the distributed engine). A leaf (`UpdateWork`) claims one chunk
//! per ticket and runs the partial gemm through the blocked kernel; a
//! matching per-column merge (`ChunkMerge`) closes the wave on the
//! column's owner and forwards exactly one final notification, so the
//! step collectors see the same one-notify-per-column protocol as the
//! unchunked schedule. [`LuConfig::update_chunks`] controls the
//! granularity (1 = the legacy one-task-per-column shape). Chunks split
//! the *row* dimension only, so every element's ascending-`k`
//! accumulation chain is untouched and the factorization stays bitwise
//! identical to the sequential reference at any granularity.

use std::collections::HashMap;
use std::sync::Arc;

use dps_cluster::{default_mapping, ClusterSpec};
use dps_core::prelude::*;
use dps_core::sched::{build_placement, chunk_calc_cost, OwnerMap};
use dps_core::{dps_token, Engine};
use dps_des::SimSpan;
use dps_sched::{Chunk, ChunkCalc, ChunkHub, Distribution, PolicyKind};
use dps_serial::Buffer;

use crate::factor::{panel_lu, trsm_lower_unit, LuFactors};
use crate::flops;
use crate::matrix::{gemm, Matrix};

dps_token! {
    /// Kick-off order (also the trigger between merge and split in the
    /// non-pipelined variant).
    pub struct LuStart { pub nb: u32, pub r: u32 }
}

dps_token! {
    /// One per-column task of step `k`:
    /// * `j > k` — apply pivots, trsm, trailing update (`panel` holds the
    ///   step's factored panel);
    /// * `j < k` — row flips only (`panel` empty);
    /// * `j == k` — store the factored panel back into its owning column
    ///   (`panel` holds the factor values).
    pub struct LuTask {
        pub k: u32,
        pub j: u32,
        pub nb: u32,
        pub r: u32,
        pub panel: Buffer<f64>,
        pub pivots: Buffer<u32>,
    }
}

dps_token! {
    /// Notification that a chunk of column `j`'s step-`k` work landed.
    /// `done == 1` marks the column's *final* chunk — only then may the
    /// collector post the column's step-`k+1` task; earlier chunks report
    /// with `done == 0` so the merge accounting stays one-output-per-input
    /// exact. When `j` is the next panel column (`j == k+1`), the final
    /// notification's `panel` carries the column's updated rows
    /// `(k+1)·r..n` so the collector can factor the next panel without
    /// touching the owner's thread state.
    pub struct LuNotify { pub k: u32, pub j: u32, pub r: u32, pub done: u32, pub panel: Buffer<f64> }
}

dps_token! {
    /// Boundary-free trailing-update ticket: step `k`, column `j`, and the
    /// [`ChunkHub`] lease the executor claims its row-block range from
    /// (the distributed chunk-calculation protocol — tickets carry no
    /// `start`/`len`). `chunks == 0` is a passthrough for tasks with no
    /// trailing work (row flips, the panel store-back): the update leaf
    /// forwards the column's notification unchanged.
    pub struct UpdTicket {
        pub k: u32,
        pub j: u32,
        pub nb: u32,
        pub r: u32,
        pub lease: u64,
        pub chunks: u32,
    }
}

dps_token! {
    /// Termination token.
    pub struct LuFinished { pub nb: u32 }
}

dps_token! {
    /// Stage block column `j` (an `n × r` slab) into its owner's store —
    /// the engine-generic replacement for poking thread state from outside.
    pub struct LoadColumn { pub j: u32, pub rows: u32, pub r: u32, pub data: Buffer<f64> }
}

dps_token! {
    /// Acknowledgement of a [`LoadColumn`].
    pub struct ColumnLoaded { pub j: u32 }
}

dps_token! {
    /// Ask column `j`'s owner for the factored column and its pivot record.
    pub struct DumpColumn { pub j: u32 }
}

dps_token! {
    /// A factored block column travelling back to the driver.
    pub struct ColumnDump { pub j: u32, pub rows: u32, pub data: Buffer<f64>, pub pivots: Buffer<u32> }
}

/// Per-worker distributed state: the block columns this worker owns and the
/// pivot records needed to assemble the global factorization.
#[derive(Default)]
pub struct ColumnStore {
    /// Block columns owned by this thread: `j → n×r column`.
    pub cols: HashMap<u32, Matrix>,
    /// Pivot records per step (recorded by the owner of each panel).
    pub pivots: HashMap<u32, Vec<u32>>,
    /// `L21` strips of in-flight chunked trailing updates, keyed `(k, j)`:
    /// stashed by the column worker, consumed chunk by chunk, dropped with
    /// the last chunk.
    pub panels: HashMap<(u32, u32), Matrix>,
    /// Chunks still outstanding per in-flight trailing update `(k, j)`.
    pub pending: HashMap<(u32, u32), u32>,
}

/// Per-collector state (streams / step merges): the cached factored panel
/// between the merge and split halves of the non-pipelined construct.
#[derive(Default)]
pub struct PanelStore {
    /// `k → (packed panel rows k·r.., pivots)`.
    pub cache: HashMap<u32, (Vec<f64>, Vec<u32>)>,
}

/// FLOP cost of factoring panel `k`.
fn panel_cost(k: u32, nb: u32, r: u32) -> f64 {
    let rows = (nb - k) as usize * r as usize;
    flops::panel_lu(rows, r as usize)
}

/// Build the step-`k` task for column `j`.
fn make_task(k: u32, j: u32, nb: u32, r: u32, panel: &[f64], pivots: &[u32]) -> LuTask {
    let needs_panel = j >= k; // updates and the store-back carry data
    LuTask {
        k,
        j,
        nb,
        r,
        panel: if needs_panel {
            panel.to_vec().into()
        } else {
            Buffer::new()
        },
        pivots: pivots.to_vec().into(),
    }
}

/// All step-`k` tasks in priority order: the factored panel's store-back
/// first, then trailing updates (the next panel column leading), then the
/// cheap row flips.
fn step_tasks(k: u32, nb: u32, r: u32, panel: &[f64], pivots: &[u32]) -> Vec<LuTask> {
    let mut out = Vec::with_capacity(nb as usize);
    out.push(make_task(k, k, nb, r, panel, pivots));
    for j in k + 1..nb {
        out.push(make_task(k, j, nb, r, panel, pivots));
    }
    for j in 0..k {
        out.push(make_task(k, j, nb, r, panel, pivots));
    }
    out
}

/// What the head half of a column task produced.
enum HeadOutcome {
    /// No trailing work (row flips, store-back): the ticket passes straight
    /// through to the notification.
    Done { cost: f64 },
    /// Flips + trsm done, the `L21` strip is stashed; the trailing update
    /// covers `tail_blocks` row blocks awaiting chunked execution.
    Update { cost: f64, tail_blocks: u64 },
}

/// Execute the head half of one [`LuTask`] against the local column store:
/// everything except the trailing update (which [`run_update_chunk`] does
/// chunk by chunk).
fn run_head_task(store: &mut ColumnStore, t: &LuTask) -> HeadOutcome {
    let (k, j, nb, r) = (t.k as usize, t.j as usize, t.nb as usize, t.r as usize);
    let n = nb * r;
    let col = store
        .cols
        .get_mut(&t.j)
        .expect("task routed to the column owner");
    if j == k {
        // Store-back: the collector factored this panel remotely. An empty
        // panel is the entry split's self-acknowledgement (it factored
        // locally); only the pivot record travels then.
        if !t.panel.is_empty() {
            let panel_rows = n - k * r;
            let panel = Matrix::from_vec(panel_rows, r, t.panel.to_vec());
            col.set_block(k * r, 0, &panel);
        }
        store.pivots.insert(t.k, t.pivots.to_vec());
        return HeadOutcome::Done {
            cost: t.panel.len() as f64,
        };
    }
    // Row flips of this step's pivoting (offset k·r).
    for (idx, &p) in t.pivots.iter().enumerate() {
        col.swap_rows(k * r + idx, k * r + p as usize);
    }
    let mut cost = (t.pivots.len() * r) as f64;
    if j < k {
        return HeadOutcome::Done { cost };
    }
    let panel_rows = n - k * r;
    let panel = Matrix::from_vec(panel_rows, r, t.panel.to_vec());
    // trsm: U_kj = L11⁻¹ · A_kj.
    let l11 = panel.block(0, 0, r, r);
    let mut u_kj = col.block(k * r, 0, r, r);
    trsm_lower_unit(&l11, &mut u_kj);
    col.set_block(k * r, 0, &u_kj);
    cost += flops::trsm(r, r);
    // Stash the L21 strip for the chunked trailing update (j > k implies
    // k < nb−1, so the tail is non-empty).
    let below = panel_rows - r;
    store.panels.insert((t.k, t.j), panel.block(r, 0, below, r));
    HeadOutcome::Update {
        cost,
        tail_blocks: (below / r) as u64,
    }
}

/// Execute one claimed trailing-update chunk — row blocks
/// `start..start+len` of the tail of column `j` at step `k` — through the
/// blocked gemm kernel. Returns `(flop cost, column finished this step,
/// panel rows for the k+1 notification if this column is the next panel)`.
fn run_update_chunk(store: &mut ColumnStore, t: &UpdTicket, c: &Chunk) -> (f64, bool, Vec<f64>) {
    let (k, j, nb, r) = (t.k as usize, t.j as usize, t.nb as usize, t.r as usize);
    let n = nb * r;
    let chunk_rows = c.len as usize * r;
    let l21 = store
        .panels
        .get(&(t.k, t.j))
        .expect("head stashed the L21 strip")
        .block(c.start as usize * r, 0, chunk_rows, r);
    let col = store
        .cols
        .get_mut(&t.j)
        .expect("ticket routed to the column owner");
    let u_kj = col.block(k * r, 0, r, r);
    let row0 = (k + 1 + c.start as usize) * r;
    let mut tail = col.block(row0, 0, chunk_rows, r);
    // A_ij -= L21 · U_kj, restricted to this chunk's rows: splitting the
    // row dimension never touches an element's k-accumulation chain.
    gemm(-1.0, &l21, &u_kj, 1.0, &mut tail);
    col.set_block(row0, 0, &tail);
    let cost = flops::gemm_cost(chunk_rows, r, r);
    let rem = store
        .pending
        .get_mut(&(t.k, t.j))
        .expect("pending count for the in-flight update");
    *rem -= 1;
    let finished = *rem == 0;
    let mut next_panel = Vec::new();
    if finished {
        store.pending.remove(&(t.k, t.j));
        store.panels.remove(&(t.k, t.j));
        // If this column becomes the next panel, ship its updated rows
        // with the notification (zero network cost: the collector sits on
        // this node).
        if j == k + 1 {
            let col = store.cols.get(&t.j).expect("column present");
            next_panel = col.block((k + 1) * r, 0, n - (k + 1) * r, r).into_vec();
        }
    }
    (cost, finished, next_panel)
}

// --- operations ---------------------------------------------------------------

/// Entry split (Fig. 12 a): factor panel 0 locally, broadcast step-0 tasks.
struct StartSplit;
impl SplitOperation for StartSplit {
    type Thread = ColumnStore;
    type In = LuStart;
    type Out = LuTask;
    fn execute(&mut self, ctx: &mut OpCtx<'_, ColumnStore, LuTask>, s: LuStart) {
        let (nb, r) = (s.nb, s.r);
        ctx.charge_flops(panel_cost(0, nb, r));
        let n = (nb * r) as usize;
        let store = ctx.thread();
        let col = store.cols.get_mut(&0).expect("column 0 is local");
        let mut panel = col.block(0, 0, n, r as usize);
        let piv: Vec<u32> = panel_lu(&mut panel).into_iter().map(|p| p as u32).collect();
        col.set_block(0, 0, &panel);
        store.pivots.insert(0, piv.clone());
        let packed = panel.into_vec();
        // Self-acknowledgement first: every column — including this one —
        // must emit a step-0 notification, because all later tasks for a
        // column are posted in response to its previous notification.
        ctx.post(LuTask {
            k: 0,
            j: 0,
            nb,
            r,
            panel: Buffer::new(),
            pivots: piv.clone().into(),
        });
        for j in 1..nb {
            ctx.post(make_task(0, j, nb, r, &packed, &piv));
        }
    }
}

/// Per-column worker (Fig. 12 b/d/f), head half: row flips, trsm, and —
/// for trailing updates — opening the chunk lease and posting the wave of
/// boundary-free [`UpdTicket`]s that [`UpdateWork`] claims against. A
/// *split*, because a trailing update fans out into `update_chunks`
/// tickets; [`ChunkMerge`] closes each wave.
struct ColumnWork {
    hub: Arc<ChunkHub>,
    chunks: u32,
}
impl SplitOperation for ColumnWork {
    type Thread = ColumnStore;
    type In = LuTask;
    type Out = UpdTicket;
    fn execute(&mut self, ctx: &mut OpCtx<'_, ColumnStore, UpdTicket>, t: LuTask) {
        match run_head_task(ctx.thread(), &t) {
            HeadOutcome::Done { cost } => {
                ctx.charge_flops(cost);
                ctx.post(UpdTicket {
                    k: t.k,
                    j: t.j,
                    nb: t.nb,
                    r: t.r,
                    lease: u64::MAX,
                    chunks: 0,
                });
            }
            HeadOutcome::Update { cost, tail_blocks } => {
                ctx.charge_flops(cost);
                // Announce the tail's row blocks on the hub (forwarded to
                // the master's hub on the distributed engine) and post one
                // boundary-free ticket per chunk; the static partition
                // keeps the chunk boundaries deterministic.
                let lease = self.hub.open(ChunkCalc::new(
                    PolicyKind::Static,
                    tail_blocks,
                    self.chunks.max(1) as usize,
                    &[],
                ));
                ctx.thread().pending.insert((t.k, t.j), lease.chunks);
                for _ in 0..lease.chunks {
                    ctx.post(UpdTicket {
                        k: t.k,
                        j: t.j,
                        nb: t.nb,
                        r: t.r,
                        lease: lease.id,
                        chunks: lease.chunks,
                    });
                }
            }
        }
    }
}

/// Per-column worker, update half: claims one trailing-update chunk per
/// ticket from the hub lease, runs the partial gemm, and posts one
/// notification per chunk — marked final (`done == 1`) only when the last
/// chunk of the column's step has landed.
struct UpdateWork {
    hub: Arc<ChunkHub>,
}
impl LeafOperation for UpdateWork {
    type Thread = ColumnStore;
    type In = UpdTicket;
    type Out = LuNotify;
    fn execute(&mut self, ctx: &mut OpCtx<'_, ColumnStore, LuNotify>, t: UpdTicket) {
        if t.chunks == 0 {
            // Passthrough: flips / store-back finished in the head.
            ctx.post(LuNotify {
                k: t.k,
                j: t.j,
                r: t.r,
                done: 1,
                panel: Buffer::new(),
            });
            return;
        }
        let c = self
            .hub
            .claim(t.lease)
            .expect("one chunk per posted ticket");
        ctx.charge(chunk_calc_cost());
        let (cost, finished, next_panel) = run_update_chunk(ctx.thread(), &t, &c);
        ctx.charge_flops(cost);
        ctx.mark_chunk(c.len);
        ctx.post(LuNotify {
            k: t.k,
            j: t.j,
            r: t.r,
            done: u32::from(finished),
            panel: next_panel.into(),
        });
    }
}

/// Closes the chunk wave [`ColumnWork`] opened: collects the per-chunk
/// notifications of one column's step on the column's owner and forwards
/// the single final one (`done == 1`, carrying the next panel when the
/// column is `k+1`) — so the step collectors keep seeing exactly one
/// notification per column, chunked or not.
#[derive(Default)]
struct ChunkMerge {
    last: Option<LuNotify>,
}
impl MergeOperation for ChunkMerge {
    type Thread = ColumnStore;
    type In = LuNotify;
    type Out = LuNotify;
    fn consume(&mut self, _ctx: &mut OpCtx<'_, ColumnStore, LuNotify>, n: LuNotify) {
        if n.done == 1 {
            self.last = Some(n);
        }
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, ColumnStore, LuNotify>) {
        ctx.post(
            self.last
                .take()
                .expect("every chunk wave ends with a final notification"),
        );
    }
}

/// Pipelined step collector (Fig. 12 e): a stream operation in the separate
/// collector collection on the next panel owner's node. Factors the next
/// panel the moment that column reports; streams each step-`k+1` task out
/// as its column reports step `k` done.
struct StepStream {
    k: u32,
    nb: u32,
    r: u32,
    panel: Option<(Vec<f64>, Vec<u32>)>,
    waiting: Vec<u32>,
}

impl StepStream {
    fn new(k: u32, nb: u32, r: u32) -> impl Fn() -> Self {
        move || Self {
            k,
            nb,
            r,
            panel: None,
            waiting: Vec::new(),
        }
    }

    fn post_task(&self, ctx: &mut OpCtx<'_, PanelStore, LuTask>, j: u32) {
        let (panel, pivots) = self.panel.as_ref().expect("panel factored");
        ctx.post(make_task(self.k + 1, j, self.nb, self.r, panel, pivots));
    }
}

impl StreamOperation for StepStream {
    type Thread = PanelStore;
    type In = LuNotify;
    type Out = LuTask;
    fn consume(&mut self, ctx: &mut OpCtx<'_, PanelStore, LuTask>, n: LuNotify) {
        debug_assert_eq!(n.k, self.k);
        debug_assert_eq!(n.done, 1, "ChunkMerge forwards only final notifications");
        let next = self.k + 1;
        if n.j == next {
            // The next panel column is up to date: factor it *now* on this
            // node's second processor, without waiting for the rest of the
            // step (the pipelining of Fig. 13).
            ctx.charge_flops(panel_cost(next, self.nb, self.r));
            let rows = (self.nb - next) as usize * self.r as usize;
            let mut panel = Matrix::from_vec(rows, self.r as usize, n.panel.into_vec());
            let piv: Vec<u32> = panel_lu(&mut panel).into_iter().map(|p| p as u32).collect();
            self.panel = Some((panel.into_vec(), piv));
            // Send the factors home first, then release whoever already
            // reported (updates lead, flips trail).
            self.post_task(ctx, next);
            let mut waiting = std::mem::take(&mut self.waiting);
            waiting.sort_by_key(|&j| (j <= next, j));
            for j in waiting {
                self.post_task(ctx, j);
            }
        } else if self.panel.is_some() {
            self.post_task(ctx, n.j);
        } else {
            self.waiting.push(n.j);
        }
    }
    fn finalize(&mut self, _ctx: &mut OpCtx<'_, PanelStore, LuTask>) {
        debug_assert!(self.waiting.is_empty(), "all tasks posted on the fly");
    }
}

/// Non-pipelined step collector: a *merge* (wait for the whole step), whose
/// finalize factors the next panel; the split half rebroadcasts — the
/// paper's "standard merge-split construct".
struct StepMerge {
    k: u32,
    nb: u32,
    r: u32,
    panel_data: Vec<f64>,
}
impl StepMerge {
    fn new(k: u32, nb: u32, r: u32) -> impl Fn() -> Self {
        move || Self {
            k,
            nb,
            r,
            panel_data: Vec::new(),
        }
    }
}
impl MergeOperation for StepMerge {
    type Thread = PanelStore;
    type In = LuNotify;
    type Out = LuStart;
    fn consume(&mut self, _ctx: &mut OpCtx<'_, PanelStore, LuStart>, n: LuNotify) {
        debug_assert_eq!(n.done, 1, "ChunkMerge forwards only final notifications");
        if n.j == self.k + 1 {
            self.panel_data = n.panel.into_vec();
        }
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, PanelStore, LuStart>) {
        let next = self.k + 1;
        ctx.charge_flops(panel_cost(next, self.nb, self.r));
        let rows = (self.nb - next) as usize * self.r as usize;
        let mut panel =
            Matrix::from_vec(rows, self.r as usize, std::mem::take(&mut self.panel_data));
        let piv: Vec<u32> = panel_lu(&mut panel).into_iter().map(|p| p as u32).collect();
        ctx.thread().cache.insert(next, (panel.into_vec(), piv));
        ctx.post(LuStart {
            nb: self.nb,
            r: self.r,
        });
    }
}

/// Non-pipelined rebroadcast split (reads the panel its merge cached in the
/// collector thread's store).
struct StepSplit {
    k: u32,
}
impl StepSplit {
    fn new(k: u32) -> impl Fn() -> Self {
        move || Self { k }
    }
}
impl SplitOperation for StepSplit {
    type Thread = PanelStore;
    type In = LuStart;
    type Out = LuTask;
    fn execute(&mut self, ctx: &mut OpCtx<'_, PanelStore, LuTask>, s: LuStart) {
        let (panel, pivots) = ctx
            .thread()
            .cache
            .remove(&self.k)
            .expect("merge finalize cached the panel");
        for t in step_tasks(self.k, s.nb, s.r, &panel, &pivots) {
            ctx.post(t);
        }
    }
}

/// Final merge (Fig. 12 g): collect the last step's notifications.
#[derive(Default)]
struct FinishMerge {
    nb: u32,
}
impl MergeOperation for FinishMerge {
    type Thread = PanelStore;
    type In = LuNotify;
    type Out = LuFinished;
    fn consume(&mut self, _ctx: &mut OpCtx<'_, PanelStore, LuFinished>, n: LuNotify) {
        self.nb = self.nb.max(n.k + 1);
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, PanelStore, LuFinished>) {
        ctx.post(LuFinished { nb: self.nb });
    }
}

/// Install a staged block column into the owning worker's store.
struct InstallColumn;
impl LeafOperation for InstallColumn {
    type Thread = ColumnStore;
    type In = LoadColumn;
    type Out = ColumnLoaded;
    fn execute(&mut self, ctx: &mut OpCtx<'_, ColumnStore, ColumnLoaded>, t: LoadColumn) {
        let col = Matrix::from_vec(t.rows as usize, t.r as usize, t.data.into_vec());
        ctx.thread().cols.insert(t.j, col);
        ctx.post(ColumnLoaded { j: t.j });
    }
}

/// Extract a factored block column (and its step's pivot record) from the
/// owning worker's store.
struct ExtractColumn;
impl LeafOperation for ExtractColumn {
    type Thread = ColumnStore;
    type In = DumpColumn;
    type Out = ColumnDump;
    fn execute(&mut self, ctx: &mut OpCtx<'_, ColumnStore, ColumnDump>, d: DumpColumn) {
        let store = ctx.thread();
        let col = store
            .cols
            .remove(&d.j)
            .expect("dump routed to the column owner");
        let pivots = store
            .pivots
            .get(&d.j)
            .unwrap_or_else(|| panic!("pivot record for step {} missing", d.j))
            .clone();
        ctx.post(ColumnDump {
            j: d.j,
            rows: col.rows() as u32,
            data: col.into_vec().into(),
            pivots: pivots.into(),
        });
    }
}

// --- driver ---------------------------------------------------------------------

/// Parameters of one LU run.
#[derive(Debug, Clone)]
pub struct LuConfig {
    /// Matrix order `n` (must be a multiple of `r`).
    pub n: usize,
    /// Block size `r`.
    pub r: usize,
    /// Stream-pipelined schedule (true) or merge-split baseline (false).
    pub pipelined: bool,
    /// Matrix seed.
    pub seed: u64,
    /// Worker nodes.
    pub nodes: usize,
    /// Worker threads per node (the collector collection always adds one
    /// more thread per node — the paper's separate collection, Fig. 14).
    pub threads_per_node: usize,
    /// How block columns are assigned to workers: the paper's static
    /// `j mod p` layout, or a chunk-policy partition sized from measured
    /// worker rates (a calibration wave runs first; with AWF, fast nodes
    /// own proportionally more columns). The factorization result is
    /// identical either way — only the placement (and hence the makespan
    /// on heterogeneous clusters) changes.
    pub dist: Distribution,
    /// Sub-column chunks each trailing update is split into (clamped to
    /// the column's tail row blocks): 1 reproduces the legacy
    /// one-task-per-column granularity, larger values interleave a step's
    /// columns at finer grain. The factorization is bitwise identical at
    /// any setting — chunks split rows, never an accumulation chain.
    pub update_chunks: u32,
}

/// Outcome of one LU run.
pub struct LuRunReport {
    /// Execution time of the factorization proper (staging excluded), in
    /// the engine's own notion of time.
    pub elapsed: SimSpan,
    /// Assembled packed factors + global pivot record.
    pub factors: LuFactors,
    /// Payload bytes that crossed node boundaries over the whole run
    /// (staging and calibration included). Only engines with a network
    /// model report it; 0 elsewhere.
    pub wire_bytes: u64,
}

/// Run one block LU factorization of `Matrix::random_general(n, n, seed)`
/// with the chosen schedule on **any engine** — the single generic entry
/// point behind [`run_lu_sim`] and the OS-thread cross-engine tests.
/// Verify with [`lu_residual`](crate::lu_residual) on the report.
///
/// Everything is declared up front (collections, calibration loop, the
/// factorization graph, column loader/dump graphs); for
/// `Distribution::Scheduled` the column-ownership [`OwnerMap`] resolves
/// *after* the calibration waves measured the workers — routes read it per
/// token, so the late binding is invisible to the graphs.
pub fn run_lu<E: Engine>(eng: &mut E, cfg: &LuConfig) -> Result<LuRunReport> {
    assert!(cfg.n.is_multiple_of(cfg.r), "r must divide n");
    let nb = (cfg.n / cfg.r) as u32;
    assert!(nb >= 2, "need at least two block columns");
    let r = cfg.r as u32;

    let app = eng.app("lu");
    eng.preload_app(app); // steady-state measurement, as in the paper
                          // The hub the chunked trailing updates announce to and claim from —
                          // process-local on the shared-memory engines, master-hosted with
                          // forwarding handles on the distributed engine.
    let hub = eng.chunk_hub();
    let update_chunks = cfg.update_chunks.max(1);
    let worker_map = default_mapping(cfg.nodes, cfg.threads_per_node);
    let workers: ThreadCollection<ColumnStore> = eng.thread_collection(app, "cols", &worker_map)?;
    // The collectors (streams / step merges) live in their own collection,
    // one thread per node, co-located with the column owners so the panel
    // hand-over is an address-space pointer pass.
    let collectors: ThreadCollection<PanelStore> =
        eng.thread_collection(app, "collect", &default_mapping(cfg.nodes, 1))?;
    let p = workers.thread_count();
    let pc = collectors.thread_count();
    let tpn = cfg.threads_per_node.max(1);

    // Column ownership: `j mod p` for the paper's static layout, resolved
    // immediately; for dynamic scheduling the map resolves after the
    // calibration waves below.
    let owners = Arc::new(match cfg.dist {
        Distribution::Static => OwnerMap::fixed((0..nb as usize).map(|j| j % p).collect()),
        Distribution::Scheduled(_) => OwnerMap::new(),
    });
    let placement = build_placement(eng, app, &worker_map, cfg.dist)?;
    // Collector thread for step k: the node hosting column k's owner
    // (resolved at route time — the owner map may still be pending).
    let collector_of = {
        let owners = Arc::clone(&owners);
        move |k: u32| (owners.owner(k as usize, p) / tpn) % pc
    };

    // Build the dynamic graph to fit the problem size (paper: "the graph is
    // created to fit the size of the problem").
    let mut b = GraphBuilder::new(if cfg.pipelined {
        "lu-pipelined"
    } else {
        "lu-merge-split"
    });
    let entry = {
        let owners = Arc::clone(&owners);
        b.split(
            &workers,
            move || {
                let owners = Arc::clone(&owners);
                ByKey::new(move |_t: &LuStart| owners.owner(0, p))
            },
            || StartSplit,
        )
    };
    let owner_route = {
        let owners = Arc::clone(&owners);
        move || {
            let owners = Arc::clone(&owners);
            ByKey::new(move |t: &LuTask| owners.owner(t.j as usize, p))
        }
    };
    // Update tickets stay on their column's owner: the tail rows live in
    // the owner's store, so chunking must not shed them elsewhere.
    let ticket_route = {
        let owners = Arc::clone(&owners);
        move || {
            let owners = Arc::clone(&owners);
            ByKey::new(move |t: &UpdTicket| owners.owner(t.j as usize, p))
        }
    };
    let head_of = |b: &mut GraphBuilder| {
        let hub = Arc::clone(&hub);
        b.split(&workers, owner_route.clone(), move || ColumnWork {
            hub: Arc::clone(&hub),
            chunks: update_chunks,
        })
    };
    let upd_of = |b: &mut GraphBuilder| {
        let hub = Arc::clone(&hub);
        b.leaf(&workers, ticket_route.clone(), move || UpdateWork {
            hub: Arc::clone(&hub),
        })
    };
    // The chunk merge pins each column's wave to the column owner, so the
    // whole chunked fan-out stays node-local; only the final notification
    // travels to the step collector.
    let notify_route = {
        let owners = Arc::clone(&owners);
        move || {
            let owners = Arc::clone(&owners);
            ByKey::new(move |n: &LuNotify| owners.owner(n.j as usize, p))
        }
    };
    let cm_of = |b: &mut GraphBuilder| b.merge(&workers, notify_route.clone(), ChunkMerge::default);
    let mut prev = {
        let w0 = head_of(&mut b);
        let u0 = upd_of(&mut b);
        let c0 = cm_of(&mut b);
        b.add(entry >> w0 >> u0 >> c0);
        c0
    };
    for k in 0..nb - 1 {
        if cfg.pipelined {
            let route = collector_of.clone();
            let t = b.stream(
                &collectors,
                move || {
                    let route = route.clone();
                    ByKey::new(move |_n: &LuNotify| route(k + 1))
                },
                StepStream::new(k, nb, r),
            );
            let w = head_of(&mut b);
            let u = upd_of(&mut b);
            let c = cm_of(&mut b);
            b.add(prev >> t >> w >> u >> c);
            prev = c;
        } else {
            let route = collector_of.clone();
            let m = b.merge(
                &collectors,
                move || {
                    let route = route.clone();
                    ByKey::new(move |_n: &LuNotify| route(k + 1))
                },
                StepMerge::new(k, nb, r),
            );
            let route = collector_of.clone();
            let sp = b.split(
                &collectors,
                move || {
                    let route = route.clone();
                    ByKey::new(move |_s: &LuStart| route(k + 1))
                },
                StepSplit::new(k + 1),
            );
            let w = head_of(&mut b);
            let u = upd_of(&mut b);
            let c = cm_of(&mut b);
            b.add(prev >> m >> sp >> w >> u >> c);
            prev = c;
        }
    }
    let m = b.merge(
        &collectors,
        || ByKey::new(|_n: &LuNotify| 0usize),
        FinishMerge::default,
    );
    b.add(prev >> m);
    let graph = eng.build_graph(b)?;

    // Column staging graphs (declared before the first run, like the rest).
    let loader = {
        let owners = Arc::clone(&owners);
        let mut b = GraphBuilder::new("lu-load");
        let _ = b.leaf(
            &workers,
            move || {
                let owners = Arc::clone(&owners);
                ByKey::new(move |t: &LoadColumn| owners.owner(t.j as usize, p))
            },
            || InstallColumn,
        );
        eng.build_graph(b)?
    };
    let dumper = {
        let owners = Arc::clone(&owners);
        let mut b = GraphBuilder::new("lu-dump");
        let _ = b.leaf(
            &workers,
            move || {
                let owners = Arc::clone(&owners);
                ByKey::new(move |t: &DumpColumn| owners.owner(t.j as usize, p))
            },
            || ExtractColumn,
        );
        eng.build_graph(b)?
    };

    // Scheduled distribution: measure the workers, then resolve ownership
    // from the chunk policy's partition under the measured weights.
    if let Some(p) = &placement {
        p.resolve(eng, &owners, nb as u64, 2)?;
    }

    // Distribute the matrix column-blocks to their owners. A general (non
    // diagonally-dominant) matrix keeps the partial pivoting honest.
    let a = Matrix::random_general(cfg.n, cfg.n, cfg.seed);
    for j in 0..nb {
        let col = a.block(0, j as usize * cfg.r, cfg.n, cfg.r);
        eng.submit(
            loader,
            Box::new(LoadColumn {
                j,
                rows: cfg.n as u32,
                r,
                data: col.into_vec().into(),
            }),
        )?;
    }
    eng.run_to_idle(loader, nb as usize)?;
    let _ = eng.take_outputs(loader);

    let t0 = eng.now_secs();
    eng.submit(graph, Box::new(LuStart { nb, r }))?;
    eng.run_to_idle(graph, 1)?;
    let elapsed = SimSpan::from_secs_f64(eng.now_secs() - t0);
    let outs = eng.take_outputs(graph);
    assert_eq!(outs.len(), 1, "one LuFinished per run");

    // Gather the factored columns and pivot records back from the workers.
    for j in 0..nb {
        eng.submit(dumper, Box::new(DumpColumn { j }))?;
    }
    eng.run_to_idle(dumper, nb as usize)?;
    let mut lu = Matrix::zeros(cfg.n, cfg.n);
    let mut pivots = vec![0usize; cfg.n];
    for out in eng.take_outputs(dumper) {
        let d = downcast::<ColumnDump>(out).expect("ColumnDump output");
        let j = d.j as usize;
        let col = Matrix::from_vec(d.rows as usize, cfg.r, d.data.into_vec());
        lu.set_block(0, j * cfg.r, &col);
        for (t, &pv) in d.pivots.iter().enumerate() {
            pivots[j * cfg.r + t] = j * cfg.r + pv as usize;
        }
    }
    Ok(LuRunReport {
        elapsed,
        factors: LuFactors { lu, pivots },
        wire_bytes: 0,
    })
}

/// Run one block LU factorization on the simulated cluster — a thin
/// [`run_lu`] wrapper adding the traced wire-byte count to the report. The
/// count comes from the engine's trace metrics (`WireBytesSent`), which the
/// simulator keeps byte-identical to the network model's own accounting; a
/// collector the caller attached beforehand is reused, so traced callers
/// get one merged event stream and the same report.
pub fn run_lu_sim(spec: ClusterSpec, cfg: &LuConfig, ecfg: EngineConfig) -> Result<LuRunReport> {
    let mut eng = SimEngine::with_config(spec, ecfg);
    let metrics = sim_trace_metrics(&mut eng);
    let wire0 = metrics.get(dps_obs::Counter::WireBytesSent);
    let mut rep = run_lu(&mut eng, cfg)?;
    rep.wire_bytes = metrics.get(dps_obs::Counter::WireBytesSent) - wire0;
    Ok(rep)
}

/// The metrics registry of `eng`'s trace collector, attaching a fresh
/// collector when the caller did not bring one.
pub(crate) fn sim_trace_metrics(eng: &mut SimEngine) -> std::sync::Arc<dps_obs::MetricsRegistry> {
    if let Some(c) = eng.trace_collector() {
        return c.metrics_arc();
    }
    let c = dps_obs::TraceCollector::new();
    eng.set_trace_sink(c.clone());
    c.metrics_arc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{blocked_lu, lu_residual};

    fn check(cfg: &LuConfig) -> LuRunReport {
        let spec = ClusterSpec::paper_testbed(cfg.nodes);
        let rep = run_lu_sim(spec, cfg, EngineConfig::default()).unwrap();
        let a = Matrix::random_general(cfg.n, cfg.n, cfg.seed);
        let res = lu_residual(&a, &rep.factors);
        assert!(res < 1e-8, "residual {res}");
        // The parallel schedule must compute the *same* factorization as
        // the sequential block driver (identical pivoting path).
        let reference = blocked_lu(&a, cfg.r);
        assert_eq!(rep.factors.pivots, reference.pivots);
        rep
    }

    #[test]
    fn pipelined_lu_is_correct() {
        check(&LuConfig {
            n: 48,
            r: 8,
            pipelined: true,
            seed: 21,
            nodes: 3,
            threads_per_node: 1,
            dist: Distribution::Static,
            update_chunks: 1,
        });
    }

    #[test]
    fn merge_split_lu_is_correct() {
        check(&LuConfig {
            n: 48,
            r: 8,
            pipelined: false,
            seed: 21,
            nodes: 3,
            threads_per_node: 1,
            dist: Distribution::Static,
            update_chunks: 1,
        });
    }

    #[test]
    fn lu_on_more_workers_than_columns() {
        check(&LuConfig {
            n: 16,
            r: 8,
            pipelined: true,
            seed: 2,
            nodes: 4,
            threads_per_node: 2,
            dist: Distribution::Static,
            update_chunks: 1,
        });
    }

    #[test]
    fn pivoting_actually_pivots() {
        // Regression guard: the final step's row flips must reach previous
        // columns. A non-dominant matrix exercises non-trivial pivots.
        let cfg = LuConfig {
            n: 40,
            r: 8,
            pipelined: true,
            seed: 5,
            nodes: 2,
            threads_per_node: 1,
            dist: Distribution::Static,
            update_chunks: 1,
        };
        let rep = check(&cfg);
        let nontrivial = rep
            .factors
            .pivots
            .iter()
            .enumerate()
            .filter(|&(i, &p)| p != i)
            .count();
        assert!(nontrivial > 0, "test matrix should force row swaps");
    }

    #[test]
    fn chunked_trailing_updates_are_byte_identical() {
        // Chunking splits rows, never an accumulation chain: the packed
        // factors must match the sequential reference bit for bit at every
        // granularity (including chunk counts beyond the tail's blocks).
        let (n, r) = (64usize, 8usize);
        let a = Matrix::random_general(n, n, 13);
        let reference = blocked_lu(&a, r);
        for chunks in [1u32, 2, 3, 7, 16] {
            for pipelined in [true, false] {
                let cfg = LuConfig {
                    n,
                    r,
                    pipelined,
                    seed: 13,
                    nodes: 3,
                    threads_per_node: 1,
                    dist: Distribution::Static,
                    update_chunks: chunks,
                };
                let spec = ClusterSpec::paper_testbed(cfg.nodes);
                let rep = run_lu_sim(spec, &cfg, EngineConfig::default()).unwrap();
                assert_eq!(
                    rep.factors.pivots, reference.pivots,
                    "pivots diverged: chunks={chunks} pipelined={pipelined}"
                );
                assert_eq!(
                    rep.factors.lu, reference.lu,
                    "bits diverged: chunks={chunks} pipelined={pipelined}"
                );
            }
        }
    }

    fn timed(spec: ClusterSpec, cfg: &LuConfig) -> SimSpan {
        let rep = run_lu_sim(spec, cfg, EngineConfig::default()).unwrap();
        let a = Matrix::random_general(cfg.n, cfg.n, cfg.seed);
        assert!(lu_residual(&a, &rep.factors) < 1e-8);
        rep.elapsed
    }

    #[test]
    fn streams_beat_merge_split() {
        // Fig. 15's claim: the stream-pipelined variant outperforms the
        // merge-split variant.
        let mk = |pipelined| LuConfig {
            n: 192,
            r: 16,
            pipelined,
            seed: 7,
            nodes: 4,
            threads_per_node: 1,
            dist: Distribution::Static,
            update_chunks: 1,
        };
        let spec = ClusterSpec::paper_testbed(4);
        let t_pipe = timed(spec.clone(), &mk(true));
        let t_merge = timed(spec, &mk(false));
        assert!(
            t_pipe < t_merge,
            "pipelined {t_pipe} should beat merge-split {t_merge}"
        );
    }

    #[test]
    fn lu_speedup_with_more_nodes() {
        let mk = |nodes| LuConfig {
            n: 256,
            r: 32,
            pipelined: true,
            seed: 9,
            nodes,
            threads_per_node: 1,
            dist: Distribution::Static,
            update_chunks: 1,
        };
        let t1 = timed(ClusterSpec::paper_testbed(1), &mk(1));
        let t4 = timed(ClusterSpec::paper_testbed(4), &mk(4));
        assert!(
            t4.as_secs_f64() < t1.as_secs_f64() * 0.7,
            "4 nodes ({t4}) should be well under 1 node ({t1})"
        );
    }
}
