//! DPS parallel schedules for the paper's linear-algebra workloads.
//!
//! * [`matmul`] — block matrix multiplication with either a fully pipelined
//!   schedule (transfers overlap computation) or a phase-separated schedule
//!   (distribute, barrier, compute) used as the no-overlap baseline of
//!   Table 1.
//! * [`lu`] — block LU factorization with partial pivoting on a
//!   column-of-blocks distribution, in the pipelined (stream operations,
//!   Fig. 12) and non-pipelined (merge + split) variants compared in
//!   Fig. 15.

pub mod lu;
pub mod matmul;

pub use lu::{run_lu, run_lu_sim, LuConfig, LuRunReport};
pub use matmul::{run_matmul, run_matmul_sim, MatMulConfig, MatMulRunReport};
