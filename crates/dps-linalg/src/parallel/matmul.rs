//! Block matrix multiplication under DPS — the Table 1 experiment.
//!
//! The paper: "we run a program multiplying two square n × n matrices by
//! performing block-based matrix multiplications. Assuming that the n × n
//! matrix is split into s blocks horizontally and vertically, the amount of
//! communication is proportional to n²·(2s+1), whereas computation is
//! proportional to n³."
//!
//! One task exists per result block `C_ij` and carries its `s` operand-block
//! pairs (`2s·(n/s)²` values), reproducing exactly the paper's
//! communication count. Two schedules are provided:
//!
//! * **Pipelined** (plain DPS): `split → multiply → merge`; the runtime
//!   overlaps block transfers with block products automatically.
//! * **Phased** (the no-overlap baseline): a first split/merge construct
//!   distributes every operand block into worker thread storage and
//!   synchronizes; a second split/merge construct issues tiny compute
//!   orders. Communication and computation thus cannot overlap, which is
//!   what Table 1's "reduction in execution time" is measured against.

use dps_cluster::{default_mapping_from, ClusterSpec};
use dps_core::prelude::*;
use dps_core::sched::{build_placement, OwnerMap};
use dps_core::{dps_token, Engine};
use dps_des::SimSpan;
use dps_sched::Distribution;
use dps_serial::Buffer;
use std::collections::HashMap;
use std::sync::Arc;

use crate::flops;
use crate::matrix::Matrix;

dps_token! {
    /// Kick-off order for one multiplication.
    pub struct MulOrder { pub n: u32, pub s: u32 }
}

dps_token! {
    /// One result-block task: all operand blocks needed for `C_ij`.
    pub struct BlockTask {
        pub i: u32,
        pub j: u32,
        pub bs: u32,
        /// `s` blocks of row `i` of A, concatenated row-major.
        pub a: Buffer<f64>,
        /// `s` blocks of column `j` of B, concatenated row-major.
        pub b: Buffer<f64>,
    }
}

dps_token! {
    /// A computed result block.
    pub struct BlockResult { pub i: u32, pub j: u32, pub bs: u32, pub c: Buffer<f64> }
}

dps_token! {
    /// Distribution of one operand block pair into worker storage (phased
    /// schedule only).
    pub struct StoreTask {
        pub i: u32,
        pub j: u32,
        pub bs: u32,
        pub a: Buffer<f64>,
        pub b: Buffer<f64>,
    }
}

dps_token! {
    /// Acknowledgement that a store task landed.
    pub struct StoreDone { pub i: u32, pub j: u32 }
}

dps_token! {
    /// Barrier token between the distribution and compute phases.
    pub struct PhaseDone { pub n: u32, pub s: u32 }
}

dps_token! {
    /// Tiny compute order of the phased schedule: operands already local.
    pub struct ComputeOrder { pub i: u32, pub j: u32, pub bs: u32 }
}

dps_token! {
    /// The assembled product (carried to the graph exit for verification).
    pub struct MulDone { pub n: u32, pub c: Buffer<f64> }
}

dps_token! {
    /// Stage the operand matrices into the master store — the
    /// engine-generic replacement for poking thread state from outside.
    pub struct LoadOperands { pub n: u32, pub a: Buffer<f64>, pub b: Buffer<f64> }
}

dps_token! {
    /// Acknowledgement of a [`LoadOperands`].
    pub struct OperandsLoaded { pub n: u32 }
}

/// Master thread state: the operand matrices.
#[derive(Default)]
pub struct MasterState {
    /// Left operand.
    pub a: Matrix,
    /// Right operand.
    pub b: Matrix,
}

/// Worker thread state for the phased schedule: stored operand blocks,
/// keyed by result-block index.
#[derive(Default)]
pub struct WorkerStore {
    blocks: HashMap<(u32, u32), (Vec<f64>, Vec<f64>)>,
}

fn pack_row_blocks(m: &Matrix, i: usize, bs: usize, s: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(s * bs * bs);
    for k in 0..s {
        out.extend_from_slice(m.block(i * bs, k * bs, bs, bs).as_slice());
    }
    out
}

fn pack_col_blocks(m: &Matrix, j: usize, bs: usize, s: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(s * bs * bs);
    for k in 0..s {
        out.extend_from_slice(m.block(k * bs, j * bs, bs, bs).as_slice());
    }
    out
}

/// `C_ij = Σ_k A_ik · B_kj` over packed operand buffers.
fn multiply_packed(a: &[f64], b: &[f64], bs: usize) -> Vec<f64> {
    let s = a.len() / (bs * bs);
    let mut c = Matrix::zeros(bs, bs);
    for k in 0..s {
        let ak = Matrix::from_vec(bs, bs, a[k * bs * bs..(k + 1) * bs * bs].to_vec());
        let bk = Matrix::from_vec(bs, bs, b[k * bs * bs..(k + 1) * bs * bs].to_vec());
        crate::matrix::gemm(1.0, &ak, &bk, 1.0, &mut c);
    }
    c.into_vec()
}

// --- pipelined schedule -----------------------------------------------------

struct SplitTasks;
impl SplitOperation for SplitTasks {
    type Thread = MasterState;
    type In = MulOrder;
    type Out = BlockTask;
    fn execute(&mut self, ctx: &mut OpCtx<'_, MasterState, BlockTask>, o: MulOrder) {
        let (n, s) = (o.n as usize, o.s as usize);
        let bs = n / s;
        // Snapshot operands (the master thread owns them).
        let (a, b) = {
            let st = ctx.thread();
            (st.a.clone(), st.b.clone())
        };
        for i in 0..s {
            for j in 0..s {
                // Packing cost: one pass over the task's operand bytes.
                ctx.charge_flops((2 * s * bs * bs) as f64);
                ctx.post(BlockTask {
                    i: i as u32,
                    j: j as u32,
                    bs: bs as u32,
                    a: pack_row_blocks(&a, i, bs, s).into(),
                    b: pack_col_blocks(&b, j, bs, s).into(),
                });
            }
        }
    }
}

struct MultiplyBlock;
impl LeafOperation for MultiplyBlock {
    type Thread = ();
    type In = BlockTask;
    type Out = BlockResult;
    fn execute(&mut self, ctx: &mut OpCtx<'_, (), BlockResult>, t: BlockTask) {
        let bs = t.bs as usize;
        let s = t.a.len() / (bs * bs);
        ctx.charge_flops((0..s).map(|_| flops::gemm_cost(bs, bs, bs)).sum());
        let c = multiply_packed(t.a.as_slice(), t.b.as_slice(), bs);
        ctx.post(BlockResult {
            i: t.i,
            j: t.j,
            bs: t.bs,
            c: c.into(),
        });
    }
}

#[derive(Default)]
struct AssembleC {
    n: usize,
    c: Option<Matrix>,
}
impl MergeOperation for AssembleC {
    type Thread = MasterState;
    type In = BlockResult;
    type Out = MulDone;
    fn consume(&mut self, ctx: &mut OpCtx<'_, MasterState, MulDone>, r: BlockResult) {
        if self.c.is_none() {
            self.n = ctx.thread().a.rows();
            self.c = Some(Matrix::zeros(self.n, self.n));
        }
        let bs = r.bs as usize;
        let block = Matrix::from_vec(bs, bs, r.c.into_vec());
        self.c.as_mut().expect("initialized above").set_block(
            r.i as usize * bs,
            r.j as usize * bs,
            &block,
        );
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, MasterState, MulDone>) {
        let c = self.c.take().expect("at least one block");
        ctx.post(MulDone {
            n: self.n as u32,
            c: c.into_vec().into(),
        });
    }
}

// --- phased (no-overlap) schedule --------------------------------------------

struct SplitStores;
impl SplitOperation for SplitStores {
    type Thread = MasterState;
    type In = MulOrder;
    type Out = StoreTask;
    fn execute(&mut self, ctx: &mut OpCtx<'_, MasterState, StoreTask>, o: MulOrder) {
        let (n, s) = (o.n as usize, o.s as usize);
        let bs = n / s;
        let (a, b) = {
            let st = ctx.thread();
            (st.a.clone(), st.b.clone())
        };
        for i in 0..s {
            for j in 0..s {
                ctx.charge_flops((2 * s * bs * bs) as f64);
                ctx.post(StoreTask {
                    i: i as u32,
                    j: j as u32,
                    bs: bs as u32,
                    a: pack_row_blocks(&a, i, bs, s).into(),
                    b: pack_col_blocks(&b, j, bs, s).into(),
                });
            }
        }
    }
}

struct StoreBlocks;
impl LeafOperation for StoreBlocks {
    type Thread = WorkerStore;
    type In = StoreTask;
    type Out = StoreDone;
    fn execute(&mut self, ctx: &mut OpCtx<'_, WorkerStore, StoreDone>, t: StoreTask) {
        ctx.thread()
            .blocks
            .insert((t.i, t.j), (t.a.into_vec(), t.b.into_vec()));
        ctx.post(StoreDone { i: t.i, j: t.j });
    }
}

/// Barrier: all stores landed; release the compute phase.
#[derive(Default)]
struct StoreBarrier {
    shape: Option<(u32, u32)>,
}
impl MergeOperation for StoreBarrier {
    type Thread = MasterState;
    type In = StoreDone;
    type Out = PhaseDone;
    fn consume(&mut self, ctx: &mut OpCtx<'_, MasterState, PhaseDone>, _t: StoreDone) {
        if self.shape.is_none() {
            let n = ctx.thread().a.rows() as u32;
            self.shape = Some((n, 0));
        }
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, MasterState, PhaseDone>) {
        let (n, _) = self.shape.expect("consumed at least one store ack");
        ctx.post(PhaseDone { n, s: 0 });
    }
}

/// Second-phase split: compute orders (`s` is recovered from the stored
/// task count, carried via the split's own config).
struct SplitOrders {
    s: u32,
    bs: u32,
}
impl SplitOperation for SplitOrders {
    type Thread = MasterState;
    type In = PhaseDone;
    type Out = ComputeOrder;
    fn execute(&mut self, ctx: &mut OpCtx<'_, MasterState, ComputeOrder>, _p: PhaseDone) {
        for i in 0..self.s {
            for j in 0..self.s {
                ctx.post(ComputeOrder { i, j, bs: self.bs });
            }
        }
    }
}

struct ComputeStored;
impl LeafOperation for ComputeStored {
    type Thread = WorkerStore;
    type In = ComputeOrder;
    type Out = BlockResult;
    fn execute(&mut self, ctx: &mut OpCtx<'_, WorkerStore, BlockResult>, o: ComputeOrder) {
        let bs = o.bs as usize;
        let (a, b) = ctx
            .thread()
            .blocks
            .remove(&(o.i, o.j))
            .expect("store phase completed before compute phase");
        let s = a.len() / (bs * bs);
        ctx.charge_flops((0..s).map(|_| flops::gemm_cost(bs, bs, bs)).sum());
        let c = multiply_packed(&a, &b, bs);
        ctx.post(BlockResult {
            i: o.i,
            j: o.j,
            bs: o.bs,
            c: c.into(),
        });
    }
}

/// Install staged operands into the master store.
struct InstallOperands;
impl LeafOperation for InstallOperands {
    type Thread = MasterState;
    type In = LoadOperands;
    type Out = OperandsLoaded;
    fn execute(&mut self, ctx: &mut OpCtx<'_, MasterState, OperandsLoaded>, t: LoadOperands) {
        let n = t.n as usize;
        let st = ctx.thread();
        st.a = Matrix::from_vec(n, n, t.a.into_vec());
        st.b = Matrix::from_vec(n, n, t.b.into_vec());
        ctx.post(OperandsLoaded { n: t.n });
    }
}

// --- driver -------------------------------------------------------------------

/// Parameters of one matmul run.
#[derive(Debug, Clone)]
pub struct MatMulConfig {
    /// Matrix order `n`.
    pub n: usize,
    /// Split factor `s` (block size is `n / s`).
    pub s: usize,
    /// Pipelined schedule (true) or phased no-overlap baseline (false).
    pub pipelined: bool,
    /// Seed for the operand matrices.
    pub seed: u64,
    /// Worker nodes to use.
    pub nodes: usize,
    /// Worker threads per node (the paper's machines are bi-processor).
    pub threads_per_node: usize,
    /// How result blocks are assigned to workers: the paper's static
    /// `(i+j) mod p` layout, or a chunk-policy partition of the `s²` block
    /// tasks sized from measured worker rates (calibration wave first).
    pub dist: Distribution,
}

/// Outcome of one matmul run.
pub struct MatMulRunReport {
    /// Virtual execution time.
    pub elapsed: SimSpan,
    /// The computed product.
    pub c: Matrix,
    /// Payload bytes that crossed node boundaries over the whole run
    /// (operand staging and calibration included). Only engines with a
    /// network model report it; 0 elsewhere.
    pub wire_bytes: u64,
}

/// Build the chosen schedule and run one `n × n` multiplication on **any
/// engine** — the single generic entry point behind [`run_matmul_sim`] and
/// the OS-thread cross-engine tests. Worker collections start at node
/// `first_node` (the paper's Table 1 set-up keeps the master machine
/// separate from the compute nodes; pass 0 to share node0).
///
/// Everything is declared before the first run; for
/// `Distribution::Scheduled` the block-ownership [`OwnerMap`] resolves
/// after the calibration waves, read by the routes per token.
pub fn run_matmul<E: Engine>(
    eng: &mut E,
    cfg: &MatMulConfig,
    first_node: usize,
) -> Result<MatMulRunReport> {
    assert!(cfg.n.is_multiple_of(cfg.s), "s must divide n");
    let app = eng.app("matmul");
    eng.preload_app(app); // steady-state measurement, as in the paper
    let master: ThreadCollection<MasterState> = eng.thread_collection(app, "master", "node0")?;
    let mapping = default_mapping_from(first_node, cfg.nodes, cfg.threads_per_node);

    let p = cfg.nodes * cfg.threads_per_node.max(1);
    let s_us = cfg.s;
    // Result-block ownership: the paper's `(i+j) mod p` layout resolves
    // immediately; a scheduled layout resolves after calibration below.
    let assign = Arc::new(match cfg.dist {
        Distribution::Static => OwnerMap::fixed(
            (0..s_us * s_us)
                .map(|idx| (idx / s_us + idx % s_us) % p)
                .collect(),
        ),
        Distribution::Scheduled(_) => OwnerMap::new(),
    });
    let placement = build_placement(eng, app, &mapping, cfg.dist)?;
    let assign_route = {
        let assign = Arc::clone(&assign);
        move |i: u32, j: u32| assign.owner(i as usize * s_us + j as usize, p)
    };

    let graph = if cfg.pipelined {
        let workers: ThreadCollection<()> = eng.thread_collection(app, "proc", &mapping)?;
        let mut b = GraphBuilder::new("matmul-pipelined");
        let split = b.split(&master, || ToThread(0), || SplitTasks);
        let mul = b.leaf(
            &workers,
            move || {
                let route = assign_route.clone();
                ByKey::new(move |t: &BlockTask| route(t.i, t.j))
            },
            || MultiplyBlock,
        );
        let merge = b.merge(&master, || ToThread(0), AssembleC::default);
        b.add(split >> mul >> merge);
        eng.build_graph(b)?
    } else {
        let workers: ThreadCollection<WorkerStore> =
            eng.thread_collection(app, "proc", &mapping)?;
        let (s, bs) = (cfg.s as u32, (cfg.n / cfg.s) as u32);
        let mut b = GraphBuilder::new("matmul-phased");
        let split1 = b.split(&master, || ToThread(0), || SplitStores);
        let store_route = assign_route.clone();
        let store = b.leaf(
            &workers,
            move || {
                let route = store_route.clone();
                ByKey::new(move |t: &StoreTask| route(t.i, t.j))
            },
            || StoreBlocks,
        );
        let barrier = b.merge(&master, || ToThread(0), StoreBarrier::default);
        let split2 = b.split(&master, || ToThread(0), move || SplitOrders { s, bs });
        let compute = b.leaf(
            &workers,
            move || {
                let route = assign_route.clone();
                ByKey::new(move |t: &ComputeOrder| route(t.i, t.j))
            },
            || ComputeStored,
        );
        let merge = b.merge(&master, || ToThread(0), AssembleC::default);
        b.add(split1 >> store >> barrier >> split2 >> compute >> merge);
        eng.build_graph(b)?
    };

    // The operand loader (declared before the first run, like the rest).
    let loader = {
        let mut b = GraphBuilder::new("matmul-load");
        let _ = b.leaf(&master, || ToThread(0), || InstallOperands);
        eng.build_graph(b)?
    };

    // Scheduled distribution: measure the workers, then resolve block
    // ownership from the chunk policy's partition.
    if let Some(p) = &placement {
        p.resolve(eng, &assign, (s_us * s_us) as u64, 2)?;
    }

    // Stage the operands into the master thread.
    let a = Matrix::random(cfg.n, cfg.n, cfg.seed);
    let b_op = Matrix::random(cfg.n, cfg.n, cfg.seed.wrapping_add(1));
    eng.submit(
        loader,
        Box::new(LoadOperands {
            n: cfg.n as u32,
            a: a.into_vec().into(),
            b: b_op.into_vec().into(),
        }),
    )?;
    eng.run_to_idle(loader, 1)?;
    let _ = eng.take_outputs(loader);

    let t0 = eng.now_secs();
    eng.submit(
        graph,
        Box::new(MulOrder {
            n: cfg.n as u32,
            s: cfg.s as u32,
        }),
    )?;
    eng.run_to_idle(graph, 1)?;
    let elapsed = SimSpan::from_secs_f64(eng.now_secs() - t0);
    let mut outs = eng.take_outputs(graph);
    assert_eq!(outs.len(), 1, "one MulDone per order");
    let done =
        downcast::<MulDone>(outs.pop().expect("one output")).expect("output token type is MulDone");
    let c = Matrix::from_vec(cfg.n, cfg.n, done.c.into_vec());
    Ok(MatMulRunReport {
        elapsed,
        c,
        wire_bytes: 0,
    })
}

/// Run one `n × n` multiplication on the simulated cluster — a thin
/// [`run_matmul`] wrapper placing the workers on the *last* `cfg.nodes`
/// nodes (when the cluster has one node more than `cfg.nodes`, the master
/// machine is separate from the compute nodes, the paper's Table 1 set-up)
/// and adding the traced wire-byte count (`WireBytesSent`, byte-identical
/// to the network model's accounting) to the report.
pub fn run_matmul_sim(
    spec: ClusterSpec,
    cfg: &MatMulConfig,
    ecfg: EngineConfig,
) -> Result<MatMulRunReport> {
    let total = spec.len();
    assert!(cfg.nodes <= total, "cluster too small");
    let mut eng = SimEngine::with_config(spec, ecfg);
    let metrics = crate::parallel::lu::sim_trace_metrics(&mut eng);
    let wire0 = metrics.get(dps_obs::Counter::WireBytesSent);
    let mut rep = run_matmul(&mut eng, cfg, total - cfg.nodes)?;
    rep.wire_bytes = metrics.get(dps_obs::Counter::WireBytesSent) - wire0;
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(n: usize, seed: u64) -> Matrix {
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed.wrapping_add(1));
        a.matmul(&b)
    }

    fn check(cfg: &MatMulConfig) -> MatMulRunReport {
        let spec = ClusterSpec::paper_testbed(cfg.nodes);
        let rep = run_matmul_sim(spec, cfg, EngineConfig::default()).unwrap();
        let reference = reference(cfg.n, cfg.seed);
        let mut diff = rep.c.clone();
        diff.sub_assign(&reference);
        assert!(diff.max_abs() < 1e-9, "wrong product: {}", diff.max_abs());
        rep
    }

    #[test]
    fn pipelined_matmul_is_correct() {
        check(&MatMulConfig {
            n: 64,
            s: 4,
            pipelined: true,
            seed: 11,
            nodes: 3,
            threads_per_node: 2,
            dist: Distribution::Static,
        });
    }

    #[test]
    fn phased_matmul_is_correct() {
        check(&MatMulConfig {
            n: 64,
            s: 4,
            pipelined: false,
            seed: 11,
            nodes: 3,
            threads_per_node: 2,
            dist: Distribution::Static,
        });
    }

    #[test]
    fn pipelining_reduces_execution_time() {
        // The Table 1 effect: with comparable communication and computation
        // volumes, the pipelined schedule must be faster.
        let mk = |pipelined| MatMulConfig {
            n: 128,
            s: 8,
            pipelined,
            seed: 3,
            nodes: 4,
            threads_per_node: 2,
            dist: Distribution::Static,
        };
        let spec = ClusterSpec::paper_testbed(4);
        let t_pipe = run_matmul_sim(spec.clone(), &mk(true), EngineConfig::default())
            .unwrap()
            .elapsed;
        let t_phased = run_matmul_sim(spec, &mk(false), EngineConfig::default())
            .unwrap()
            .elapsed;
        assert!(
            t_pipe < t_phased,
            "pipelined {t_pipe} should beat phased {t_phased}"
        );
    }

    #[test]
    fn single_node_single_thread_works() {
        check(&MatMulConfig {
            n: 32,
            s: 2,
            pipelined: true,
            seed: 5,
            nodes: 1,
            threads_per_node: 1,
            dist: Distribution::Static,
        });
    }
}
