//! Dense row-major matrices and the multiply kernel.

use dps_des::SplitMix64;

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix from a generator function.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Matrix wrapping an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Deterministic pseudo-random matrix in `[-1, 1)`, diagonally dominant
    /// when square (so LU with partial pivoting stays well-conditioned).
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut m = Self::random_general(rows, cols, seed);
        if rows == cols {
            for i in 0..rows {
                m[(i, i)] += cols as f64;
            }
        }
        m
    }

    /// Deterministic pseudo-random matrix in `[-1, 1)` with *no* diagonal
    /// dominance — partial pivoting on such matrices performs genuine row
    /// swaps, which the LU tests rely on.
    pub fn random_general(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        Self::from_fn(rows, cols, |_, _| 2.0 * rng.next_f64() - 1.0)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat row-major data, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Copy of the `rows × cols` block whose top-left corner is `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(
            r0 + rows <= self.rows && c0 + cols <= self.cols,
            "block out of range"
        );
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let src = (r0 + i) * self.cols + c0;
            let dst = i * cols;
            out.data[dst..dst + cols].copy_from_slice(&self.data[src..src + cols]);
        }
        out
    }

    /// Overwrite the block at `(r0, c0)` with `b`.
    pub fn set_block(&mut self, r0: usize, c0: usize, b: &Matrix) {
        assert!(
            r0 + b.rows <= self.rows && c0 + b.cols <= self.cols,
            "block out of range"
        );
        for i in 0..b.rows {
            let dst = (r0 + i) * self.cols + c0;
            let src = i * b.cols;
            self.data[dst..dst + b.cols].copy_from_slice(&b.data[src..src + b.cols]);
        }
    }

    /// `self × rhs` (allocating).
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        gemm(1.0, self, rhs, 0.0, &mut out);
        out
    }

    /// Transpose (allocating).
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Largest absolute entry (∞-norm of the vectorization).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Swap rows `a` and `b`.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        assert!(a < self.rows && b < self.rows, "row out of range");
        let (lo, hi) = (a.min(b), a.max(b));
        let (top, bottom) = self.data.split_at_mut(hi * self.cols);
        top[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut bottom[..self.cols]);
    }
}

impl Default for Matrix {
    /// The `0 × 0` matrix (useful for thread-state containers).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// General matrix multiply: `C = alpha · A·B + beta · C`.
///
/// Dispatches to the packed blocked kernel
/// ([`kernel::gemm_blocked`](crate::kernel::gemm_blocked)) above
/// [`kernel::BLOCK_THRESHOLD`](crate::kernel::BLOCK_THRESHOLD) and to the
/// scalar `ikj` fallback ([`kernel::gemm_scalar`](crate::kernel::gemm_scalar))
/// below it. Both paths accumulate each element in the same ascending-`k`
/// chain, so the result is bitwise independent of the dispatch decision —
/// the determinism contract the cross-engine tests rely on.
pub fn gemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    crate::kernel::gemm_auto(alpha, a, b, beta, c);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a = Matrix::random(5, 5, 1);
        let i = Matrix::identity(5);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::identity(2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut c = Matrix::from_vec(2, 2, vec![10.0, 10.0, 10.0, 10.0]);
        gemm(2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c.as_slice(), &[7.0, 9.0, 11.0, 13.0]);
    }

    #[test]
    fn block_roundtrip() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 10 + j) as f64);
        let b = m.block(2, 3, 2, 2);
        assert_eq!(b.as_slice(), &[23.0, 24.0, 33.0, 34.0]);
        let mut m2 = Matrix::zeros(6, 6);
        m2.set_block(2, 3, &b);
        assert_eq!(m2[(2, 3)], 23.0);
        assert_eq!(m2[(3, 4)], 34.0);
        assert_eq!(m2[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "block out of range")]
    fn block_bounds_checked() {
        Matrix::zeros(3, 3).block(2, 2, 2, 2);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = Matrix::from_fn(3, 2, |i, _| i as f64);
        m.swap_rows(0, 2);
        assert_eq!(m.as_slice(), &[2.0, 2.0, 1.0, 1.0, 0.0, 0.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m[(1, 0)], 1.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 3, vec![3.0, -4.0, 0.0]);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.frobenius() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn random_is_deterministic_and_dominant() {
        let a = Matrix::random(4, 4, 7);
        let b = Matrix::random(4, 4, 7);
        assert_eq!(a, b);
        for i in 0..4 {
            assert!(a[(i, i)] > 2.0, "diagonal dominance");
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::random(3, 5, 2);
        assert_eq!(m.transpose().transpose(), m);
    }
}
