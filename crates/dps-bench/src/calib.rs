//! Calibration of the virtual cluster to the paper's testbed.
//!
//! The paper's measurements were taken on "a cluster of bi-processor
//! 733 MHz Pentium III PCs with 512 MB of RAM, running Windows 2000 […]
//! composed of 8 computers (nodes), interconnected with a Gigabit Ethernet
//! switch". The constants below pin the simulator to that machine:
//!
//! * **Compute: 70 MFLOP/s sustained** per scalar kernel stream. Fitted
//!   from Table 1: at one node and s = 4 (256-block), the paper reports a
//!   communication/computation ratio of 0.22; with communication
//!   `n²(2s+1)·8 B ≈ 75.5 MB → 2.1 s` at the 36 MB/s link rate, computation
//!   must be ≈ 9.5 s for `2n³ = 2.1 GFLOP`, i.e. ≈ 110 MFLOP/s for the
//!   whole node — about 70 MFLOP/s per active thread once both CPUs share
//!   the memory bus. (A 733 MHz P-III retiring roughly one scalar FP op
//!   every 7–10 cycles on non-blocked triple loops is consistent.)
//! * **Network: 36 MB/s effective TCP payload bandwidth** — the plateau of
//!   Fig. 6's socket curve; Gigabit line rate is 125 MB/s but the 733 MHz
//!   hosts are protocol-stack-bound.
//! * **55 µs fixed cost per message** per NIC direction — fitted to the
//!   low-size end of Fig. 6 (at 1 KB transfers the socket curve sits near
//!   2 MB/s ⇒ ≈ 0.5 ms per 1 KB round-hop ⇒ tens of µs per direction).
//! * **96 control bytes + 40 µs per DPS data object** — the gap between
//!   the DPS and socket curves of Fig. 6 at small sizes.
//! * **2 ms TCP connect**, **120 ms lazy instance launch** (paper §4: ≈1 s
//!   to full N-to-N start-up on 8 nodes).
//!
//! These values are *defaults* of [`dps_net::NetConfig`] and
//! [`dps_cluster::NodeSpec::paper_node`]; this module only re-exports the
//! assembled cluster plus the engine configuration used by every harness
//! binary, so all experiments share one calibration.

use dps_cluster::ClusterSpec;
use dps_core::EngineConfig;
use dps_des::SimSpan;

/// The simulated testbed: `n` bi-processor 733 MHz nodes on the calibrated
/// Gigabit Ethernet model.
pub fn paper_cluster(n: usize) -> ClusterSpec {
    ClusterSpec::paper_testbed(n)
}

/// Engine configuration shared by the experiments: a 64-token flow window
/// per split/merge pair (the paper's feedback bound protects memory, not
/// parallelism — a window smaller than a split's fan-out would serialize
/// the schedule) and a 25 µs per-operation framework overhead (dispatch +
/// queue handling), fitted to Table 2's small-block call times.
pub fn engine_config() -> EngineConfig {
    EngineConfig {
        flow_window: 64,
        op_overhead: SimSpan::from_micros(25),
        enforce_serialization: false,
    }
}

/// Measure this host's sustained scalar compute rate (FLOP/s) with a short
/// timed multiply–add kernel — the wall-clock probe
/// `MtEngine::calibrate_feedback` runs per worker at startup so `charge_flops`
/// cost models and the wall-clock feedback channel agree on real machines
/// (the paper-testbed constants above play that role for the simulator).
pub fn measure_flop_rate(probe_flops: u64) -> f64 {
    let iters = (probe_flops / 2).max(1); // one multiply + one add per round
    let mut acc = 1.0f64;
    let x = std::hint::black_box(1.000000001f64);
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        acc = acc * x + 1.0e-9;
    }
    std::hint::black_box(acc);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    (iters * 2) as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_matches_testbed() {
        let c = paper_cluster(8);
        assert_eq!(c.len(), 8);
        assert_eq!(c.node(dps_net::NodeId(0)).cpus, 2);
        assert!((c.node(dps_net::NodeId(0)).flops - 70.0e6).abs() < 1.0);
        assert!((c.net.bandwidth_bps - 36.0e6).abs() < 1.0);
    }

    #[test]
    fn engine_config_is_deterministic_default() {
        let e = engine_config();
        assert_eq!(e.flow_window, 64);
        assert!(!e.enforce_serialization);
    }

    #[test]
    fn flop_probe_measures_a_positive_rate() {
        let rate = measure_flop_rate(200_000);
        assert!(rate.is_finite() && rate > 0.0, "rate {rate}");
    }
}
