//! Figure 9 — speedup of the Game of Life, improved versus simple flow
//! graph, for world sizes 400×400, 4000×400 and 4000×4000 on 1–8 nodes.
//!
//! Paper §5: "In all cases, the improved approach yields a higher
//! performance. With the smallest world size, the communications overhead
//! is the largest and the difference between the two approaches is the most
//! pronounced."

use dps_bench::{calib, full_scale, table};
use dps_life::{run_life_sim, LifeConfig, Variant};
use dps_sched::Distribution;

fn speedups(rows: usize, cols: usize, iterations: usize) -> Vec<(usize, f64, f64)> {
    let run = |variant, nodes| {
        let cfg = LifeConfig {
            rows,
            cols,
            iterations,
            variant,
            nodes,
            threads_per_node: 1,
            density: 0.3,
            seed: 4242,
            dist: Distribution::Static,
        };
        run_life_sim(calib::paper_cluster(nodes), &cfg, calib::engine_config())
            .expect("life run")
            .elapsed
            .as_secs_f64()
    };
    let t1_simple = run(Variant::Simple, 1);
    let t1_improved = run(Variant::Improved, 1);
    (1..=8)
        .map(|nodes| {
            let imp = t1_improved / run(Variant::Improved, nodes);
            let std = t1_simple / run(Variant::Simple, nodes);
            (nodes, imp, std)
        })
        .collect()
}

fn main() {
    // Paper world sizes; the quick run scales each dimension down 2× (the
    // 4000×4000 world costs 16 M cell updates per iteration).
    let full = full_scale();
    let scale = if full { 1 } else { 2 };
    let iterations = 3;
    let worlds = [
        (400 / scale, 400 / scale, "400x400"),
        (4000 / scale, 400 / scale, "4000x400"),
        (4000 / scale, 4000 / scale, "4000x4000"),
    ];

    let mut rows: Vec<Vec<String>> = (1..=8).map(|n| vec![format!("{n}")]).collect();
    let mut headers = vec!["nodes".to_string()];
    for &(r, c, label) in &worlds {
        headers.push(format!("Imp {label}"));
        headers.push(format!("Std {label}"));
        for (i, (_, imp, std)) in speedups(r, c, iterations).into_iter().enumerate() {
            rows[i].push(format!("{imp:.2}"));
            rows[i].push(format!("{std:.2}"));
        }
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    table::print_table(
        "Figure 9 — Game of Life speedup (Imp = improved graph, Std = simple graph)",
        &headers_ref,
        &rows,
    );
    println!(
        "\nShape check (paper): the improved graph wins everywhere; the gap is\n\
         widest for the smallest world (communication-dominated) and shrinks as\n\
         the world grows; the largest world scales almost linearly."
    );
}
