//! Figure 15 — speedup of the block LU factorization, pipelined (stream
//! operations) versus non-pipelined (standard merge-split constructs),
//! on 1–8 nodes.
//!
//! Paper §5: a 4096×4096 matrix, no optimized linear algebra library; "It
//! clearly illustrates the additional performance gain obtained thanks to
//! the pipelining offered by the stream operations."

use dps_bench::{calib, full_scale, table};
use dps_linalg::parallel::lu::{run_lu_sim, LuConfig};
use dps_linalg::{lu_residual, Matrix};
use dps_sched::Distribution;

fn main() {
    let (n, r) = if full_scale() {
        (4096, 128)
    } else {
        (1024, 64)
    };
    let seed = 77;

    let run = |pipelined, nodes| {
        let cfg = LuConfig {
            n,
            r,
            pipelined,
            seed,
            nodes,
            threads_per_node: 1,
            dist: Distribution::Static,
            update_chunks: 1,
        };
        let rep =
            run_lu_sim(calib::paper_cluster(nodes), &cfg, calib::engine_config()).expect("LU run");
        // Every configuration is verified against the input matrix.
        let a = Matrix::random_general(n, n, seed);
        let res = lu_residual(&a, &rep.factors);
        assert!(res < 1e-6 * n as f64, "residual {res}");
        rep.elapsed.as_secs_f64()
    };

    let t1_pipe = run(true, 1);
    let t1_merge = run(false, 1);
    let mut rows = Vec::new();
    for nodes in 1..=8usize {
        let tp = run(true, nodes);
        let tm = run(false, nodes);
        rows.push(vec![
            format!("{nodes}"),
            format!("{:.2}", t1_pipe / tp),
            format!("{:.2}", t1_merge / tm),
            table::secs(tp),
            table::secs(tm),
        ]);
    }
    table::print_table(
        &format!("Figure 15 — LU factorization speedup, {n}×{n}, block {r}"),
        &[
            "nodes",
            "pipelined",
            "non-pipelined",
            "t(pipe)",
            "t(merge-split)",
        ],
        &rows,
    );
    println!(
        "\nShape check (paper): both variants scale, the pipelined (stream)\n\
         variant consistently above the merge-split variant, with the gap\n\
         widening as nodes are added (paper: ≈7 vs ≈5 at 8 nodes)."
    );
}
