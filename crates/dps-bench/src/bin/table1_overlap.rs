//! Table 1 — reduction in execution time due to overlapping of
//! communications and computations, block matrix multiplication.
//!
//! Paper §4: two 1024×1024 matrices are multiplied on 1–4 compute nodes
//! with block sizes 256…32 (split factors s = 4…32), comparing the
//! pipelined DPS schedule against a no-overlap baseline. The table reports
//! the relative execution-time reduction and the communication/computation
//! time ratio for each configuration.

use dps_bench::{calib, full_scale, table};
use dps_linalg::parallel::matmul::{run_matmul_sim, MatMulConfig};
use dps_sched::Distribution;

fn main() {
    let n = if full_scale() { 1024 } else { 512 };
    let splits = [4usize, 8, 16, 32];
    let node_counts = [1usize, 2, 3, 4];

    let mut rows = Vec::new();
    for &nodes in &node_counts {
        let mut row = vec![format!("{nodes}")];
        for &s in &splits {
            let mk = |pipelined| MatMulConfig {
                n,
                s,
                pipelined,
                seed: 42,
                nodes,
                threads_per_node: 2,
                dist: Distribution::Static,
            };
            // One extra node hosts the master, as in the paper's testbed.
            let spec = calib::paper_cluster(nodes + 1);
            let pipe = run_matmul_sim(spec.clone(), &mk(true), calib::engine_config())
                .expect("pipelined run");
            let phased = run_matmul_sim(spec.clone(), &mk(false), calib::engine_config())
                .expect("phased run");
            let t_p = pipe.elapsed.as_secs_f64();
            let t_n = phased.elapsed.as_secs_f64();
            let reduction = (t_n - t_p) / t_n;
            // Communication/computation time ratio of this configuration:
            // wire time of all payload bytes vs compute time of 2n³ flops
            // spread over the worker threads.
            let comm = pipe.wire_bytes as f64 / spec.net.bandwidth_bps;
            let threads = (nodes * 2) as f64;
            let comp = 2.0 * (n as f64).powi(3) / (70.0e6 * threads);
            let ratio = comm / comp;
            row.push(format!("{} ({ratio:.2})", table::pct(reduction)));
        }
        rows.push(row);
    }

    let headers: Vec<String> = std::iter::once("nodes".to_string())
        .chain(splits.iter().map(|s| format!("block {} (s={s})", n / s)))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    table::print_table(
        &format!("Table 1 — overlap gains, {n}×{n} matmul: reduction (comm/comp ratio)"),
        &headers_ref,
        &rows,
    );
    println!(
        "\nShape check (paper): reductions grow with node count at large blocks\n\
         (ratio < 1) and peak around ratios of 0.9–2.5 (25–35% reduction); at\n\
         very high ratios (small blocks, many nodes) the gain shrinks again.\n\
         Theoretical bound: g = ratio/(ratio+1) for ratio ≤ 1, 1/(1+ratio) above."
    );
}
