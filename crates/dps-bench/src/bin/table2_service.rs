//! Table 2 — simulation iteration time with and without inter-application
//! graph calls.
//!
//! Paper §5: a visualization client "periodically requests randomly located
//! fixed-sized blocks from a world of 5620×5620 cells. When running on 4
//! machines without visualization graph calls, calculating one iteration
//! takes 1000 ms." The table reports, per requested block size, the median
//! time per call, the slowed-down iteration time, and the average number of
//! calls per second.
//!
//! The client issues calls in a closed loop (next call when the previous
//! returns), interleaved with the Life iterations through the engine's
//! single-step API.

use dps_bench::{calib, full_scale, table};
use dps_core::prelude::*;
use dps_core::SimEngine;
use dps_des::{stats::Samples, SplitMix64};
use dps_life::graphs::{build_read_service, setup_life, IterOrder, ReadReq};
use dps_life::{LifeConfig, Variant, World};
use dps_sched::Distribution;

struct CallShape {
    width: u32,
    height: u32,
}

fn run_config(
    world_size: usize,
    nodes: usize,
    iterations: usize,
    shape: Option<CallShape>,
) -> (f64, f64, f64) {
    let cfg = LifeConfig {
        rows: world_size,
        cols: world_size,
        iterations,
        variant: Variant::Improved,
        nodes,
        threads_per_node: 1,
        density: 0.3,
        seed: 99,
        dist: Distribution::Static,
    };
    let world = World::random(cfg.rows, cfg.cols, cfg.density, cfg.seed);
    let mut eng = SimEngine::new_with(calib::paper_cluster(nodes));
    let (_, master, workers, step_graph) = setup_life(&mut eng, &cfg, &world).expect("setup");
    let read_graph = build_read_service(&mut eng, &master, &workers, cfg.rows, Some("life.read"))
        .expect("read service");

    // The visualization client is a second application whose graph is a
    // single call node into the exposed service (Fig. 10).
    let client = eng.app("viz");
    eng.preload_app(client);
    let cmain: ThreadCollection<()> = eng
        .thread_collection(client, "m", "node0")
        .expect("client tc");
    let mut cb = GraphBuilder::new("viz-call");
    let _call =
        cb.call::<ReadReq, dps_life::graphs::Subset, (), _>("life.read", &cmain, || ToThread(0));
    let call_graph = eng.build_graph(cb).expect("client graph");
    let _ = read_graph;

    let mut rng = SplitMix64::new(4);
    let mut issue = |eng: &mut SimEngine, shape: &CallShape| {
        let w = shape.width.min(world_size as u32 - 1);
        let h = shape.height.min(world_size as u32 - 1);
        let col0 = rng.next_below(world_size as u64 - u64::from(w));
        let row0 = rng.next_below(world_size as u64 - u64::from(h));
        let t = eng.now();
        eng.inject(
            call_graph,
            ReadReq {
                col0: col0 as u32,
                row0: row0 as u32,
                width: w,
                height: h,
            },
        )
        .expect("inject call");
        t
    };

    let mut call_times = Samples::new();
    let mut iter_times = Samples::new();
    let mut calls_done = 0usize;
    let mut call_started = None;

    for i in 0..iterations {
        let t0 = eng.now();
        eng.inject(step_graph, IterOrder { iter: i as u32 })
            .expect("inject iteration");
        if let (Some(shape), None) = (&shape, call_started) {
            call_started = Some(issue(&mut eng, shape));
        }
        // Interleave: step events until this iteration completes; whenever
        // the in-flight call returns, record it and issue the next one.
        while eng.outputs_count(step_graph) <= i {
            if !eng.step_once().expect("no contract violations") {
                break;
            }
            if let Some(start) = call_started {
                if eng.outputs_count(call_graph) > calls_done {
                    call_times.record(eng.now().since(start).as_secs_f64());
                    calls_done += 1;
                    if let Some(shape) = &shape {
                        call_started = Some(issue(&mut eng, shape));
                    }
                }
            }
        }
        iter_times.record(eng.now().since(t0).as_secs_f64());
    }
    // Drain leftovers (the in-flight call, etc.).
    eng.run_until_idle().expect("clean drain");
    let total = eng.now().as_secs_f64();

    let median_call = call_times.median().unwrap_or(0.0);
    let mean_iter = iter_times.mean().unwrap_or(0.0);
    let calls_per_sec = if total > 0.0 {
        calls_done as f64 / total
    } else {
        0.0
    };
    (median_call, mean_iter, calls_per_sec)
}

trait EngineExt {
    fn new_with(spec: dps_cluster::ClusterSpec) -> SimEngine;
}
impl EngineExt for SimEngine {
    fn new_with(spec: dps_cluster::ClusterSpec) -> SimEngine {
        SimEngine::with_config(spec, calib::engine_config())
    }
}

fn main() {
    // Paper: 5620×5620 world, 4 nodes, 1000 ms per iteration. The quick run
    // uses a 1405×1405 world (16× fewer cells).
    // The largest requested block is 400×2400 cells, so even the quick
    // world must be taller than 2400 rows.
    let world = if full_scale() { 5620 } else { 2810 };
    let nodes = 4;
    let iterations = 4;

    let (_, baseline_iter, _) = run_config(world, nodes, iterations, None);

    let shapes = [(40u32, 40u32), (400, 400), (400, 2400)];
    let mut rows = vec![vec![
        "none".to_string(),
        "-".to_string(),
        table::secs(baseline_iter),
        "-".to_string(),
    ]];
    for &(w, h) in &shapes {
        let (median_call, iter, rate) = run_config(
            world,
            nodes,
            iterations,
            Some(CallShape {
                width: w,
                height: h,
            }),
        );
        rows.push(vec![
            format!("{w}x{h}"),
            table::secs(median_call),
            table::secs(iter),
            format!("{rate:.1}"),
        ]);
    }
    table::print_table(
        &format!("Table 2 — graph-call overhead, {world}×{world} world on {nodes} nodes"),
        &["block", "median call", "iteration time", "calls/s"],
        &rows,
    );
    println!(
        "\nShape check (paper): small blocks → sub-ms..ms calls at tens of\n\
         calls/s with a mild iteration slowdown; the 400x2400 block costs\n\
         ~100 ms per call and stretches the iteration the most."
    );
}
