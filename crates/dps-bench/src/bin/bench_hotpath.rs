//! Hot-path benchmark: the per-chunk claim → execute → report cycle.
//!
//! Measures, at 1/4/16/64 simulated workers (OS threads):
//!
//! * **feedback-report throughput** — workers hammering
//!   `FeedbackSink::report_chunk` on the sharded, wait-free
//!   [`FeedbackBoard`] vs the pre-sharding mutex-based
//!   [`LegacyFeedbackBoard`] baseline;
//! * **chunk-claim throughput** — workers draining one self-scheduling
//!   (`SS`, chunk = 1: maximal claim pressure) lease through the lock-free
//!   [`ChunkHub`] vs a faithful reconstruction of the old
//!   `Mutex<HashMap>` hub;
//!
//! plus the **end-to-end scheduled LU and Game-of-Life makespans** on the
//! deterministic simulator (virtual time — identical on every machine), so
//! the committed numbers double as a regression floor for the scheduling
//! quality while the throughput numbers track the machinery cost.
//!
//! Results are written as JSON (default `BENCH_hotpath.json`; override
//! with `--out=PATH`). `--smoke` shrinks the workload for CI — it checks
//! the harness runs, not the numbers. `--trace=PATH` additionally runs one
//! scheduled LU with a trace sink attached and exports the event stream as
//! Chrome trace-event JSON (open in `chrome://tracing` or Perfetto). The
//! committed `BENCH_hotpath.json` at the repository root is produced by a
//! full (non-smoke) run; future PRs diff against it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use dps_cluster::ClusterSpec;
use dps_core::{EngineConfig, SimEngine};
use dps_life::{run_life_sim, LifeConfig, Variant};
use dps_linalg::parallel::lu::{run_lu, run_lu_sim, LuConfig};
use dps_obs::{chrome_trace_json, schedule_hash, MetricsRegistry, TraceCollector};
use dps_sched::legacy::LegacyFeedbackBoard;
use dps_sched::{ChunkCalc, ChunkHub, Distribution, FeedbackBoard, FeedbackSink, PolicyKind};

/// Worker counts the throughput sections sweep.
const WORKER_COUNTS: [usize; 4] = [1, 4, 16, 64];

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_value(prefix: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(prefix).map(str::to_string))
}

/// Throughput of `total_ops` operations executed by `workers` threads, each
/// running `work(worker_index)` after a common start barrier. Every thread
/// timestamps its own start and end against a shared clock base, so the
/// measured span (first start → last end) is correct even when a thread
/// finishes before the coordinator is rescheduled (single-core machines).
/// Best of three runs via `fresh` state per run.
fn span_throughput<S: Send + Sync>(
    workers: usize,
    total_ops: u64,
    mut fresh: impl FnMut() -> S,
    work: impl Fn(&S, usize) + Send + Sync,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        let state = fresh();
        let base = Instant::now();
        let start = Barrier::new(workers);
        let span = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (start, state, work) = (&start, &state, &work);
                    scope.spawn(move || {
                        start.wait();
                        let t_start = base.elapsed();
                        work(state, w);
                        (t_start, base.elapsed())
                    })
                })
                .collect();
            let times: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("bench worker panicked"))
                .collect();
            let first = times.iter().map(|t| t.0).min().expect("non-empty");
            let last = times.iter().map(|t| t.1).max().expect("non-empty");
            last - first
        });
        best = best.max(total_ops as f64 / span.as_secs_f64().max(1e-9));
    }
    best
}

/// Reports/second of `workers` threads hammering `report_chunk`, each into
/// its own worker slot (the engines' reporting shape).
fn report_throughput<B: FeedbackSink + 'static>(
    workers: usize,
    per_thread: u64,
    fresh: impl FnMut() -> B,
) -> f64 {
    span_throughput(workers, workers as u64 * per_thread, fresh, |board, w| {
        for j in 0..per_thread {
            board.report_chunk(w, 1 + (j % 32), 1.0e-4);
        }
    })
}

/// The pre-change hub, reconstructed for the baseline measurement: a locked
/// map resolving every claim, with the old lookup-unlock-relock drain path.
#[derive(Default)]
struct MutexMapHub {
    leases: Mutex<HashMap<u64, Arc<dps_sched::IterCounter>>>,
    next: AtomicU64,
}

impl MutexMapHub {
    fn open(&self, calc: ChunkCalc) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.leases
            .lock()
            .expect("hub poisoned")
            .insert(id, Arc::new(dps_sched::IterCounter::new(calc)));
        id
    }

    fn claim(&self, id: u64) -> Option<dps_sched::Chunk> {
        let counter = {
            let leases = self.leases.lock().expect("hub poisoned");
            leases.get(&id).cloned()
        }?;
        let chunk = counter.claim();
        if chunk.is_none() || counter.remaining() == 0 {
            self.leases.lock().expect("hub poisoned").remove(&id);
        }
        chunk
    }
}

/// One throughput comparison row.
struct Row {
    workers: usize,
    baseline: f64,
    current: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.current / self.baseline
    }
}

fn fmt_rows(rows: &[Row], baseline_key: &str, current_key: &str) -> String {
    let lines: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workers\": {}, \"{}_mops\": {:.3}, \"{}_mops\": {:.3}, \
                 \"speedup\": {:.2}}}",
                r.workers,
                baseline_key,
                r.baseline / 1e6,
                current_key,
                r.current / 1e6,
                r.speedup()
            )
        })
        .collect();
    format!("[\n{}\n  ]", lines.join(",\n"))
}

fn main() {
    let smoke = arg_flag("--smoke");
    let out_path = arg_value("--out=").unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let (report_per_thread, claim_iters) = if smoke {
        (5_000u64, 100_000u64)
    } else {
        (100_000, 2_000_000)
    };

    // --- feedback-report throughput: sharded vs legacy ---
    println!("feedback-report throughput (reports/s), {report_per_thread} reports/thread");
    let mut report_rows = Vec::new();
    for &workers in &WORKER_COUNTS {
        let legacy = report_throughput(workers, report_per_thread, LegacyFeedbackBoard::new);
        let sharded = report_throughput(workers, report_per_thread, FeedbackBoard::new);
        println!(
            "  {workers:>2} workers: legacy {:>7.2} M/s   sharded {:>7.2} M/s   ({:.2}x)",
            legacy / 1e6,
            sharded / 1e6,
            sharded / legacy
        );
        report_rows.push(Row {
            workers,
            baseline: legacy,
            current: sharded,
        });
    }

    // --- chunk-claim throughput: lock-free hub vs mutex-map hub ---
    println!("chunk-claim throughput (claims/s), {claim_iters} SS chunks/lease");
    let mut claim_rows = Vec::new();
    for &workers in &WORKER_COUNTS {
        let calc = || ChunkCalc::new(PolicyKind::Ss, claim_iters, workers, &[]);
        let baseline = span_throughput(
            workers,
            claim_iters,
            || {
                let hub = MutexMapHub::default();
                let id = hub.open(calc());
                (hub, id)
            },
            |(hub, id), _| while hub.claim(*id).is_some() {},
        );
        let current = span_throughput(
            workers,
            claim_iters,
            || {
                let hub = ChunkHub::new();
                let lease = hub.open(calc());
                (hub, lease.id)
            },
            |(hub, id), _| while hub.claim(*id).is_some() {},
        );
        println!(
            "  {workers:>2} workers: mutex-map {:>7.2} M/s   lock-free {:>7.2} M/s   ({:.2}x)",
            baseline / 1e6,
            current / 1e6,
            current / baseline
        );
        claim_rows.push(Row {
            workers,
            baseline,
            current,
        });
    }

    // --- trace-attach overhead on the claim path ---
    // The observability seam must not tax the lock-free hot path: claim
    // counts fold into the registry once per lease at retire time (the
    // lease counter's final claim sequence), so a claim itself carries zero
    // instrumentation. Measured at 16 workers (the contended configuration
    // the hub exists for).
    let overhead_workers = 16usize;
    let overhead_calc = || ChunkCalc::new(PolicyKind::Ss, claim_iters, overhead_workers, &[]);
    let claims_plain = span_throughput(
        overhead_workers,
        claim_iters,
        || {
            let hub = ChunkHub::new();
            let lease = hub.open(overhead_calc());
            (hub, lease.id)
        },
        |(hub, id), _| while hub.claim(*id).is_some() {},
    );
    let registry = Arc::new(MetricsRegistry::new());
    let claims_traced = span_throughput(
        overhead_workers,
        claim_iters,
        || {
            let hub = ChunkHub::new();
            hub.attach_metrics(registry.clone());
            let lease = hub.open(overhead_calc());
            (hub, lease.id)
        },
        |(hub, id), _| while hub.claim(*id).is_some() {},
    );
    let overhead_pct = 100.0 * (1.0 - claims_traced / claims_plain);
    println!(
        "trace-attach overhead (claims/s, {overhead_workers} workers): \
         plain {:>7.2} M/s   with metrics {:>7.2} M/s   ({overhead_pct:+.1}%)",
        claims_plain / 1e6,
        claims_traced / 1e6,
    );

    // --- end-to-end scheduled makespans (virtual time: deterministic) ---
    let spec = || ClusterSpec::skewed(2, 2, 2.0);
    let (lu_n, life_rows, life_iters) = if smoke { (64, 96, 2) } else { (128, 192, 4) };
    let lu = |dist| {
        run_lu_sim(
            spec(),
            &LuConfig {
                n: lu_n,
                r: 16,
                pipelined: true,
                seed: 33,
                nodes: 2,
                threads_per_node: 1,
                dist,
                update_chunks: 1,
            },
            EngineConfig::default(),
        )
        .expect("LU run")
        .elapsed
        .as_secs_f64()
    };
    let life = |dist| {
        run_life_sim(
            spec(),
            &LifeConfig {
                rows: life_rows,
                cols: 2 * life_rows,
                iterations: life_iters,
                variant: Variant::Improved,
                nodes: 2,
                threads_per_node: 1,
                density: 0.35,
                seed: 9,
                dist,
            },
            EngineConfig::default(),
        )
        .expect("Life run")
        .elapsed
        .as_secs_f64()
    };
    let lu_static = lu(Distribution::Static);
    let lu_awf = lu(Distribution::Scheduled(PolicyKind::Awf));
    let life_static = life(Distribution::Static);
    let life_awf = life(Distribution::Scheduled(PolicyKind::Awf));
    println!("end-to-end makespans (virtual seconds, 2 nodes, 2x-skewed):");
    println!("  LU   n={lu_n:<4} static {lu_static:.6}s  scheduled(AWF) {lu_awf:.6}s");
    println!(
        "  Life {life_rows}x{:<4} static {life_static:.6}s  scheduled(AWF) {life_awf:.6}s",
        2 * life_rows
    );

    // --- optional Chrome-trace export of one scheduled LU run ---
    if let Some(trace_path) = arg_value("--trace=") {
        let collector = TraceCollector::new();
        let mut eng = SimEngine::with_config(spec(), EngineConfig::default());
        eng.set_trace_sink(collector.clone());
        run_lu(
            &mut eng,
            &LuConfig {
                n: lu_n,
                r: 16,
                pipelined: true,
                seed: 33,
                nodes: 2,
                threads_per_node: 1,
                dist: Distribution::Scheduled(PolicyKind::Awf),
                update_chunks: 1,
            },
        )
        .expect("traced LU run");
        let log = collector.take_log();
        std::fs::write(&trace_path, chrome_trace_json(&log)).expect("write Chrome trace");
        println!(
            "Chrome trace of scheduled LU (n={lu_n}): {} events, \
             schedule hash {:016x}, written to {trace_path}",
            log.events.len(),
            schedule_hash(&log)
        );
    }

    // Environment metadata: what machine and engine shape produced the
    // numbers, so committed baselines are comparable across hosts.
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    // On a single hardware core the "contended" configurations time-slice
    // instead of contending, so the throughput ratios say nothing about
    // the lock-free design; the flag warns baseline readers and gates the
    // speedup assertions below.
    let single_core = cores <= 1;
    let timestamp_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let json = format!(
        "{{\n  \"suite\": \"bench_hotpath\",\n  \"smoke\": {smoke},\n  \
         \"env\": {{\n    \"cores\": {cores},\n    \"single_core\": {single_core},\n    \
         \"engine\": \"sim\",\n    \
         \"worker_counts\": [1, 4, 16, 64],\n    \
         \"timestamp_unix\": {timestamp_unix}\n  }},\n  \
         \"reports_per_thread\": {report_per_thread},\n  \
         \"claim_iters\": {claim_iters},\n  \
         \"feedback_report\": {},\n  \"chunk_claim\": {},\n  \
         \"trace_overhead\": {{\n    \"workers\": {overhead_workers},\n    \
         \"claims_plain_mops\": {:.3},\n    \
         \"claims_traced_mops\": {:.3},\n    \
         \"overhead_pct\": {overhead_pct:.2}\n  }},\n  \
         \"e2e_makespans_virtual_s\": {{\n    \
         \"lu_n\": {lu_n},\n    \"lu_static\": {lu_static:.9},\n    \
         \"lu_scheduled_awf\": {lu_awf:.9},\n    \
         \"life_rows\": {life_rows},\n    \"life_static\": {life_static:.9},\n    \
         \"life_scheduled_awf\": {life_awf:.9}\n  }}\n}}\n",
        fmt_rows(&report_rows, "legacy", "sharded"),
        fmt_rows(&claim_rows, "mutex_map", "lock_free"),
        claims_plain / 1e6,
        claims_traced / 1e6,
    );
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("JSON written to {out_path}");

    // The acceptance bar this benchmark exists to defend: the sharded board
    // must beat the mutex board by >= 2x at 16 workers in full runs. Smoke
    // runs only prove the harness executes, and single-core machines cannot
    // produce real contention, so both skip the assertions.
    if single_core {
        println!("single-core machine: contention-speedup assertions skipped");
    }
    if !smoke && !single_core {
        let r16 = report_rows
            .iter()
            .find(|r| r.workers == 16)
            .expect("16-worker row");
        assert!(
            r16.speedup() >= 2.0,
            "sharded feedback board regressed: {:.2}x at 16 workers (need >= 2x)",
            r16.speedup()
        );
        assert!(
            overhead_pct <= 5.0,
            "trace sink taxes the claim path: {overhead_pct:.1}% overhead (budget 5%)"
        );
    }
}
