//! Figure 6 — round-trip data transfer throughput through a 4-node ring,
//! comparing DPS data objects with raw socket transfers.
//!
//! Paper §4: "the first test transfers 100 MB of data along a ring of 4
//! PCs. The individual machines forward the data as soon as they receive
//! it." The socket baseline sends bare blocks; the DPS case embeds the same
//! payloads in data objects, which adds control structures whose cost "is
//! significant only when sending large amounts of small data objects".

use dps_bench::{calib, full_scale, table};
use dps_core::prelude::*;
use dps_core::{dps_token, SimEngine};
use dps_des::SimTime;
use dps_net::{NetworkModel, NodeId, Traffic};
use dps_serial::Buffer;

dps_token! {
    /// One payload block travelling around the ring.
    pub struct Chunk { pub seq: u32, pub data: Buffer<u8> }
}
dps_token! {
    /// Transfer order: how many chunks of which size.
    pub struct RingJob { pub chunks: u32, pub size: u32 }
}
dps_token! {
    /// Completion summary.
    pub struct RingDone { pub chunks: u32 }
}

struct SplitChunks;
impl SplitOperation for SplitChunks {
    type Thread = ();
    type In = RingJob;
    type Out = Chunk;
    fn execute(&mut self, ctx: &mut OpCtx<'_, (), Chunk>, j: RingJob) {
        for seq in 0..j.chunks {
            ctx.post(Chunk {
                seq,
                data: vec![0u8; j.size as usize].into(),
            });
        }
    }
}

/// Forward the chunk unchanged — the ring hop.
struct Forward;
impl LeafOperation for Forward {
    type Thread = ();
    type In = Chunk;
    type Out = Chunk;
    fn execute(&mut self, ctx: &mut OpCtx<'_, (), Chunk>, c: Chunk) {
        ctx.post(c);
    }
}

#[derive(Default)]
struct CountChunks {
    n: u32,
}
impl MergeOperation for CountChunks {
    type Thread = ();
    type In = Chunk;
    type Out = RingDone;
    fn consume(&mut self, _ctx: &mut OpCtx<'_, (), RingDone>, _c: Chunk) {
        self.n += 1;
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, (), RingDone>) {
        ctx.post(RingDone { chunks: self.n });
    }
}

/// DPS ring: split on node0, forwarding leaves on nodes 1→2→3→0, merge on
/// node0; throughput from the virtual makespan.
fn dps_ring_mbps(size: usize, total_bytes: usize) -> f64 {
    let chunks = (total_bytes / size).max(1) as u32;
    let mut ecfg = calib::engine_config();
    ecfg.flow_window = 32; // throughput test: don't throttle the ring
    let mut eng = SimEngine::with_config(calib::paper_cluster(4), ecfg);
    let app = eng.app("ring");
    eng.preload_app(app);
    let c0: ThreadCollection<()> = eng.thread_collection(app, "n0", "node0").unwrap();
    let c1: ThreadCollection<()> = eng.thread_collection(app, "n1", "node1").unwrap();
    let c2: ThreadCollection<()> = eng.thread_collection(app, "n2", "node2").unwrap();
    let c3: ThreadCollection<()> = eng.thread_collection(app, "n3", "node3").unwrap();
    let mut b = GraphBuilder::new("ring");
    let s = b.split(&c0, || ToThread(0), || SplitChunks);
    let f1 = b.leaf(&c1, || ToThread(0), || Forward);
    let f2 = b.leaf(&c2, || ToThread(0), || Forward);
    let f3 = b.leaf(&c3, || ToThread(0), || Forward);
    let f0 = b.leaf(&c0, || ToThread(0), || Forward);
    let m = b.merge(&c0, || ToThread(0), CountChunks::default);
    b.add(s >> f1 >> f2 >> f3 >> f0 >> m);
    let g = eng.build_graph(b).unwrap();
    eng.inject(
        g,
        RingJob {
            chunks,
            size: size as u32,
        },
    )
    .unwrap();
    eng.run_until_idle().unwrap();
    let elapsed = eng.now().as_secs_f64();
    (chunks as usize * size) as f64 / 1e6 / elapsed
}

/// Socket baseline: the same ring forwarding pattern straight on the
/// network model (no DPS headers, no operation overheads).
fn socket_ring_mbps(size: usize, total_bytes: usize) -> f64 {
    let chunks = (total_bytes / size).max(1) as u64;
    let spec = calib::paper_cluster(4);
    let mut net = NetworkModel::new(4, spec.net.clone());
    let hops = [
        (NodeId(0), NodeId(1)),
        (NodeId(1), NodeId(2)),
        (NodeId(2), NodeId(3)),
        (NodeId(3), NodeId(0)),
    ];
    // ready[h] = when the payload of the current chunk is available at hop h's source.
    let mut ready = [SimTime::ZERO; 5];
    let mut last = SimTime::ZERO;
    for _ in 0..chunks {
        let mut t = ready[0];
        for (h, &(src, dst)) in hops.iter().enumerate() {
            let plan = net.transfer(t, src, dst, size as u64, Traffic::Socket);
            // The next chunk may leave this hop as soon as the sender's NIC
            // frees; the current chunk continues when it is delivered.
            ready[h] = ready[h].max(plan.sender_done);
            t = plan.delivered;
        }
        last = last.max(t);
    }
    (chunks as usize * size) as f64 / 1e6 / last.as_secs_f64()
}

fn main() {
    // 100 MB at paper scale; 10 MB (or 200 chunks minimum) otherwise to
    // keep small-chunk event counts manageable.
    let full = full_scale();
    let sizes = [
        1_000usize, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000,
    ];
    let mut rows = Vec::new();
    for &size in &sizes {
        let total = if full {
            100_000_000
        } else {
            10_000_000.min(size * 2_000).max(size * 50)
        };
        let dps = dps_ring_mbps(size, total);
        let socket = socket_ring_mbps(size, total);
        rows.push(vec![
            format!("{size}"),
            format!("{dps:.2}"),
            format!("{socket:.2}"),
            format!("{:.2}", dps / socket),
        ]);
    }
    table::print_table(
        "Figure 6 — ring throughput [MB/s] vs single-transfer size [bytes]",
        &["size", "DPS", "sockets", "DPS/sockets"],
        &rows,
    );
    println!(
        "\nShape check (paper): both curves rise with size; sockets lead at small\n\
         sizes (DPS control structures dominate); the curves converge near 1 MB\n\
         at the ≈35 MB/s plateau."
    );
}
