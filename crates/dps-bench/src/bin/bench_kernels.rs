//! Compute-kernel benchmark: raw single-thread GFLOP/s of the blocked
//! kernels, and the scheduled multi-core scaling they enable.
//!
//! Two sections:
//!
//! * **gemm single-thread** — GFLOP/s of the naive `ijk` loop, the scalar
//!   `ikj` fallback, and the packed blocked kernel at several orders. The
//!   committed full-run baseline must show the blocked kernel ≥ 3× the
//!   naive loop at `n ≥ 256` — the bar this benchmark defends.
//! * **scheduled LU scaling** — wall-clock makespans of the chunked block
//!   LU (`update_chunks` > 1, sub-column chunks claimed through the chunk
//!   hub) on the OS-thread engine at increasing worker counts. On a
//!   single-core machine the curve is flat by construction; the
//!   `single_core` flag in the JSON says so and no scaling is asserted.
//!
//! Results are written as JSON (default `BENCH_kernels.json`; override
//! with `--out=PATH`). `--smoke` shrinks the workload for CI — it checks
//! the harness runs, not the numbers. The committed `BENCH_kernels.json`
//! at the repository root is produced by a full (non-smoke) run.

use std::time::Instant;

use dps_linalg::kernel::{gemm_blocked, gemm_naive, gemm_scalar};
use dps_linalg::parallel::lu::{run_lu, LuConfig};
use dps_linalg::{blocked_lu, Matrix};
use dps_mt::MtEngine;
use dps_sched::Distribution;

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_value(prefix: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(prefix).map(str::to_string))
}

/// Best-of-three GFLOP/s of one `n×n·n×n` gemm variant, with enough
/// repetitions per measurement that the span clears timer noise.
fn gemm_gflops(n: usize, kernel: impl Fn(&Matrix, &Matrix, &mut Matrix)) -> f64 {
    let a = Matrix::random_general(n, n, 1);
    let b = Matrix::random_general(n, n, 2);
    let flops = 2.0 * (n * n * n) as f64;
    let reps = ((25_000_000.0 / flops) as usize).max(1);
    let mut best = 0.0f64;
    for _ in 0..3 {
        let mut c = Matrix::zeros(n, n);
        let t0 = Instant::now();
        for _ in 0..reps {
            kernel(&a, &b, &mut c);
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9) / reps as f64;
        best = best.max(flops / secs / 1e9);
    }
    best
}

/// One gemm comparison row.
struct GemmRow {
    n: usize,
    naive: f64,
    scalar: f64,
    blocked: f64,
}

impl GemmRow {
    fn blocked_vs_naive(&self) -> f64 {
        self.blocked / self.naive
    }
}

/// One LU scaling row: wall-clock seconds at a worker count.
struct ScaleRow {
    workers: usize,
    elapsed_s: f64,
}

fn main() {
    let smoke = arg_flag("--smoke");
    let out_path = arg_value("--out=").unwrap_or_else(|| "BENCH_kernels.json".to_string());

    // --- single-thread gemm: naive ijk vs scalar ikj vs packed blocked ---
    let sizes: &[usize] = if smoke {
        &[32, 64]
    } else {
        &[64, 128, 256, 384]
    };
    println!("gemm single-thread GFLOP/s (best of 3)");
    let mut gemm_rows = Vec::new();
    for &n in sizes {
        let naive = gemm_gflops(n, |a, b, c| gemm_naive(1.0, a, b, 0.0, c));
        let scalar = gemm_gflops(n, |a, b, c| gemm_scalar(1.0, a, b, 0.0, c));
        let blocked = gemm_gflops(n, |a, b, c| gemm_blocked(1.0, a, b, 0.0, c));
        println!(
            "  n={n:<4} naive {naive:>6.2}   ikj {scalar:>6.2}   blocked {blocked:>6.2}   \
             (blocked/naive {:.2}x)",
            blocked / naive
        );
        gemm_rows.push(GemmRow {
            n,
            naive,
            scalar,
            blocked,
        });
    }

    // --- scheduled LU scaling on OS threads (chunked trailing updates) ---
    let (lu_n, lu_r, update_chunks) = if smoke { (96, 16, 2) } else { (384, 32, 4) };
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    println!(
        "scheduled LU wall-clock on MtEngine (n={lu_n}, r={lu_r}, \
         update_chunks={update_chunks})"
    );
    let reference = {
        let a = Matrix::random_general(lu_n, lu_n, 41);
        blocked_lu(&a, lu_r)
    };
    let mut scale_rows = Vec::new();
    for &workers in worker_counts {
        let cfg = LuConfig {
            n: lu_n,
            r: lu_r,
            pipelined: true,
            seed: 41,
            nodes: workers,
            threads_per_node: 1,
            dist: Distribution::Static,
            update_chunks,
        };
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut eng = MtEngine::new(workers);
            let rep = run_lu(&mut eng, &cfg).expect("LU run");
            eng.shutdown();
            assert_eq!(
                rep.factors.lu, reference.lu,
                "scheduled factors diverged from the sequential reference"
            );
            best = best.min(rep.elapsed.as_secs_f64());
        }
        let speedup = scale_rows
            .first()
            .map_or(1.0, |r: &ScaleRow| r.elapsed_s / best);
        println!("  {workers:>2} workers: {best:.6}s   ({speedup:.2}x vs 1)");
        scale_rows.push(ScaleRow {
            workers,
            elapsed_s: best,
        });
    }

    // Environment metadata: what machine produced the numbers, so committed
    // baselines are comparable across hosts. `single_core` warns that the
    // scaling rows above were time-sliced, not parallel.
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let single_core = cores <= 1;
    if single_core {
        println!("single-core machine: scaling rows are time-sliced, not parallel");
    }
    let timestamp_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let gemm_json: Vec<String> = gemm_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"n\": {}, \"naive_gflops\": {:.3}, \"scalar_ikj_gflops\": {:.3}, \
                 \"blocked_gflops\": {:.3}, \"blocked_vs_naive\": {:.2}}}",
                r.n,
                r.naive,
                r.scalar,
                r.blocked,
                r.blocked_vs_naive()
            )
        })
        .collect();
    let base = scale_rows.first().map_or(0.0, |r| r.elapsed_s);
    let scale_json: Vec<String> = scale_rows
        .iter()
        .map(|r| {
            format!(
                "      {{\"workers\": {}, \"elapsed_s\": {:.6}, \"speedup\": {:.2}}}",
                r.workers,
                r.elapsed_s,
                base / r.elapsed_s
            )
        })
        .collect();
    let worker_list: Vec<String> = worker_counts.iter().map(usize::to_string).collect();
    let json = format!(
        "{{\n  \"suite\": \"bench_kernels\",\n  \"smoke\": {smoke},\n  \
         \"env\": {{\n    \"cores\": {cores},\n    \"single_core\": {single_core},\n    \
         \"engine\": \"mt\",\n    \
         \"worker_counts\": [{}],\n    \
         \"timestamp_unix\": {timestamp_unix}\n  }},\n  \
         \"gemm_single_thread\": [\n{}\n  ],\n  \
         \"lu_scaling_mt\": {{\n    \"n\": {lu_n},\n    \"r\": {lu_r},\n    \
         \"update_chunks\": {update_chunks},\n    \"rows\": [\n{}\n    ]\n  }}\n}}\n",
        worker_list.join(", "),
        gemm_json.join(",\n"),
        scale_json.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("JSON written to {out_path}");

    // The acceptance bar: the packed blocked kernel must beat the naive
    // loop by >= 3x at n >= 256 in full runs. Smoke runs only prove the
    // harness executes.
    if !smoke {
        let big = gemm_rows
            .iter()
            .filter(|r| r.n >= 256)
            .min_by(|a, b| a.blocked_vs_naive().total_cmp(&b.blocked_vs_naive()))
            .expect("a row with n >= 256");
        assert!(
            big.blocked_vs_naive() >= 3.0,
            "blocked gemm regressed: {:.2}x over naive at n={} (need >= 3x)",
            big.blocked_vs_naive(),
            big.n
        );
    }
}
