//! Ablations of the framework's design choices (not a paper artefact):
//!
//! 1. **Flow-control window** — the paper bounds the tokens in circulation
//!    per split/merge pair; this sweep shows the throughput/memory
//!    trade-off the bound controls (too small serializes the schedule, the
//!    marginal benefit of huge windows is zero).
//! 2. **Per-operation framework overhead** — how sensitive end-to-end
//!    times are to the dispatch cost (the paper's control structures).
//! 3. **Stream vs merge-split at fixed hardware** — the LU pipelining gain
//!    in isolation, node count fixed.

use dps_bench::{calib, table};
use dps_core::EngineConfig;
use dps_des::SimSpan;
use dps_linalg::parallel::lu::{run_lu_sim, LuConfig};
use dps_linalg::parallel::matmul::{run_matmul_sim, MatMulConfig};
use dps_sched::Distribution;

fn matmul_time(window: u32, op_overhead_us: u64) -> f64 {
    let cfg = MatMulConfig {
        n: 256,
        s: 16,
        pipelined: true,
        seed: 5,
        nodes: 4,
        threads_per_node: 2,
        dist: Distribution::Static,
    };
    let ecfg = EngineConfig {
        flow_window: window,
        op_overhead: SimSpan::from_micros(op_overhead_us),
        enforce_serialization: false,
    };
    run_matmul_sim(calib::paper_cluster(5), &cfg, ecfg)
        .expect("matmul run")
        .elapsed
        .as_secs_f64()
}

fn main() {
    // 1. Flow window sweep.
    let mut rows = Vec::new();
    for window in [1u32, 2, 4, 8, 16, 32, 64, 0] {
        let t = matmul_time(window, 25);
        rows.push(vec![
            if window == 0 {
                "unlimited".to_string()
            } else {
                format!("{window}")
            },
            table::secs(t),
        ]);
    }
    table::print_table(
        "Ablation 1 — flow-control window (256×256 matmul, s=16, 4 nodes)",
        &["window", "time"],
        &rows,
    );

    // 2. Per-operation overhead sweep.
    let mut rows = Vec::new();
    for us in [0u64, 5, 25, 100, 400] {
        let t = matmul_time(64, us);
        rows.push(vec![format!("{us}µs"), table::secs(t)]);
    }
    table::print_table(
        "Ablation 2 — per-operation framework overhead",
        &["op overhead", "time"],
        &rows,
    );

    // 3. Stream pipelining gain at fixed hardware.
    let mut rows = Vec::new();
    for nodes in [2usize, 4, 8] {
        let mk = |pipelined| LuConfig {
            n: 512,
            r: 64,
            pipelined,
            seed: 3,
            nodes,
            threads_per_node: 1,
            dist: Distribution::Static,
            update_chunks: 1,
        };
        let tp = run_lu_sim(
            calib::paper_cluster(nodes),
            &mk(true),
            calib::engine_config(),
        )
        .expect("lu")
        .elapsed
        .as_secs_f64();
        let tm = run_lu_sim(
            calib::paper_cluster(nodes),
            &mk(false),
            calib::engine_config(),
        )
        .expect("lu")
        .elapsed
        .as_secs_f64();
        rows.push(vec![
            format!("{nodes}"),
            table::secs(tp),
            table::secs(tm),
            table::pct((tm - tp) / tm),
        ]);
    }
    table::print_table(
        "Ablation 3 — stream vs merge-split, 512×512 LU, block 64",
        &["nodes", "stream", "merge-split", "gain"],
        &rows,
    );
}
