//! Dynamic loop scheduling — makespan sweep of every chunk policy
//! (static, SS, GSS, TSS, FAC, AWF) over the LU and matmul iteration-cost
//! profiles on a 2×-skewed heterogeneous cluster.
//!
//! Beyond the paper: its splits partition statically; the DLS literature
//! (arXiv:1804.11115) shows self-scheduling chunk policies are what make
//! irregular and heterogeneous workloads fast. Each policy runs the same
//! loop for several time steps; AWF adapts its per-worker chunk weights
//! from the engine's virtual-time completion reports between steps.

use dps_bench::dls::{lu_cost, matmul_cost, run_dls_sim, CostFn, DlsConfig};
use dps_bench::{full_scale, table};
use dps_cluster::ClusterSpec;
use dps_sched::PolicyKind;

fn main() {
    let (iters, steps) = if full_scale() { (4096, 6) } else { (1024, 4) };
    let nodes = 4usize;
    let skew = 2.0;
    let workloads: [(&str, CostFn); 2] = [("matmul", matmul_cost(iters)), ("LU", lu_cost(iters))];

    for (name, cost) in workloads {
        let mut rows = Vec::new();
        let mut static_total = None;
        for kind in PolicyKind::ALL {
            let rep = run_dls_sim(
                ClusterSpec::skewed(nodes, 1, skew),
                cost.clone(),
                &DlsConfig {
                    iters,
                    steps,
                    policy: kind,
                    flow_window: 2 * nodes as u32,
                },
            )
            .expect("DLS run");
            if kind == PolicyKind::Static {
                static_total = Some(rep.total);
            }
            let base = static_total.expect("static runs first");
            rows.push(vec![
                kind.name().to_string(),
                table::secs(rep.total),
                table::secs(rep.per_step[0]),
                table::secs(*rep.per_step.last().expect("steps >= 1")),
                format!("{}", rep.chunks[0]),
                table::pct(1.0 - rep.total / base),
            ]);
        }
        table::print_table(
            &format!(
                "DLS policies — {name} profile, {iters} iterations × {steps} steps, \
                 {nodes} nodes ({skew}×-skewed)"
            ),
            &[
                "policy",
                "makespan",
                "first step",
                "last step",
                "chunks/step",
                "vs static",
            ],
            &rows,
        );
    }
    println!(
        "\nShape check (DLS literature): on a skewed cluster the adaptive\n\
         policies (FAC, AWF) beat static chunking; AWF's last step should\n\
         be its best as measured rates converge; SS balances perfectly but\n\
         pays maximal per-chunk overhead."
    );
}
