//! Dynamic loop scheduling — makespan sweep of every chunk policy
//! (static, SS, GSS, TSS, FAC, AWF) on a 2×-skewed heterogeneous cluster:
//! first over the synthetic LU / matmul iteration-cost profiles, then over
//! the **real applications** (block LU and Game of Life driven through the
//! `Distribution` config knob).
//!
//! Beyond the paper: its splits partition statically; the DLS literature
//! (arXiv:1804.11115) shows self-scheduling chunk policies are what make
//! irregular and heterogeneous workloads fast. Chunk boundaries are
//! computed at the workers (distributed chunk calculation,
//! arXiv:2101.07050); AWF adapts its per-worker weights from the engine's
//! virtual-time completion reports.
//!
//! Machine-readable output (`workload,policy,makespan_s,vs_static_pct`):
//! `--csv` replaces the tables on stdout; `--csv-out=FILE` keeps the tables
//! and *additionally* writes the CSV to `FILE` (what CI uploads as an
//! artifact, in one run). `--full` selects paper-scale problem sizes.
//! `--trace=FILE` re-runs the AWF-scheduled LU with a trace sink attached
//! and exports it as Chrome trace-event JSON.

use dps_bench::dls::{lu_cost, matmul_cost, run_dls_sim, CostFn, DlsConfig};
use dps_bench::{full_scale, table};
use dps_cluster::ClusterSpec;
use dps_core::{EngineConfig, SimEngine};
use dps_life::{run_life_sim, LifeConfig, Variant};
use dps_linalg::parallel::lu::{run_lu, run_lu_sim, LuConfig};
use dps_sched::{Distribution, PolicyKind};

fn csv_mode() -> bool {
    std::env::args().any(|a| a == "--csv")
}

fn csv_out() -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix("--csv-out=").map(str::to_string))
}

fn trace_out() -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix("--trace=").map(str::to_string))
}

/// One output row: workload, policy, makespan seconds, gain vs static.
struct Row {
    workload: &'static str,
    policy: &'static str,
    makespan: f64,
    vs_static: f64,
}

fn emit(
    csv: bool,
    csv_buf: &mut Vec<String>,
    title: &str,
    headers: &[&str],
    rows: &[Row],
    extra: &[Vec<String>],
) {
    for r in rows {
        let line = format!(
            "{},{},{:.6},{:.2}",
            r.workload,
            r.policy,
            r.makespan,
            100.0 * r.vs_static
        );
        if csv {
            println!("{line}");
        }
        csv_buf.push(line);
    }
    if !csv {
        let printable: Vec<Vec<String>> = rows
            .iter()
            .zip(extra)
            .map(|(r, e)| {
                let mut row = vec![r.policy.to_string(), table::secs(r.makespan)];
                row.extend(e.iter().cloned());
                row.push(table::pct(r.vs_static));
                row
            })
            .collect();
        table::print_table(title, headers, &printable);
    }
}

fn dist_of(kind: PolicyKind) -> Distribution {
    match kind {
        PolicyKind::Static => Distribution::Static,
        k => Distribution::Scheduled(k),
    }
}

/// Write an artifact, failing with a diagnostic instead of a panic when the
/// path is unwritable (e.g. `--csv-out=missing-dir/file.csv` in CI).
fn write_artifact(what: &str, path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("dls_policies: cannot write {what} to {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let csv = csv_mode();
    let out_path = csv_out();
    let mut csv_buf = vec!["workload,policy,makespan_s,vs_static_pct".to_string()];
    let (iters, steps) = if full_scale() { (4096, 6) } else { (1024, 4) };
    let nodes = 4usize;
    let skew = 2.0;
    if csv {
        println!("{}", csv_buf[0]);
    }

    // --- synthetic cost profiles through the generic scheduled loop ---
    let workloads: [(&'static str, CostFn); 2] = [
        ("matmul-profile", matmul_cost(iters)),
        ("LU-profile", lu_cost(iters)),
    ];
    for (name, cost) in workloads {
        let mut rows = Vec::new();
        let mut extra = Vec::new();
        let mut static_total = None;
        for kind in PolicyKind::ALL {
            let rep = run_dls_sim(
                ClusterSpec::skewed(nodes, 1, skew),
                cost.clone(),
                &DlsConfig {
                    iters,
                    steps,
                    policy: kind,
                    flow_window: 2 * nodes as u32,
                },
            )
            .expect("DLS run");
            if kind == PolicyKind::Static {
                static_total = Some(rep.total);
            }
            let base = static_total.expect("static runs first");
            rows.push(Row {
                workload: name,
                policy: kind.name(),
                makespan: rep.total,
                vs_static: 1.0 - rep.total / base,
            });
            extra.push(vec![
                table::secs(rep.per_step[0]),
                table::secs(*rep.per_step.last().expect("steps >= 1")),
                format!("{}", rep.chunks[0]),
            ]);
        }
        emit(
            csv,
            &mut csv_buf,
            &format!(
                "DLS policies — {name}, {iters} iterations × {steps} steps, \
                 {nodes} nodes ({skew}×-skewed)"
            ),
            &[
                "policy",
                "makespan",
                "first step",
                "last step",
                "chunks/step",
                "vs static",
            ],
            &rows,
            &extra,
        );
    }

    // --- the real applications, through the Distribution knob ---
    let spec = || ClusterSpec::skewed(2, 2, skew);
    let (lu_n, life_rows, life_iters) = if full_scale() {
        (256usize, 384usize, 6usize)
    } else {
        (128, 192, 4)
    };

    let mut rows = Vec::new();
    let mut extra = Vec::new();
    let mut base = None;
    for kind in PolicyKind::ALL {
        let rep = run_lu_sim(
            spec(),
            &LuConfig {
                n: lu_n,
                r: 16,
                pipelined: true,
                seed: 33,
                nodes: 2,
                threads_per_node: 1,
                dist: dist_of(kind),
                update_chunks: 1,
            },
            EngineConfig::default(),
        )
        .expect("LU run");
        let t = rep.elapsed.as_secs_f64();
        let b = *base.get_or_insert(t);
        rows.push(Row {
            workload: "LU-app",
            policy: kind.name(),
            makespan: t,
            vs_static: 1.0 - t / b,
        });
        extra.push(vec![format!("{}", rep.wire_bytes)]);
    }
    emit(
        csv,
        &mut csv_buf,
        &format!("Real block LU (n={lu_n}), column ownership by policy, 2 nodes ({skew}×-skewed)"),
        &["policy", "makespan", "wire bytes", "vs static"],
        &rows,
        &extra,
    );

    let mut rows = Vec::new();
    let mut extra = Vec::new();
    let mut base = None;
    for kind in PolicyKind::ALL {
        let rep = run_life_sim(
            spec(),
            &LifeConfig {
                rows: life_rows,
                cols: 2 * life_rows,
                iterations: life_iters,
                variant: Variant::Improved,
                nodes: 2,
                threads_per_node: 1,
                density: 0.35,
                seed: 9,
                dist: dist_of(kind),
            },
            EngineConfig::default(),
        )
        .expect("Life run");
        let t = rep.elapsed.as_secs_f64();
        let b = *base.get_or_insert(t);
        rows.push(Row {
            workload: "Life-app",
            policy: kind.name(),
            makespan: t,
            vs_static: 1.0 - t / b,
        });
        extra.push(vec![format!(
            "{:.4}s",
            rep.per_iter.last().expect("iters >= 1").as_secs_f64()
        )]);
    }
    emit(
        csv,
        &mut csv_buf,
        &format!(
            "Real Game of Life ({life_rows}×{} × {life_iters} iters), \
             row chunks by policy, 2 nodes ({skew}×-skewed)",
            2 * life_rows
        ),
        &["policy", "makespan", "last iter", "vs static"],
        &rows,
        &extra,
    );

    if let Some(path) = out_path {
        write_artifact("CSV artifact", &path, &(csv_buf.join("\n") + "\n"));
        println!("\nCSV written to {path}");
    }

    // --- optional Chrome trace of the AWF-scheduled LU ---
    if let Some(path) = trace_out() {
        let collector = dps_obs::TraceCollector::new();
        let mut eng = SimEngine::with_config(spec(), EngineConfig::default());
        eng.set_trace_sink(collector.clone());
        run_lu(
            &mut eng,
            &LuConfig {
                n: lu_n,
                r: 16,
                pipelined: true,
                seed: 33,
                nodes: 2,
                threads_per_node: 1,
                dist: Distribution::Scheduled(PolicyKind::Awf),
                update_chunks: 1,
            },
        )
        .expect("traced LU run");
        let log = collector.take_log();
        write_artifact("Chrome trace", &path, &dps_obs::chrome_trace_json(&log));
        println!(
            "\nChrome trace of scheduled LU: {} events, schedule hash {:016x}, written to {path}",
            log.events.len(),
            dps_obs::schedule_hash(&log)
        );
    }

    if !csv {
        println!(
            "\nShape check (DLS literature): on a skewed cluster the adaptive\n\
             policies (FAC, AWF) beat static distributions; AWF's last step\n\
             should be its best as measured rates converge; SS balances\n\
             perfectly but pays maximal per-chunk overhead. Chunk boundaries\n\
             are computed at the workers (distributed chunk calculation), so\n\
             even SS no longer serializes the master."
        );
    }
}
