//! Driver for dynamic-loop-scheduling (DLS) experiments: a scheduled loop
//! (`ScheduledSplit → ChunkWorker → CollectChunks`) swept over policies on
//! heterogeneous clusters, in the style of the DLS literature's makespan
//! comparisons (Mohammed et al., arXiv:1804.11115).
//!
//! The flow window is the self-scheduling valve: with a window of about
//! `2 × workers`, chunks are released as earlier ones merge, so every
//! routing decision sees live per-thread backlogs — late chunks flow to
//! whichever worker drained first. AWF additionally adapts chunk *sizes*
//! across time steps from the engine's virtual-time completion reports.

use std::sync::Arc;

use dps_cluster::{default_mapping, ClusterSpec};
use dps_core::prelude::*;
use dps_core::sched::{
    ChunkRoute, ChunkWorker, CollectChunks, IterRange, RangeDone, ScheduledSplit,
};
use dps_core::Engine;
use dps_sched::{FeedbackBoard, PolicyKind};

/// Per-iteration FLOP cost model of a scheduled loop.
pub type CostFn = Arc<dyn Fn(u64) -> f64 + Send + Sync>;

/// Uniform per-iteration cost — the profile of a blocked matrix multiply,
/// where every result row costs `2n²` FLOPs for an `n × n` product.
pub fn matmul_cost(n: u64) -> CostFn {
    let per_iter = 2.0 * (n as f64) * (n as f64);
    Arc::new(move |_i| per_iter)
}

/// Triangular (quadratically decreasing) per-iteration cost — the profile
/// of LU factorization, where step `i` updates the `(n-i)²` trailing
/// submatrix. The canonical *irregular* DLS workload.
pub fn lu_cost(n: u64) -> CostFn {
    Arc::new(move |i| {
        let rem = n.saturating_sub(i) as f64;
        2.0 * rem * rem
    })
}

/// Rising quadratic cost (`cost(i) ∝ (i+1)²`) — a triangular sweep where
/// late iterations dominate; the adversarial profile for static chunking,
/// which hands the expensive tail to the last (slowest) workers.
pub fn rising_cost(scale: f64) -> CostFn {
    Arc::new(move |i| {
        let x = (i + 1) as f64;
        scale * x * x
    })
}

/// Parameters of one scheduled-loop run.
#[derive(Debug, Clone)]
pub struct DlsConfig {
    /// Loop iterations per time step.
    pub iters: u64,
    /// Time steps (outer waves) — adaptive policies converge across steps.
    pub steps: u32,
    /// Chunk policy under test.
    pub policy: PolicyKind,
    /// Flow window (0 = unbounded; `2 × workers` gives live self-scheduling).
    pub flow_window: u32,
}

/// Outcome of one scheduled-loop run.
#[derive(Debug, Clone)]
pub struct DlsReport {
    /// Makespan of each time step, in virtual seconds.
    pub per_step: Vec<f64>,
    /// Total makespan across all steps.
    pub total: f64,
    /// Chunks scheduled in each step.
    pub chunks: Vec<u32>,
    /// Final AWF weights measured by the feedback board (one per worker).
    pub weights: Vec<f64>,
    /// Chunk completions the engine reported to the feedback board — the
    /// regression canary for the feedback channel (weights alone cannot
    /// detect silence: a cold board still yields uniform positive weights).
    pub reported_chunks: u64,
}

/// Run a scheduled loop with `cfg.policy` over `cost` on **any engine** —
/// the single generic entry point behind [`run_dls_sim`] and the
/// cross-engine tests. One worker thread per node of `worker_nodes`
/// (`node0..`), the master on `node0`; per-step makespans come out in the
/// engine's own notion of time. The feedback board's rate estimator
/// matches the policy (AWF-B/AWF-C get their batch-/chunk-time weighting).
pub fn run_dls<E: Engine>(
    eng: &mut E,
    cost: CostFn,
    cfg: &DlsConfig,
    worker_nodes: usize,
) -> Result<DlsReport> {
    let board = Arc::new(FeedbackBoard::for_policy(cfg.policy));
    eng.set_feedback_sink(board.clone());
    let app = eng.app("dls");
    eng.preload_app(app); // steady state: no lazy-launch skew in step 0
    let master: ThreadCollection<()> = eng.thread_collection(app, "master", "node0")?;
    let workers: ThreadCollection<()> =
        eng.thread_collection(app, "workers", &default_mapping(worker_nodes, 1))?;

    let hub = eng.chunk_hub();
    let mut b = GraphBuilder::new(format!("dls-{}", cfg.policy.name()));
    let kind = cfg.policy;
    let wcount = workers.thread_count();
    let split_board = board.clone();
    let split_hub = hub.clone();
    let split = b.split(
        &master,
        || ToThread(0),
        move || ScheduledSplit::with_feedback(kind, wcount, split_hub.clone(), split_board.clone()),
    );
    let work_cost = cost.clone();
    let work = b.leaf(&workers, ChunkRoute::new, move || {
        ChunkWorker::new(work_cost.clone(), hub.clone())
    });
    let merge = b.merge(&master, || ToThread(0), CollectChunks::default);
    b.add(split >> work >> merge);
    let g = eng.build_graph(b)?;

    let mut per_step = Vec::with_capacity(cfg.steps as usize);
    let mut chunks = Vec::with_capacity(cfg.steps as usize);
    for step in 0..cfg.steps {
        let t0 = eng.now_secs();
        eng.submit(
            g,
            Box::new(IterRange {
                start: 0,
                len: cfg.iters,
                step,
            }),
        )?;
        eng.run_to_idle(g, 1)?;
        per_step.push(eng.now_secs() - t0);
        let mut outs = eng.take_outputs(g);
        assert_eq!(outs.len(), 1, "one RangeDone per step");
        let done = downcast::<RangeDone>(outs.pop().expect("one output"))
            .expect("output token type is RangeDone");
        assert_eq!(
            done.iters, cfg.iters,
            "every iteration scheduled exactly once"
        );
        chunks.push(done.chunks);
    }
    Ok(DlsReport {
        total: per_step.iter().sum(),
        per_step,
        chunks,
        weights: board.weights(wcount),
        reported_chunks: board.total_chunks(),
    })
}

/// Run a scheduled loop on the simulated cluster `spec` (one worker thread
/// per node) — a thin, fully deterministic [`run_dls`] wrapper.
pub fn run_dls_sim(spec: ClusterSpec, cost: CostFn, cfg: &DlsConfig) -> Result<DlsReport> {
    let n_nodes = spec.len();
    let ecfg = EngineConfig {
        flow_window: cfg.flow_window,
        ..EngineConfig::default()
    };
    let mut eng = SimEngine::with_config(spec, ecfg);
    run_dls(&mut eng, cost, cfg, n_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_schedules_all_iterations() {
        let spec = ClusterSpec::skewed(2, 1, 2.0);
        for kind in PolicyKind::ALL {
            let rep = run_dls_sim(
                spec.clone(),
                matmul_cost(64),
                &DlsConfig {
                    iters: 100,
                    steps: 2,
                    policy: kind,
                    flow_window: 4,
                },
            )
            .unwrap();
            assert_eq!(rep.per_step.len(), 2);
            assert!(rep.total > 0.0);
            assert!(rep.chunks.iter().all(|&c| c >= 1), "{kind:?}: {rep:?}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = DlsConfig {
            iters: 200,
            steps: 2,
            policy: PolicyKind::Awf,
            flow_window: 4,
        };
        let run = || {
            run_dls_sim(ClusterSpec::skewed(2, 1, 2.0), lu_cost(200), &cfg)
                .unwrap()
                .per_step
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn awf_weights_learn_the_skew() {
        let rep = run_dls_sim(
            ClusterSpec::skewed(2, 1, 2.0),
            matmul_cost(64),
            &DlsConfig {
                iters: 256,
                steps: 3,
                policy: PolicyKind::Awf,
                flow_window: 4,
            },
        )
        .unwrap();
        // node0 runs 2× faster than node1: its weight converges toward 2/3.
        assert!(
            rep.weights[0] > rep.weights[1] * 1.5,
            "weights {:?}",
            rep.weights
        );
    }
}
