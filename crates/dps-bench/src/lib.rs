//! # dps-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | target | paper artefact |
//! |---|---|
//! | `fig6_throughput` | Fig. 6 — ring transfer throughput, DPS vs sockets |
//! | `table1_overlap` | Table 1 — overlap gains in block matrix multiply |
//! | `fig9_life` | Fig. 9 — Game-of-Life speedup, simple vs improved graph |
//! | `table2_service` | Table 2 — inter-application graph-call overhead |
//! | `fig15_lu` | Fig. 15 — LU speedup, stream vs merge-split schedule |
//! | `dls_policies` | beyond the paper — DLS policy sweep (SS/GSS/TSS/FAC/AWF) on a skewed cluster |
//!
//! Run any of them with `cargo run --release -p dps-bench --bin <name>`;
//! add `--full` for paper-scale problem sizes (slower). All results are
//! virtual-time measurements on the calibrated cluster model and are fully
//! deterministic.
//!
//! `cargo bench -p dps-bench` additionally runs Criterion micro-benchmarks
//! of the framework's hot paths (serialization, envelopes, routing, the DES
//! engine, and the numeric kernels).

pub mod calib;
pub mod dls;
pub mod table;

/// True if `--full` was passed: use paper-scale problem sizes.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}
