//! Plain-text table/series printing for the harness binaries.

/// Print a titled, column-aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: String = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>w$}", h, w = widths[i] + 2))
        .collect();
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
    for row in rows {
        let line: String = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8) + 2))
            .collect();
        println!("{line}");
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format seconds with adaptive units.
pub fn secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.256), "25.6%");
        assert_eq!(secs(0.0000015), "1.5µs");
        assert_eq!(secs(0.0123), "12.30ms");
        assert_eq!(secs(2.5), "2.500s");
    }

    #[test]
    fn table_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
    }
}
