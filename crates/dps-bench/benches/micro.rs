//! Criterion micro-benchmarks of the framework's hot paths: serialization,
//! envelope algebra, routing, the discrete-event engine, and the numeric
//! kernels behind the paper's applications.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dps_core::prelude::*;
use dps_core::{dps_token, Envelope, Frame, GNodeId};
use dps_des::{Sim, SimSpan, SimTime};
use dps_linalg::{gemm, Matrix};
use dps_serial::{from_bytes, to_bytes, Buffer};

dps_token! {
    pub struct SmallTok { pub a: u32, pub b: u64, pub name: String }
}
dps_token! {
    pub struct BigTok { pub id: u64, pub payload: Buffer<f64> }
}

fn bench_serialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("serialization");
    let small = SmallTok {
        a: 7,
        b: 42,
        name: "CharToken".into(),
    };
    g.bench_function("small_roundtrip", |b| {
        b.iter(|| {
            let bytes = to_bytes(black_box(&small));
            let got: SmallTok = from_bytes(&bytes).unwrap();
            black_box(got)
        })
    });
    let big = BigTok {
        id: 1,
        payload: vec![1.0f64; 8192].into(),
    };
    g.throughput(Throughput::Bytes(big.payload.len() as u64 * 8));
    g.bench_function("block_64k_roundtrip", |b| {
        b.iter(|| {
            let bytes = to_bytes(black_box(&big));
            let got: BigTok = from_bytes(&bytes).unwrap();
            black_box(got)
        })
    });
    g.finish();
}

fn bench_envelope(c: &mut Criterion) {
    c.bench_function("envelope/push_pop_key", |b| {
        b.iter(|| {
            let mut env = Envelope::root();
            for d in 0..4u32 {
                env.push(Frame {
                    src: GNodeId(d),
                    wave: u64::from(d) * 17,
                    index: d,
                    total: None,
                });
            }
            let key = env.wave_key();
            black_box((env.pop(), key))
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    dps_token! { pub struct K { pub k: u32 } }
    let info = RouteInfo {
        thread_count: 8,
        load: None,
    };
    c.bench_function("route/round_robin", |b| {
        let mut r = RoundRobin::new();
        b.iter(|| black_box(Route::<K>::route(&mut r, &K { k: 3 }, &info)))
    });
    c.bench_function("route/by_key", |b| {
        let mut r = ByKey::new(|t: &K| t.k as usize);
        b.iter(|| black_box(r.route(&K { k: 1234 }, &info)))
    });
}

fn bench_des(c: &mut Criterion) {
    c.bench_function("des/10k_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            for i in 0..10_000u64 {
                sim.schedule_at(SimTime(i % 97), |s| s.world += 1);
            }
            sim.run();
            black_box(sim.world)
        })
    });
    c.bench_function("des/pool_contention", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            let pool = sim.add_pool(2);
            for _ in 0..1_000 {
                sim.schedule_at(SimTime::ZERO, move |s| {
                    s.pool_acquire(pool, |s| {
                        s.world += 1;
                        SimSpan::from_nanos(5)
                    });
                });
            }
            sim.run();
            black_box(sim.world)
        })
    });
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    let a = Matrix::random(64, 64, 1);
    let bm = Matrix::random(64, 64, 2);
    g.throughput(Throughput::Elements(2 * 64 * 64 * 64));
    g.bench_function("gemm_64", |b| {
        b.iter(|| {
            let mut cm = Matrix::zeros(64, 64);
            gemm(1.0, black_box(&a), black_box(&bm), 0.0, &mut cm);
            black_box(cm)
        })
    });
    g.finish();

    let w = dps_life::World::random(128, 128, 0.3, 3);
    c.bench_function("life_step_128", |b| b.iter(|| black_box(w.step())));
}

fn bench_engine_end_to_end(c: &mut Criterion) {
    // A complete split-compute-merge schedule per iteration: measures the
    // full framework overhead per run.
    dps_token! { pub struct Job { pub n: u32 } }
    dps_token! { pub struct Item { pub i: u32 } }
    dps_token! { pub struct Done { pub sum: u64 } }
    struct Fan;
    impl SplitOperation for Fan {
        type Thread = ();
        type In = Job;
        type Out = Item;
        fn execute(&mut self, ctx: &mut OpCtx<'_, (), Item>, j: Job) {
            for i in 0..j.n {
                ctx.post(Item { i });
            }
        }
    }
    struct Id;
    impl LeafOperation for Id {
        type Thread = ();
        type In = Item;
        type Out = Item;
        fn execute(&mut self, ctx: &mut OpCtx<'_, (), Item>, t: Item) {
            ctx.post(t);
        }
    }
    #[derive(Default)]
    struct Sum {
        s: u64,
    }
    impl MergeOperation for Sum {
        type Thread = ();
        type In = Item;
        type Out = Done;
        fn consume(&mut self, _ctx: &mut OpCtx<'_, (), Done>, t: Item) {
            self.s += u64::from(t.i);
        }
        fn finalize(&mut self, ctx: &mut OpCtx<'_, (), Done>) {
            ctx.post(Done { sum: self.s });
        }
    }
    c.bench_function("engine/split_64_merge", |b| {
        b.iter(|| {
            let mut eng = SimEngine::new(dps_cluster::ClusterSpec::paper_testbed(4));
            let app = eng.app("bench");
            eng.preload_app(app);
            let main: ThreadCollection<()> = eng.thread_collection(app, "m", "node0").unwrap();
            let w: ThreadCollection<()> = eng
                .thread_collection(app, "w", "node0 node1 node2 node3")
                .unwrap();
            let mut gb = GraphBuilder::new("g");
            let s = gb.split(&main, || ToThread(0), || Fan);
            let l = gb.leaf(&w, RoundRobin::new, || Id);
            let m = gb.merge(&main, || ToThread(0), Sum::default);
            gb.add(s >> l >> m);
            let g = eng.build_graph(gb).unwrap();
            eng.inject(g, Job { n: 64 }).unwrap();
            eng.run_until_idle().unwrap();
            black_box(eng.take_outputs(g))
        })
    });
}

/// The per-chunk hot path in isolation: feedback reports on the sharded
/// board vs the legacy mutex board, and lock-free hub claims vs a raw
/// counter claim. Single-threaded ns/op; the `bench_hotpath` bin measures
/// the multi-worker throughput and emits `BENCH_hotpath.json`.
fn bench_hotpath(c: &mut Criterion) {
    use dps_sched::legacy::LegacyFeedbackBoard;
    use dps_sched::{ChunkCalc, ChunkHub, FeedbackBoard, FeedbackSink, IterCounter, PolicyKind};

    c.bench_function("hotpath/report_sharded", |b| {
        let board = FeedbackBoard::new();
        b.iter(|| board.report_chunk(black_box(3), 16, 1.0e-4))
    });
    c.bench_function("hotpath/report_legacy", |b| {
        let board = LegacyFeedbackBoard::new();
        b.iter(|| board.report_chunk(black_box(3), 16, 1.0e-4))
    });
    c.bench_function("hotpath/weights_fold_8", |b| {
        let board = FeedbackBoard::new();
        for w in 0..8 {
            for _ in 0..64 {
                board.report_chunk(w, 16, 1.0e-4);
            }
        }
        b.iter(|| black_box(board.weights(8)))
    });
    // Range chosen to stay on the packed single-CAS claim path: chunk
    // counts at or above 2^24 fall back to the mutex-guarded wide counter,
    // which is not the path these benchmarks defend.
    const CLAIM_RANGE: u64 = (1 << 23) - 1;
    c.bench_function("hotpath/hub_claim", |b| {
        let hub = ChunkHub::new();
        let mut lease = hub.open(ChunkCalc::new(PolicyKind::Ss, CLAIM_RANGE, 8, &[]));
        b.iter(|| {
            if hub.claim(lease.id).is_none() {
                lease = hub.open(ChunkCalc::new(PolicyKind::Ss, CLAIM_RANGE, 8, &[]));
            }
        })
    });
    c.bench_function("hotpath/counter_claim", |b| {
        let mut counter = IterCounter::new(ChunkCalc::new(PolicyKind::Ss, CLAIM_RANGE, 8, &[]));
        b.iter(|| {
            if counter.claim().is_none() {
                counter = IterCounter::new(ChunkCalc::new(PolicyKind::Ss, CLAIM_RANGE, 8, &[]));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_serialization,
    bench_envelope,
    bench_routing,
    bench_des,
    bench_kernels,
    bench_engine_end_to_end,
    bench_hotpath
);
criterion_main!(benches);
