//! # dps-vopr — deterministic simulation testing for DPS
//!
//! A VOPR-style harness (after the *Viewstamped Operation Replicator* of
//! TigerBeetle lineage): take a single `u64` seed, derive a fault schedule
//! from it, run a real DPS workload on the deterministic [`SimEngine`]
//! under those faults, and check a battery of invariants against an
//! unperturbed reference run. Because the entire universe — scheduler
//! ties, network faults, node kills — is a pure function of the seed,
//! any violation is reproducible with one command, which the failure
//! report prints verbatim.
//!
//! The fault classes, each driven by an independent [`SplitMix64`] stream
//! split from the master seed:
//!
//! * **shuffle** — a seeded permutation of same-instant event ties in the
//!   simulator heap ([`SimEngine::set_delivery_shuffle`]), modelling OS
//!   scheduling nondeterminism;
//! * **net** — drop / delay / duplicate faults on the simulated wire
//!   ([`SimEngine::set_net_faults`]); the transport retransmits, so these
//!   perturb timing but must never corrupt outputs;
//! * **kill** — a mid-wave [`SimEngine::schedule_fail_node`] of a random
//!   non-master node at a random fraction of the reference makespan.
//!
//! Invariants checked after every perturbed run:
//!
//! 1. **Output identity** — outputs byte-identical to the reference, or
//!    (when a kill is active) a clean degradation error
//!    ([`DpsError::NodeDown`] / [`DpsError::IncompleteWaves`]);
//! 2. **Chunk completeness** — no abandoned [`ChunkHub`] leases on a
//!    successful run (the scheduler handed out every chunk it promised);
//! 3. **No stranded deliveries** — the simulator heap drains to empty on
//!    success;
//! 4. **Monotone time** — virtual time never runs backwards;
//! 5. **Replay identity** — re-running the same seed yields a
//!    byte-identical `dps-obs` event log and equal `schedule_hash`.
//!
//! [`ChunkHub`]: dps_sched::ChunkHub
//! [`DpsError::NodeDown`]: dps_core::DpsError::NodeDown
//! [`DpsError::IncompleteWaves`]: dps_core::DpsError::IncompleteWaves
//! [`SplitMix64`]: dps_des::SplitMix64
//! [`SimEngine`]: dps_core::SimEngine
//! [`SimEngine::set_delivery_shuffle`]: dps_core::SimEngine::set_delivery_shuffle
//! [`SimEngine::set_net_faults`]: dps_core::SimEngine::set_net_faults
//! [`SimEngine::schedule_fail_node`]: dps_core::SimEngine::schedule_fail_node

pub mod netrun;
pub mod workload;

use dps_core::DpsError;
use dps_des::{SimSpan, SimTime, SplitMix64};
use dps_net::FaultConfig;
use dps_obs::{first_divergence, wire, TraceLog};

pub use workload::WorkloadKind;

/// Which fault classes a sweep enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultClasses {
    /// Seeded same-instant delivery interleaving shuffle.
    pub shuffle: bool,
    /// Wire drop/delay/duplicate faults (reliable transport recovers).
    pub net: bool,
    /// Scheduled mid-wave node kill.
    pub kill: bool,
}

impl FaultClasses {
    /// No perturbation at all (reference runs).
    pub const NONE: FaultClasses = FaultClasses {
        shuffle: false,
        net: false,
        kill: false,
    };
    /// Every fault class armed.
    pub const ALL: FaultClasses = FaultClasses {
        shuffle: true,
        net: true,
        kill: true,
    };

    /// Parse `"shuffle,net,kill"` / `"all"` / `"none"`.
    pub fn parse(s: &str) -> Option<FaultClasses> {
        match s {
            "all" => return Some(Self::ALL),
            "none" => return Some(Self::NONE),
            _ => {}
        }
        let mut f = Self::NONE;
        for part in s.split(',') {
            match part.trim() {
                "shuffle" => f.shuffle = true,
                "net" => f.net = true,
                "kill" => f.kill = true,
                "" => {}
                _ => return None,
            }
        }
        Some(f)
    }
}

impl std::fmt::Display for FaultClasses {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == Self::ALL {
            return f.write_str("all");
        }
        if *self == Self::NONE {
            return f.write_str("none");
        }
        let mut parts = Vec::new();
        if self.shuffle {
            parts.push("shuffle");
        }
        if self.net {
            parts.push("net");
        }
        if self.kill {
            parts.push("kill");
        }
        f.write_str(&parts.join(","))
    }
}

/// One VOPR run, fully determined by these fields.
#[derive(Debug, Clone)]
pub struct VoprConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// The application under test.
    pub workload: WorkloadKind,
    /// Fault classes to arm.
    pub faults: FaultClasses,
    /// Per-message wire fault rate when `faults.net` is armed.
    pub net_rate: f64,
}

impl VoprConfig {
    /// A run of `workload` under `seed` with every fault class armed at
    /// the default 5% wire-fault rate.
    pub fn new(workload: WorkloadKind, seed: u64) -> VoprConfig {
        VoprConfig {
            seed,
            workload,
            faults: FaultClasses::ALL,
            net_rate: 0.05,
        }
    }
}

/// A mid-run node kill derived from the seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KillPlan {
    /// Cluster node to kill (never node 0, which hosts split/merge masters).
    pub node: u32,
    /// Virtual instant of the kill.
    pub at: SimTime,
}

/// The concrete fault schedule derived from a [`VoprConfig`] — what
/// actually gets installed on the engine. Printed in failure reports so a
/// violation's minimal schedule is visible without decoding the seed.
#[derive(Debug, Clone, Default)]
pub struct Perturbation {
    /// Tie-break shuffle seed, if armed.
    pub shuffle_seed: Option<u64>,
    /// Wire fault config + injector seed, if armed.
    pub net: Option<(FaultConfig, u64)>,
    /// Scheduled node kill, if armed.
    pub kill: Option<KillPlan>,
}

impl Perturbation {
    /// The identity perturbation (reference run).
    pub fn none() -> Perturbation {
        Perturbation::default()
    }

    /// Derive the fault schedule for `cfg`. Each class draws from its own
    /// `SplitMix64` stream split off the master seed so that disarming one
    /// class does not re-roll the others. `reference_makespan` (from the
    /// unperturbed run) and `nodes` place the kill: a random non-master
    /// node at 10–90% of the reference virtual makespan.
    pub fn derive(cfg: &VoprConfig, reference_makespan: f64, nodes: usize) -> Perturbation {
        let root = SplitMix64::new(cfg.seed);
        let shuffle_seed = root.split(1).next_u64();
        let net_seed = root.split(2).next_u64();
        let mut kill_rng = root.split(3);
        let mut p = Perturbation::none();
        if cfg.faults.shuffle {
            p.shuffle_seed = Some(shuffle_seed);
        }
        if cfg.faults.net {
            p.net = Some((FaultConfig::all(cfg.net_rate), net_seed));
        }
        if cfg.faults.kill && nodes > 1 {
            let node = 1 + kill_rng.next_below((nodes - 1) as u64) as u32;
            let frac = 0.1 + 0.8 * kill_rng.next_f64();
            p.kill = Some(KillPlan {
                node,
                at: SimTime::ZERO + SimSpan::from_secs_f64(frac * reference_makespan.max(1e-9)),
            });
        }
        p
    }
}

impl std::fmt::Display for Perturbation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut wrote = false;
        if let Some(s) = self.shuffle_seed {
            write!(f, "shuffle(seed=0x{s:016x})")?;
            wrote = true;
        }
        if let Some((cfg, s)) = &self.net {
            if wrote {
                f.write_str(" + ")?;
            }
            write!(
                f,
                "net(drop={} delay={} dup={} seed=0x{s:016x})",
                cfg.drop_rate, cfg.delay_rate, cfg.duplicate_rate
            )?;
            wrote = true;
        }
        if let Some(k) = &self.kill {
            if wrote {
                f.write_str(" + ")?;
            }
            write!(f, "kill(node{} at t={:.6}s)", k.node, k.at.as_secs_f64())?;
            wrote = true;
        }
        if !wrote {
            f.write_str("(no faults)")?;
        }
        Ok(())
    }
}

/// Everything a single engine run leaves behind for the invariant layer.
#[derive(Debug)]
pub struct RunArtifacts {
    /// Canonical output bytes, if the run completed.
    pub output: Option<Vec<u8>>,
    /// The error, if it did not.
    pub error: Option<DpsError>,
    /// Full dps-obs event log.
    pub log: TraceLog,
    /// FNV-1a hash of the causal schedule.
    pub schedule_hash: u64,
    /// Final virtual time.
    pub makespan: f64,
    /// Events still queued in the simulator heap after the run.
    pub queued_deliveries: usize,
    /// Chunk-hub leases opened but never completed (pipeline workloads).
    pub abandoned_leases: usize,
    /// `(faulted, clean)` wire-message counts when net faults were armed.
    pub net_stats: Option<(u64, u64)>,
    /// Virtual-time samples taken across the run, in capture order.
    pub time_samples: Vec<f64>,
}

impl RunArtifacts {
    fn clean_degradation(&self) -> bool {
        matches!(
            self.error,
            Some(DpsError::NodeDown { .. }) | Some(DpsError::IncompleteWaves { .. })
        )
    }
}

/// The invariant that a perturbed run violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Output differed from the reference without a clean degradation.
    OutputIdentity,
    /// A successful run left abandoned chunk leases behind.
    ChunkCompleteness,
    /// A successful run left events stranded in the simulator heap.
    NoStrandedDeliveries,
    /// Virtual time ran backwards.
    MonotoneTime,
    /// The same seed produced a different event log on re-run.
    ReplayIdentity,
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Invariant::OutputIdentity => "output-identity",
            Invariant::ChunkCompleteness => "chunk-completeness",
            Invariant::NoStrandedDeliveries => "no-stranded-deliveries",
            Invariant::MonotoneTime => "monotone-time",
            Invariant::ReplayIdentity => "replay-identity",
        })
    }
}

/// A reproducible invariant violation. `Display` prints the seed, the
/// derived fault schedule, and the exact command that replays it.
#[derive(Debug)]
pub struct VoprFailure {
    /// The run that failed.
    pub cfg: VoprConfig,
    /// The fault schedule that was installed.
    pub perturbation: Perturbation,
    /// Which invariant broke.
    pub invariant: Invariant,
    /// Human-readable specifics (first differing byte, lease ids, …).
    pub detail: String,
    /// Which execution engine ran it: `"sim"` (virtual time) or `"net"`
    /// (real processes).
    pub engine: &'static str,
}

impl std::fmt::Display for VoprFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "VOPR FAILURE: invariant {} violated on workload {} (engine {})",
            self.invariant, self.cfg.workload, self.engine
        )?;
        writeln!(f, "  seed:     0x{:016x}", self.cfg.seed)?;
        writeln!(f, "  faults:   {}", self.perturbation)?;
        writeln!(f, "  detail:   {}", self.detail)?;
        write!(
            f,
            "  replay:   cargo run -p dps-vopr --bin vopr -- --engine {} --workload {} --seed 0x{:016x} --faults {} --replay",
            self.engine, self.cfg.workload, self.cfg.seed, self.cfg.faults
        )
    }
}

impl std::error::Error for VoprFailure {}

/// A clean run's summary, for logs and smoke-sweep reporting.
#[derive(Debug)]
pub struct VoprReport {
    /// The run's configuration.
    pub cfg: VoprConfig,
    /// The fault schedule that was installed.
    pub perturbation: Perturbation,
    /// Schedule hash of the perturbed run (replay fingerprint).
    pub schedule_hash: u64,
    /// Whether the perturbed run completed (vs. degraded cleanly).
    pub completed: bool,
    /// Virtual makespan of the perturbed run.
    pub makespan: f64,
    /// `(faulted, clean)` wire-message counts, when net faults were armed.
    pub net_stats: Option<(u64, u64)>,
}

/// The runner: reference run → perturbed run → invariants.
#[derive(Debug, Clone)]
pub struct Vopr {
    cfg: VoprConfig,
}

impl Vopr {
    /// A runner for `cfg`.
    pub fn new(cfg: VoprConfig) -> Vopr {
        Vopr { cfg }
    }

    /// Execute one seeded run and check invariants 1–4. Returns the clean
    /// report or the reproducible failure.
    pub fn run(&self) -> Result<VoprReport, Box<VoprFailure>> {
        let reference = workload::run_workload(self.cfg.workload, &Perturbation::none());
        if let Some(e) = &reference.error {
            return Err(self.fail(
                Perturbation::none(),
                Invariant::OutputIdentity,
                format!("reference run itself failed: {e}"),
            ));
        }
        let p = Perturbation::derive(&self.cfg, reference.makespan, self.cfg.workload.nodes());
        let perturbed = workload::run_workload(self.cfg.workload, &p);
        self.check(&reference, &perturbed, &p)?;
        Ok(VoprReport {
            cfg: self.cfg.clone(),
            perturbation: p,
            schedule_hash: perturbed.schedule_hash,
            completed: perturbed.output.is_some(),
            makespan: perturbed.makespan,
            net_stats: perturbed.net_stats,
        })
    }

    /// Invariant 5: run the *perturbed* configuration twice and demand a
    /// byte-identical event log and equal schedule hash. Split out from
    /// [`Vopr::run`] so sweeps can afford it selectively (it doubles cost).
    pub fn replay_check(&self) -> Result<u64, Box<VoprFailure>> {
        let reference = workload::run_workload(self.cfg.workload, &Perturbation::none());
        let p = Perturbation::derive(&self.cfg, reference.makespan, self.cfg.workload.nodes());
        let a = workload::run_workload(self.cfg.workload, &p);
        let b = workload::run_workload(self.cfg.workload, &p);
        if wire::encode_log(&a.log) != wire::encode_log(&b.log)
            || a.schedule_hash != b.schedule_hash
        {
            let detail = match first_divergence(&a.log, &b.log) {
                Some(d) => format!("event logs diverge: {d}"),
                None => format!(
                    "schedule hashes differ: 0x{:016x} vs 0x{:016x}",
                    a.schedule_hash, b.schedule_hash
                ),
            };
            return Err(self.fail(p, Invariant::ReplayIdentity, detail));
        }
        Ok(a.schedule_hash)
    }

    fn check(
        &self,
        reference: &RunArtifacts,
        perturbed: &RunArtifacts,
        p: &Perturbation,
    ) -> Result<(), Box<VoprFailure>> {
        // 4. Monotone virtual time — checked first since a violation here
        // undermines every other reading.
        for (i, pair) in perturbed.time_samples.windows(2).enumerate() {
            if pair[1] < pair[0] {
                return Err(self.fail(
                    p.clone(),
                    Invariant::MonotoneTime,
                    format!(
                        "virtual time ran backwards at sample {i}: {} -> {}",
                        pair[0], pair[1]
                    ),
                ));
            }
        }
        // 1. Output identity (or clean degradation under an armed kill).
        match (&perturbed.output, &reference.output) {
            (Some(got), Some(want)) => {
                if got != want {
                    let at = got
                        .iter()
                        .zip(want.iter())
                        .position(|(a, b)| a != b)
                        .unwrap_or_else(|| got.len().min(want.len()));
                    return Err(self.fail(
                        p.clone(),
                        Invariant::OutputIdentity,
                        format!(
                            "outputs diverge from reference at byte {at} ({} vs {} bytes total)",
                            got.len(),
                            want.len()
                        ),
                    ));
                }
            }
            (None, _) => {
                let killed = p.kill.is_some();
                if !(killed && perturbed.clean_degradation()) {
                    return Err(self.fail(
                        p.clone(),
                        Invariant::OutputIdentity,
                        format!(
                            "run failed with {:?} (kill armed: {killed}) — not a clean degradation",
                            perturbed.error
                        ),
                    ));
                }
            }
            (Some(_), None) => unreachable!("reference failure rejected earlier"),
        }
        // 2 & 3 only constrain *successful* runs: a clean NodeDown
        // degradation legitimately strands queued work and open leases.
        if perturbed.output.is_some() {
            if perturbed.abandoned_leases != 0 {
                return Err(self.fail(
                    p.clone(),
                    Invariant::ChunkCompleteness,
                    format!(
                        "{} chunk lease(s) abandoned on a successful run",
                        perturbed.abandoned_leases
                    ),
                ));
            }
            if perturbed.queued_deliveries != 0 {
                return Err(self.fail(
                    p.clone(),
                    Invariant::NoStrandedDeliveries,
                    format!(
                        "{} event(s) stranded in the simulator heap on a successful run",
                        perturbed.queued_deliveries
                    ),
                ));
            }
        }
        Ok(())
    }

    fn fail(&self, p: Perturbation, invariant: Invariant, detail: String) -> Box<VoprFailure> {
        Box::new(VoprFailure {
            cfg: self.cfg.clone(),
            perturbation: p,
            invariant,
            detail,
            engine: "sim",
        })
    }
}

/// Shrink a failing run's fault-class set to a smaller still-failing one
/// by disarming classes **one at a time** (greedy ddmin over three flags).
/// Because every class draws from its own `SplitMix64` stream split off
/// the master seed, disarming one class never re-rolls the others' fault
/// schedules — each probe is the original schedule minus whole classes,
/// so the result genuinely isolates the classes the failure needs.
/// `still_fails` re-runs the configuration under the candidate classes.
pub fn minimize_classes(
    start: FaultClasses,
    mut still_fails: impl FnMut(FaultClasses) -> bool,
) -> FaultClasses {
    let disarms: [fn(&mut FaultClasses) -> &mut bool; 3] =
        [|c| &mut c.shuffle, |c| &mut c.net, |c| &mut c.kill];
    let mut cur = start;
    loop {
        let mut shrunk = false;
        for disarm in disarms {
            let mut candidate = cur;
            let flag = disarm(&mut candidate);
            if !*flag {
                continue;
            }
            *flag = false;
            if still_fails(candidate) {
                cur = candidate;
                shrunk = true;
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

/// Run `kind` once under `p` and return its artifacts. Public so tests
/// and the differential harness can drive workloads directly.
pub fn run_artifacts(kind: WorkloadKind, p: &Perturbation) -> RunArtifacts {
    workload::run_workload(kind, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_classes_round_trip() {
        for s in ["all", "none", "shuffle", "net,kill", "shuffle,net,kill"] {
            let f = FaultClasses::parse(s).unwrap();
            assert_eq!(FaultClasses::parse(&f.to_string()), Some(f), "{s}");
        }
        assert_eq!(FaultClasses::parse("bogus"), None);
    }

    #[test]
    fn perturbation_is_seed_deterministic() {
        let cfg = VoprConfig::new(WorkloadKind::Life, 0xABCD);
        let a = Perturbation::derive(&cfg, 1.0, 3);
        let b = Perturbation::derive(&cfg, 1.0, 3);
        assert_eq!(a.shuffle_seed, b.shuffle_seed);
        assert_eq!(a.net.map(|(_, s)| s), b.net.map(|(_, s)| s));
        assert_eq!(a.kill, b.kill);
        let k = a.kill.unwrap();
        assert!(k.node >= 1 && (k.node as usize) < 3, "never kills node 0");
    }

    #[test]
    fn disarming_one_class_keeps_other_streams() {
        let mut cfg = VoprConfig::new(WorkloadKind::Life, 0x77);
        let all = Perturbation::derive(&cfg, 1.0, 3);
        cfg.faults.net = false;
        let no_net = Perturbation::derive(&cfg, 1.0, 3);
        assert_eq!(all.shuffle_seed, no_net.shuffle_seed);
        assert_eq!(all.kill, no_net.kill);
        assert!(no_net.net.is_none());
    }

    #[test]
    fn minimizer_isolates_the_guilty_classes() {
        let m = minimize_classes(FaultClasses::ALL, |c| c.net);
        assert_eq!(
            m,
            FaultClasses {
                shuffle: false,
                net: true,
                kill: false
            }
        );
        let m = minimize_classes(FaultClasses::ALL, |c| c.net && c.kill);
        assert!(m.net && m.kill && !m.shuffle);
        // A failure that persists with nothing armed (a reference-side bug)
        // shrinks all the way to `none` — maximally informative.
        let m = minimize_classes(FaultClasses::ALL, |_| true);
        assert_eq!(m, FaultClasses::NONE);
    }

    #[test]
    fn shuffle_only_run_is_clean_on_life() {
        let mut cfg = VoprConfig::new(WorkloadKind::Life, 42);
        cfg.faults = FaultClasses {
            shuffle: true,
            net: false,
            kill: false,
        };
        let report = Vopr::new(cfg).run().expect("life survives a shuffle");
        assert!(report.completed);
    }
}
