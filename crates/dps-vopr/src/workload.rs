//! The workloads VOPR perturbs, each reduced to **canonical output bytes**.
//!
//! A workload is a complete seeded application run on a fresh deterministic
//! simulator: block LU, block matmul, dynamically scheduled Game of Life, a
//! generic scheduled split→leaf→merge pipeline, and — deliberately broken —
//! an *order-sensitive* pipeline whose merge records token arrival order.
//! The first four compute values that are independent of scheduling by
//! construction, so a perturbed run must reproduce them byte for byte; the
//! last one exists so the harness's violation path (seed printing, replay)
//! can itself be tested against a real, reproducible failure.

use std::sync::Arc;

use dps_cluster::{default_mapping, ClusterSpec};
use dps_core::prelude::*;
use dps_core::sched::{
    ChunkDone, ChunkRoute, ChunkWorker, CollectChunks, IterRange, RangeDone, ScheduledSplit,
};
use dps_core::{dps_token, Application};
use dps_life::{run_life_scheduled, LifeConfig, Variant};
use dps_linalg::parallel::lu::{run_lu, LuConfig};
use dps_linalg::parallel::matmul::{run_matmul, MatMulConfig};
use dps_obs::TraceCollector;
use dps_sched::{ChunkHub, Distribution, PolicyKind};
use dps_serial::Buffer;

use crate::{Perturbation, RunArtifacts};

/// Which application a VOPR run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Pipelined block LU factorization with chunked trailing updates
    /// (`dps-linalg`), outputs = packed factors + pivot record.
    Lu,
    /// Pipelined block matmul (`dps-linalg`), outputs = the product matrix.
    MatMul,
    /// Dynamically scheduled Game of Life (`dps-life`), outputs = the final
    /// world. Any worker can compute any row chunk, so this workload can
    /// *survive* a node kill with correct outputs.
    Life,
    /// Generic scheduled split→leaf→merge pipeline over a [`ChunkHub`]
    /// lease — the workload whose hub the chunk-completeness invariant
    /// probes directly.
    Pipeline,
    /// An intentionally unsound pipeline: its merge records token *arrival
    /// order*, so a delivery-interleaving shuffle changes its output. Used
    /// to prove the harness catches and replays real violations; not part
    /// of the default sweep.
    OrderSensitive,
}

impl WorkloadKind {
    /// Every workload, sweep order.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::Lu,
        WorkloadKind::MatMul,
        WorkloadKind::Life,
        WorkloadKind::Pipeline,
        WorkloadKind::OrderSensitive,
    ];

    /// The well-behaved workloads (everything but
    /// [`OrderSensitive`](WorkloadKind::OrderSensitive)).
    pub const SOUND: [WorkloadKind; 4] = [
        WorkloadKind::Lu,
        WorkloadKind::MatMul,
        WorkloadKind::Life,
        WorkloadKind::Pipeline,
    ];

    /// The workloads that run unchanged on any [`Engine`] — what the net
    /// mode (real processes over sockets) sweeps. The pipeline pair stays
    /// simulator-only (it drives the virtual-time service front door).
    pub const NET_CAPABLE: [WorkloadKind; 3] =
        [WorkloadKind::Lu, WorkloadKind::MatMul, WorkloadKind::Life];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Lu => "lu",
            WorkloadKind::MatMul => "matmul",
            WorkloadKind::Life => "life",
            WorkloadKind::Pipeline => "pipeline",
            WorkloadKind::OrderSensitive => "order-sensitive",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<WorkloadKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Cluster nodes the workload runs on.
    pub fn nodes(self) -> usize {
        3
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

dps_token! {
    /// Output of the order-sensitive pipeline: the merge's arrival log.
    pub struct OrderTrace { pub order: Buffer<u64> }
}

/// The deliberately broken merge: output depends on consume order.
#[derive(Default)]
struct OrderGather {
    order: Vec<u64>,
}

impl MergeOperation for OrderGather {
    type Thread = ();
    type In = ChunkDone;
    type Out = OrderTrace;

    fn consume(&mut self, _ctx: &mut OpCtx<'_, (), OrderTrace>, d: ChunkDone) {
        self.order.push(d.start);
    }

    fn finalize(&mut self, ctx: &mut OpCtx<'_, (), OrderTrace>) {
        ctx.post(OrderTrace {
            order: std::mem::take(&mut self.order).into(),
        });
    }
}

fn le_f64(bytes: &mut Vec<u8>, vals: &[f64]) {
    for v in vals {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Run `kind` on a fresh traced simulator under `p`, returning everything
/// the invariant layer inspects. Never panics on workload errors — a
/// perturbed run is *expected* to fail cleanly under a node kill.
pub(crate) fn run_workload(kind: WorkloadKind, p: &Perturbation) -> RunArtifacts {
    let nodes = kind.nodes();
    let collector = TraceCollector::new();
    let mut eng =
        SimEngine::with_config(ClusterSpec::paper_testbed(nodes), EngineConfig::default());
    eng.set_trace_sink(collector.clone());
    if let Some(seed) = p.shuffle_seed {
        eng.set_delivery_shuffle(seed);
    }
    if let Some((cfg, seed)) = p.net {
        eng.set_net_faults(cfg, seed);
    }
    if let Some(kill) = &p.kill {
        eng.schedule_fail_node(kill.at, dps_net::NodeId(kill.node));
    }

    let mut samples = vec![eng.now_secs()];
    let mut hub: Option<Arc<ChunkHub>> = None;
    let result: Result<Vec<u8>> = match kind {
        WorkloadKind::Lu | WorkloadKind::MatMul | WorkloadKind::Life => {
            run_canonical(&mut eng, kind)
        }
        WorkloadKind::Pipeline | WorkloadKind::OrderSensitive => {
            run_pipeline(&mut eng, kind, &mut samples, &mut hub)
        }
    };
    samples.push(eng.now_secs());

    let abandoned_leases = hub.map(|h| h.abandoned_leases().len()).unwrap_or(0);
    let (output, error) = match result {
        Ok(bytes) => (Some(bytes), None),
        Err(e) => (None, Some(e)),
    };
    let makespan = eng.now_secs();
    let queued_deliveries = eng.queued_deliveries();
    let net_stats = eng.net_fault_stats();
    let log = collector.take_log();
    let schedule_hash = dps_obs::schedule_hash(&log);
    RunArtifacts {
        output,
        error,
        log,
        schedule_hash,
        makespan,
        queued_deliveries,
        abandoned_leases,
        net_stats,
        time_samples: samples,
    }
}

/// Run `kind`'s canonical configuration on **any** engine, reduced to the
/// workload's canonical output bytes. This is the byte-identity yardstick
/// shared by the simulator harness and the net mode: the same function, the
/// same configuration, so a perturbed multi-process run can be compared
/// byte-for-byte against a clean in-process reference. Only the
/// [`NET_CAPABLE`](WorkloadKind::NET_CAPABLE) workloads are accepted.
pub fn run_canonical<E: Engine>(eng: &mut E, kind: WorkloadKind) -> Result<Vec<u8>> {
    let nodes = kind.nodes();
    match kind {
        WorkloadKind::Lu => run_lu(
            eng,
            &LuConfig {
                n: 32,
                r: 8,
                pipelined: true,
                seed: 0xD5,
                nodes,
                threads_per_node: 1,
                dist: Distribution::Scheduled(PolicyKind::Tss),
                update_chunks: 2,
            },
        )
        .map(|rep| {
            let mut bytes = Vec::new();
            le_f64(&mut bytes, rep.factors.lu.as_slice());
            for &piv in &rep.factors.pivots {
                bytes.extend_from_slice(&(piv as u64).to_le_bytes());
            }
            bytes
        }),
        WorkloadKind::MatMul => run_matmul(
            eng,
            &MatMulConfig {
                n: 24,
                s: 3,
                pipelined: true,
                seed: 0xD5,
                nodes,
                threads_per_node: 1,
                dist: Distribution::Static,
            },
            0,
        )
        .map(|rep| {
            let mut bytes = Vec::new();
            le_f64(&mut bytes, rep.c.as_slice());
            bytes
        }),
        WorkloadKind::Life => run_life_scheduled(
            eng,
            &LifeConfig {
                rows: 24,
                cols: 16,
                iterations: 3,
                variant: Variant::Simple,
                nodes,
                threads_per_node: 1,
                density: 0.35,
                seed: 0xD5,
                dist: Distribution::Scheduled(PolicyKind::Tss),
            },
            PolicyKind::Tss,
        )
        .map(|rep| rep.world.as_slice().to_vec()),
        WorkloadKind::Pipeline | WorkloadKind::OrderSensitive => {
            Err(dps_core::DpsError::InvalidGraph {
                reason: format!("workload {kind} is simulator-only"),
            })
        }
    }
}

/// The generic scheduled pipeline (sound and order-sensitive variants):
/// a [`ScheduledSplit`] announces iteration waves over a private
/// [`ChunkHub`], zero-cost [`ChunkWorker`]s claim the chunks (identical
/// per-chunk virtual cost — maximal same-instant ties for the interleaving
/// shuffle to permute), and the merge is either the sound chunk counter or
/// the order recorder.
fn run_pipeline(
    eng: &mut SimEngine,
    kind: WorkloadKind,
    samples: &mut Vec<f64>,
    hub_out: &mut Option<Arc<ChunkHub>>,
) -> Result<Vec<u8>> {
    let nodes = kind.nodes();
    let app = eng.app("vopr-pipeline");
    eng.preload_app(app);
    let ctl: ThreadCollection<()> = eng.thread_collection(app, "ctl", "node0")?;
    // The sound pipeline spreads workers across the cluster; the
    // order-sensitive variant co-locates them on node0, where zero wire
    // latency makes every delivery land at the same virtual instant —
    // maximal heap ties for the interleaving shuffle to permute.
    let mapping = match kind {
        WorkloadKind::OrderSensitive => format!("node0*{nodes}"),
        _ => default_mapping(nodes, 1),
    };
    let workers: ThreadCollection<()> = eng.thread_collection(app, "w", &mapping)?;
    let hub = eng.chunk_hub();
    *hub_out = Some(Arc::clone(&hub));
    let w = workers.thread_count();

    let mut b = GraphBuilder::new("vopr-pipeline");
    let split_hub = Arc::clone(&hub);
    let split = b.split(
        &ctl,
        || ToThread(0),
        move || ScheduledSplit::new(PolicyKind::Ss, w, Arc::clone(&split_hub)),
    );
    let leaf_hub = Arc::clone(&hub);
    let work = b.leaf(&workers, ChunkRoute::new, move || {
        ChunkWorker::uniform(0.0, Arc::clone(&leaf_hub))
    });
    let mut bytes = Vec::new();
    match kind {
        WorkloadKind::Pipeline => {
            let gather = b.merge(&ctl, || ToThread(0), CollectChunks::default);
            b.add(split >> work >> gather);
            let front: Application<SimEngine, IterRange, RangeDone> = Application::build(eng, b)?;
            for step in 0..3u32 {
                let done = front.call(
                    eng,
                    IterRange {
                        start: 0,
                        len: 24,
                        step,
                    },
                )?;
                bytes.extend_from_slice(&done.step.to_le_bytes());
                bytes.extend_from_slice(&done.iters.to_le_bytes());
                bytes.extend_from_slice(&done.chunks.to_le_bytes());
                samples.push(eng.now_secs());
            }
        }
        WorkloadKind::OrderSensitive => {
            let gather = b.merge(&ctl, || ToThread(0), OrderGather::default);
            b.add(split >> work >> gather);
            let front: Application<SimEngine, IterRange, OrderTrace> = Application::build(eng, b)?;
            for step in 0..3u32 {
                let trace = front.call(
                    eng,
                    IterRange {
                        start: 0,
                        len: 24,
                        step,
                    },
                )?;
                for v in trace.order.iter() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                samples.push(eng.now_secs());
            }
        }
        _ => unreachable!("pipeline variants only"),
    }
    Ok(bytes)
}
