//! VOPR over **real processes**: the net mode.
//!
//! The simulator sweep explores fault schedules in virtual time; this
//! module runs the same seeded exploration against [`NetEngine`] — one
//! master plus real worker processes over TCP, with the deterministic
//! fault layer ([`WireFaults`], [`NetKill`]) armed on every connection.
//! The vopr binary is the SPMD driver: the master spawns workers by
//! re-executing itself with an explicit argument vector pinning exactly
//! one `(workload, seed, faults)` combination, and both sides re-derive
//! the identical fault schedule from those arguments
//! ([`net_engine_config`] is a pure function of them).
//!
//! Fault classes on real sockets:
//!
//! * **net** — seeded drop-as-retransmit-delay / jitter / duplicate faults
//!   on every master↔worker connection. The transport stays reliable, so a
//!   wire-faulted run must produce **byte-identical** outputs;
//! * **kill** — scheduled worker-process deaths ([`NetKill`]): one or more
//!   ranks each crash after a seeded number of outbound master frames.
//!   Detection runs the engine's heartbeat/EOF liveness path, and the run
//!   must either complete on the survivors with correct bytes or fail with
//!   a clean degradation error — never hang, never corrupt.
//!
//! The invariant battery is the wall-clock analogue of the simulator's:
//! output identity (or clean [`NodeDown`]/[`IncompleteWaves`] degradation
//! under an armed kill), zero abandoned chunk leases on a completed run,
//! and — because process scheduling makes *event timing* nondeterministic
//! while the *computation* stays deterministic — replay identity over the
//! canonical **output bytes** rather than the event log: the pinned CI
//! hash is an FNV-1a over the bytes a completed run must always produce.
//!
//! [`NodeDown`]: dps_core::DpsError::NodeDown
//! [`IncompleteWaves`]: dps_core::DpsError::IncompleteWaves

use dps_core::{DpsError, Engine};
use dps_des::SplitMix64;
use dps_netengine::{NetEngine, NetEngineConfig, NetKill, WireFaults};

use crate::workload::run_canonical;
use crate::{Invariant, VoprConfig, VoprFailure};

/// Derive the net-mode fault schedule from a [`VoprConfig`]. The class
/// streams reuse the simulator sweep's indices (2 = net, 3 = kill) off the
/// same master seed, so disarming one class never re-rolls the other — the
/// property the smoke minimizer needs to shrink a failing schedule.
pub fn derive_net_schedule(cfg: &VoprConfig) -> (Option<WireFaults>, Vec<NetKill>) {
    let nodes = cfg.workload.nodes();
    let root = SplitMix64::new(cfg.seed);
    let net_seed = root.split(2).next_u64();
    let mut kill_rng = root.split(3);
    let wire = cfg
        .faults
        .net
        .then(|| WireFaults::all(cfg.net_rate, net_seed));
    let mut kills = Vec::new();
    if cfg.faults.kill && nodes > 1 {
        // One to all-but-one ranks die per armed run: multi-node kill
        // schedules exercise lease takeover and tombstoning under compound
        // failures, not just the single-death path.
        let count = 1 + kill_rng.next_below((nodes - 1) as u64) as usize;
        let mut ranks: Vec<u32> = (1..nodes as u32).collect();
        for i in 0..count {
            let j = i + kill_rng.next_below((ranks.len() - i) as u64) as usize;
            ranks.swap(i, j);
        }
        let mut chosen = ranks[..count].to_vec();
        chosen.sort_unstable();
        for rank in chosen {
            kills.push(NetKill {
                rank,
                after_frames: kill_rng.next_below(40),
            });
        }
    }
    (wire, kills)
}

/// The engine configuration of one net-mode run — a **pure function** of
/// the run parameters. The master passes `worker_args` so spawned workers
/// re-run exactly this combination; workers (which ignore `worker_args`)
/// call this with the same `cfg` parsed from those very arguments, arming
/// the identical fault layer on their end of each connection.
pub fn net_engine_config(cfg: &VoprConfig, worker_args: Vec<String>) -> NetEngineConfig {
    let (wire_faults, kills) = derive_net_schedule(cfg);
    NetEngineConfig {
        worker_args: Some(worker_args),
        wire_faults,
        kills,
        ..NetEngineConfig::default()
    }
}

/// The worker-process argument vector for one run: pins exactly one
/// `(workload, seed, faults)` combination with `--runs 1`, so a worker
/// spawned from the middle of a sweep or smoke loop re-derives only the
/// schedule of the run it belongs to.
pub fn worker_args_for(cfg: &VoprConfig) -> Vec<String> {
    vec![
        "--engine".into(),
        "net".into(),
        "--workload".into(),
        cfg.workload.name().into(),
        "--seed".into(),
        format!("0x{:016x}", cfg.seed),
        "--faults".into(),
        cfg.faults.to_string(),
        "--runs".into(),
        "1".into(),
    ]
}

/// What one net-mode master run leaves behind for the invariant layer.
#[derive(Debug)]
pub struct NetRunOutcome {
    /// Canonical output bytes, if the run completed.
    pub output: Option<Vec<u8>>,
    /// The error, if it did not.
    pub error: Option<DpsError>,
    /// Chunk-hub leases opened but never completed.
    pub abandoned_leases: usize,
}

impl NetRunOutcome {
    /// NodeDown / IncompleteWaves — the only acceptable failure classes.
    pub fn clean_degradation(&self) -> bool {
        matches!(
            self.error,
            Some(DpsError::NodeDown { .. }) | Some(DpsError::IncompleteWaves { .. })
        )
    }
}

/// FNV-1a over a byte string — the net mode's replay fingerprint (the
/// event log is wall-clock-ordered and thus not replayable; the output
/// bytes are).
pub fn output_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The clean-wire reference run: the same canonical workload on an
/// in-process loopback [`NetEngine`] with no faults armed. Same wire
/// protocol, same remote execution paths, deterministic output bytes.
pub fn net_reference(cfg: &VoprConfig) -> Result<Vec<u8>, Box<VoprFailure>> {
    let mut eng = NetEngine::loopback(cfg.workload.nodes());
    let out = run_canonical(&mut eng, cfg.workload);
    eng.shutdown();
    out.map_err(|e| {
        Box::new(VoprFailure {
            cfg: cfg.clone(),
            perturbation: crate::Perturbation::none(),
            invariant: Invariant::OutputIdentity,
            detail: format!("clean loopback reference run itself failed: {e}"),
            engine: "net",
        })
    })
}

/// One perturbed master-role run under `cfg`'s derived schedule: spawns
/// the worker processes (re-executing the current binary with
/// [`worker_args_for`]), runs the canonical workload, and collects the
/// outcome. `io::Error` here means the cluster never came up (spawn or
/// connect failure), not an invariant violation.
pub fn run_net_master(cfg: &VoprConfig) -> std::io::Result<NetRunOutcome> {
    let nodes = cfg.workload.nodes();
    let mut eng = NetEngine::from_env(nodes, net_engine_config(cfg, worker_args_for(cfg)))?;
    let result = run_canonical(&mut eng, cfg.workload);
    let abandoned_leases = eng.chunk_hub().abandoned_leases().len();
    eng.shutdown();
    let (output, error) = match result {
        Ok(bytes) => (Some(bytes), None),
        Err(e) => (None, Some(e)),
    };
    Ok(NetRunOutcome {
        output,
        error,
        abandoned_leases,
    })
}

/// The net-mode invariant battery. Returns `Ok(completed)` or the
/// reproducible failure.
pub fn check_net_run(
    cfg: &VoprConfig,
    reference: &[u8],
    outcome: &NetRunOutcome,
) -> Result<bool, Box<VoprFailure>> {
    let (_, kills) = derive_net_schedule(cfg);
    let fail = |invariant, detail| {
        Box::new(VoprFailure {
            cfg: cfg.clone(),
            perturbation: crate::Perturbation::none(),
            invariant,
            detail,
            engine: "net",
        })
    };
    match &outcome.output {
        Some(got) => {
            // Completed — wire faults (and even kills, when the work could
            // shed to survivors) must leave the bytes untouched.
            if got != reference {
                let at = got
                    .iter()
                    .zip(reference.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| got.len().min(reference.len()));
                return Err(fail(
                    Invariant::OutputIdentity,
                    format!(
                        "outputs diverge from the clean-wire reference at byte {at} \
                         ({} vs {} bytes total)",
                        got.len(),
                        reference.len()
                    ),
                ));
            }
            if outcome.abandoned_leases != 0 {
                return Err(fail(
                    Invariant::ChunkCompleteness,
                    format!(
                        "{} chunk lease(s) abandoned on a completed run",
                        outcome.abandoned_leases
                    ),
                ));
            }
            Ok(true)
        }
        None => {
            // Failed — only a scheduled kill justifies it, and only with a
            // clean degradation error class.
            if kills.is_empty() || !outcome.clean_degradation() {
                return Err(fail(
                    Invariant::OutputIdentity,
                    format!(
                        "run failed with {:?} (kills scheduled: {}) — not a clean degradation",
                        outcome.error,
                        kills.len()
                    ),
                ));
            }
            Ok(false)
        }
    }
}

/// The worker-process half of one net-mode run: build the same engine
/// configuration from the same parsed arguments, run the workload, exit.
/// Returns `true` when the worker's outcome is acceptable — success, or a
/// clean degradation (the expected fate of a survivor whose master
/// reported `NodeDown`, or of a rank the schedule kills before this
/// returns). The master's shutdown treats a non-zero exit of a *live*
/// worker as a failure, so anything unexpected must return `false`.
pub fn run_net_worker(cfg: &VoprConfig) -> bool {
    let nodes = cfg.workload.nodes();
    let mut eng = match NetEngine::from_env(nodes, net_engine_config(cfg, Vec::new())) {
        Ok(eng) => eng,
        Err(e) => {
            eprintln!("vopr worker: net engine setup failed: {e}");
            return false;
        }
    };
    let result = run_canonical(&mut eng, cfg.workload);
    eng.shutdown();
    match result {
        Ok(_) => true,
        Err(DpsError::NodeDown { .. }) | Err(DpsError::IncompleteWaves { .. }) => true,
        Err(e) => {
            eprintln!("vopr worker: workload failed uncleanly: {e}");
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultClasses, WorkloadKind};

    fn cfg_with(faults: FaultClasses, seed: u64) -> VoprConfig {
        let mut cfg = VoprConfig::new(WorkloadKind::Life, seed);
        cfg.faults = faults;
        cfg
    }

    #[test]
    fn net_schedule_is_seed_deterministic_and_reroll_free() {
        let all = FaultClasses {
            shuffle: false,
            net: true,
            kill: true,
        };
        let a = derive_net_schedule(&cfg_with(all, 0x5EED));
        let b = derive_net_schedule(&cfg_with(all, 0x5EED));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        // Disarming net keeps the kill schedule bit-identical (independent
        // per-class streams off the same master seed).
        let kill_only = FaultClasses {
            shuffle: false,
            net: false,
            kill: true,
        };
        let c = derive_net_schedule(&cfg_with(kill_only, 0x5EED));
        assert!(c.0.is_none());
        assert_eq!(c.1, a.1);
    }

    #[test]
    fn kill_schedules_target_multiple_distinct_ranks() {
        let kill_only = FaultClasses {
            shuffle: false,
            net: false,
            kill: true,
        };
        let mut saw_multi = false;
        for seed in 0..64u64 {
            let (_, kills) = derive_net_schedule(&cfg_with(kill_only, seed));
            assert!(!kills.is_empty(), "kill class armed must schedule a kill");
            let mut ranks: Vec<u32> = kills.iter().map(|k| k.rank).collect();
            ranks.dedup();
            assert_eq!(ranks.len(), kills.len(), "ranks must be distinct");
            assert!(ranks.iter().all(|&r| r >= 1), "never kills the master");
            if kills.len() > 1 {
                saw_multi = true;
            }
        }
        assert!(saw_multi, "some seed must kill more than one rank");
    }

    #[test]
    fn worker_args_pin_one_combination() {
        let cfg = cfg_with(FaultClasses::ALL, 0xAB);
        let args = worker_args_for(&cfg);
        assert!(args.windows(2).any(|w| w == ["--runs", "1"]));
        assert!(args.windows(2).any(|w| w == ["--workload", "life"]));
        assert!(args.windows(2).any(|w| w == ["--engine", "net"]));
    }

    #[test]
    fn output_hash_is_stable() {
        assert_eq!(output_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(output_hash(b"dps"), output_hash(b"dps"));
        assert_ne!(output_hash(b"dps"), output_hash(b"dsp"));
    }
}
