//! The VOPR driver: seeded fault-exploration sweeps and one-command replay.
//!
//! ```text
//! vopr [--workload W] [--seed S] [--runs N] [--faults CLASSES]
//!      [--replay] [--smoke] [--fail-file PATH] [--expect-hash 0xHEX]
//! ```
//!
//! * `--workload` — `lu` | `matmul` | `life` | `pipeline` |
//!   `order-sensitive` | `all` (default `all` = the sound workloads);
//! * `--seed`     — base seed, decimal or `0x`-hex (default 1);
//! * `--runs`     — how many consecutive seeds to sweep (default 1);
//! * `--faults`   — `shuffle,net,kill` subset, `all`, or `none`
//!   (default `all`); in `--smoke` mode this is ignored and the sweep
//!   cycles through every fault class instead;
//! * `--replay`   — additionally run each configuration twice and demand a
//!   byte-identical event log (invariant 5); prints the schedule hash;
//! * `--smoke`    — CI mode: cycle workloads × fault classes across the
//!   seed range, fail fast on nothing, report everything;
//! * `--fail-file` — write one replay report per violation to this file
//!   (uploaded as a CI artifact);
//! * `--expect-hash` — with `--replay`, also require the replay schedule
//!   hash to equal this pinned value (CI determinism canary).
//!
//! Exit status: 0 if every run held its invariants (and matched the pinned
//! hash, when given), 1 otherwise, 2 on usage errors.

use std::io::Write as _;
use std::process::ExitCode;

use dps_vopr::{FaultClasses, Vopr, VoprConfig, WorkloadKind};

struct Args {
    workloads: Vec<WorkloadKind>,
    seed: u64,
    runs: u64,
    faults: FaultClasses,
    replay: bool,
    smoke: bool,
    fail_file: Option<String>,
    expect_hash: Option<u64>,
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workloads: WorkloadKind::SOUND.to_vec(),
        seed: 1,
        runs: 1,
        faults: FaultClasses::ALL,
        replay: false,
        smoke: false,
        fail_file: None,
        expect_hash: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--workload" => {
                let v = value("--workload")?;
                args.workloads = if v == "all" {
                    WorkloadKind::SOUND.to_vec()
                } else {
                    vec![WorkloadKind::parse(&v).ok_or_else(|| format!("unknown workload `{v}`"))?]
                };
            }
            "--seed" => {
                let v = value("--seed")?;
                args.seed = parse_u64(&v).ok_or_else(|| format!("bad seed `{v}`"))?;
            }
            "--runs" => {
                let v = value("--runs")?;
                args.runs = parse_u64(&v).ok_or_else(|| format!("bad run count `{v}`"))?;
            }
            "--faults" => {
                let v = value("--faults")?;
                args.faults =
                    FaultClasses::parse(&v).ok_or_else(|| format!("bad fault classes `{v}`"))?;
            }
            "--replay" => args.replay = true,
            "--smoke" => args.smoke = true,
            "--fail-file" => args.fail_file = Some(value("--fail-file")?),
            "--expect-hash" => {
                let v = value("--expect-hash")?;
                args.expect_hash = Some(parse_u64(&v).ok_or_else(|| format!("bad hash `{v}`"))?);
            }
            "--help" | "-h" => {
                return Err("usage: vopr [--workload W] [--seed S] [--runs N] \
                     [--faults shuffle,net,kill|all|none] [--replay] [--smoke] \
                     [--fail-file PATH] [--expect-hash 0xHEX]"
                    .into());
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if args.runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    Ok(args)
}

/// The fault classes a smoke sweep cycles through — each class alone, then
/// all together, so a regression in one class cannot hide behind another.
const SMOKE_CLASSES: [FaultClasses; 4] = [
    FaultClasses {
        shuffle: true,
        net: false,
        kill: false,
    },
    FaultClasses {
        shuffle: false,
        net: true,
        kill: false,
    },
    FaultClasses {
        shuffle: false,
        net: false,
        kill: true,
    },
    FaultClasses::ALL,
];

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // Build the run list: smoke mode spreads the seed budget across
    // workloads × fault classes; otherwise every workload gets every seed
    // under the one requested fault set.
    let mut configs = Vec::new();
    if args.smoke {
        for i in 0..args.runs {
            let workload = args.workloads[(i as usize) % args.workloads.len()];
            let classes = SMOKE_CLASSES[(i as usize / args.workloads.len()) % SMOKE_CLASSES.len()];
            let mut cfg = VoprConfig::new(workload, args.seed.wrapping_add(i));
            cfg.faults = classes;
            configs.push(cfg);
        }
    } else {
        for workload in &args.workloads {
            for i in 0..args.runs {
                let mut cfg = VoprConfig::new(*workload, args.seed.wrapping_add(i));
                cfg.faults = args.faults;
                configs.push(cfg);
            }
        }
    }

    let mut failures = Vec::new();
    for cfg in configs {
        let vopr = Vopr::new(cfg.clone());
        match vopr.run() {
            Ok(report) => {
                let mut line = format!(
                    "ok   workload={:<9} seed=0x{:016x} faults={:<16} hash=0x{:016x} makespan={:.6}s{}",
                    report.cfg.workload.to_string(),
                    report.cfg.seed,
                    report.cfg.faults.to_string(),
                    report.schedule_hash,
                    report.makespan,
                    if report.completed { "" } else { " (degraded cleanly)" },
                );
                if let Some((faulted, clean)) = report.net_stats {
                    line.push_str(&format!(" net-faulted={faulted}/{}", faulted + clean));
                }
                println!("{line}");
            }
            Err(failure) => {
                eprintln!("{failure}");
                failures.push(failure);
                continue;
            }
        }
        if args.replay {
            match vopr.replay_check() {
                Ok(hash) => {
                    println!(
                        "ok   replay-identity seed=0x{:016x} hash=0x{hash:016x}",
                        cfg.seed
                    );
                    if let Some(want) = args.expect_hash {
                        if hash != want {
                            eprintln!(
                                "VOPR FAILURE: pinned schedule hash mismatch: got 0x{hash:016x}, \
                                 expected 0x{want:016x} (workload {} seed 0x{:016x}) — determinism \
                                 drifted; if intentional, re-pin with the new hash",
                                cfg.workload, cfg.seed
                            );
                            return ExitCode::FAILURE;
                        }
                        println!("ok   pinned hash matches (0x{want:016x})");
                    }
                }
                Err(failure) => {
                    eprintln!("{failure}");
                    failures.push(failure);
                }
            }
        }
    }

    if let Some(path) = &args.fail_file {
        if !failures.is_empty() {
            match std::fs::File::create(path) {
                Ok(mut f) => {
                    for failure in &failures {
                        let _ = writeln!(f, "{failure}\n");
                    }
                }
                Err(e) => eprintln!("vopr: cannot write --fail-file {path}: {e}"),
            }
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("vopr: {} invariant violation(s)", failures.len());
        ExitCode::FAILURE
    }
}
