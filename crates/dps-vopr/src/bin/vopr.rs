//! The VOPR driver: seeded fault-exploration sweeps and one-command replay.
//!
//! ```text
//! vopr [--engine sim|net] [--workload W] [--seed S] [--runs N]
//!      [--faults CLASSES] [--replay] [--smoke] [--fail-file PATH]
//!      [--expect-hash 0xHEX]
//! ```
//!
//! * `--engine`   — `sim` (default): virtual-time simulator, full fault
//!   battery; `net`: the same seeded exploration over **real worker
//!   processes and sockets** (`NetEngine`), with wire faults and scheduled
//!   process kills. In net mode this binary is the SPMD driver: the master
//!   re-executes it with `DPS_NET_ROLE=worker` and an argument vector
//!   pinning the run, so workers re-derive the identical fault schedule;
//! * `--workload` — `lu` | `matmul` | `life` | `pipeline` |
//!   `order-sensitive` | `all` (default `all` = the sound workloads; in
//!   net mode, the engine-generic ones);
//! * `--seed`     — base seed, decimal or `0x`-hex (default 1);
//! * `--runs`     — how many consecutive seeds to sweep (default 1);
//! * `--faults`   — `shuffle,net,kill` subset, `all`, or `none`
//!   (default `all`; `shuffle` is simulator-only and ignored by net mode);
//!   in `--smoke` mode this is ignored and the sweep cycles through every
//!   fault class instead;
//! * `--replay`   — additionally run each configuration twice and demand
//!   identical replays (byte-identical event log on sim; identical
//!   canonical output bytes on net, where event timing is wall-clock);
//!   prints the replay hash;
//! * `--smoke`    — CI mode: cycle workloads × fault classes across the
//!   seed range, fail fast on nothing, report everything — and when a run
//!   fails, **minimize** it by disarming fault classes one at a time
//!   (re-roll-free: per-class seed streams) and report the smallest
//!   still-failing combination;
//! * `--fail-file` — write one replay report per violation to this file
//!   (uploaded as a CI artifact);
//! * `--expect-hash` — with `--replay`, also require the replay hash to
//!   equal this pinned value (CI determinism canary).
//!
//! Exit status: 0 if every run held its invariants (and matched the pinned
//! hash, when given), 1 otherwise, 2 on usage errors.

use std::io::Write as _;
use std::process::ExitCode;

use dps_vopr::netrun::{check_net_run, net_reference, output_hash, run_net_master, run_net_worker};
use dps_vopr::{minimize_classes, FaultClasses, Vopr, VoprConfig, VoprFailure, WorkloadKind};

#[derive(Clone, Copy, PartialEq, Eq)]
enum EngineKind {
    Sim,
    Net,
}

struct Args {
    engine: EngineKind,
    workloads: Vec<WorkloadKind>,
    seed: u64,
    runs: u64,
    faults: FaultClasses,
    replay: bool,
    smoke: bool,
    fail_file: Option<String>,
    expect_hash: Option<u64>,
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        engine: EngineKind::Sim,
        workloads: WorkloadKind::SOUND.to_vec(),
        seed: 1,
        runs: 1,
        faults: FaultClasses::ALL,
        replay: false,
        smoke: false,
        fail_file: None,
        expect_hash: None,
    };
    let mut workloads_defaulted = true;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--engine" => {
                let v = value("--engine")?;
                args.engine = match v.as_str() {
                    "sim" => EngineKind::Sim,
                    "net" => EngineKind::Net,
                    _ => return Err(format!("unknown engine `{v}` (sim|net)")),
                };
            }
            "--workload" => {
                let v = value("--workload")?;
                if v == "all" {
                    workloads_defaulted = true;
                } else {
                    workloads_defaulted = false;
                    args.workloads =
                        vec![WorkloadKind::parse(&v)
                            .ok_or_else(|| format!("unknown workload `{v}`"))?];
                }
            }
            "--seed" => {
                let v = value("--seed")?;
                args.seed = parse_u64(&v).ok_or_else(|| format!("bad seed `{v}`"))?;
            }
            "--runs" => {
                let v = value("--runs")?;
                args.runs = parse_u64(&v).ok_or_else(|| format!("bad run count `{v}`"))?;
            }
            "--faults" => {
                let v = value("--faults")?;
                args.faults =
                    FaultClasses::parse(&v).ok_or_else(|| format!("bad fault classes `{v}`"))?;
            }
            "--replay" => args.replay = true,
            "--smoke" => args.smoke = true,
            "--fail-file" => args.fail_file = Some(value("--fail-file")?),
            "--expect-hash" => {
                let v = value("--expect-hash")?;
                args.expect_hash = Some(parse_u64(&v).ok_or_else(|| format!("bad hash `{v}`"))?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: vopr [--engine sim|net] [--workload W] [--seed S] [--runs N] \
                     [--faults shuffle,net,kill|all|none] [--replay] [--smoke] \
                     [--fail-file PATH] [--expect-hash 0xHEX]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if args.runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    if args.engine == EngineKind::Net {
        if workloads_defaulted {
            args.workloads = WorkloadKind::NET_CAPABLE.to_vec();
        } else if let Some(w) = args
            .workloads
            .iter()
            .find(|w| !WorkloadKind::NET_CAPABLE.contains(w))
        {
            return Err(format!("workload `{w}` is simulator-only (--engine sim)"));
        }
    } else if workloads_defaulted {
        args.workloads = WorkloadKind::SOUND.to_vec();
    }
    Ok(args)
}

/// The fault classes a simulator smoke sweep cycles through — each class
/// alone, then all together, so a regression in one class cannot hide
/// behind another.
const SMOKE_CLASSES: [FaultClasses; 4] = [
    FaultClasses {
        shuffle: true,
        net: false,
        kill: false,
    },
    FaultClasses {
        shuffle: false,
        net: true,
        kill: false,
    },
    FaultClasses {
        shuffle: false,
        net: false,
        kill: true,
    },
    FaultClasses::ALL,
];

/// The net-mode smoke cycle: wire faults, process kills, both. (The
/// delivery-interleaving shuffle is a simulator concept; real process
/// scheduling provides its own nondeterminism for free.)
const NET_SMOKE_CLASSES: [FaultClasses; 3] = [
    FaultClasses {
        shuffle: false,
        net: true,
        kill: false,
    },
    FaultClasses {
        shuffle: false,
        net: false,
        kill: true,
    },
    FaultClasses {
        shuffle: false,
        net: true,
        kill: true,
    },
];

/// One perturbed net run + invariant check under `cfg` (reference supplied
/// by the caller). `Err(String)` is an infrastructure failure (the cluster
/// never came up) as opposed to an invariant violation.
fn net_run_checked(
    cfg: &VoprConfig,
    reference: &[u8],
) -> Result<Result<bool, Box<VoprFailure>>, String> {
    match run_net_master(cfg) {
        Ok(outcome) => Ok(check_net_run(cfg, reference, &outcome)),
        Err(e) => Err(format!(
            "vopr: net cluster for workload {} seed 0x{:016x} failed to come up: {e}",
            cfg.workload, cfg.seed
        )),
    }
}

/// Smoke-mode shrink: disarm fault classes one at a time (schedules are
/// re-roll-free across classes) and report the smallest combination that
/// still fails. Each probe is a full re-run, so this only runs on the rare
/// failing configuration.
fn minimize_and_report(args: &Args, cfg: &VoprConfig, failures: &mut [Box<VoprFailure>]) {
    let minimized = minimize_classes(cfg.faults, |classes| {
        let mut probe = cfg.clone();
        probe.faults = classes;
        match args.engine {
            EngineKind::Sim => Vopr::new(probe).run().is_err(),
            EngineKind::Net => match net_reference(&probe) {
                Ok(reference) => !matches!(net_run_checked(&probe, &reference), Ok(Ok(_))),
                Err(_) => true,
            },
        }
    });
    if minimized != cfg.faults {
        eprintln!(
            "vopr: minimized: workload {} seed 0x{:016x} still fails with faults `{minimized}` \
             (was `{}`)",
            cfg.workload, cfg.seed, cfg.faults
        );
        if let Some(last) = failures.last_mut() {
            last.detail
                .push_str(&format!(" [minimized to faults `{minimized}`]"));
        }
    }
}

/// The worker-process entry of a net-mode run: the master spawned us with
/// an argument vector pinning exactly one configuration. Run it and exit;
/// clean degradation is an expected outcome (the master judges the run).
fn worker_main(args: &Args) -> ExitCode {
    if args.engine != EngineKind::Net || args.workloads.len() != 1 {
        eprintln!("vopr worker: spawned with a non-pinned argument vector");
        return ExitCode::FAILURE;
    }
    let mut cfg = VoprConfig::new(args.workloads[0], args.seed);
    cfg.faults = args.faults;
    if run_net_worker(&cfg) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if std::env::var("DPS_NET_ROLE").as_deref() == Ok("worker") {
        return worker_main(&args);
    }

    // Build the run list: smoke mode spreads the seed budget across
    // workloads × fault classes; otherwise every workload gets every seed
    // under the one requested fault set.
    let smoke_classes: &[FaultClasses] = match args.engine {
        EngineKind::Sim => &SMOKE_CLASSES,
        EngineKind::Net => &NET_SMOKE_CLASSES,
    };
    let mut configs = Vec::new();
    if args.smoke {
        for i in 0..args.runs {
            let workload = args.workloads[(i as usize) % args.workloads.len()];
            let classes = smoke_classes[(i as usize / args.workloads.len()) % smoke_classes.len()];
            let mut cfg = VoprConfig::new(workload, args.seed.wrapping_add(i));
            cfg.faults = classes;
            configs.push(cfg);
        }
    } else {
        for workload in &args.workloads {
            for i in 0..args.runs {
                let mut cfg = VoprConfig::new(*workload, args.seed.wrapping_add(i));
                cfg.faults = args.faults;
                configs.push(cfg);
            }
        }
    }

    let mut failures = Vec::new();
    let mut infra_failed = false;
    for cfg in configs {
        match args.engine {
            EngineKind::Sim => {
                let vopr = Vopr::new(cfg.clone());
                match vopr.run() {
                    Ok(report) => {
                        let mut line = format!(
                            "ok   workload={:<9} seed=0x{:016x} faults={:<16} hash=0x{:016x} makespan={:.6}s{}",
                            report.cfg.workload.to_string(),
                            report.cfg.seed,
                            report.cfg.faults.to_string(),
                            report.schedule_hash,
                            report.makespan,
                            if report.completed { "" } else { " (degraded cleanly)" },
                        );
                        if let Some((faulted, clean)) = report.net_stats {
                            line.push_str(&format!(" net-faulted={faulted}/{}", faulted + clean));
                        }
                        println!("{line}");
                    }
                    Err(failure) => {
                        eprintln!("{failure}");
                        failures.push(failure);
                        if args.smoke {
                            minimize_and_report(&args, &cfg, &mut failures);
                        }
                        continue;
                    }
                }
                if args.replay {
                    match vopr.replay_check() {
                        Ok(hash) => {
                            println!(
                                "ok   replay-identity seed=0x{:016x} hash=0x{hash:016x}",
                                cfg.seed
                            );
                            if let Some(want) = args.expect_hash {
                                if hash != want {
                                    eprintln!(
                                        "VOPR FAILURE: pinned schedule hash mismatch: got 0x{hash:016x}, \
                                         expected 0x{want:016x} (workload {} seed 0x{:016x}) — determinism \
                                         drifted; if intentional, re-pin with the new hash",
                                        cfg.workload, cfg.seed
                                    );
                                    return ExitCode::FAILURE;
                                }
                                println!("ok   pinned hash matches (0x{want:016x})");
                            }
                        }
                        Err(failure) => {
                            eprintln!("{failure}");
                            failures.push(failure);
                        }
                    }
                }
            }
            EngineKind::Net => {
                let reference = match net_reference(&cfg) {
                    Ok(bytes) => bytes,
                    Err(failure) => {
                        eprintln!("{failure}");
                        failures.push(failure);
                        continue;
                    }
                };
                let mut runs_left = if args.replay { 2 } else { 1 };
                let mut run_ok = true;
                while runs_left > 0 {
                    runs_left -= 1;
                    match net_run_checked(&cfg, &reference) {
                        Ok(Ok(completed)) => {
                            println!(
                                "ok   workload={:<9} seed=0x{:016x} faults={:<16} engine=net hash=0x{:016x}{}",
                                cfg.workload.to_string(),
                                cfg.seed,
                                cfg.faults.to_string(),
                                output_hash(&reference),
                                if completed { "" } else { " (degraded cleanly)" },
                            );
                        }
                        Ok(Err(failure)) => {
                            eprintln!("{failure}");
                            failures.push(failure);
                            if args.smoke {
                                minimize_and_report(&args, &cfg, &mut failures);
                            }
                            run_ok = false;
                            break;
                        }
                        Err(msg) => {
                            eprintln!("{msg}");
                            infra_failed = true;
                            run_ok = false;
                            break;
                        }
                    }
                }
                // Net replay identity: event timing is wall-clock, but the
                // computation is deterministic — every completed run must
                // reproduce the canonical bytes, whose hash is the pinnable
                // fingerprint.
                if run_ok && args.replay {
                    let hash = output_hash(&reference);
                    println!(
                        "ok   replay-identity seed=0x{:016x} engine=net hash=0x{hash:016x}",
                        cfg.seed
                    );
                    if let Some(want) = args.expect_hash {
                        if hash != want {
                            eprintln!(
                                "VOPR FAILURE: pinned output hash mismatch: got 0x{hash:016x}, \
                                 expected 0x{want:016x} (workload {} seed 0x{:016x}, engine net) — \
                                 determinism drifted; if intentional, re-pin with the new hash",
                                cfg.workload, cfg.seed
                            );
                            return ExitCode::FAILURE;
                        }
                        println!("ok   pinned hash matches (0x{want:016x})");
                    }
                }
            }
        }
    }

    if let Some(path) = &args.fail_file {
        if !failures.is_empty() {
            match std::fs::File::create(path) {
                Ok(mut f) => {
                    for failure in &failures {
                        let _ = writeln!(f, "{failure}\n");
                    }
                }
                Err(e) => eprintln!("vopr: cannot write --fail-file {path}: {e}"),
            }
        }
    }

    if failures.is_empty() && !infra_failed {
        ExitCode::SUCCESS
    } else {
        if !failures.is_empty() {
            eprintln!("vopr: {} invariant violation(s)", failures.len());
        }
        ExitCode::FAILURE
    }
}
