//! Tests of the real-thread engine: the same schedules the simulation
//! engine runs, executed on OS threads with genuinely concurrent operations.

use dps_core::prelude::*;
use dps_mt::{MtConfig, MtEngine};

dps_token! { pub struct Job { pub n: u32 } }
dps_token! { pub struct Piece { pub i: u32, pub v: u64 } }
dps_token! { pub struct Total { pub sum: u64 } }

struct Fan;
impl SplitOperation for Fan {
    type Thread = ();
    type In = Job;
    type Out = Piece;
    fn execute(&mut self, ctx: &mut OpCtx<'_, (), Piece>, j: Job) {
        for i in 0..j.n {
            ctx.post(Piece { i, v: u64::from(i) });
        }
    }
}

struct Work;
impl LeafOperation for Work {
    type Thread = ();
    type In = Piece;
    type Out = Piece;
    fn execute(&mut self, ctx: &mut OpCtx<'_, (), Piece>, p: Piece) {
        // A little real computation so threads genuinely overlap; the
        // result is discarded (black_box prevents elimination).
        let mut acc = p.v;
        for k in 0..1000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
        }
        std::hint::black_box(acc);
        ctx.post(Piece {
            i: p.i,
            v: p.v * p.v,
        });
    }
}

#[derive(Default)]
struct Sum {
    sum: u64,
}
impl MergeOperation for Sum {
    type Thread = ();
    type In = Piece;
    type Out = Total;
    fn consume(&mut self, _ctx: &mut OpCtx<'_, (), Total>, p: Piece) {
        self.sum += p.v;
    }
    fn finalize(&mut self, ctx: &mut OpCtx<'_, (), Total>) {
        ctx.post(Total { sum: self.sum });
    }
}

fn build(eng: &mut MtEngine, nodes: usize) -> dps_mt::MtGraph {
    let app = eng.app("mt-demo");
    let main: ThreadCollection<()> = eng.thread_collection(app, "main", "node0").unwrap();
    let mapping: Vec<String> = (0..nodes).map(|i| format!("node{i}")).collect();
    let workers: ThreadCollection<()> = eng
        .thread_collection(app, "proc", &mapping.join(" "))
        .unwrap();
    let mut b = GraphBuilder::new("sumsq");
    let s = b.split(&main, || ToThread(0), || Fan);
    let l = b.leaf(&workers, RoundRobin::new, || Work);
    let m = b.merge(&main, || ToThread(0), Sum::default);
    b.add(s >> l >> m);
    eng.build_graph(b).unwrap()
}

fn expected_sum(n: u32) -> u64 {
    (0..u64::from(n)).map(|i| i * i).sum()
}

#[test]
fn split_compute_merge_on_real_threads() {
    let mut eng = MtEngine::new(4);
    let g = build(&mut eng, 4);
    let out = eng.run_graph(g, vec![Box::new(Job { n: 100 })], 1).unwrap();
    assert_eq!(out.len(), 1);
    let total = downcast::<Total>(out.into_iter().next().unwrap()).unwrap();
    assert_eq!(total.sum, expected_sum(100));
    eng.shutdown();
}

#[test]
fn repeated_runs_reuse_threads() {
    let mut eng = MtEngine::new(2);
    let g = build(&mut eng, 2);
    for _ in 0..5 {
        let t = eng.run_one::<Total>(g, Box::new(Job { n: 32 })).unwrap();
        assert_eq!(t.sum, expected_sum(32));
    }
}

#[test]
fn pipelined_injections() {
    let mut eng = MtEngine::new(4);
    let g = build(&mut eng, 4);
    let inputs: Vec<TokenBox> = (0..6)
        .map(|_| Box::new(Job { n: 50 }) as TokenBox)
        .collect();
    let outs = eng.run_graph(g, inputs, 6).unwrap();
    assert_eq!(outs.len(), 6);
    for o in outs {
        let t = downcast::<Total>(o).unwrap();
        assert_eq!(t.sum, expected_sum(50));
    }
}

#[test]
fn flow_window_one_still_completes() {
    let cfg = MtConfig {
        flow_window: 1,
        ..MtConfig::default()
    };
    let mut eng = MtEngine::with_config(2, cfg);
    let g = build(&mut eng, 2);
    let t = eng.run_one::<Total>(g, Box::new(Job { n: 40 })).unwrap();
    assert_eq!(t.sum, expected_sum(40));
}

#[test]
fn serialization_enforced_across_virtual_nodes() {
    let cfg = MtConfig {
        enforce_serialization: true,
        ..MtConfig::default()
    };
    let mut eng = MtEngine::with_config(3, cfg);
    let app_tokens = |eng: &mut MtEngine, app| {
        eng.register_token::<Job>(app);
        eng.register_token::<Piece>(app);
        eng.register_token::<Total>(app);
    };
    let app = eng.app("ser");
    app_tokens(&mut eng, app);
    let main: ThreadCollection<()> = eng.thread_collection(app, "m", "node0").unwrap();
    let w: ThreadCollection<()> = eng.thread_collection(app, "w", "node1 node2").unwrap();
    let mut b = GraphBuilder::new("ser");
    let s = b.split(&main, || ToThread(0), || Fan);
    let l = b.leaf(&w, RoundRobin::new, || Work);
    let m = b.merge(&main, || ToThread(0), Sum::default);
    b.add(s >> l >> m);
    let g = eng.build_graph(b).unwrap();
    let t = eng.run_one::<Total>(g, Box::new(Job { n: 25 })).unwrap();
    assert_eq!(t.sum, expected_sum(25));
}

#[test]
fn service_call_between_mt_applications() {
    let mut eng = MtEngine::new(2);

    let server = eng.app("server");
    let smain: ThreadCollection<()> = eng.thread_collection(server, "m", "node1").unwrap();
    let mut sb = GraphBuilder::new("svc");
    let ss = sb.split(&smain, || ToThread(0), || Fan);
    let sl = sb.leaf(&smain, || ToThread(0), || Work);
    let sm = sb.merge(&smain, || ToThread(0), Sum::default);
    sb.add(ss >> sl >> sm);
    let sg = eng.build_graph(sb).unwrap();
    eng.expose_service(sg, "mt.sum");

    dps_token! { pub struct CallBatch { pub calls: u32 } }
    struct FanCalls;
    impl SplitOperation for FanCalls {
        type Thread = ();
        type In = CallBatch;
        type Out = Job;
        fn execute(&mut self, ctx: &mut OpCtx<'_, (), Job>, c: CallBatch) {
            for _ in 0..c.calls {
                ctx.post(Job { n: 10 });
            }
        }
    }
    #[derive(Default)]
    struct SumTotals {
        sum: u64,
    }
    impl MergeOperation for SumTotals {
        type Thread = ();
        type In = Total;
        type Out = Total;
        fn consume(&mut self, _ctx: &mut OpCtx<'_, (), Total>, t: Total) {
            self.sum += t.sum;
        }
        fn finalize(&mut self, ctx: &mut OpCtx<'_, (), Total>) {
            ctx.post(Total { sum: self.sum });
        }
    }

    let client = eng.app("client");
    let cmain: ThreadCollection<()> = eng.thread_collection(client, "m", "node0").unwrap();
    let mut cb = GraphBuilder::new("client");
    let cs = cb.split(&cmain, || ToThread(0), || FanCalls);
    let call = cb.call::<Job, Total, (), _>("mt.sum", &cmain, || ToThread(0));
    let cm = cb.merge(&cmain, || ToThread(0), SumTotals::default);
    cb.add(cs >> call >> cm);
    let cg = eng.build_graph(cb).unwrap();

    let t = eng
        .run_one::<Total>(cg, Box::new(CallBatch { calls: 3 }))
        .unwrap();
    assert_eq!(t.sum, 3 * expected_sum(10));
}

#[test]
fn timeout_reports_deadlock_shape() {
    // A merge that never completes (split output dropped by a filter leaf
    // is impossible by contract, so instead use a huge expected count via a
    // graph that is simply never fed enough): simulate by expecting more
    // outputs than the graph produces.
    let cfg = MtConfig {
        run_timeout: std::time::Duration::from_millis(300),
        ..MtConfig::default()
    };
    let mut eng = MtEngine::with_config(1, cfg);
    let g = build(&mut eng, 1);
    let err = eng
        .run_graph(g, vec![Box::new(Job { n: 3 })], 2)
        .unwrap_err();
    assert!(err.to_string().contains("timed out"));
}
