//! Worker threads: one OS thread per DPS thread, driving operations from a
//! token queue — the paper's macro data flow execution.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dps_sched::FeedbackSink;

use crossbeam::channel::{Receiver, Sender};
use crossbeam::utils::CachePadded;
use dps_core::internal::{DynOp, DynRoute, ExecInfo, OpOutput};
use dps_core::{
    wire_roundtrip, CallFrame, DpsError, Envelope, Flowgraph, Frame, GNodeId, OpKind, RouteInfo,
    Token, TokenBox, TokenRegistry, WaveKey,
};
use dps_obs::{Counter, EventKind, Gauge, TraceCollector, TraceWriter};
use parking_lot::Mutex;

use crate::remote::{remote_for, RemoteExec, RemoteKind, RemoteTask};

/// Message to a worker thread.
pub(crate) enum Msg {
    /// Process a token at a graph node.
    Deliver {
        graph: u32,
        node: GNodeId,
        token: TokenBox,
        env: Envelope,
    },
    /// Wave-close control info: the producer of the wave identified by
    /// `env` finished after its final data object was already in flight;
    /// `total` is the wave size.
    Close {
        graph: u32,
        node: GNodeId,
        env: Envelope,
        total: u32,
    },
    /// Terminate the worker.
    Stop,
    /// Wakeup after the worker's node was marked dead (`fail_node`): the
    /// worker re-checks the dead set and enters tombstone mode. Sent *raw*
    /// on the channel (never through [`SharedTc::enqueue`]), so it is not
    /// counted in the thread's backlog and must not decrement it.
    Fail,
}

/// A token that left a graph.
pub(crate) struct Output {
    pub app: u32,
    pub graph: u32,
    pub token: TokenBox,
}

pub(crate) struct SharedTc {
    pub nodes: Vec<u32>,
    pub senders: Vec<Sender<Msg>>,
    /// Live per-thread backlog (messages sent and not yet fully processed)
    /// — the load signal for `LeastLoaded`/`ChunkRoute` routing and the
    /// AWF feedback loop on real OS threads. Each counter is padded to its
    /// own cache line: every delivery bumps exactly one thread's counter,
    /// and unpadded neighbours would drag every other thread's line along
    /// (false sharing on the per-delivery hot path).
    pub queued: Vec<CachePadded<AtomicU32>>,
    /// Metrics registry of the attached trace sink (None = no accounting).
    pub metrics: Option<Arc<dps_obs::MetricsRegistry>>,
}

impl SharedTc {
    fn enqueue(&self, thread: usize, msg: Msg) {
        let depth = self.queued[thread].fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(m) = &self.metrics {
            m.add(Counter::TokensEnqueued, 1);
            m.gauge_max(Gauge::QueueDepthPeak, depth as u64);
        }
        if self.senders[thread].send(msg).is_err() {
            // Worker already stopped (shutdown path): roll the count back.
            self.queued[thread].fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Per-thread backlog with dead-node awareness: threads hosted on a
    /// failed node report infinite load, so load-aware routes
    /// (`LeastLoaded`, `ChunkRoute`) shed their work to live threads —
    /// the same signal shape the simulator's `fail_node` produces.
    fn load_snapshot(&self, dead: &[AtomicBool]) -> Vec<u32> {
        self.queued
            .iter()
            .zip(&self.nodes)
            .map(|(q, &n)| {
                if dead
                    .get(n as usize)
                    .is_some_and(|d| d.load(Ordering::Acquire))
                {
                    u32::MAX
                } else {
                    q.load(Ordering::Relaxed)
                }
            })
            .collect()
    }
}

pub(crate) struct MtFlow {
    pending: VecDeque<(TokenBox, Envelope)>,
    outstanding: u32,
    complete: bool,
    from: GNodeId,
    src_node: u32,
    /// Serving-graph exit splits have no in-graph merge returning credits;
    /// their waves are not window-limited.
    unbounded: bool,
}

/// One graph node's installed route. Stateless routes (declared via
/// [`Route::STATELESS`](dps_core::Route::STATELESS)) are shared across the
/// delivery threads and called through `&self` — no per-delivery lock;
/// stateful routes (round-robin counters and friends) keep the mutex.
pub(crate) enum RouteCell {
    Stateless(Box<dyn DynRoute>),
    Stateful(Mutex<Box<dyn DynRoute>>),
}

impl RouteCell {
    pub(crate) fn install(route: Box<dyn DynRoute>) -> Self {
        if route.is_stateless() {
            RouteCell::Stateless(route)
        } else {
            RouteCell::Stateful(Mutex::new(route))
        }
    }

    fn route(
        &self,
        token: &dyn Token,
        info: &RouteInfo<'_>,
        node_name: &str,
    ) -> dps_core::Result<usize> {
        match self {
            RouteCell::Stateless(r) => r.route_dyn_shared(token, info, node_name),
            RouteCell::Stateful(m) => m.lock().route_dyn(token, info, node_name),
        }
    }
}

pub(crate) struct SharedGraph {
    pub routes: Vec<RouteCell>,
    pub wave_threads: Mutex<HashMap<WaveKey, u32>>,
    pub flows: Mutex<HashMap<(u32, u64), MtFlow>>,
    /// Wave totals whose waves have not been routed to a thread yet.
    pub pending_closes: Mutex<HashMap<WaveKey, u32>>,
}

pub(crate) struct SharedApp {
    pub tcs: Vec<SharedTc>,
    pub graphs: Vec<SharedGraph>,
}

struct CallRet {
    app: u32,
    graph: u32,
    node: GNodeId,
    env: Envelope,
}

pub(crate) struct Shared {
    pub flow_window: u32,
    pub enforce_serialization: bool,
    pub apps: Vec<SharedApp>,
    /// Declared application names, surfaced in runtime error messages
    /// (matching `SimEngine::app` semantics).
    pub app_names: Vec<String>,
    pub defs: Vec<Vec<Arc<Flowgraph>>>,
    pub registries: Vec<TokenRegistry>,
    pub services: HashMap<String, (u32, u32)>,
    pub wave_counter: AtomicU64,
    pub call_counter: AtomicU64,
    pub pending_calls: Mutex<HashMap<u64, CallRetOpaque>>,
    pub output_tx: Sender<Output>,
    pub error_tx: Sender<DpsError>,
    /// Chunk-completion reports (wall-clock) go here, if registered — the
    /// dynamic loop-scheduling feedback channel (`dps-sched`).
    pub feedback: Option<Arc<dyn FeedbackSink>>,
    /// Calibrated host compute rate (FLOP/s) for `charge_flops` cost models.
    pub node_flops: f64,
    /// Remote-execution hook: when installed, operations of threads whose
    /// cluster node it claims run in another process (see `crate::remote`).
    pub remote: Option<Arc<dyn RemoteExec>>,
    /// Attached trace sink (wall-clock timestamps); each worker thread
    /// registers its own writer at startup.
    pub trace: Option<Arc<TraceCollector>>,
    /// One flag per cluster node: `fail_node` marks a node dead here and
    /// its workers turn into tombstones (they keep draining their queues,
    /// re-routing stranded work, so no message is ever lost to a closed
    /// channel).
    pub dead: Vec<AtomicBool>,
    /// Declared cluster node names (`node0..`), for NodeDown diagnostics.
    pub node_names: Vec<String>,
    /// Collections that have actually reported to the feedback sink —
    /// `fail_node` translates a dead node into *these* collections' thread
    /// indices for `FeedbackSink::worker_lost` (an unrelated collection on
    /// the dead node must not wipe a live worker sharing a thread index).
    pub feedback_tcs: Mutex<Vec<(u32, u32)>>,
}

impl Shared {
    /// True when cluster node `node` was killed by `fail_node`.
    pub(crate) fn node_dead(&self, node: u32) -> bool {
        self.dead
            .get(node as usize)
            .is_some_and(|d| d.load(Ordering::Acquire))
    }

    fn node_name(&self, node: u32) -> String {
        self.node_names
            .get(node as usize)
            .cloned()
            .unwrap_or_else(|| format!("node{node}"))
    }
}

/// Newtype so `CallRet` stays private to this module.
pub(crate) struct CallRetOpaque(CallRet);

struct WaveState {
    /// `None` for remotely-executed waves: the op instance lives in the
    /// process hosting this thread's node.
    op: Option<Box<dyn DynOp>>,
    received: u32,
    expected: Option<u32>,
    out_wave: u64,
    out_index: u32,
    /// Where this wave consumes (for NodeDown diagnostics when the hosting
    /// node is killed mid-wave).
    graph: u32,
    node: GNodeId,
}

/// Per-worker mutable state.
struct Worker {
    app: u32,
    tc: u32,
    thread: u32,
    node: u32,
    data: Box<dyn Any + Send>,
    ops: HashMap<(u32, u32), Box<dyn DynOp>>,
    waves: HashMap<WaveKey, WaveState>,
    /// Totals from closes that arrived before the wave's first token.
    pending_expected: HashMap<WaveKey, u32>,
    /// This thread's trace writer (one SPSC ring), when a sink is attached.
    trace: Option<TraceWriter>,
}

impl Worker {
    /// Record a trace event on this worker's track (no-op without a sink).
    fn trace(&mut self, shared: &Shared, kind: EventKind) {
        if let (Some(w), Some(c)) = (self.trace.as_mut(), shared.trace.as_ref()) {
            w.record(c.now_nanos(), kind);
        }
    }
}

/// Report a runtime error, qualifying node names with the owning
/// application's declared name (`app:node`) so multi-application runs
/// produce attributable diagnostics.
pub(crate) fn send_error(shared: &Shared, app: u32, e: DpsError) {
    let name = shared
        .app_names
        .get(app as usize)
        .map(String::as_str)
        .unwrap_or("?");
    let tag = |node: String| format!("{name}:{node}");
    let e = match e {
        DpsError::NoRoute { node, token_type } => DpsError::NoRoute {
            node: tag(node),
            token_type,
        },
        DpsError::OperationContract { node, reason } => DpsError::OperationContract {
            node: tag(node),
            reason,
        },
        DpsError::RouteOutOfRange {
            node,
            index,
            thread_count,
        } => DpsError::RouteOutOfRange {
            node: tag(node),
            index,
            thread_count,
        },
        DpsError::InvalidGraph { reason } => DpsError::InvalidGraph {
            reason: format!("application {name}: {reason}"),
        },
        other => other,
    };
    // Terminal failure events go straight into the collector's merged log
    // (the failing thread may have no writer, and rings could be lost).
    if let Some(c) = &shared.trace {
        c.record_now(
            0,
            0,
            EventKind::OpFailed {
                op: c.label(&e.to_string()),
            },
        );
    }
    let _ = shared.error_tx.send(e);
}

/// Inject a token into a graph entry from outside (the run driver).
pub(crate) fn inject(shared: &Arc<Shared>, app: u32, graph: u32, token: TokenBox, src_node: u32) {
    let entry = shared.defs[app as usize][graph as usize].entry();
    route_and_send(shared, app, graph, entry, src_node, token, Envelope::root());
}

/// The worker main loop.
pub(crate) fn worker_loop(
    shared: Arc<Shared>,
    app: u32,
    tc: u32,
    thread: u32,
    data: Box<dyn Any + Send>,
    rx: Receiver<Msg>,
) {
    let node = shared.apps[app as usize].tcs[tc as usize].nodes[thread as usize];
    let mut w = Worker {
        app,
        tc,
        thread,
        node,
        data,
        ops: HashMap::new(),
        waves: HashMap::new(),
        pending_expected: HashMap::new(),
        trace: shared
            .trace
            .as_ref()
            .map(|c| c.writer(node as u16, thread as u16)),
    };
    let mut stopped = false;
    let mut dead = false;
    while let Ok(msg) = rx.recv() {
        if !dead && shared.node_dead(node) {
            // The node was killed: become a tombstone. The thread stays
            // alive so late sends never hit a closed channel; it abandons
            // its partial wave state and from now on re-routes everything
            // it drains to live threads.
            dead = true;
            abandon_waves(&shared, &mut w);
        }
        match msg {
            Msg::Stop => {
                stopped = true;
                break;
            }
            // A bare wakeup (sent raw, not counted in the backlog): the
            // dead-set re-check above did the work.
            Msg::Fail => continue,
            Msg::Deliver {
                graph,
                node: gnode,
                token,
                env,
            } => {
                if dead {
                    // Stranded delivery: hand it back to the router, which
                    // sees this node's threads at infinite load and (for
                    // fresh merge waves) re-pins the wave elsewhere.
                    route_and_send(&shared, app, graph, gnode, node, token, env);
                } else if let Err(e) = handle(&shared, &mut w, graph, gnode, token, env) {
                    send_error(&shared, app, e);
                }
            }
            Msg::Close {
                graph,
                node: gnode,
                env,
                total,
            } => {
                if dead {
                    // Wave-close messages follow their wave to its new home
                    // (or park until a re-routed token re-pins it).
                    let _ = gnode;
                    send_close(&shared, app, graph, env, total);
                } else if let Err(e) = handle_close(&shared, &mut w, graph, gnode, env, total) {
                    send_error(&shared, app, e);
                }
            }
        }
        // The message is fully processed: drop it from this thread's
        // backlog (the live load signal used by routing functions).
        shared.apps[app as usize].tcs[tc as usize].queued[thread as usize]
            .fetch_sub(1, Ordering::Relaxed);
    }
    if !stopped {
        // The channel died under the worker (abnormal teardown): record the
        // thread's death as a terminal node-down event.
        if let Some(c) = &shared.trace {
            c.record_now(
                node as u16,
                thread as u16,
                EventKind::NodeDown { node: node as u16 },
            );
            c.metrics().add(Counter::NodesDown, 1);
        }
    }
}

/// A worker whose node was killed enters tombstone mode: every merge wave
/// with partial state on this thread is unrecoverable (its op instance and
/// received counts die here) and surfaces as [`DpsError::NodeDown`]; the
/// wave pins are removed so re-routed siblings fail fast instead of
/// re-targeting this thread. Mirrors the simulator's `fail_node` semantics.
fn abandon_waves(shared: &Arc<Shared>, w: &mut Worker) {
    let waves = std::mem::take(&mut w.waves);
    for (key, wave) in waves {
        let target = shared.defs[w.app as usize][wave.graph as usize]
            .node(wave.node)
            .name
            .clone();
        shared.apps[w.app as usize].graphs[wave.graph as usize]
            .wave_threads
            .lock()
            .remove(&key);
        send_error(
            shared,
            w.app,
            DpsError::NodeDown {
                node: shared.node_name(w.node),
                target,
            },
        );
    }
    w.pending_expected.clear();
    w.ops.clear();
}

/// If the finished execution marked a scheduled chunk complete, report its
/// wall-clock execution time to the registered feedback sink — the
/// real-thread half of the dynamic loop-scheduling feedback channel.
fn report_completion(shared: &Shared, w: &mut Worker, out: &OpOutput, started: Instant) {
    let Some(iters) = out.completed_iters else {
        return;
    };
    let nanos = started.elapsed().as_nanos() as u64;
    w.trace(shared, EventKind::ChunkExec { iters, nanos });
    if let Some(sink) = shared.feedback.as_ref() {
        {
            let mut ftcs = shared.feedback_tcs.lock();
            if !ftcs.contains(&(w.app, w.tc)) {
                ftcs.push((w.app, w.tc));
            }
        }
        sink.report_chunk(w.thread as usize, iters, started.elapsed().as_secs_f64());
        w.trace(
            shared,
            EventKind::ChunkReport {
                worker: w.thread,
                iters,
                nanos,
            },
        );
        if let Some(c) = &shared.trace {
            c.metrics().add(Counter::ChunkReports, 1);
        }
    }
}

/// Apply remotely-measured chunk completions to the master's feedback sink
/// under the executing thread's index — the distributed counterpart of
/// [`report_completion`] (the remote host measured the wall-clock time).
fn apply_reports(shared: &Shared, app: u32, tc: u32, thread: u32, reports: &[(u64, f64)]) {
    if let (false, Some(sink)) = (reports.is_empty(), shared.feedback.as_ref()) {
        {
            let mut ftcs = shared.feedback_tcs.lock();
            if !ftcs.contains(&(app, tc)) {
                ftcs.push((app, tc));
            }
        }
        sink.report_batch(thread as usize, reports);
    }
}

fn exec_info(shared: &Shared, w: &Worker) -> ExecInfo {
    ExecInfo {
        thread_index: w.thread as usize,
        thread_count: shared.apps[w.app as usize].tcs[w.tc as usize].senders.len(),
        // Wall-clock engine: charges don't advance a clock, but cost models
        // calling charge_flops see the calibrated host rate.
        node_flops: shared.node_flops,
        start_nanos: 0,
    }
}

fn handle(
    shared: &Arc<Shared>,
    w: &mut Worker,
    graph: u32,
    node: GNodeId,
    token: TokenBox,
    env: Envelope,
) -> Result<(), DpsError> {
    let def = &shared.defs[w.app as usize][graph as usize];
    let kind = def.node(node).kind;
    match kind {
        OpKind::Split | OpKind::Leaf => handle_exec(shared, w, graph, node, kind, token, env),
        OpKind::Merge | OpKind::Stream => handle_consume(shared, w, graph, node, kind, token, env),
        OpKind::Call | OpKind::CallSplit => handle_call(shared, w, graph, node, token, env),
    }
}

fn handle_exec(
    shared: &Arc<Shared>,
    w: &mut Worker,
    graph: u32,
    node: GNodeId,
    kind: OpKind,
    token: TokenBox,
    env: Envelope,
) -> Result<(), DpsError> {
    let def = &shared.defs[w.app as usize][graph as usize];
    let gnode = def.node(node);
    let info = exec_info(shared, w);
    let name = gnode.name.clone();
    let mut posts: Vec<TokenBox> = if let Some(r) = remote_for(&shared.remote, w.node) {
        let outcome = r.execute(RemoteTask {
            app: w.app,
            tc: w.tc,
            thread: w.thread,
            graph,
            node,
            kind: RemoteKind::Exec,
            token: Some(token),
            env: env.clone(),
        })?;
        apply_reports(shared, w.app, w.tc, w.thread, &outcome.reports);
        if kind == OpKind::Leaf && outcome.posts.len() != 1 {
            return Err(DpsError::OperationContract {
                node: name,
                reason: format!(
                    "remote leaf execution returned {} posts (exactly 1 required)",
                    outcome.posts.len()
                ),
            });
        }
        outcome.posts
    } else {
        let t0n = shared.trace.as_ref().map(|c| c.now_nanos());
        let op = w
            .ops
            .entry((graph, node.0))
            .or_insert_with(|| gnode.make_op().expect("split/leaf has an op"));
        let mut out = OpOutput::default();
        let t0 = Instant::now();
        op.on_token(&mut out, w.data.as_mut(), info, &name, token)?;
        report_completion(shared, w, &out, t0);
        if let (Some(start), Some(c)) = (t0n, shared.trace.as_ref()) {
            let op = c.label(&name);
            let wave = env.frames.last().map_or(0, |f| f.wave as u32);
            let end = c.now_nanos();
            if let Some(wtr) = w.trace.as_mut() {
                wtr.record(start, EventKind::OpStart { op, wave });
                wtr.record(end, EventKind::OpEnd { op, wave });
            }
        }
        out.posts.into_iter().map(|p| p.token).collect()
    };

    match kind {
        OpKind::Split => {
            let wave = shared.wave_counter.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = shared.trace.as_ref() {
                let graph_label = c.label(def.name());
                w.trace(
                    shared,
                    EventKind::WaveStart {
                        graph: graph_label,
                        wave: wave as u32,
                    },
                );
            }
            let total = posts.len() as u32;
            let mut pending = VecDeque::with_capacity(posts.len());
            for (i, post) in posts.into_iter().enumerate() {
                let mut e = env.clone();
                e.push(Frame {
                    src: node,
                    wave,
                    index: i as u32,
                    total: (i as u32 == total - 1).then_some(total),
                });
                pending.push_back((post, e));
            }
            {
                let unbounded = def.matching_pop(node).is_none();
                let g = &shared.apps[w.app as usize].graphs[graph as usize];
                g.flows.lock().insert(
                    (node.0, wave),
                    MtFlow {
                        pending,
                        outstanding: 0,
                        complete: true,
                        from: node,
                        src_node: w.node,
                        unbounded,
                    },
                );
            }
            pump_flow(shared, w.app, graph, (node.0, wave));
        }
        OpKind::Leaf => {
            let post = posts.pop().expect("leaf contract checked");
            emit(shared, w.app, graph, node, w.node, post, env);
        }
        _ => unreachable!(),
    }
    Ok(())
}

fn handle_consume(
    shared: &Arc<Shared>,
    w: &mut Worker,
    graph: u32,
    node: GNodeId,
    kind: OpKind,
    token: TokenBox,
    mut env: Envelope,
) -> Result<(), DpsError> {
    let def = &shared.defs[w.app as usize][graph as usize];
    let gnode = def.node(node);
    let name = gnode.name.clone();
    let info = exec_info(shared, w);
    let key = env.wave_key().expect("validated depth >= 1");
    let remote = remote_for(&shared.remote, w.node);
    // The remote side re-derives the wave identity from the envelope, so it
    // must see the frame this consume pops.
    let pre_pop_env = remote.as_ref().map(|_| env.clone());
    let frame = env.pop().expect("validated depth >= 1");
    let parent_env = env;

    let early_expected = w.pending_expected.remove(&key);
    let is_remote = remote.is_some();
    let wave = w.waves.entry(key.clone()).or_insert_with(|| WaveState {
        op: (!is_remote).then(|| gnode.make_op().expect("merge/stream has an op")),
        received: 0,
        expected: early_expected,
        out_wave: shared.wave_counter.fetch_add(1, Ordering::Relaxed),
        out_index: 0,
        graph,
        node,
    });
    wave.received += 1;
    if let Some(t) = frame.total {
        wave.expected = Some(t);
    }
    if let Some(exp) = wave.expected {
        if wave.received > exp {
            return Err(DpsError::OperationContract {
                node: name,
                reason: format!(
                    "wave received {} tokens but split posted {exp}",
                    wave.received
                ),
            });
        }
    }
    let completes = wave.expected == Some(wave.received);
    let out_wave = wave.out_wave;
    let out_index_base = wave.out_index;

    let mut posts: Vec<TokenBox> = if let Some(r) = remote {
        let outcome = r.execute(RemoteTask {
            app: w.app,
            tc: w.tc,
            thread: w.thread,
            graph,
            node,
            kind: RemoteKind::Consume { completes },
            token: Some(token),
            env: pre_pop_env.expect("cloned when the hook matched"),
        })?;
        apply_reports(shared, w.app, w.tc, w.thread, &outcome.reports);
        outcome.posts
    } else {
        let t0n = shared.trace.as_ref().map(|c| c.now_nanos());
        let op = wave.op.as_mut().expect("local waves hold their op");
        let mut out = OpOutput::default();
        let t0 = Instant::now();
        op.on_token(&mut out, w.data.as_mut(), info, &name, token)?;
        if completes {
            op.on_finalize(&mut out, w.data.as_mut(), info, &name)?;
        }
        report_completion(shared, w, &out, t0);
        if let (Some(start), Some(c)) = (t0n, shared.trace.as_ref()) {
            let op = c.label(&name);
            let wave32 = frame.wave as u32;
            let end = c.now_nanos();
            if let Some(wtr) = w.trace.as_mut() {
                wtr.record(start, EventKind::OpStart { op, wave: wave32 });
                wtr.record(end, EventKind::OpEnd { op, wave: wave32 });
            }
        }
        out.posts.into_iter().map(|p| p.token).collect()
    };

    match kind {
        OpKind::Merge => {
            if completes {
                let post = posts.pop().ok_or_else(|| DpsError::OperationContract {
                    node: name.clone(),
                    reason: "merge wave completed without an output".into(),
                })?;
                emit(shared, w.app, graph, node, w.node, post, parent_env);
            }
        }
        OpKind::Stream => {
            let n_posts = posts.len() as u32;
            let mut close_to_send: Option<(Envelope, u32)> = None;
            if n_posts > 0 || completes {
                let flow_key = (node.0, out_wave);
                {
                    let g = &shared.apps[w.app as usize].graphs[graph as usize];
                    let mut flows = g.flows.lock();
                    let flow = flows.entry(flow_key).or_insert_with(|| MtFlow {
                        pending: VecDeque::new(),
                        outstanding: 0,
                        complete: false,
                        from: node,
                        src_node: w.node,
                        unbounded: false,
                    });
                    for (i, post) in posts.into_iter().enumerate() {
                        let mut e = parent_env.clone();
                        e.push(Frame {
                            src: node,
                            wave: out_wave,
                            index: out_index_base + i as u32,
                            total: None,
                        });
                        flow.pending.push_back((post, e));
                    }
                    if completes {
                        let total = out_index_base + n_posts;
                        if total == 0 {
                            return Err(DpsError::OperationContract {
                                node: name,
                                reason: "stream operation posted no tokens across its wave".into(),
                            });
                        }
                        flow.complete = true;
                        match flow.pending.back_mut() {
                            Some((_, last_env)) => {
                                if let Some(f) = last_env.frames.last_mut() {
                                    f.total = Some(total);
                                }
                            }
                            None => {
                                // Final data object already in flight: the
                                // count travels as a wave-close message.
                                let mut close_env = parent_env.clone();
                                close_env.push(Frame {
                                    src: node,
                                    wave: out_wave,
                                    index: 0,
                                    total: Some(total),
                                });
                                close_to_send = Some((close_env, total));
                            }
                        }
                    }
                }
                if let Some(wv) = w.waves.get_mut(&key) {
                    wv.out_index = out_index_base + n_posts;
                }
                if let Some((close_env, total)) = close_to_send {
                    send_close(shared, w.app, graph, close_env, total);
                }
                pump_flow(shared, w.app, graph, flow_key);
            }
        }
        _ => unreachable!(),
    }

    if completes {
        if let Some(c) = shared.trace.as_ref() {
            let graph_label = c.label(def.name());
            w.trace(
                shared,
                EventKind::WaveEnd {
                    graph: graph_label,
                    wave: frame.wave as u32,
                },
            );
            c.drain();
        }
        w.waves.remove(&key);
        let g = &shared.apps[w.app as usize].graphs[graph as usize];
        g.wave_threads.lock().remove(&key);
    }
    credit_flow(shared, w.app, graph, (frame.src.0, frame.wave));
    Ok(())
}

fn handle_call(
    shared: &Arc<Shared>,
    w: &mut Worker,
    graph: u32,
    node: GNodeId,
    token: TokenBox,
    env: Envelope,
) -> Result<(), DpsError> {
    let def = &shared.defs[w.app as usize][graph as usize];
    let service = def
        .node(node)
        .service
        .clone()
        .expect("call nodes carry a service name");
    let Some(&(t_app, t_graph)) = shared.services.get(&service) else {
        return Err(DpsError::UnknownService { name: service });
    };
    let call_id = shared.call_counter.fetch_add(1, Ordering::Relaxed);
    shared.pending_calls.lock().insert(
        call_id,
        CallRetOpaque(CallRet {
            app: w.app,
            graph,
            node,
            env: env.clone(),
        }),
    );
    let mut callee_env = Envelope::root();
    callee_env.calls = env.calls;
    callee_env.calls.push(CallFrame {
        caller_app: w.app,
        caller_graph: graph,
        call_node: node,
        call_id,
    });
    let entry = shared.defs[t_app as usize][t_graph as usize].entry();
    route_and_send(shared, t_app, t_graph, entry, w.node, token, callee_env);
    Ok(())
}

/// Handle a wave-close: record the expected count; finalize if all data
/// objects were already consumed.
fn handle_close(
    shared: &Arc<Shared>,
    w: &mut Worker,
    graph: u32,
    node: GNodeId,
    mut env: Envelope,
    total: u32,
) -> Result<(), DpsError> {
    let def = &shared.defs[w.app as usize][graph as usize];
    let gnode = def.node(node);
    let name = gnode.name.clone();
    let info = exec_info(shared, w);
    let key = env
        .wave_key()
        .expect("close envelopes carry the wave frame");
    let remote = remote_for(&shared.remote, w.node);
    let pre_pop_env = remote.as_ref().map(|_| env.clone());
    let _ = env.pop();
    let parent_env = env;

    let Some(wave) = w.waves.get_mut(&key) else {
        w.pending_expected.insert(key, total);
        return Ok(());
    };
    wave.expected = Some(total);
    if wave.received > total {
        return Err(DpsError::OperationContract {
            node: name,
            reason: format!(
                "wave received {} tokens but producer posted {total}",
                wave.received
            ),
        });
    }
    if wave.received != total {
        return Ok(());
    }
    let mut wave = w.waves.remove(&key).expect("present above");
    let mut posts: Vec<TokenBox> = if let Some(r) = remote {
        let outcome = r.execute(RemoteTask {
            app: w.app,
            tc: w.tc,
            thread: w.thread,
            graph,
            node,
            kind: RemoteKind::Finalize,
            token: None,
            env: pre_pop_env.expect("cloned when the hook matched"),
        })?;
        apply_reports(shared, w.app, w.tc, w.thread, &outcome.reports);
        outcome.posts
    } else {
        let mut out = OpOutput::default();
        wave.op
            .as_mut()
            .expect("local waves hold their op")
            .on_finalize(&mut out, w.data.as_mut(), info, &name)?;
        out.posts.into_iter().map(|p| p.token).collect()
    };
    match gnode.kind {
        OpKind::Merge => {
            let post = posts.pop().ok_or_else(|| DpsError::OperationContract {
                node: name.clone(),
                reason: "merge wave completed without an output".into(),
            })?;
            emit(shared, w.app, graph, node, w.node, post, parent_env);
        }
        OpKind::Stream => {
            let n_posts = posts.len() as u32;
            let total_out = wave.out_index + n_posts;
            if total_out == 0 {
                return Err(DpsError::OperationContract {
                    node: name,
                    reason: "stream operation posted no tokens across its wave".into(),
                });
            }
            let flow_key = (node.0, wave.out_wave);
            let mut close_to_send: Option<(Envelope, u32)> = None;
            {
                let g = &shared.apps[w.app as usize].graphs[graph as usize];
                let mut flows = g.flows.lock();
                let flow = flows.entry(flow_key).or_insert_with(|| MtFlow {
                    pending: VecDeque::new(),
                    outstanding: 0,
                    complete: false,
                    from: node,
                    src_node: w.node,
                    unbounded: false,
                });
                for (i, post) in posts.into_iter().enumerate() {
                    let mut e = parent_env.clone();
                    e.push(Frame {
                        src: node,
                        wave: wave.out_wave,
                        index: wave.out_index + i as u32,
                        total: None,
                    });
                    flow.pending.push_back((post, e));
                }
                flow.complete = true;
                match flow.pending.back_mut() {
                    Some((_, last_env)) => {
                        if let Some(f) = last_env.frames.last_mut() {
                            f.total = Some(total_out);
                        }
                    }
                    None => {
                        let mut close_env = parent_env.clone();
                        close_env.push(Frame {
                            src: node,
                            wave: wave.out_wave,
                            index: 0,
                            total: Some(total_out),
                        });
                        close_to_send = Some((close_env, total_out));
                    }
                }
            }
            if let Some((close_env, t)) = close_to_send {
                send_close(shared, w.app, graph, close_env, t);
            }
            pump_flow(shared, w.app, graph, flow_key);
        }
        _ => unreachable!("closes only target merge/stream nodes"),
    }
    if let Some(c) = shared.trace.as_ref() {
        let graph_label = c.label(def.name());
        w.trace(
            shared,
            EventKind::WaveEnd {
                graph: graph_label,
                wave: key.wave as u32,
            },
        );
        c.drain();
    }
    let g = &shared.apps[w.app as usize].graphs[graph as usize];
    g.wave_threads.lock().remove(&key);
    Ok(())
}

/// Send a wave-close to the thread owning the wave; if no token of the wave
/// was routed yet, park it in the graph's pending-close table.
fn send_close(shared: &Arc<Shared>, app: u32, graph: u32, close_env: Envelope, total: u32) {
    let key = close_env
        .wave_key()
        .expect("close envelopes carry the wave frame");
    let opener = key.src;
    let def = &shared.defs[app as usize][graph as usize];
    let Some(merge_node) = def.matching_pop(opener) else {
        send_error(
            shared,
            app,
            DpsError::InvalidGraph {
                reason: format!("no matching merge recorded for node {opener}"),
            },
        );
        return;
    };
    let g = &shared.apps[app as usize].graphs[graph as usize];
    let thread = { g.wave_threads.lock().get(&key).copied() };
    match thread {
        Some(t) => {
            let tc = def.node(merge_node).tc;
            let shared_tc = &shared.apps[app as usize].tcs[tc as usize];
            if shared.node_dead(shared_tc.nodes[t as usize]) {
                // The wave's home died before consuming anything (tombstones
                // remove the pins of waves they held state for): drop the
                // stale pin and park the close so the wave's re-routed
                // tokens re-pin it and replay the close at its new home.
                g.wave_threads.lock().remove(&key);
                g.pending_closes.lock().insert(key, total);
                return;
            }
            shared_tc.enqueue(
                t as usize,
                Msg::Close {
                    graph,
                    node: merge_node,
                    env: close_env,
                    total,
                },
            );
        }
        None => {
            g.pending_closes.lock().insert(key, total);
        }
    }
}

/// A token leaves node `from` of `graph`: pick the successor by type, or
/// handle the graph exit (output collection / call return).
fn emit(
    shared: &Arc<Shared>,
    app: u32,
    graph: u32,
    from: GNodeId,
    src_node: u32,
    token: TokenBox,
    env: Envelope,
) {
    let def = &shared.defs[app as usize][graph as usize];
    match def.successor_for(from, token.wire_id()) {
        Some(next) => route_and_send(shared, app, graph, next, src_node, token, env),
        None if !def.succs(from).is_empty() => {
            send_error(
                shared,
                app,
                DpsError::NoRoute {
                    node: def.node(from).name.clone(),
                    token_type: token.type_name(),
                },
            );
        }
        None => {
            if env.frames.len() == 1 && !env.calls.is_empty() {
                // Distributed return (inter-application split/merge pair):
                // the wave keeps its frame and is merged in the caller.
                let call = env.calls.last().expect("checked non-empty");
                let ret = {
                    let calls = shared.pending_calls.lock();
                    calls
                        .get(&call.call_id)
                        .map(|c| (c.0.app, c.0.graph, c.0.node, c.0.env.clone()))
                };
                match ret {
                    Some((r_app, r_graph, r_node, r_env)) => {
                        let mut out_env = r_env;
                        out_env.push(env.frames[0]);
                        emit(shared, r_app, r_graph, r_node, src_node, token, out_env);
                    }
                    None => {
                        send_error(
                            shared,
                            app,
                            DpsError::OperationContract {
                                node: def.node(from).name.clone(),
                                reason: format!("return for unknown call id {}", call.call_id),
                            },
                        );
                    }
                }
                return;
            }
            if !env.frames.is_empty() {
                send_error(
                    shared,
                    app,
                    DpsError::InvalidGraph {
                        reason: format!(
                            "token left the graph at {} with {} unmerged frames",
                            def.node(from).name,
                            env.frames.len()
                        ),
                    },
                );
                return;
            }
            if let Some(call) = env.calls.last() {
                let ret = {
                    let calls = shared.pending_calls.lock();
                    calls
                        .get(&call.call_id)
                        .map(|c| (c.0.app, c.0.graph, c.0.node, c.0.env.clone()))
                };
                match ret {
                    Some((r_app, r_graph, r_node, r_env)) => {
                        emit(shared, r_app, r_graph, r_node, src_node, token, r_env);
                    }
                    None => {
                        send_error(
                            shared,
                            app,
                            DpsError::OperationContract {
                                node: def.node(from).name.clone(),
                                reason: format!("return for unknown call id {}", call.call_id),
                            },
                        );
                    }
                }
            } else {
                let _ = shared.output_tx.send(Output { app, graph, token });
            }
        }
    }
}

fn route_and_send(
    shared: &Arc<Shared>,
    app: u32,
    graph: u32,
    to: GNodeId,
    src_node: u32,
    token: TokenBox,
    env: Envelope,
) {
    let def = &shared.defs[app as usize][graph as usize];
    let gnode = def.node(to);
    let tc = gnode.tc;
    let g = &shared.apps[app as usize].graphs[graph as usize];
    let shared_tc = &shared.apps[app as usize].tcs[tc as usize];
    let thread_count = shared_tc.senders.len();
    // Live per-thread backlog: load-balancing routes on real OS threads see
    // the same signal shape as on the simulator. Single-thread collections
    // (masters, merge homes) skip the snapshot — routing there is forced.
    let load = (thread_count > 1).then(|| shared_tc.load_snapshot(&shared.dead));
    let info = RouteInfo {
        thread_count,
        load: load.as_deref(),
    };
    let routed = g.routes[to.0 as usize].route(token.as_ref(), &info, &gnode.name);
    let mut thread = match routed {
        Ok(i) => i as u32,
        Err(e) => {
            send_error(shared, app, e);
            return;
        }
    };
    if matches!(gnode.kind, OpKind::Merge | OpKind::Stream) {
        let key = env.wave_key().expect("validated: merges are under a split");
        let mut fresh = false;
        {
            let mut wt = g.wave_threads.lock();
            match wt.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let pinned = *e.get();
                    if shared.node_dead(shared_tc.nodes[pinned as usize]) {
                        // The pinned thread died before consuming anything
                        // (a tombstone removes the pins of waves it held
                        // partial state for): re-pin the wave to the freshly
                        // routed thread and replay any parked close.
                        *e.get_mut() = thread;
                        fresh = true;
                    } else {
                        thread = pinned;
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(thread);
                    fresh = true;
                }
            }
        }
        if fresh {
            // A close may have raced ahead of the wave's first token.
            let parked = g.pending_closes.lock().remove(&key);
            if let Some(total) = parked {
                let mut close_env = env.clone();
                if let Some(f) = close_env.frames.last_mut() {
                    f.total = Some(total);
                }
                shared.apps[app as usize].tcs[tc as usize].enqueue(
                    thread as usize,
                    Msg::Close {
                        graph,
                        node: to,
                        env: close_env,
                        total,
                    },
                );
            }
        }
    }
    let dst_node = shared.apps[app as usize].tcs[tc as usize].nodes[thread as usize];
    if shared.node_dead(dst_node) {
        // The route insisted on a dead thread (stateful affinity, or the
        // whole collection is down): the work cannot be re-queued.
        send_error(
            shared,
            app,
            DpsError::NodeDown {
                node: shared.node_name(dst_node),
                target: gnode.name.clone(),
            },
        );
        return;
    }
    let token = if shared.enforce_serialization && src_node != dst_node {
        match wire_roundtrip(token.as_ref(), &shared.registries[app as usize]) {
            Ok(t) => t,
            Err(e) => {
                send_error(shared, app, e);
                return;
            }
        }
    } else {
        token
    };
    shared.apps[app as usize].tcs[tc as usize].enqueue(
        thread as usize,
        Msg::Deliver {
            graph,
            node: to,
            token,
            env,
        },
    );
}

/// Release pending posts of a flow while the window allows; the final post
/// of an incomplete stream is held back (it must carry the wave total).
fn pump_flow(shared: &Arc<Shared>, app: u32, graph: u32, key: (u32, u64)) {
    loop {
        let item = {
            let g = &shared.apps[app as usize].graphs[graph as usize];
            let mut flows = g.flows.lock();
            let Some(flow) = flows.get_mut(&key) else {
                return;
            };
            if !flow.unbounded && shared.flow_window > 0 && flow.outstanding >= shared.flow_window {
                return;
            }
            if flow.pending.is_empty() {
                if flow.complete && flow.outstanding == 0 {
                    flows.remove(&key);
                }
                return;
            }
            let (token, env) = flow.pending.pop_front().expect("non-empty");
            flow.outstanding += 1;
            (token, env, flow.from, flow.src_node)
        };
        let (token, env, from, src_node) = item;
        emit(shared, app, graph, from, src_node, token, env);
    }
}

/// A merge consumed one token of flow `key`: return a credit.
fn credit_flow(shared: &Arc<Shared>, app: u32, graph: u32, key: (u32, u64)) {
    {
        let g = &shared.apps[app as usize].graphs[graph as usize];
        let mut flows = g.flows.lock();
        if let Some(flow) = flows.get_mut(&key) {
            flow.outstanding = flow.outstanding.saturating_sub(1);
        } else {
            return;
        }
    }
    pump_flow(shared, app, graph, key);
}
