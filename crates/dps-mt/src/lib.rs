//! # dps-mt — real-parallelism execution engine for DPS flow graphs
//!
//! Runs the same flow graphs as [`dps_core::SimEngine`] on **real OS
//! threads** with channels: every DPS thread of every thread collection maps
//! to one operating-system thread with its own token queue, exactly as in
//! the paper ("DPS threads are mapped to operating system threads", §2).
//! This demonstrates that the framework is a genuine pipelined multithreaded
//! runtime, not only a simulation veneer: operations on different threads
//! execute concurrently, tokens flow as soon as they are posted, and merges
//! assemble waves whose tokens arrive in nondeterministic order.
//!
//! Virtual *nodes* group threads into address spaces: tokens crossing a node
//! boundary can be forced through the full serialize/deserialize networking
//! path — the paper's several-kernels-on-one-host debugging mode (§4).
//!
//! Differences from the virtual-time engine, all documented per item:
//!
//! * Wall-clock timing; runs are **not** deterministic (merge `consume`
//!   order varies between runs — merge operations must be commutative, as
//!   in any real DPS deployment).
//! * Flow control is credit-driven without stalling the posting OS thread;
//!   the window bound on in-flight tokens per split/merge pair holds.
//! * [`MtEngine::run_graph`] drives one graph run to completion and returns
//!   the collected outputs.

mod engine;
pub mod remote;
mod worker;

pub use engine::{FailHandle, MtApp, MtConfig, MtEngine, MtGraph};
pub use remote::{RemoteExec, RemoteKind, RemoteOutcome, RemoteTask};
