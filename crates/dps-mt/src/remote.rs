//! The remote-execution seam: distributed engines delegate *op execution*
//! to other processes while this engine keeps the whole control plane.
//!
//! The threaded engine already implements everything a cluster run needs
//! except distribution itself: wave accounting, split/merge flow control,
//! credit windows, routing, service calls. A distributed engine reuses all
//! of that by embedding an [`MtEngine`](crate::MtEngine) on the master
//! process and installing a [`RemoteExec`] hook
//! ([`MtEngine::set_remote_exec`](crate::MtEngine::set_remote_exec)): the
//! worker loop consults the hook at each op-execution point, and for
//! threads whose cluster node is hosted *outside* this process it ships a
//! [`RemoteTask`] instead of running the operation locally. The hook blocks
//! until the owning process returns the posted tokens — preserving the
//! engine's per-thread execution order exactly, because the OS thread that
//! would have run the operation is the one that waits for it.
//!
//! Three task kinds cover the three execution points of the worker loop:
//!
//! | kind | worker-side effect |
//! |---|---|
//! | [`RemoteKind::Exec`] | run a split/leaf's `execute` on the token |
//! | [`RemoteKind::Consume`] | run a merge/stream `consume`; finalize too when `completes` |
//! | [`RemoteKind::Finalize`] | finalize a merge/stream wave (close arrived after its last token) |
//!
//! The wave a `Consume`/`Finalize` belongs to is derived from
//! [`RemoteTask::env`], which carries the envelope *before* the consuming
//! pop — the remote process computes the same
//! [`WaveKey`](dps_core::WaveKey) this engine used and keeps one operation
//! instance per wave, mirroring the local wave table.

use std::sync::Arc;

use dps_core::{DpsError, Envelope, GNodeId, TokenBox};

/// Hook consulted by the worker loop at every op-execution point.
///
/// Implementations are transports: they frame the task, send it to the
/// process hosting the thread's cluster node, and block on the reply.
/// `execute` is called with **no engine locks held**, so an implementation
/// may block indefinitely without wedging delivery on other threads.
pub trait RemoteExec: Send + Sync {
    /// Is cluster node `node` hosted outside this process? Local nodes run
    /// their operations in-process exactly as without a hook.
    fn is_remote(&self, node: u32) -> bool;

    /// Execute `task` on the process hosting its thread's node and return
    /// the tokens it posted. Errors propagate like local operation errors
    /// (they fail the run).
    fn execute(&self, task: RemoteTask) -> Result<RemoteOutcome, DpsError>;
}

/// One op execution shipped to a remote process.
pub struct RemoteTask {
    /// Application index (declaration order).
    pub app: u32,
    /// Thread-collection index within the application.
    pub tc: u32,
    /// Thread index within the collection.
    pub thread: u32,
    /// Graph index within the application.
    pub graph: u32,
    /// The executing graph node.
    pub node: GNodeId,
    /// Which execution point this is.
    pub kind: RemoteKind,
    /// The arriving token (`None` for [`RemoteKind::Finalize`]).
    pub token: Option<TokenBox>,
    /// The token's envelope **before** any consuming pop — for
    /// `Consume`/`Finalize` the remote side derives the wave identity from
    /// its top frame.
    pub env: Envelope,
}

/// The execution point a [`RemoteTask`] replays remotely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteKind {
    /// Split/leaf `execute` on the arriving token.
    Exec,
    /// Merge/stream `consume`; when `completes`, the wave's last token —
    /// finalize and drop the wave instance afterwards.
    Consume {
        /// This token completes the wave.
        completes: bool,
    },
    /// Finalize a wave whose close raced ahead of delivery: all tokens were
    /// already consumed, only the finalize remains.
    Finalize,
}

/// What the remote execution produced.
#[derive(Default)]
pub struct RemoteOutcome {
    /// Tokens the operation posted, in post order.
    pub posts: Vec<TokenBox>,
    /// Completed-chunk measurements (`(iters, secs)` per chunk, in the
    /// *remote* host's wall clock) to apply to the master's feedback sink
    /// under the executing thread's index.
    pub reports: Vec<(u64, f64)>,
}

/// `Option<Arc<dyn RemoteExec>>` resolved against one node: `Some` iff a
/// hook is installed and claims the node.
pub(crate) fn remote_for(
    hook: &Option<Arc<dyn RemoteExec>>,
    node: u32,
) -> Option<Arc<dyn RemoteExec>> {
    hook.as_ref().filter(|r| r.is_remote(node)).cloned()
}
