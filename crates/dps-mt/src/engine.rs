//! Engine lifecycle: declaration phase, thread spawning, run driving.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dps_sched::FeedbackSink;

use crossbeam::channel::{unbounded, Receiver, Sender};
use crossbeam::utils::CachePadded;
use dps_cluster::{resolve_mapping, ClusterSpec, NodeId};
use dps_core::{
    downcast, register_token, DpsError, GraphBuilder, Result, ThreadData, Token, TokenBox,
    TokenRegistry,
};
use parking_lot::Mutex;

use crate::remote::RemoteExec;
use crate::worker::{worker_loop, Msg, Output, Shared, SharedApp, SharedGraph, SharedTc};

/// Tunables of the threaded engine.
#[derive(Debug, Clone)]
pub struct MtConfig {
    /// Max tokens in flight per split/merge pair (0 = unlimited).
    pub flow_window: u32,
    /// Force serialize/deserialize round trips across virtual node
    /// boundaries (the paper's multi-kernel debugging mode).
    pub enforce_serialization: bool,
    /// How long [`MtEngine::run_graph`] waits for outputs before reporting
    /// a deadlock.
    pub run_timeout: Duration,
}

impl Default for MtConfig {
    fn default() -> Self {
        Self {
            flow_window: 8,
            enforce_serialization: false,
            run_timeout: Duration::from_secs(30),
        }
    }
}

/// Handle to a graph installed in the threaded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MtGraph {
    pub(crate) app: u32,
    pub(crate) graph: u32,
}

struct AppDecl {
    name: String,
    registry: TokenRegistry,
    tcs: Vec<TcDecl>,
    /// `Arc` so layered engines can keep a handle to the same definition
    /// they install (see [`MtEngine::install_graph`]).
    graphs: Vec<Arc<dps_core::Flowgraph>>,
}

struct TcDecl {
    nodes: Vec<u32>,
    data_factory: Box<dyn Fn() -> Box<dyn std::any::Any + Send> + Send>,
}

/// The threaded execution engine.
///
/// Lifecycle: declare applications, thread collections and graphs; the
/// worker threads spawn on the first [`run_graph`](Self::run_graph) call;
/// [`shutdown`](Self::shutdown) joins them.
pub struct MtEngine {
    spec: ClusterSpec,
    cfg: MtConfig,
    apps: Vec<AppDecl>,
    services: HashMap<String, (u32, u32)>,
    shared: Option<Arc<Shared>>,
    output_rx: Option<Receiver<Output>>,
    error_rx: Option<Receiver<DpsError>>,
    out_buf: HashMap<(u32, u32), Vec<TokenBox>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    started_at: Instant,
    feedback: Option<Arc<dyn FeedbackSink>>,
    /// Calibrated host compute rate (FLOP/s) used for `charge_flops` cost
    /// models; a nominal 1 GFLOP/s until `calibrate_feedback` measures it.
    node_flops: f64,
    remote: Option<Arc<dyn RemoteExec>>,
    trace: Option<Arc<dps_obs::TraceCollector>>,
}

/// Handle to an application declared in the threaded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MtApp {
    app: u32,
}

impl MtEngine {
    /// Engine with `nodes` virtual nodes (named `node0..`) — each node is a
    /// distinct address space for the serialization-enforcement mode.
    pub fn new(nodes: usize) -> Self {
        Self::with_config(nodes, MtConfig::default())
    }

    /// Engine with explicit configuration.
    pub fn with_config(nodes: usize, cfg: MtConfig) -> Self {
        Self {
            spec: ClusterSpec::uniform(nodes, 1),
            cfg,
            apps: Vec::new(),
            services: HashMap::new(),
            shared: None,
            output_rx: None,
            error_rx: None,
            out_buf: HashMap::new(),
            handles: Vec::new(),
            started_at: Instant::now(),
            feedback: None,
            node_flops: 1e9,
            remote: None,
            trace: None,
        }
    }

    /// Register the sink receiving per-chunk completion reports (dynamic
    /// loop scheduling, see `dps_core::sched`). This engine reports
    /// *wall-clock* execution times; only relative rates matter, so the
    /// same application code adapts identically here and on the simulator.
    /// Call before the first run.
    pub fn set_feedback_sink(&mut self, sink: Arc<dyn FeedbackSink>) {
        assert!(
            self.shared.is_none(),
            "register the feedback sink before the first run"
        );
        self.feedback = Some(sink);
    }

    /// Attach a trace sink: each worker thread records its wave, op and
    /// chunk events (wall-clock timestamps) through its own lock-free
    /// writer. Like every declaration, call before the first run.
    pub fn set_trace_sink(&mut self, sink: Arc<dps_obs::TraceCollector>) {
        assert!(
            self.shared.is_none(),
            "register the trace sink before the first run"
        );
        self.trace = Some(sink);
    }

    /// The attached trace sink, if any.
    pub fn trace_collector(&self) -> Option<Arc<dps_obs::TraceCollector>> {
        self.trace.clone()
    }

    /// Measure per-thread execution rates at startup and seed the feedback
    /// sink with them, so adaptive policies (AWF) start from measured
    /// weights instead of the uniform cold start, and `charge_flops` cost
    /// models agree with the wall-clock feedback on this host.
    ///
    /// `measure_rate(worker)` returns worker `worker`'s sustained compute
    /// rate in FLOP/s — typically `dps_bench::calib::measure_flop_rate`,
    /// a short timed scalar kernel (on heterogeneous *hosts* each worker
    /// probes its own machine; within one host the rates come out equal,
    /// which is exactly what the board should believe). One synthetic
    /// chunk report per worker is posted to the registered feedback sink,
    /// scaled to be a *weak prior*: it seeds the measured rate **ratio**
    /// with a small sample (hundreds of iterations over milliseconds), so
    /// a few real wall-clock chunk reports outweigh it and runtime
    /// adaptation keeps working after the seed.
    ///
    /// # Panics
    /// If no feedback sink is registered or the workers already started.
    pub fn calibrate_feedback(
        &mut self,
        workers: usize,
        mut measure_rate: impl FnMut(usize) -> f64,
    ) {
        assert!(self.shared.is_none(), "calibrate before the first run");
        let sink = self
            .feedback
            .as_ref()
            .expect("register a feedback sink before calibrating")
            .clone();
        let rates: Vec<f64> = (0..workers).map(|w| measure_rate(w).max(1.0)).collect();
        let max = rates.iter().cloned().fold(1.0f64, f64::max);
        // Seed shape: the fastest worker reports SEED_ITERS iterations in
        // SEED_SECS; the others proportionally fewer in the same time —
        // correct ratios, negligible absolute weight in the aggregate
        // Σiters/Σsecs once real chunks (whole waves of iterations over
        // comparable wall time) start flowing.
        const SEED_ITERS: f64 = 256.0;
        const SEED_SECS: f64 = 1.0e-3;
        for (w, rate) in rates.iter().enumerate() {
            let iters = ((SEED_ITERS * rate / max).round() as u64).max(1);
            sink.report_chunk(w, iters, SEED_SECS);
        }
        if workers > 0 {
            self.node_flops = rates.iter().sum::<f64>() / workers as f64;
        }
    }

    /// The calibrated host compute rate exposed to operations through
    /// `OpCtx::charge_flops`.
    pub fn node_flops(&self) -> f64 {
        self.node_flops
    }

    /// Declare an application. The name is kept (matching `SimEngine::app`
    /// semantics) and surfaces in error messages and the feedback /
    /// calibration paths; read it back with [`app_name`](Self::app_name).
    pub fn app(&mut self, name: &str) -> MtApp {
        assert!(self.shared.is_none(), "declare apps before the first run");
        let app = self.apps.len() as u32;
        self.apps.push(AppDecl {
            name: name.to_string(),
            registry: TokenRegistry::new(),
            tcs: Vec::new(),
            graphs: Vec::new(),
        });
        MtApp { app }
    }

    /// The name `app` was declared with.
    pub fn app_name(&self, app: MtApp) -> &str {
        &self.apps[app.app as usize].name
    }

    /// Register a token type for deserialization (needed with
    /// `enforce_serialization`).
    pub fn register_token<T>(&mut self, app: MtApp)
    where
        T: dps_serial::Wire + dps_serial::Identified + Clone + std::fmt::Debug + Send + 'static,
    {
        register_token::<T>(&mut self.apps[app.app as usize].registry);
    }

    /// Create and map a thread collection (`"node0*2 node1"` syntax).
    pub fn thread_collection<Td: ThreadData>(
        &mut self,
        app: MtApp,
        _name: &str,
        mapping: &str,
    ) -> Result<dps_core::ThreadCollection<Td>> {
        assert!(
            self.shared.is_none(),
            "declare collections before the first run"
        );
        let nodes: Vec<u32> = resolve_mapping(&self.spec, mapping)?
            .into_iter()
            .map(|n| n.0)
            .collect();
        let a = &mut self.apps[app.app as usize];
        let tc = a.tcs.len() as u32;
        let count = nodes.len();
        a.tcs.push(TcDecl {
            nodes,
            data_factory: Box::new(|| Box::new(Td::default())),
        });
        Ok(dps_core::ThreadCollection::from_raw(app.app, tc, count))
    }

    /// Validate and install a graph.
    pub fn build_graph(&mut self, builder: GraphBuilder) -> Result<MtGraph> {
        let (def, app) = builder.assemble_for_engine()?;
        Ok(self.install_graph(MtApp { app }, Arc::new(def)))
    }

    /// Install an already-assembled graph shared by `Arc`. Layered engines
    /// that keep their own copy of the definition (the network engine
    /// shares one `Flowgraph` between its master-side threads and its
    /// in-process worker harnesses) install through here; plain users go
    /// through [`build_graph`](Self::build_graph).
    pub fn install_graph(&mut self, app: MtApp, def: Arc<dps_core::Flowgraph>) -> MtGraph {
        assert!(self.shared.is_none(), "build graphs before the first run");
        let a = &mut self.apps[app.app as usize];
        // Token types the graph declaration captured become decodable
        // without explicit register_token calls.
        def.register_tokens(&mut a.registry);
        let graph = a.graphs.len() as u32;
        a.graphs.push(def);
        MtGraph {
            app: app.app,
            graph,
        }
    }

    /// Install the remote-execution hook consulted at every op-execution
    /// point: operations of threads whose cluster node
    /// [`is_remote`](RemoteExec::is_remote) reports remote are shipped
    /// through the hook instead of running locally, while wave accounting,
    /// flow control and routing stay in this engine (see `crate::remote`).
    /// Call before the first run.
    pub fn set_remote_exec(&mut self, hook: Arc<dyn RemoteExec>) {
        assert!(
            self.shared.is_none(),
            "install the remote hook before the first run"
        );
        self.remote = Some(hook);
    }

    /// Expose a graph as a named parallel service.
    pub fn expose_service(&mut self, graph: MtGraph, name: &str) {
        self.services
            .insert(name.to_string(), (graph.app, graph.graph));
    }

    fn ensure_started(&mut self) {
        if self.shared.is_some() {
            return;
        }
        let (output_tx, output_rx) = unbounded();
        let (error_tx, error_rx) = unbounded();
        let mut shared_apps = Vec::with_capacity(self.apps.len());
        let mut receivers: Vec<Vec<Vec<Receiver<Msg>>>> = Vec::new();
        for a in &self.apps {
            let mut tcs = Vec::new();
            let mut app_rx = Vec::new();
            for tc in &a.tcs {
                let mut senders: Vec<Sender<Msg>> = Vec::new();
                let mut rxs = Vec::new();
                for _ in 0..tc.nodes.len() {
                    let (tx, rx) = unbounded();
                    senders.push(tx);
                    rxs.push(rx);
                }
                let queued = (0..tc.nodes.len())
                    .map(|_| CachePadded::new(AtomicU32::new(0)))
                    .collect();
                tcs.push(SharedTc {
                    nodes: tc.nodes.clone(),
                    senders,
                    queued,
                    metrics: self.trace.as_ref().map(|c| c.metrics_arc()),
                });
                app_rx.push(rxs);
            }
            let graphs = a
                .graphs
                .iter()
                .map(|def| SharedGraph {
                    routes: def
                        .nodes()
                        .iter()
                        .map(|n| crate::worker::RouteCell::install(n.make_route()))
                        .collect(),
                    wave_threads: Mutex::new(HashMap::new()),
                    flows: Mutex::new(HashMap::new()),
                    pending_closes: Mutex::new(HashMap::new()),
                })
                .collect();
            shared_apps.push(SharedApp { tcs, graphs });
            receivers.push(app_rx);
        }
        // Graph definitions move into the shared state as a parallel vec
        // (Flowgraph is Sync now that factories are Sync).
        let defs: Vec<Vec<Arc<dps_core::Flowgraph>>> = self
            .apps
            .iter_mut()
            .map(|a| std::mem::take(&mut a.graphs))
            .collect();
        let registries: Vec<TokenRegistry> = self
            .apps
            .iter_mut()
            .map(|a| std::mem::replace(&mut a.registry, TokenRegistry::new()))
            .collect();
        let app_names: Vec<String> = self.apps.iter().map(|a| a.name.clone()).collect();
        let shared = Arc::new(Shared {
            flow_window: self.cfg.flow_window,
            enforce_serialization: self.cfg.enforce_serialization,
            apps: shared_apps,
            app_names,
            defs,
            registries,
            services: self.services.clone(),
            wave_counter: AtomicU64::new(0),
            call_counter: AtomicU64::new(0),
            pending_calls: Mutex::new(HashMap::new()),
            output_tx,
            error_tx,
            feedback: self.feedback.clone(),
            node_flops: self.node_flops,
            remote: self.remote.clone(),
            trace: self.trace.clone(),
            dead: (0..self.spec.len())
                .map(|_| AtomicBool::new(false))
                .collect(),
            node_names: (0..self.spec.len())
                .map(|i| self.spec.node(NodeId(i as u32)).name.clone())
                .collect(),
            feedback_tcs: Mutex::new(Vec::new()),
        });
        // Spawn one OS thread per DPS thread.
        for (app_idx, app_rx) in receivers.into_iter().enumerate() {
            for (tc_idx, rxs) in app_rx.into_iter().enumerate() {
                for (th_idx, rx) in rxs.into_iter().enumerate() {
                    let shared = Arc::clone(&shared);
                    let data = (self.apps[app_idx].tcs[tc_idx].data_factory)();
                    let handle = std::thread::Builder::new()
                        .name(format!("dps-a{app_idx}t{tc_idx}i{th_idx}"))
                        .spawn(move || {
                            worker_loop(
                                shared,
                                app_idx as u32,
                                tc_idx as u32,
                                th_idx as u32,
                                data,
                                rx,
                            )
                        })
                        .expect("spawn DPS worker thread");
                    self.handles.push(handle);
                }
            }
        }
        self.shared = Some(shared);
        self.output_rx = Some(output_rx);
        self.error_rx = Some(error_rx);
    }

    /// Submit a token into a graph's entry (starting the worker threads on
    /// first use). Pair with [`wait_for_outputs`](Self::wait_for_outputs) +
    /// [`drain_outputs`](Self::drain_outputs), or use the higher-level
    /// [`run_graph`](Self::run_graph).
    pub fn submit(&mut self, graph: MtGraph, token: TokenBox) {
        self.ensure_started();
        let shared = Arc::clone(self.shared.as_ref().expect("started"));
        crate::worker::inject(&shared, graph.app, graph.graph, token, 0);
    }

    /// Block until `graph` has produced at least `expected_outputs`
    /// undrained outputs, or a worker reported an error, or the run
    /// timeout expires (the DPS deadlock analogue).
    pub fn wait_for_outputs(&mut self, graph: MtGraph, expected_outputs: usize) -> Result<()> {
        self.ensure_started();
        let deadline = Instant::now() + self.cfg.run_timeout;
        let key = (graph.app, graph.graph);
        loop {
            if self.out_buf.get(&key).map(Vec::len).unwrap_or(0) >= expected_outputs {
                return Ok(());
            }
            if let Ok(e) = self.error_rx.as_ref().expect("started").try_recv() {
                return Err(e);
            }
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .unwrap_or(Duration::ZERO);
            if remaining.is_zero() {
                return Err(DpsError::IncompleteWaves {
                    waves: vec![format!(
                        "application {}: timed out after {:?} waiting for {} outputs \
                         ({} received)",
                        self.apps[graph.app as usize].name,
                        self.cfg.run_timeout,
                        expected_outputs,
                        self.out_buf.get(&key).map(Vec::len).unwrap_or(0)
                    )],
                });
            }
            match self
                .output_rx
                .as_ref()
                .expect("started")
                .recv_timeout(remaining.min(Duration::from_millis(50)))
            {
                Ok(out) => {
                    self.out_buf
                        .entry((out.app, out.graph))
                        .or_default()
                        .push(out.token);
                }
                Err(_) => { /* timeout slice; loop re-checks */ }
            }
        }
    }

    /// Drain the outputs `graph` has produced so far (unordered).
    pub fn drain_outputs(&mut self, graph: MtGraph) -> Vec<TokenBox> {
        // Sweep anything already sitting in the channel first.
        if let Some(rx) = self.output_rx.as_ref() {
            while let Ok(out) = rx.try_recv() {
                self.out_buf
                    .entry((out.app, out.graph))
                    .or_default()
                    .push(out.token);
            }
        }
        self.out_buf
            .remove(&(graph.app, graph.graph))
            .unwrap_or_default()
    }

    /// Run a graph: inject `inputs` and wait until `expected_outputs`
    /// tokens have left the graph, returning them (unordered).
    pub fn run_graph(
        &mut self,
        graph: MtGraph,
        inputs: Vec<TokenBox>,
        expected_outputs: usize,
    ) -> Result<Vec<TokenBox>> {
        for token in inputs {
            self.submit(graph, token);
        }
        self.wait_for_outputs(graph, expected_outputs)?;
        Ok(self.drain_outputs(graph))
    }

    /// Run a graph expecting exactly one output of type `T`.
    pub fn run_one<T: Token>(&mut self, graph: MtGraph, input: TokenBox) -> Result<Box<T>> {
        let outs = self.run_graph(graph, vec![input], 1)?;
        let tok = outs.into_iter().next().expect("one output");
        downcast::<T>(tok).map_err(|t| DpsError::OperationContract {
            node: "run_one".into(),
            reason: format!("expected output type, got {}", t.type_name()),
        })
    }

    /// Kill cluster node `node` mid-run: the node's worker threads turn
    /// into *tombstones* — they stay on their channels (so late sends are
    /// never lost) but abandon their partial wave state and re-route
    /// everything they drain to live threads. Load-aware routes see the
    /// dead threads at infinite load and shed work to survivors, the
    /// registered feedback sink is told which workers it lost, and — as on
    /// the simulator — work that *cannot* move (stateful-affinity routes,
    /// merge waves whose partial state died with the node) surfaces as
    /// [`DpsError::NodeDown`] from the run.
    ///
    /// This is the OS-thread port of `SimEngine::fail_node`: the same
    /// fault schedule applied to either engine leaves the same surviving
    /// output set (differentially tested in the workspace's `vopr` tests).
    pub fn fail_node(&mut self, node: u32) -> Result<()> {
        self.fail_handle().fail_node(node)
    }

    /// A [`Send`]`+`[`Sync`] handle that can tombstone cluster nodes from
    /// *other* threads while this engine runs. Layered engines use it to
    /// turn an asynchronous failure signal (a heartbeat miss, a socket
    /// EOF) into the same [`fail_node`](Self::fail_node) degradation the
    /// scripted call performs — without needing `&mut MtEngine` on the
    /// detecting thread. Spawns the worker threads if needed.
    pub fn fail_handle(&mut self) -> FailHandle {
        self.ensure_started();
        FailHandle {
            shared: Arc::clone(self.shared.as_ref().expect("started")),
            feedback: self.feedback.clone(),
            trace: self.trace.clone(),
        }
    }

    /// Stop all worker threads and join them.
    pub fn shutdown(&mut self) {
        if let Some(shared) = &self.shared {
            for app in &shared.apps {
                for tc in &app.tcs {
                    for tx in &tc.senders {
                        let _ = tx.send(Msg::Stop);
                    }
                }
            }
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.shared = None;
    }

    /// Wall-clock time since the engine was created. Monotonic across the
    /// whole lifecycle — in particular it does **not** rebase when the
    /// worker threads spawn on the first submit, so `now_secs()` intervals
    /// taken around a run measure that run alone.
    pub fn elapsed(&self) -> Duration {
        self.started_at.elapsed()
    }
}

impl Drop for MtEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Thread-safe node-failure injector detached from the engine borrow (see
/// [`MtEngine::fail_handle`]). Cloning is cheap; every clone tombstones the
/// same engine. Idempotent per node: the first caller wins, later calls on
/// an already-dead node are no-ops.
#[derive(Clone)]
pub struct FailHandle {
    shared: Arc<Shared>,
    feedback: Option<Arc<dyn FeedbackSink>>,
    trace: Option<Arc<dps_obs::TraceCollector>>,
}

impl FailHandle {
    /// Tombstone cluster node `node`: exactly the semantics of
    /// [`MtEngine::fail_node`], callable from any thread.
    pub fn fail_node(&self, node: u32) -> Result<()> {
        let shared = &self.shared;
        let Some(flag) = shared.dead.get(node as usize) else {
            return Err(DpsError::InvalidGraph {
                reason: format!("fail_node: no such cluster node {node}"),
            });
        };
        if flag.swap(true, Ordering::AcqRel) {
            return Ok(()); // already dead
        }
        if let Some(sink) = &self.feedback {
            // FeedbackSink worker indices are thread indices within the
            // reporting collection, so only collections that actually fed
            // the sink are consulted (mirrors the simulator).
            let mut lost: Vec<usize> = Vec::new();
            for &(app, tc) in shared.feedback_tcs.lock().iter() {
                let tc = &shared.apps[app as usize].tcs[tc as usize];
                for (thread, &host) in tc.nodes.iter().enumerate() {
                    if host == node && !lost.contains(&thread) {
                        lost.push(thread);
                    }
                }
            }
            for worker in lost {
                sink.worker_lost(worker);
            }
        }
        // Wake every worker hosted on the dead node (raw sends: a Fail
        // wakeup is not a counted backlog message), tallying the backlog
        // they will re-route for the trace breadcrumb.
        let mut stranded = 0u64;
        for app in &shared.apps {
            for tc in &app.tcs {
                for (t, &host) in tc.nodes.iter().enumerate() {
                    if host == node {
                        stranded += tc.queued[t].load(Ordering::Relaxed) as u64;
                        let _ = tc.senders[t].send(Msg::Fail);
                    }
                }
            }
        }
        if let Some(c) = &self.trace {
            c.record_now(
                node as u16,
                0,
                dps_obs::EventKind::NodeDown { node: node as u16 },
            );
            c.metrics().add(dps_obs::Counter::NodesDown, 1);
            c.record_now(
                node as u16,
                0,
                dps_obs::EventKind::Fault {
                    code: dps_obs::fault_code::NODE_KILL,
                    detail: stranded,
                },
            );
        }
        Ok(())
    }

    /// True when `node` has already been tombstoned.
    pub fn is_dead(&self, node: u32) -> bool {
        self.shared
            .dead
            .get(node as usize)
            .is_some_and(|f| f.load(Ordering::Acquire))
    }
}

/// The unified engine API ([`dps_core::Engine`]): the same generic driver
/// code that runs on the deterministic simulator drives this engine's OS
/// threads. Declarations must precede the first
/// [`submit`](dps_core::Engine::submit)
/// ([`EngineCaps::declare_before_run`](dps_core::EngineCaps)).
impl dps_core::Engine for MtEngine {
    type App = MtApp;
    type Graph = MtGraph;

    fn name(&self) -> &'static str {
        "mt"
    }

    fn caps(&self) -> dps_core::EngineCaps {
        dps_core::EngineCaps {
            deterministic: false,
            virtual_time: false,
            fail_node: true,
            thread_state_access: false,
            declare_before_run: true,
        }
    }

    fn app(&mut self, name: &str) -> Self::App {
        MtEngine::app(self, name)
    }

    fn register_token<T>(&mut self, app: Self::App)
    where
        T: dps_serial::Wire + dps_serial::Identified + Clone + std::fmt::Debug + Send + 'static,
    {
        MtEngine::register_token::<T>(self, app)
    }

    fn thread_collection<Td: ThreadData>(
        &mut self,
        app: Self::App,
        name: &str,
        mapping: &str,
    ) -> Result<dps_core::ThreadCollection<Td>> {
        MtEngine::thread_collection(self, app, name, mapping)
    }

    fn build_graph(&mut self, builder: GraphBuilder) -> Result<Self::Graph> {
        MtEngine::build_graph(self, builder)
    }

    fn expose_service(&mut self, graph: Self::Graph, name: &str) {
        MtEngine::expose_service(self, graph, name)
    }

    fn set_feedback_sink(&mut self, sink: Arc<dyn FeedbackSink>) {
        MtEngine::set_feedback_sink(self, sink)
    }

    fn set_trace_sink(&mut self, sink: Arc<dps_obs::TraceCollector>) {
        MtEngine::set_trace_sink(self, sink)
    }

    fn submit(&mut self, graph: Self::Graph, token: TokenBox) -> Result<()> {
        MtEngine::submit(self, graph, token);
        Ok(())
    }

    fn run_to_idle(&mut self, graph: Self::Graph, expected_outputs: usize) -> Result<()> {
        self.wait_for_outputs(graph, expected_outputs)
    }

    fn take_outputs(&mut self, graph: Self::Graph) -> Vec<TokenBox> {
        self.drain_outputs(graph)
    }

    fn now_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    fn chunk_hub(&mut self) -> Arc<dps_sched::ChunkHub> {
        let hub = Arc::new(dps_sched::ChunkHub::new());
        if let Some(c) = &self.trace {
            hub.attach_metrics(c.metrics_arc());
        }
        hub
    }
}
